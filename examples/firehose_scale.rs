//! Firehose scale-out: deploy the pipeline on the four system flavors of
//! Section V-E and check which ones can absorb the Twitter Firehose's
//! ~9k tweets/second with how many machines — the paper's headline
//! scalability claim (3 commodity machines suffice).
//!
//! Run with: `cargo run --release --example firehose_scale`
//! (pass a tweet count to override the default 200k, e.g.
//! `cargo run --release --example firehose_scale -- 500000`)

use redhanded_core::experiments::{run_scalability, FIREHOSE_TWEETS_PER_SEC};
use redhanded_core::SystemFlavor;

fn main() {
    let tweets: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200_000);
    let labeled = (tweets / 10).clamp(1_000, 86_000);
    println!("streaming {tweets} unlabeled + {labeled} labeled tweets through each system\n");

    let systems = SystemFlavor::paper_set();
    let out = run_scalability(&[tweets], labeled, &systems, 10_000, 99)
        .expect("scalability sweep");

    println!(
        "{:>14} {:>14} {:>14} {:>18} {:>10}",
        "system", "tweets", "time (s)", "throughput (tw/s)", "firehose?"
    );
    for p in &out.points {
        let ok = if p.throughput >= FIREHOSE_TWEETS_PER_SEC { "YES" } else { "no" };
        println!(
            "{:>14} {:>14} {:>14.2} {:>18.0} {:>10}",
            p.system,
            p.tweets,
            p.elapsed.as_secs_f64(),
            p.throughput,
            ok
        );
    }
    println!("\nFirehose reference rate: {FIREHOSE_TWEETS_PER_SEC:.0} tweets/sec");
    println!(
        "(the Spark flavors report simulated cluster time from really-measured\n\
         task durations — see redhanded-dspe's virtual scheduler and DESIGN.md)"
    );
}
