//! Quickstart: assemble the paper's full detection pipeline, stream a
//! synthetic labeled dataset through it prequentially, and print the
//! headline metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use redhanded_core::{DetectionPipeline, ModelKind, PipelineConfig, StreamItem};
use redhanded_datagen::{generate_abusive, AbusiveConfig};
use redhanded_types::ClassScheme;

fn main() {
    // 1. A labeled tweet stream. In production this is the annotated feed
    //    (same JSON as the Twitter Streaming API plus a `label` field);
    //    here the calibrated synthetic generator stands in.
    let tweets = generate_abusive(&AbusiveConfig::small(20_000, 42));
    println!("generated {} labeled tweets (10 simulated days)", tweets.len());

    // 2. The paper's configuration: preprocessing ON, robust minmax
    //    normalization, adaptive bag-of-words, Hoeffding Tree, 2-class
    //    (normal vs aggressive).
    let config = PipelineConfig::paper(ClassScheme::TwoClass, ModelKind::ht());
    let mut pipeline = DetectionPipeline::new(config).expect("valid configuration");

    // 3. Stream it. Each labeled tweet is used to test first, then to
    //    train (prequential evaluation) — the model is always up to date.
    for (i, tweet) in tweets.into_iter().enumerate() {
        pipeline.process(&StreamItem::from(tweet)).expect("pipeline step");
        if (i + 1) % 5000 == 0 {
            let m = pipeline.metrics();
            println!(
                "after {:>6} tweets: accuracy {:.3}  F1 {:.3}  (BoW {} words)",
                i + 1,
                m.accuracy,
                m.f1,
                pipeline.bow_len()
            );
        }
    }

    // 4. Final report.
    let m = pipeline.cumulative_metrics();
    println!("\n=== cumulative metrics (2-class, Hoeffding Tree) ===");
    println!("accuracy  {:.4}", m.accuracy);
    println!("precision {:.4}", m.precision);
    println!("recall    {:.4}", m.recall);
    println!("F1-score  {:.4}", m.f1);
    println!("\nadaptive BoW grew from 347 seed words to {} words", pipeline.bow_len());
}
