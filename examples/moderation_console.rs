//! Moderation console: the workload the paper's introduction motivates —
//! a moderator-facing deployment that watches a mixed labeled/unlabeled
//! stream, raises real-time alerts on aggressive tweets, tracks repeat
//! offenders toward suspension, and collects a boosted labeling sample for
//! the next annotation round.
//!
//! Run with: `cargo run --release --example moderation_console`

use redhanded_core::{intermix, DetectionPipeline, ModelKind, PipelineConfig};
use redhanded_datagen::{generate_abusive, generate_unlabeled, AbusiveConfig};
use redhanded_types::ClassScheme;

fn main() {
    // Warm-up corpus (annotated) + live traffic (unannotated), interleaved
    // as they would arrive from the two input streams of Figure 1.
    let labeled = generate_abusive(&AbusiveConfig::small(12_000, 7));
    let live = generate_unlabeled(8_000, 8);
    let stream = intermix(labeled, live);

    let mut config = PipelineConfig::paper(ClassScheme::ThreeClass, ModelKind::ht());
    config.alert_threshold = 0.7; // only confident alerts reach moderators
    config.suspend_after = 3;
    config.sample_rate = 0.005;
    config.sample_boost = 20.0;
    let mut pipeline = DetectionPipeline::new(config).expect("valid configuration");

    for item in &stream {
        pipeline.process(item).expect("pipeline step");
    }

    println!("=== moderation console ===");
    println!("stream: {} items ({} labeled for training)", stream.len(), pipeline.labeled_seen());
    let m = pipeline.cumulative_metrics();
    println!("model quality so far: accuracy {:.3}, F1 {:.3}\n", m.accuracy, m.f1);

    let alerts = pipeline.alerts();
    println!("--- alert queue: {} alerts ---", alerts.len());
    for alert in alerts.iter().take(8) {
        println!(
            "tweet {:>6} by user {:>6}: {:<8} (confidence {:.2}, offense #{})",
            alert.tweet_id, alert.user_id, alert.class_name, alert.confidence, alert.user_alert_count
        );
    }
    if alerts.len() > 8 {
        println!("... and {} more", alerts.len() - 8);
    }

    let suspended = pipeline.alerter().suspended_users();
    println!("\n--- users flagged for suspension (≥3 offenses): {} ---", suspended.len());
    for user in suspended.iter().take(5) {
        println!(
            "user {:>6}: {} alerts",
            user,
            pipeline.alerter().user_alert_count(*user)
        );
    }

    let sample = pipeline.sampler().sample();
    let boosted = sample.iter().filter(|s| s.boosted).count();
    println!(
        "\n--- labeling sample: {} tweets ({} boosted as likely-aggressive) ---",
        sample.len(),
        boosted
    );
    println!(
        "the boosted sampler enriches the minority class: {:.0}% of the sample is\n\
         predicted-aggressive vs ~37% of raw traffic",
        100.0 * boosted as f64 / sample.len().max(1) as f64
    );
}
