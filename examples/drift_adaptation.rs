//! Drift adaptation: aggressors "find innovative ways to circumvent the
//! rules … using new words to signify their aggression but avoid
//! detection" (Section I of the paper). This example generates a stream
//! with heavy emerging-slang drift and contrasts the adaptive
//! bag-of-words against a frozen lexicon, watching the detector keep up —
//! or not.
//!
//! Run with: `cargo run --release --example drift_adaptation`

use redhanded_core::{DetectionPipeline, ModelKind, PipelineConfig, StreamItem};
use redhanded_datagen::{generate_abusive, AbusiveConfig, DriftConfig};
use redhanded_types::ClassScheme;

fn run(adaptive: bool, tweets: &[StreamItem]) -> DetectionPipeline {
    let mut config = PipelineConfig::paper(ClassScheme::TwoClass, ModelKind::ht());
    config.adaptive_bow = adaptive;
    let mut pipeline = DetectionPipeline::new(config).expect("valid configuration");
    for item in tweets {
        pipeline.process(item).expect("pipeline step");
    }
    pipeline
}

fn main() {
    // A stream where, by the end, 70% of profanity has been replaced with
    // out-of-lexicon slang that only emerges as the stream progresses.
    let config = AbusiveConfig {
        drift: DriftConfig { enabled: true, slang_pool: 80, max_adoption: 0.7 },
        ..AbusiveConfig::small(30_000, 23)
    };
    let tweets: Vec<StreamItem> =
        generate_abusive(&config).into_iter().map(StreamItem::from).collect();
    println!("streaming {} tweets with aggressive-vocabulary drift\n", tweets.len());

    let adaptive = run(true, &tweets);
    let frozen = run(false, &tweets);

    println!("{:>14} {:>22} {:>22}", "tweets", "adaptive BoW F1", "frozen lexicon F1");
    let frozen_series = frozen.series();
    for (a, f) in adaptive.series().iter().zip(frozen_series) {
        if a.instances % 5000 == 0 {
            println!("{:>14} {:>22.3} {:>22.3}", a.instances, a.metrics.f1, f.metrics.f1);
        }
    }
    println!(
        "\nfinal F1: adaptive {:.3} vs frozen {:.3}",
        adaptive.cumulative_metrics().f1,
        frozen.cumulative_metrics().f1
    );
    println!(
        "adaptive BoW grew from 347 to {} words, absorbing the emerging slang;",
        adaptive.bow_len()
    );
    println!("the frozen lexicon stayed at {} words and missed it.", frozen.bow_len());
}
