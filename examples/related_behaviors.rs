//! Related behaviors (Section V-F): apply the same streaming pipeline,
//! with zero code changes, to sarcasm detection and to racism/sexism
//! detection — only the class scheme and dataset differ.
//!
//! Run with: `cargo run --release --example related_behaviors`

use redhanded_core::experiments::{run_related, RelatedDataset};

fn main() {
    for (dataset, total) in
        [(RelatedDataset::Sarcasm, 20_000usize), (RelatedDataset::Offensive, 16_914)]
    {
        let out = run_related(dataset, total, 17).expect("experiment runs");
        println!("=== {} dataset ({} tweets) ===", out.dataset, total);
        println!("metric: {}", out.metric);
        for (tweets, value) in out.streaming_series.iter().step_by(4) {
            let bar = "#".repeat((value * 50.0).round() as usize);
            println!("  {tweets:>7} tweets  {value:.3}  {bar}");
        }
        println!("streaming HT final:            {:.3}", out.streaming_final);
        println!("batch LR 10-fold CV (ours):    {:.3}", out.batch_cv);
        println!("reported by original authors:  {:.2}", out.reported);
        println!(
            "→ the streaming model converges toward the batch ceiling while\n\
             processing each tweet exactly once.\n"
        );
    }
}
