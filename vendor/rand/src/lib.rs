//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! This workspace builds in environments without a crates.io mirror, so the
//! external `rand` crate is replaced by this vendored implementation of the
//! exact surface the workspace uses: `SmallRng` seeded via
//! `SeedableRng::seed_from_u64`, the `Rng` extension methods `gen` /
//! `gen_range`, and `seq::SliceRandom`'s `shuffle` / `choose`.
//!
//! The generator is xoshiro256++ (the same family the real `SmallRng` uses
//! on 64-bit targets) seeded through SplitMix64, so streams are high quality
//! and deterministic per seed — though not bit-identical to upstream rand's.
//! All workspace statistical tests assert loose distributional properties,
//! not exact streams.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of generators from seeds (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly by `Rng::gen`.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision (matches rand's layout).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in [0, bound) via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the draw unbiased for any bound.
    let zone = bound.wrapping_neg() % bound;
    loop {
        let v = rng.next_u64();
        if v >= zone {
            return v % bound;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64::sample_standard(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let unit = f64::sample_standard(rng);
        lo + unit * (hi - lo)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f32::sample_standard(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Small fast generator: xoshiro256++ seeded through SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro is degenerate on the all-zero state; SplitMix64 never
            // yields four zero words from one stream, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl SmallRng {
        /// The raw xoshiro256++ state, for checkpointing.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a previously captured state. An all-zero
        /// state is degenerate for xoshiro and is replaced by a fixed
        /// non-zero word (the same guard seeding applies).
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{uniform_below, RngCore};

    /// Subset of `rand::seq::SliceRandom`: `shuffle` and `choose`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        /// Fisher–Yates, identical draw order to rand 0.8 (high-to-low).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "uniform mean ~0.5, got {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2_000 {
            let v = rng.gen_range(3..10u32);
            assert!((3..10).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 9;
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(2.0..4.0f64);
            assert!((2.0..4.0).contains(&f));
        }
        assert!(seen_lo && seen_hi, "both endpoints of 3..10 reachable");
    }

    #[test]
    fn state_round_trips() {
        let mut a = SmallRng::seed_from_u64(123);
        for _ in 0..37 {
            a.gen::<u64>();
        }
        let mut b = SmallRng::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        // The all-zero state guard yields a working (non-stuck) generator.
        let mut z = SmallRng::from_state([0; 4]);
        let draws: Vec<u64> = (0..8).map(|_| z.gen::<u64>()).collect();
        assert!(draws.windows(2).any(|w| w[0] != w[1]), "degenerate stream: {draws:?}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle moved something");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = SmallRng::seed_from_u64(9);
        let items = [1u8, 2, 3];
        let mut hit = [false; 3];
        for _ in 0..200 {
            hit[(*items.choose(&mut rng).unwrap() - 1) as usize] = true;
        }
        assert_eq!(hit, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
