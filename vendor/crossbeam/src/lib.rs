//! Offline drop-in subset of the `crossbeam` channel API.
//!
//! The workspace builds in environments without a crates.io mirror, so this
//! vendored crate provides the one surface the DSPE operator engine uses:
//! `crossbeam::channel::{bounded, Sender, Receiver}` — a bounded MPMC
//! channel with clonable endpoints, blocking `send`/`recv`, disconnect
//! detection, and a blocking iterator.
//!
//! Implementation: `Mutex<VecDeque>` plus two `Condvar`s. This is not
//! lock-free like the real crossbeam, but it preserves the semantics the
//! operator pipeline relies on (backpressure at capacity, `Err` on send
//! once all receivers drop, iterator termination once all senders drop).

#![forbid(unsafe_code)]

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Signalled when the queue gains an item or all senders drop.
        not_empty: Condvar,
        /// Signalled when the queue loses an item or all receivers drop.
        not_full: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        capacity: usize,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by `Sender::send` when every `Receiver` has dropped.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by `Receiver::recv` when the channel is empty and
    /// every `Sender` has dropped.
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a bounded MPMC channel with the given capacity.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        // crossbeam's bounded(0) is a rendezvous channel; this queue-backed
        // variant needs at least one slot to hand items over.
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::with_capacity(capacity.max(1)),
                capacity: capacity.max(1),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Blocks until there is room, then enqueues. Errors if every
        /// receiver has dropped (returning the unsent value).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                if inner.queue.len() < inner.capacity {
                    inner.queue.push_back(value);
                    drop(inner);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                inner = self
                    .shared
                    .not_full
                    .wait(inner)
                    .expect("channel poisoned");
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().expect("channel poisoned").senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                // Wake blocked receivers so they observe disconnection.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until an item arrives. Errors once the channel is empty
        /// and every sender has dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .shared
                    .not_empty
                    .wait(inner)
                    .expect("channel poisoned");
            }
        }

        /// A blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().expect("channel poisoned").receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                // Wake blocked senders so they observe disconnection.
                self.shared.not_full.notify_all();
            }
        }
    }

    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::bounded;
        use std::thread;

        #[test]
        fn fifo_within_single_thread() {
            let (tx, rx) = bounded(8);
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            drop(tx);
            assert_eq!(rx.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        }

        #[test]
        fn mpmc_delivers_every_item_exactly_once() {
            let (tx, rx) = bounded(4);
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let tx = tx.clone();
                    thread::spawn(move || {
                        for i in 0..250 {
                            tx.send(p * 1000 + i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    thread::spawn(move || rx.iter().collect::<Vec<i32>>())
                })
                .collect();
            drop(rx);
            for p in producers {
                p.join().unwrap();
            }
            let mut all: Vec<i32> = consumers
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect();
            all.sort_unstable();
            let mut expected: Vec<i32> = (0..4)
                .flat_map(|p| (0..250).map(move |i| p * 1000 + i))
                .collect();
            expected.sort_unstable();
            assert_eq!(all, expected);
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = bounded::<u8>(2);
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn capacity_applies_backpressure() {
            let (tx, rx) = bounded(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let blocked = thread::spawn(move || {
                tx.send(3).unwrap(); // must block until a recv frees a slot
                drop(tx);
            });
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
            blocked.join().unwrap();
            assert!(rx.recv().is_err());
        }
    }
}
