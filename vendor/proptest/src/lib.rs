//! Offline drop-in subset of the `proptest` API.
//!
//! The workspace builds in environments without a crates.io mirror, so this
//! vendored crate implements the property-testing surface the workspace's
//! `tests/proptests.rs` files use: the `proptest!` macro, `prop_assert!` /
//! `prop_assert_eq!`, `any::<T>()`, numeric range strategies, a small
//! regex-subset string strategy (char classes and `\PC` with `{m,n}`
//! repetition), `prop::collection::vec`, `prop::sample::select`, tuple
//! strategies, and `ProptestConfig::with_cases`.
//!
//! Differences from upstream: inputs are drawn from a deterministic
//! per-test RNG (seeded from the test name, so failures reproduce across
//! runs), and there is no shrinking — a failing case panics with the
//! assertion message directly.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, bound) via rejection (unbiased).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = bound.wrapping_neg() % bound;
        loop {
            let v = self.next_u64();
            if v >= zone {
                return v % bound;
            }
        }
    }

    /// Uniform in [0, 1) with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a hash used to derive a per-test seed from the test's name.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runner configuration (subset: number of cases).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A source of random values of an associated type.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

// Strategies compose by reference (e.g. a vec element strategy).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A / 0, B / 1);
    (A / 0, B / 1, C / 2);
    (A / 0, B / 1, C / 2, D / 3);
    (A / 0, B / 1, C / 2, D / 3, E / 4);
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite values across a wide magnitude range (no NaN/inf, which the
    /// workspace's numeric code rejects by contract).
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let magnitude = rng.unit_f64() * 600.0 - 300.0; // exponent in [-300, 300)
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        sign * rng.unit_f64() * 10f64.powf(magnitude / 10.0)
    }
}

/// Whole-domain strategy handle returned by `any`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// Regex-subset string strategy: `"[a-z]{2,8}"`, `"\\PC{0,200}"`, …
// ---------------------------------------------------------------------------

/// One parsed atom of the pattern: the set of chars it can produce.
#[derive(Debug, Clone)]
enum CharSet {
    /// Explicit alternatives from a `[...]` class.
    Explicit(Vec<(char, char)>),
    /// `\PC`: any char outside Unicode category C. Sampled from curated
    /// non-control ranges covering ASCII, Latin-1, Greek, Cyrillic, CJK,
    /// emoji, and the variation selector the tokenizer special-cases.
    NotControl,
}

impl CharSet {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            CharSet::Explicit(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                    .sum();
                let mut idx = rng.below(total);
                for (lo, hi) in ranges {
                    let span = (*hi as u64) - (*lo as u64) + 1;
                    if idx < span {
                        return char::from_u32(*lo as u32 + idx as u32)
                            .expect("class range holds valid chars");
                    }
                    idx -= span;
                }
                unreachable!("index within total span")
            }
            CharSet::NotControl => {
                // (start, end) inclusive ranges of printable chars.
                const POOLS: &[(u32, u32)] = &[
                    (0x20, 0x7E),       // ASCII printable (weighted 4x below)
                    (0x20, 0x7E),
                    (0x20, 0x7E),
                    (0x20, 0x7E),
                    (0xA1, 0xFF),       // Latin-1 supplement
                    (0x370, 0x3FF),     // Greek
                    (0x400, 0x4FF),     // Cyrillic
                    (0x4E00, 0x4FFF),   // CJK ideographs (subset)
                    (0x1F300, 0x1F5FF), // emoji: misc symbols & pictographs
                    (0x1F600, 0x1F64F), // emoji: emoticons
                    (0x2600, 0x26FF),   // misc symbols
                    (0xFE0F, 0xFE0F),   // variation selector-16
                ];
                let (lo, hi) = POOLS[rng.below(POOLS.len() as u64) as usize];
                let c = char::from_u32(lo + rng.below((hi - lo + 1) as u64) as u32)
                    .expect("pool ranges avoid surrogates");
                debug_assert!(!c.is_control());
                c
            }
        }
    }
}

/// A string strategy parsed from a supported regex subset.
#[derive(Debug, Clone)]
pub struct StringStrategy {
    set: CharSet,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> StringStrategy {
    let mut chars = pattern.chars().peekable();
    let set = match chars.next() {
        Some('[') => {
            let mut ranges = Vec::new();
            let mut pending: Option<char> = None;
            loop {
                match chars.next() {
                    Some(']') => break,
                    Some('-') if pending.is_some() && chars.peek() != Some(&']') => {
                        let lo = pending.take().expect("checked");
                        let hi = chars.next().expect("range end");
                        assert!(lo <= hi, "bad class range in {pattern:?}");
                        ranges.push((lo, hi));
                    }
                    Some(c) => {
                        if let Some(p) = pending.replace(c) {
                            ranges.push((p, p));
                        }
                    }
                    None => panic!("unterminated char class in {pattern:?}"),
                }
            }
            if let Some(p) = pending {
                ranges.push((p, p));
            }
            assert!(!ranges.is_empty(), "empty char class in {pattern:?}");
            CharSet::Explicit(ranges)
        }
        Some('\\') => match (chars.next(), chars.next()) {
            (Some('P'), Some('C')) => CharSet::NotControl,
            other => panic!("unsupported escape {other:?} in {pattern:?}"),
        },
        other => panic!("unsupported pattern start {other:?} in {pattern:?}"),
    };
    let (min, max) = match chars.next() {
        None => (1, 1),
        Some('{') => {
            let rest: String = chars.collect();
            let body = rest.strip_suffix('}').expect("unterminated repetition");
            let (lo, hi) = body.split_once(',').unwrap_or((body, body));
            (
                lo.trim().parse().expect("repetition min"),
                hi.trim().parse().expect("repetition max"),
            )
        }
        Some(c) => panic!("unsupported pattern suffix {c:?} in {pattern:?}"),
    };
    assert!(min <= max, "bad repetition in {pattern:?}");
    StringStrategy { set, min, max }
}

impl Strategy for StringStrategy {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
        (0..len).map(|_| self.set.sample(rng)).collect()
    }
}

impl Strategy for str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        parse_pattern(self).sample(rng)
    }
}

// ---------------------------------------------------------------------------
// prop::collection / prop::sample
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Sizes accepted by `vec`: a fixed length or a `Range<usize>`.
    pub trait IntoSizeRange {
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// `prop::collection::vec(element_strategy, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// `prop::sample::select(options)`: one uniformly chosen element.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Property-test assertion; panics with the failing expression rendered.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the upstream surface the workspace uses: an optional leading
/// `#![proptest_config(...)]`, doc comments, and `pat in strategy` argument
/// lists. Each test runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($argpat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new($crate::seed_from_name(concat!(
                module_path!(), "::", stringify!($name)
            )));
            for _case in 0..config.cases {
                $(let $argpat = $crate::Strategy::sample(&($strat), &mut rng);)+
                // A closure isolates `return`s in the body to one case.
                #[allow(clippy::redundant_closure_call)]
                (|| -> () { $body })();
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
    /// Upstream exposes the crate root as `prop` in the prelude.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_patterns_respect_class_and_length() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-z]{2,8}", &mut rng);
            assert!((2..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");

            let t = Strategy::sample(&"[a-zA-Z0-9#@ ]{0,80}", &mut rng);
            assert!(t.chars().count() <= 80);
            assert!(t
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '#' || c == '@' || c == ' '));

            let u = Strategy::sample(&"\\PC{0,200}", &mut rng);
            assert!(u.chars().count() <= 200);
            assert!(u.chars().all(|c| !c.is_control()), "{u:?}");
        }
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let mut rng = TestRng::new(2);
        let strat = prop::collection::vec((0usize..3, -1.0f64..1.0), 1..40);
        for _ in 0..100 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!((1..40).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 3);
                assert!((-1.0..1.0).contains(&b));
            }
        }
    }

    #[test]
    fn select_draws_only_listed_options() {
        let mut rng = TestRng::new(3);
        let strat = prop::sample::select(vec!["lol", "omg"]);
        for _ in 0..50 {
            let w = Strategy::sample(&strat, &mut rng);
            assert!(w == "lol" || w == "omg");
        }
    }

    #[test]
    fn per_test_sequences_are_deterministic() {
        let seed = seed_from_name_roundtrip();
        let mut a = TestRng::new(seed);
        let mut b = TestRng::new(seed);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    fn seed_from_name_roundtrip() -> u64 {
        crate::seed_from_name("vendor::proptest::example")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: strategies bind, asserts work, mut binds work.
        #[test]
        fn macro_end_to_end(x in 1usize..10, mut v in prop::collection::vec(0u8..4, 0..5)) {
            prop_assert!(x >= 1 && x < 10);
            v.push(0);
            prop_assert!(v.len() <= 5);
            prop_assert_eq!(*v.last().unwrap(), 0);
        }
    }
}
