//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The workspace builds in environments without a crates.io mirror, so this
//! vendored crate implements the surface the `crates/bench` benchmarks use:
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, throughput, bench_function, finish}`,
//! `Criterion::bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, and `Throughput`.
//!
//! Unlike a pure shim, this is a working wall-clock harness: each benchmark
//! is warmed up, auto-calibrated to a per-sample iteration count, measured
//! over `sample_size` samples, and reported as median time per iteration
//! plus derived throughput — enough to compare variants (e.g. scratch reuse
//! vs fresh allocation) with low noise. It does not do criterion's
//! statistical regression analysis or HTML reports.

#![forbid(unsafe_code)]

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Declared work per iteration, used to derive throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How `iter_batched` amortizes setup (sizing is advisory in this harness).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Harness configuration and top-level entry point.
pub struct Criterion {
    /// Target wall-clock duration of one measured sample.
    sample_target: Duration,
    warm_up: Duration,
    default_sample_size: usize,
    benchmarks_run: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_target: Duration::from_millis(10),
            warm_up: Duration::from_millis(150),
            default_sample_size: 30,
            benchmarks_run: 0,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        self.run_one(&name, None, None, f);
        self
    }

    pub fn final_summary(&self) {
        eprintln!("\n{} benchmarks complete", self.benchmarks_run);
    }

    fn run_one(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        sample_size: Option<usize>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        let samples = sample_size.unwrap_or(self.default_sample_size).max(2);

        // Calibration: grow iterations-per-sample until one sample is long
        // enough for the clock to resolve it well.
        let mut iters_per_sample = 1u64;
        loop {
            let mut bencher = Bencher::new(iters_per_sample);
            f(&mut bencher);
            let elapsed = bencher.elapsed();
            if elapsed >= self.sample_target || iters_per_sample >= (1 << 30) {
                break;
            }
            let grown = if elapsed < self.sample_target / 8 {
                iters_per_sample.saturating_mul(8)
            } else {
                iters_per_sample.saturating_mul(2)
            };
            iters_per_sample = grown.max(iters_per_sample + 1);
        }

        // Warm-up at the calibrated size.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            let mut bencher = Bencher::new(iters_per_sample);
            f(&mut bencher);
        }

        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut bencher = Bencher::new(iters_per_sample);
            f(&mut bencher);
            per_iter.push(bencher.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = per_iter[per_iter.len() / 2];
        let lo = per_iter[0];
        let hi = per_iter[per_iter.len() - 1];

        let mut line = format!(
            "{name:<44} time: [{} {} {}]",
            fmt_time(lo),
            fmt_time(median),
            fmt_time(hi)
        );
        if let Some(t) = throughput {
            let (units, label) = match t {
                Throughput::Elements(n) => (n as f64, "elem/s"),
                Throughput::Bytes(n) => (n as f64, "B/s"),
            };
            if median > 0.0 {
                line.push_str(&format!(
                    " thrpt: [{}]",
                    fmt_rate(units / median, label)
                ));
            }
        }
        eprintln!("{line}");
        self.benchmarks_run += 1;
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

fn fmt_rate(rate: f64, label: &str) -> String {
    if rate >= 1e9 {
        format!("{:.3} G{label}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3} M{label}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3} K{label}", rate / 1e3)
    } else {
        format!("{rate:.1} {label}")
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        self.criterion
            .run_one(&full, self.throughput, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to benchmark closures; accumulates timed iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    ran: bool,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Bencher { iters, elapsed: Duration::ZERO, ran: false }
    }

    fn elapsed(&self) -> Duration {
        assert!(self.ran, "benchmark closure never called iter/iter_batched");
        self.elapsed
    }

    /// Times `routine` over the whole batch with one clock read pair.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.ran = true;
    }

    /// Times `routine` only, excluding `setup`, per iteration.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            let output = routine(input);
            self.elapsed += start.elapsed();
            black_box(output);
        }
        self.ran = true;
    }
}

/// Groups benchmark target functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(criterion: &mut $crate::Criterion) {
            $(($target)(criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $(($group)(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_nonzero_time() {
        let mut b = Bencher::new(100);
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(b.elapsed() > Duration::ZERO);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        // Setup is ~1000x the routine; if it leaked into the measurement the
        // batched time would dwarf the plain-iter time of the same routine.
        let mut batched = Bencher::new(50);
        batched.iter_batched(
            || (0..20_000u64).map(|i| i * i).collect::<Vec<_>>(),
            |v| v[0],
            BatchSize::LargeInput,
        );
        let mut plain = Bencher::new(50);
        let v: Vec<u64> = (0..20_000).map(|i| i * i).collect();
        plain.iter(|| v[0]);
        assert!(
            batched.elapsed() < plain.elapsed() * 200 + Duration::from_millis(5),
            "setup time leaked into measurement: {:?} vs {:?}",
            batched.elapsed(),
            plain.elapsed()
        );
    }

    #[test]
    fn full_harness_runs_and_counts() {
        let mut c = Criterion {
            sample_target: Duration::from_micros(200),
            warm_up: Duration::from_millis(1),
            default_sample_size: 3,
            benchmarks_run: 0,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_function("f", |b| b.iter(|| 1 + 1));
        group.finish();
        c.bench_function("top", |b| {
            b.iter_batched(|| 5u32, |x| x * 2, BatchSize::LargeInput)
        });
        assert_eq!(c.benchmarks_run, 2);
    }
}
