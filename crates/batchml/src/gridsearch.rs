//! Grid search over hyperparameter combinations (Table I of the paper:
//! "for each machine learning model (streaming or batch), we used grid
//! search to find optimal parameter settings").
//!
//! The grid is expressed as named dimensions of candidate values; the
//! caller scores each combination (e.g. prequential F1 for streaming
//! models, CV F1 for batch models) and receives the full ranking.

use redhanded_types::{Error, Result};
use std::collections::BTreeMap;

/// One hyperparameter dimension: a name and its candidate values.
#[derive(Debug, Clone)]
pub struct GridDimension {
    /// Parameter name (e.g. `"grace_period"`).
    pub name: String,
    /// Candidate values, kept as `f64` (categorical options are indices).
    pub values: Vec<f64>,
}

impl GridDimension {
    /// Create a dimension.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        GridDimension { name: name.into(), values }
    }
}

/// One point of the grid: parameter name → chosen value.
pub type GridPoint = BTreeMap<String, f64>;

/// A scored grid point.
#[derive(Debug, Clone)]
pub struct GridResult {
    /// The parameter assignment.
    pub point: GridPoint,
    /// The caller-provided score (higher is better).
    pub score: f64,
}

/// Enumerate the full cartesian product of the grid.
pub fn enumerate_grid(dimensions: &[GridDimension]) -> Vec<GridPoint> {
    let mut points: Vec<GridPoint> = vec![GridPoint::new()];
    for dim in dimensions {
        let mut next = Vec::with_capacity(points.len() * dim.values.len());
        for point in &points {
            for &v in &dim.values {
                let mut p = point.clone();
                p.insert(dim.name.clone(), v);
                next.push(p);
            }
        }
        points = next;
    }
    points
}

/// Run grid search: score every combination with `score_fn` and return all
/// results sorted best-first.
pub fn grid_search(
    dimensions: &[GridDimension],
    mut score_fn: impl FnMut(&GridPoint) -> Result<f64>,
) -> Result<Vec<GridResult>> {
    if dimensions.is_empty() || dimensions.iter().any(|d| d.values.is_empty()) {
        return Err(Error::InvalidConfig("grid must have non-empty dimensions".into()));
    }
    let mut results = Vec::new();
    for point in enumerate_grid(dimensions) {
        let score = score_fn(&point)?;
        results.push(GridResult { point, score });
    }
    // total_cmp: a NaN score sorts last instead of panicking the sweep.
    results.sort_by(|a, b| b.score.total_cmp(&a.score));
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_cartesian_product() {
        let dims = vec![
            GridDimension::new("a", vec![1.0, 2.0]),
            GridDimension::new("b", vec![10.0, 20.0, 30.0]),
        ];
        let points = enumerate_grid(&dims);
        assert_eq!(points.len(), 6);
        assert!(points.iter().all(|p| p.len() == 2));
        // All combinations are distinct.
        let mut seen = std::collections::HashSet::new();
        for p in &points {
            let key = format!("{}/{}", p["a"], p["b"]);
            assert!(seen.insert(key));
        }
    }

    #[test]
    fn finds_the_optimum() {
        let dims = vec![
            GridDimension::new("x", vec![-2.0, -1.0, 0.0, 1.0, 2.0]),
            GridDimension::new("y", vec![-1.0, 0.0, 1.0]),
        ];
        // Score peaks at (1, 0).
        let results = grid_search(&dims, |p| {
            Ok(-(p["x"] - 1.0).powi(2) - p["y"].powi(2))
        })
        .unwrap();
        assert_eq!(results.len(), 15);
        assert_eq!(results[0].point["x"], 1.0);
        assert_eq!(results[0].point["y"], 0.0);
        // Sorted best-first.
        for w in results.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn rejects_empty_grids() {
        assert!(grid_search(&[], |_| Ok(0.0)).is_err());
        let dims = vec![GridDimension::new("a", vec![])];
        assert!(grid_search(&dims, |_| Ok(0.0)).is_err());
    }

    #[test]
    fn propagates_score_errors() {
        let dims = vec![GridDimension::new("a", vec![1.0])];
        let r = grid_search(&dims, |_| {
            Err(redhanded_types::Error::Untrained("scorer"))
        });
        assert!(r.is_err());
    }
}
