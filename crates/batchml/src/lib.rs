//! Batch ML baselines for the `redhanded` framework.
//!
//! The paper compares its streaming methods against "corresponding (or
//! similar) batch methods … Decision Tree J48, Random Forest, and Logistic
//! Regression using the ML software WEKA v3.7" (Section V-D). This crate
//! implements those comparators from scratch:
//!
//! * [`tree`] — batch decision tree with exact split search;
//! * [`forest`] — batch random forest, including the normalized Gini
//!   feature importances of Figure 5;
//! * [`logistic`] — batch multinomial logistic regression;
//! * [`cv`] — stratified k-fold cross-validation (Figure 17's protocol);
//! * [`gridsearch`] — the hyperparameter grid-search driver behind Table I.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cv;
pub mod forest;
pub mod gridsearch;
pub mod logistic;
pub mod tree;

pub use cv::{cross_validate, stratified_folds};
pub use forest::{RandomForest, RandomForestConfig};
pub use gridsearch::{enumerate_grid, grid_search, GridDimension, GridPoint, GridResult};
pub use logistic::{BatchLogisticRegression, LogisticConfig};
pub use tree::{DecisionTree, DecisionTreeConfig};

use redhanded_streamml::classifier::argmax;
use redhanded_types::{Instance, Result};

/// A batch classifier: fit once on a training set, then predict.
pub trait BatchClassifier {
    /// Number of classes the model predicts.
    fn num_classes(&self) -> usize;

    /// Fit the model on a training set (unlabeled instances are skipped).
    fn fit(&mut self, instances: &[&Instance]) -> Result<()>;

    /// Class-probability estimates for a feature vector.
    fn predict_proba(&self, features: &[f64]) -> Result<Vec<f64>>;

    /// The most probable class for a feature vector.
    fn predict(&self, features: &[f64]) -> Result<usize> {
        Ok(argmax(&self.predict_proba(features)?))
    }

    /// Short human-readable name (`DT`, `RF`, `LR`) used in reports.
    fn name(&self) -> &'static str;
}
