//! Batch random forest — the WEKA RandomForest comparator, and the source
//! of the Gini feature importances of Figure 5.

use crate::tree::{DecisionTree, DecisionTreeConfig};
use crate::BatchClassifier;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use redhanded_streamml::classifier::normalize_proba;
use redhanded_types::{Error, Instance, Result};

/// Random-forest hyperparameters.
#[derive(Debug, Clone)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub num_trees: usize,
    /// Per-node random feature-subset size (`None` = ⌈√M⌉).
    pub subspace: Option<usize>,
    /// Configuration template for the member trees.
    pub tree_config: DecisionTreeConfig,
    /// Bootstrap sampling seed.
    pub seed: u64,
}

impl RandomForestConfig {
    /// Defaults comparable to WEKA's RandomForest for a problem shape.
    pub fn defaults(num_classes: usize, num_features: usize) -> Self {
        RandomForestConfig {
            num_trees: 50,
            subspace: None,
            tree_config: DecisionTreeConfig::defaults(num_classes, num_features),
            seed: 0xBA6,
        }
    }
}

/// A fitted batch random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    config: RandomForestConfig,
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Create an unfitted forest.
    pub fn new(config: RandomForestConfig) -> Result<Self> {
        if config.num_trees == 0 {
            return Err(Error::InvalidConfig("num_trees must be positive".into()));
        }
        Ok(RandomForest { config, trees: Vec::new() })
    }

    /// Unfitted forest with default hyperparameters.
    pub fn with_defaults(num_classes: usize, num_features: usize) -> Result<Self> {
        Self::new(RandomForestConfig::defaults(num_classes, num_features))
    }

    /// Number of fitted trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Normalized Gini/gain feature importances: each feature's total
    /// impurity reduction across all trees, scaled to sum to 1 (Figure 5's
    /// "normalized total reduction of the criterion brought by that
    /// feature").
    pub fn gini_importance(&self) -> Result<Vec<f64>> {
        if self.trees.is_empty() {
            return Err(Error::Untrained("RandomForest"));
        }
        let mut imp = vec![0.0; self.config.tree_config.num_features];
        for tree in &self.trees {
            tree.accumulate_importances(&mut imp);
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in imp.iter_mut() {
                *v /= total;
            }
        }
        Ok(imp)
    }
}

impl BatchClassifier for RandomForest {
    fn num_classes(&self) -> usize {
        self.config.tree_config.num_classes
    }

    fn fit(&mut self, instances: &[&Instance]) -> Result<()> {
        let labeled: Vec<&Instance> =
            instances.iter().copied().filter(|i| i.label.is_some()).collect();
        if labeled.is_empty() {
            return Err(Error::Untrained("RandomForest::fit received no labeled data"));
        }
        let m = self.config.tree_config.num_features;
        let subspace = self
            .config
            .subspace
            .unwrap_or_else(|| ((m as f64).sqrt().ceil() as usize).clamp(1, m));
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        self.trees.clear();
        for t in 0..self.config.num_trees {
            // Bootstrap sample with replacement.
            let sample: Vec<&Instance> =
                (0..labeled.len()).map(|_| labeled[rng.gen_range(0..labeled.len())]).collect();
            let mut cfg = self.config.tree_config.clone();
            cfg.subspace = Some(subspace);
            let mut tree = DecisionTree::new(cfg)?.with_seed(rng.gen::<u64>() ^ t as u64);
            tree.fit(&sample)?;
            self.trees.push(tree);
        }
        Ok(())
    }

    fn predict_proba(&self, features: &[f64]) -> Result<Vec<f64>> {
        if self.trees.is_empty() {
            return Err(Error::Untrained("RandomForest"));
        }
        let mut combined = vec![0.0; self.num_classes()];
        for tree in &self.trees {
            let p = tree.predict_proba(features)?;
            for (acc, v) in combined.iter_mut().zip(&p) {
                *acc += v;
            }
        }
        normalize_proba(&mut combined);
        Ok(combined)
    }

    fn name(&self) -> &'static str {
        "RF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn banded(i: u64) -> Instance {
        let x0 = (i % 10) as f64;
        // Hash-scrambled noise features, decorrelated from x0 (plain
        // multiplicative moduli of i would be bijections of i % 10).
        let x1 = ((i.wrapping_mul(0x9E3779B97F4A7C15) >> 17) % 10) as f64;
        let x2 = ((i.wrapping_mul(0xD1B54A32D192ED03) >> 23) % 10) as f64;
        Instance::labeled(vec![x0, x1, x2], usize::from(x0 > 4.5))
    }

    fn fitted_forest() -> RandomForest {
        let data: Vec<Instance> = (0..500).map(banded).collect();
        let refs: Vec<&Instance> = data.iter().collect();
        let mut cfg = RandomForestConfig::defaults(2, 3);
        cfg.num_trees = 15;
        let mut rf = RandomForest::new(cfg).unwrap();
        rf.fit(&refs).unwrap();
        rf
    }

    #[test]
    fn learns_and_predicts() {
        let rf = fitted_forest();
        assert_eq!(rf.num_trees(), 15);
        let correct = (0..200)
            .filter(|&i| {
                let t = banded(i + 1000);
                rf.predict(&t.features).unwrap() == t.label.unwrap()
            })
            .count();
        assert!(correct > 190, "accuracy {correct}/200");
    }

    #[test]
    fn gini_importance_ranks_signal_feature_first() {
        let rf = fitted_forest();
        let imp = rf.gini_importance().unwrap();
        assert_eq!(imp.len(), 3);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9, "normalized");
        assert!(imp[0] > imp[1] && imp[0] > imp[2], "importances {imp:?}");
        assert!(imp[0] > 0.8, "signal feature dominates: {imp:?}");
    }

    #[test]
    fn unfitted_forest_errors() {
        let rf = RandomForest::with_defaults(2, 3).unwrap();
        assert!(rf.predict_proba(&[1.0, 2.0, 3.0]).is_err());
        assert!(rf.gini_importance().is_err());
    }

    #[test]
    fn probabilities_are_valid() {
        let rf = fitted_forest();
        let p = rf.predict_proba(&[5.0, 1.0, 2.0]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn zero_trees_rejected() {
        let mut cfg = RandomForestConfig::defaults(2, 3);
        cfg.num_trees = 0;
        assert!(RandomForest::new(cfg).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let data: Vec<Instance> = (0..200).map(banded).collect();
        let refs: Vec<&Instance> = data.iter().collect();
        let mut a = RandomForest::with_defaults(2, 3).unwrap();
        let mut b = RandomForest::with_defaults(2, 3).unwrap();
        a.fit(&refs).unwrap();
        b.fit(&refs).unwrap();
        for i in 0..50 {
            let t = banded(i + 777);
            assert_eq!(
                a.predict_proba(&t.features).unwrap(),
                b.predict_proba(&t.features).unwrap()
            );
        }
    }
}
