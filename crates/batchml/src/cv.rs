//! Stratified k-fold cross-validation (Section V-F: the Sarcasm and
//! Offensive dataset authors report 10-fold CV numbers that Figure 17
//! compares against).

use crate::BatchClassifier;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use redhanded_streamml::{ConfusionMatrix, Metrics};
use redhanded_types::{Error, Instance, Result};

/// Assign each labeled instance to one of `k` folds, stratified by class so
/// every fold preserves the class ratio. Returns fold indices parallel to
/// `instances` (unlabeled instances get fold `k`, i.e. excluded).
pub fn stratified_folds(instances: &[Instance], k: usize, seed: u64) -> Result<Vec<usize>> {
    if k < 2 {
        return Err(Error::InvalidConfig("need at least 2 folds".into()));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    // BTreeMap keeps class iteration order deterministic so a fixed seed
    // always produces the same folds.
    let mut by_class: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, inst) in instances.iter().enumerate() {
        if let Some(l) = inst.label {
            by_class.entry(l).or_default().push(i);
        }
    }
    let mut folds = vec![k; instances.len()];
    for (_, mut idxs) in by_class {
        idxs.shuffle(&mut rng);
        for (j, i) in idxs.into_iter().enumerate() {
            folds[i] = j % k;
        }
    }
    Ok(folds)
}

/// Run k-fold cross-validation of `make_model` over `instances`, returning
/// the pooled confusion-matrix metrics across all folds.
pub fn cross_validate<M: BatchClassifier>(
    instances: &[Instance],
    num_classes: usize,
    k: usize,
    seed: u64,
    mut make_model: impl FnMut() -> M,
) -> Result<Metrics> {
    let folds = stratified_folds(instances, k, seed)?;
    let mut matrix = ConfusionMatrix::new(num_classes);
    for fold in 0..k {
        let train: Vec<&Instance> = instances
            .iter()
            .zip(&folds)
            .filter(|&(_, &f)| f != fold && f != k)
            .map(|(i, _)| i)
            .collect();
        let test: Vec<&Instance> = instances
            .iter()
            .zip(&folds)
            .filter(|&(_, &f)| f == fold)
            .map(|(i, _)| i)
            .collect();
        if train.is_empty() || test.is_empty() {
            continue;
        }
        let mut model = make_model();
        model.fit(&train)?;
        for inst in test {
            // Unlabeled instances land in the out-of-range fold `k`, so
            // they never reach a test fold; skip defensively regardless.
            let Some(label) = inst.label else { continue };
            let predicted = model.predict(&inst.features)?;
            matrix.add(label, predicted, inst.weight);
        }
    }
    if matrix.total() <= 0.0 {
        return Err(Error::Untrained("cross_validate evaluated no instances"));
    }
    Ok(matrix.metrics())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::DecisionTree;

    fn data() -> Vec<Instance> {
        (0..300u64)
            .map(|i| {
                let x0 = (i % 10) as f64;
                let x1 = ((i * 7) % 10) as f64;
                // Class imbalance: 2/3 class 0.
                let label = usize::from(x0 > 6.5);
                Instance::labeled(vec![x0, x1], label)
            })
            .collect()
    }

    #[test]
    fn folds_partition_and_stratify() {
        let d = data();
        let folds = stratified_folds(&d, 5, 1).unwrap();
        assert_eq!(folds.len(), d.len());
        // Every labeled instance got a fold < 5.
        assert!(folds.iter().all(|&f| f < 5));
        // Each fold preserves the class ratio approximately.
        for fold in 0..5 {
            let members: Vec<&Instance> =
                d.iter().zip(&folds).filter(|&(_, &f)| f == fold).map(|(i, _)| i).collect();
            let pos = members.iter().filter(|i| i.label == Some(1)).count();
            let ratio = pos as f64 / members.len() as f64;
            assert!((ratio - 0.3).abs() < 0.05, "fold {fold} ratio {ratio}");
        }
    }

    #[test]
    fn unlabeled_instances_are_excluded() {
        let mut d = data();
        d.push(Instance::unlabeled(vec![1.0, 2.0]));
        let folds = stratified_folds(&d, 3, 1).unwrap();
        assert_eq!(*folds.last().unwrap(), 3, "unlabeled marked as excluded");
    }

    #[test]
    fn cross_validation_on_learnable_data() {
        let d = data();
        let metrics =
            cross_validate(&d, 2, 5, 42, || DecisionTree::with_defaults(2, 2).unwrap()).unwrap();
        assert!(metrics.accuracy > 0.95, "CV accuracy {}", metrics.accuracy);
        assert_eq!(metrics.total, 300.0, "every instance tested exactly once");
    }

    #[test]
    fn rejects_bad_k() {
        let d = data();
        assert!(stratified_folds(&d, 1, 0).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let d = data();
        let a = stratified_folds(&d, 4, 9).unwrap();
        let b = stratified_folds(&d, 4, 9).unwrap();
        assert_eq!(a, b);
        let c = stratified_folds(&d, 4, 10).unwrap();
        assert_ne!(a, c, "different seed shuffles differently");
    }
}
