//! Batch decision tree — the WEKA J48 comparator of Figures 13–14.
//!
//! A CART-style recursive partitioner over numeric features with exact
//! split-point search (sort each feature, scan class-count prefix sums at
//! every boundary between distinct values) and the same impurity criteria as
//! the streaming tree. This is the `DT` baseline the paper trains under the
//! "train-first-day test-all-others" and "train-one-day test-next-day"
//! scenarios.

use crate::BatchClassifier;
use redhanded_streamml::classifier::normalize_proba;
use redhanded_streamml::SplitCriterion;
use redhanded_types::{Error, Instance, Result};

/// Batch decision-tree hyperparameters.
#[derive(Debug, Clone)]
pub struct DecisionTreeConfig {
    /// Number of classes.
    pub num_classes: usize,
    /// Number of features.
    pub num_features: usize,
    /// Split criterion (InfoGain matches the streaming setup).
    pub criterion: SplitCriterion,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum instances required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum impurity reduction required to accept a split.
    pub min_gain: f64,
    /// When `Some(k)`, each node considers only `k` random features
    /// (used by the random forest). Requires an external RNG; plain trees
    /// use `None`.
    pub subspace: Option<usize>,
}

impl DecisionTreeConfig {
    /// Defaults comparable to WEKA J48 for a problem shape.
    pub fn defaults(num_classes: usize, num_features: usize) -> Self {
        DecisionTreeConfig {
            num_classes,
            num_features,
            criterion: SplitCriterion::InfoGain,
            max_depth: 20,
            min_samples_split: 4,
            min_gain: 1e-4,
            subspace: None,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        proba: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Impurity reduction × node weight — summed per feature for the
        /// Gini/gain importances of Figure 5.
        weighted_gain: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted batch decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    config: DecisionTreeConfig,
    root: Option<Node>,
    /// Simple xorshift state for subspace sampling (deterministic, seeded).
    rng_state: u64,
}

impl DecisionTree {
    /// Create an unfitted tree.
    pub fn new(config: DecisionTreeConfig) -> Result<Self> {
        if config.num_classes < 2 {
            return Err(Error::InvalidConfig("need at least 2 classes".into()));
        }
        if config.num_features == 0 {
            return Err(Error::InvalidConfig("need at least 1 feature".into()));
        }
        Ok(DecisionTree { config, root: None, rng_state: 0x5EED })
    }

    /// Unfitted tree with default hyperparameters.
    pub fn with_defaults(num_classes: usize, num_features: usize) -> Result<Self> {
        Self::new(DecisionTreeConfig::defaults(num_classes, num_features))
    }

    /// Set the RNG seed used for subspace sampling.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng_state = seed | 1;
        self
    }

    fn next_rand(&mut self) -> u64 {
        self.rng_state ^= self.rng_state << 13;
        self.rng_state ^= self.rng_state >> 7;
        self.rng_state ^= self.rng_state << 17;
        self.rng_state
    }

    /// Depth of the fitted tree (0 for a single leaf; `None` if unfitted).
    pub fn depth(&self) -> Option<usize> {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        self.root.as_ref().map(d)
    }

    /// Number of leaves (`None` if unfitted).
    pub fn num_leaves(&self) -> Option<usize> {
        fn c(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => c(left) + c(right),
            }
        }
        self.root.as_ref().map(c)
    }

    /// Accumulate each feature's total weighted impurity reduction into
    /// `out` (length `num_features`). Used by the forest's Gini importance.
    pub fn accumulate_importances(&self, out: &mut [f64]) {
        fn walk(n: &Node, out: &mut [f64]) {
            if let Node::Split { feature, weighted_gain, left, right, .. } = n {
                out[*feature] += *weighted_gain;
                walk(left, out);
                walk(right, out);
            }
        }
        if let Some(root) = &self.root {
            walk(root, out);
        }
    }

    fn class_counts(&self, idx: &[usize], data: &[&Instance]) -> Vec<f64> {
        let mut counts = vec![0.0; self.config.num_classes];
        for &i in idx {
            if let Some(l) = data[i].label {
                counts[l] += data[i].weight;
            }
        }
        counts
    }

    fn make_leaf(&self, counts: Vec<f64>) -> Node {
        let mut proba = counts;
        normalize_proba(&mut proba);
        Node::Leaf { proba }
    }

    /// Exact best split of `idx` on `feature`: sort by value, scan
    /// boundaries. Returns `(threshold, gain)`.
    fn best_split_on(
        &self,
        idx: &mut [usize],
        data: &[&Instance],
        feature: usize,
        parent_counts: &[f64],
    ) -> Option<(f64, f64)> {
        idx.sort_by(|&a, &b| {
            data[a].features[feature].total_cmp(&data[b].features[feature])
        });
        let total: f64 = parent_counts.iter().sum();
        let parent_impurity = self.config.criterion.impurity(parent_counts);
        let mut left = vec![0.0; self.config.num_classes];
        let mut best: Option<(f64, f64)> = None;
        for w in 0..idx.len().saturating_sub(1) {
            let inst = data[idx[w]];
            if let Some(l) = inst.label {
                left[l] += inst.weight;
            }
            let v = inst.features[feature];
            let next_v = data[idx[w + 1]].features[feature];
            if next_v <= v {
                continue; // not a boundary between distinct values
            }
            let wl: f64 = left.iter().sum();
            let wr = total - wl;
            if wl <= 0.0 || wr <= 0.0 {
                continue;
            }
            let right: Vec<f64> =
                parent_counts.iter().zip(&left).map(|(p, l)| p - l).collect();
            let child = (wl * self.config.criterion.impurity(&left)
                + wr * self.config.criterion.impurity(&right))
                / total;
            let gain = parent_impurity - child;
            let threshold = (v + next_v) / 2.0;
            if best.map_or(true, |(_, g)| gain > g) {
                best = Some((threshold, gain));
            }
        }
        best
    }

    fn build(&mut self, idx: &mut [usize], data: &[&Instance], depth: usize) -> Node {
        let counts = self.class_counts(idx, data);
        let nonzero = counts.iter().filter(|&&c| c > 0.0).count();
        if depth >= self.config.max_depth
            || idx.len() < self.config.min_samples_split
            || nonzero <= 1
        {
            return self.make_leaf(counts);
        }

        // Candidate features (all, or a random subset for forests).
        let features: Vec<usize> = match self.config.subspace {
            None => (0..self.config.num_features).collect(),
            Some(k) => {
                let mut pool: Vec<usize> = (0..self.config.num_features).collect();
                for j in (1..pool.len()).rev() {
                    let r = (self.next_rand() % (j as u64 + 1)) as usize;
                    pool.swap(j, r);
                }
                pool.truncate(k);
                pool
            }
        };

        let mut best: Option<(usize, f64, f64)> = None;
        for f in features {
            if let Some((t, gain)) = self.best_split_on(idx, data, f, &counts) {
                if best.map_or(true, |(_, _, g)| gain > g) {
                    best = Some((f, t, gain));
                }
            }
        }
        let Some((feature, threshold, gain)) = best else {
            return self.make_leaf(counts);
        };
        if gain < self.config.min_gain {
            return self.make_leaf(counts);
        }

        let (mut left_idx, mut right_idx): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| data[i].features[feature] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            return self.make_leaf(counts);
        }
        let node_weight: f64 = counts.iter().sum();
        let left = self.build(&mut left_idx, data, depth + 1);
        let right = self.build(&mut right_idx, data, depth + 1);
        Node::Split {
            feature,
            threshold,
            weighted_gain: gain * node_weight,
            left: Box::new(left),
            right: Box::new(right),
        }
    }
}

impl BatchClassifier for DecisionTree {
    fn num_classes(&self) -> usize {
        self.config.num_classes
    }

    fn fit(&mut self, instances: &[&Instance]) -> Result<()> {
        let labeled: Vec<&Instance> =
            instances.iter().copied().filter(|i| i.label.is_some()).collect();
        if labeled.is_empty() {
            return Err(Error::Untrained("DecisionTree::fit received no labeled data"));
        }
        for inst in &labeled {
            if inst.features.len() != self.config.num_features {
                return Err(Error::DimensionMismatch {
                    expected: self.config.num_features,
                    actual: inst.features.len(),
                });
            }
            let Some(class) = inst.label else { continue };
            if class >= self.config.num_classes {
                return Err(Error::InvalidClass {
                    class,
                    num_classes: self.config.num_classes,
                });
            }
        }
        let mut idx: Vec<usize> = (0..labeled.len()).collect();
        let root = self.build(&mut idx, &labeled, 0);
        self.root = Some(root);
        Ok(())
    }

    fn predict_proba(&self, features: &[f64]) -> Result<Vec<f64>> {
        if features.len() != self.config.num_features {
            return Err(Error::DimensionMismatch {
                expected: self.config.num_features,
                actual: features.len(),
            });
        }
        let Some(mut node) = self.root.as_ref() else {
            return Err(Error::Untrained("DecisionTree"));
        };
        loop {
            match node {
                Node::Leaf { proba } => return Ok(proba.clone()),
                Node::Split { feature, threshold, left, right, .. } => {
                    node = if features[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "DT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn and_data() -> Vec<Instance> {
        // Conjunction over two features needs depth ≥ 2. (A balanced XOR
        // grid is *not* usable here: every single-feature split has exactly
        // zero gain, so a greedy gain-based tree correctly refuses to
        // split.)
        let mut data = Vec::new();
        for i in 0..400u64 {
            let x0 = (i % 10) as f64;
            let x1 = ((i / 10) % 10) as f64;
            let label = usize::from(x0 > 4.5 && x1 > 4.5);
            data.push(Instance::labeled(vec![x0, x1], label));
        }
        data
    }

    fn fit_on(data: &[Instance]) -> DecisionTree {
        let mut dt = DecisionTree::with_defaults(2, data[0].dim()).unwrap();
        let refs: Vec<&Instance> = data.iter().collect();
        dt.fit(&refs).unwrap();
        dt
    }

    #[test]
    fn learns_conjunction() {
        let data = and_data();
        let dt = fit_on(&data);
        let correct = data
            .iter()
            .filter(|i| dt.predict(&i.features).unwrap() == i.label.unwrap())
            .count();
        assert_eq!(correct, data.len(), "training accuracy on noiseless AND concept");
        assert!(dt.depth().unwrap() >= 2);
    }

    #[test]
    fn pure_data_yields_single_leaf() {
        let data: Vec<Instance> =
            (0..50).map(|i| Instance::labeled(vec![i as f64], 0)).collect();
        let dt = fit_on(&data);
        assert_eq!(dt.num_leaves(), Some(1));
        assert_eq!(dt.depth(), Some(0));
        let p = dt.predict_proba(&[3.0]).unwrap();
        assert_eq!(p[0], 1.0);
    }

    #[test]
    fn max_depth_limits_tree() {
        let mut cfg = DecisionTreeConfig::defaults(2, 2);
        cfg.max_depth = 1;
        let mut dt = DecisionTree::new(cfg).unwrap();
        let data = and_data();
        let refs: Vec<&Instance> = data.iter().collect();
        dt.fit(&refs).unwrap();
        assert!(dt.depth().unwrap() <= 1);
    }

    #[test]
    fn min_gain_prunes_noise_splits() {
        // Labels independent of features → no split clears min_gain.
        let mut cfg = DecisionTreeConfig::defaults(2, 1);
        cfg.min_gain = 0.05;
        let mut dt = DecisionTree::new(cfg).unwrap();
        let data: Vec<Instance> = (0..200u64)
            .map(|i| Instance::labeled(vec![(i % 7) as f64], ((i * 31) % 2) as usize))
            .collect();
        let refs: Vec<&Instance> = data.iter().collect();
        dt.fit(&refs).unwrap();
        assert!(dt.num_leaves().unwrap() <= 4, "{} leaves", dt.num_leaves().unwrap());
    }

    #[test]
    fn unfitted_tree_errors() {
        let dt = DecisionTree::with_defaults(2, 1).unwrap();
        assert!(matches!(dt.predict_proba(&[1.0]), Err(Error::Untrained(_))));
    }

    #[test]
    fn fit_rejects_bad_input() {
        let mut dt = DecisionTree::with_defaults(2, 2).unwrap();
        assert!(dt.fit(&[]).is_err());
        let wrong_dim = Instance::labeled(vec![1.0], 0);
        assert!(dt.fit(&[&wrong_dim]).is_err());
        let bad_class = Instance::labeled(vec![1.0, 2.0], 9);
        assert!(dt.fit(&[&bad_class]).is_err());
        let unlabeled = Instance::unlabeled(vec![1.0, 2.0]);
        assert!(dt.fit(&[&unlabeled]).is_err(), "all-unlabeled is an error");
    }

    #[test]
    fn importances_credit_informative_features() {
        // Feature 0 decides the label; feature 1 is noise.
        let data: Vec<Instance> = (0..300u64)
            .map(|i| {
                let x0 = (i % 10) as f64;
                let x1 = ((i * 17) % 10) as f64;
                Instance::labeled(vec![x0, x1], usize::from(x0 > 4.5))
            })
            .collect();
        let dt = fit_on(&data);
        let mut imp = vec![0.0; 2];
        dt.accumulate_importances(&mut imp);
        assert!(imp[0] > 0.0);
        assert!(imp[0] > imp[1] * 5.0, "importances {imp:?}");
    }

    #[test]
    fn threshold_is_midpoint_between_boundary_values() {
        let data = [
            Instance::labeled(vec![1.0], 0),
            Instance::labeled(vec![2.0], 0),
            Instance::labeled(vec![4.0], 1),
            Instance::labeled(vec![5.0], 1),
        ];
        let mut cfg = DecisionTreeConfig::defaults(2, 1);
        cfg.min_samples_split = 2;
        let mut dt = DecisionTree::new(cfg).unwrap();
        let refs: Vec<&Instance> = data.iter().collect();
        dt.fit(&refs).unwrap();
        match dt.root.as_ref().unwrap() {
            Node::Split { threshold, .. } => assert_eq!(*threshold, 3.0),
            Node::Leaf { .. } => panic!("should split"),
        }
    }

    #[test]
    fn instance_weights_influence_leaf_probabilities() {
        let data = [
            Instance::labeled(vec![1.0], 0).with_weight(3.0),
            Instance::labeled(vec![1.0], 1).with_weight(1.0),
        ];
        let mut cfg = DecisionTreeConfig::defaults(2, 1);
        cfg.min_samples_split = 10; // force a single leaf
        let mut dt = DecisionTree::new(cfg).unwrap();
        let refs: Vec<&Instance> = data.iter().collect();
        dt.fit(&refs).unwrap();
        let p = dt.predict_proba(&[1.0]).unwrap();
        assert!((p[0] - 0.75).abs() < 1e-12);
    }
}
