//! Batch (multinomial) logistic regression — the WEKA Logistic comparator,
//! and the model the Sarcasm/Offensive dataset authors used (Section V-F).
//!
//! Full-batch gradient descent over multiple epochs with L2 regularization;
//! unlike [`redhanded_streamml::StreamingLogisticRegression`], every
//! instance is visited `epochs` times — the batch/streaming contrast the
//! paper draws in Section V-D.

use crate::BatchClassifier;
use redhanded_streamml::classifier::normalize_proba;
use redhanded_types::{Error, Instance, Result};

/// Batch logistic-regression hyperparameters.
#[derive(Debug, Clone)]
pub struct LogisticConfig {
    /// Number of classes.
    pub num_classes: usize,
    /// Number of features.
    pub num_features: usize,
    /// Gradient-descent step size.
    pub learning_rate: f64,
    /// Number of full passes over the training data.
    pub epochs: usize,
    /// L2 penalty strength.
    pub reg_param: f64,
}

impl LogisticConfig {
    /// Defaults comparable to WEKA Logistic for a problem shape.
    pub fn defaults(num_classes: usize, num_features: usize) -> Self {
        LogisticConfig { num_classes, num_features, learning_rate: 0.1, epochs: 100, reg_param: 0.01 }
    }
}

/// A fitted batch logistic-regression model.
#[derive(Debug, Clone)]
pub struct BatchLogisticRegression {
    config: LogisticConfig,
    weights: Vec<Vec<f64>>,
    bias: Vec<f64>,
    fitted: bool,
}

impl BatchLogisticRegression {
    /// Create an unfitted model.
    pub fn new(config: LogisticConfig) -> Result<Self> {
        if config.num_classes < 2 {
            return Err(Error::InvalidConfig("need at least 2 classes".into()));
        }
        if config.num_features == 0 {
            return Err(Error::InvalidConfig("need at least 1 feature".into()));
        }
        if config.learning_rate <= 0.0 || config.epochs == 0 {
            return Err(Error::InvalidConfig("learning_rate and epochs must be positive".into()));
        }
        Ok(BatchLogisticRegression {
            weights: vec![vec![0.0; config.num_features]; config.num_classes],
            bias: vec![0.0; config.num_classes],
            fitted: false,
            config,
        })
    }

    /// Unfitted model with default hyperparameters.
    pub fn with_defaults(num_classes: usize, num_features: usize) -> Result<Self> {
        Self::new(LogisticConfig::defaults(num_classes, num_features))
    }

    fn softmax(&self, features: &[f64]) -> Vec<f64> {
        let mut scores: Vec<f64> = self
            .weights
            .iter()
            .zip(&self.bias)
            .map(|(w, b)| b + w.iter().zip(features).map(|(wi, xi)| wi * xi).sum::<f64>())
            .collect();
        let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for s in scores.iter_mut() {
            *s = (*s - max).exp();
        }
        normalize_proba(&mut scores);
        scores
    }
}

impl BatchClassifier for BatchLogisticRegression {
    fn num_classes(&self) -> usize {
        self.config.num_classes
    }

    fn fit(&mut self, instances: &[&Instance]) -> Result<()> {
        let labeled: Vec<&Instance> =
            instances.iter().copied().filter(|i| i.label.is_some()).collect();
        if labeled.is_empty() {
            return Err(Error::Untrained("BatchLogisticRegression::fit received no labeled data"));
        }
        for inst in &labeled {
            if inst.features.len() != self.config.num_features {
                return Err(Error::DimensionMismatch {
                    expected: self.config.num_features,
                    actual: inst.features.len(),
                });
            }
            let Some(class) = inst.label else { continue };
            if class >= self.config.num_classes {
                return Err(Error::InvalidClass {
                    class,
                    num_classes: self.config.num_classes,
                });
            }
        }
        let n = labeled.len() as f64;
        let c = self.config.num_classes;
        let m = self.config.num_features;
        for _ in 0..self.config.epochs {
            let mut grad_w = vec![vec![0.0; m]; c];
            let mut grad_b = vec![0.0; c];
            for inst in &labeled {
                let Some(y) = inst.label else { continue };
                let proba = self.softmax(&inst.features);
                for (k, g) in grad_w.iter_mut().enumerate() {
                    let err = (proba[k] - if k == y { 1.0 } else { 0.0 }) * inst.weight;
                    for (gi, &xi) in g.iter_mut().zip(&inst.features) {
                        *gi += err * xi;
                    }
                    grad_b[k] += err;
                }
            }
            let lr = self.config.learning_rate;
            let reg = self.config.reg_param;
            for (wc, gc) in self.weights.iter_mut().zip(&grad_w) {
                for (wi, gi) in wc.iter_mut().zip(gc) {
                    *wi -= lr * (gi / n + reg * *wi);
                }
            }
            for (bi, gi) in self.bias.iter_mut().zip(&grad_b) {
                *bi -= lr * gi / n;
            }
        }
        self.fitted = true;
        Ok(())
    }

    fn predict_proba(&self, features: &[f64]) -> Result<Vec<f64>> {
        if !self.fitted {
            return Err(Error::Untrained("BatchLogisticRegression"));
        }
        if features.len() != self.config.num_features {
            return Err(Error::DimensionMismatch {
                expected: self.config.num_features,
                actual: features.len(),
            });
        }
        Ok(self.softmax(features))
    }

    fn name(&self) -> &'static str {
        "LR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn margin_data() -> Vec<Instance> {
        (0..200u64)
            .map(|i| {
                let label = (i % 2) as usize;
                let x0 = label as f64 * 0.6 + ((i * 13) % 40) as f64 / 100.0;
                let x1 = ((i * 7) % 100) as f64 / 100.0;
                Instance::labeled(vec![x0, x1], label)
            })
            .collect()
    }

    #[test]
    fn learns_linear_concept() {
        let data = margin_data();
        let refs: Vec<&Instance> = data.iter().collect();
        let mut lr = BatchLogisticRegression::with_defaults(2, 2).unwrap();
        lr.fit(&refs).unwrap();
        let correct = data
            .iter()
            .filter(|i| lr.predict(&i.features).unwrap() == i.label.unwrap())
            .count();
        assert!(correct as f64 / data.len() as f64 > 0.97, "{correct}/{}", data.len());
    }

    #[test]
    fn unfitted_errors() {
        let lr = BatchLogisticRegression::with_defaults(2, 2).unwrap();
        assert!(matches!(lr.predict_proba(&[0.1, 0.2]), Err(Error::Untrained(_))));
    }

    #[test]
    fn probabilities_valid() {
        let data = margin_data();
        let refs: Vec<&Instance> = data.iter().collect();
        let mut lr = BatchLogisticRegression::with_defaults(2, 2).unwrap();
        lr.fit(&refs).unwrap();
        let p = lr.predict_proba(&[0.5, 0.5]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn config_validation() {
        let mut cfg = LogisticConfig::defaults(2, 2);
        cfg.epochs = 0;
        assert!(BatchLogisticRegression::new(cfg).is_err());
        let mut cfg = LogisticConfig::defaults(2, 2);
        cfg.num_classes = 1;
        assert!(BatchLogisticRegression::new(cfg).is_err());
    }

    #[test]
    fn fit_rejects_bad_data() {
        let mut lr = BatchLogisticRegression::with_defaults(2, 2).unwrap();
        assert!(lr.fit(&[]).is_err());
        let bad = Instance::labeled(vec![1.0], 0);
        assert!(lr.fit(&[&bad]).is_err());
    }

    #[test]
    fn three_class_bands() {
        let data: Vec<Instance> = (0..300u64)
            .map(|i| {
                let label = (i % 3) as usize;
                let x = label as f64 * 0.4 + ((i * 13) % 20) as f64 / 100.0;
                Instance::labeled(vec![x], label)
            })
            .collect();
        let refs: Vec<&Instance> = data.iter().collect();
        let mut cfg = LogisticConfig::defaults(3, 1);
        cfg.epochs = 500;
        cfg.learning_rate = 0.5;
        let mut lr = BatchLogisticRegression::new(cfg).unwrap();
        lr.fit(&refs).unwrap();
        let correct = data
            .iter()
            .filter(|i| lr.predict(&i.features).unwrap() == i.label.unwrap())
            .count();
        assert!(correct > 250, "{correct}/300");
    }
}
