//! Property-based tests for the NLP substrate (see DESIGN.md §5).

use proptest::prelude::*;
use redhanded_nlp::sentiment::score_text;
use redhanded_nlp::tokenizer::{tokenize, TokenKind};
use redhanded_nlp::{split_sentences, tag_word};

proptest! {
    /// Every token is a non-empty slice of the input at its reported
    /// offset, and token spans never overlap.
    #[test]
    fn tokens_are_nonempty_ordered_slices(text in "\\PC{0,200}") {
        let tokens = tokenize(&text);
        let mut last_end = 0usize;
        for t in &tokens {
            prop_assert!(!t.text.is_empty());
            prop_assert_eq!(&text[t.start..t.end()], t.text);
            prop_assert!(t.start >= last_end, "tokens overlap");
            last_end = t.end();
        }
    }

    /// Tokenization never panics on arbitrary unicode and consumes only
    /// non-whitespace content.
    #[test]
    fn tokenizer_total_function(text in "\\PC{0,300}") {
        let tokens = tokenize(&text);
        let token_bytes: usize = tokens.iter().map(|t| t.text.len()).sum();
        let non_ws: usize = text.chars().filter(|c| !c.is_whitespace()).map(char::len_utf8).sum();
        // Tokens cover at most the non-whitespace bytes (some separators
        // like whitespace are skipped; nothing is invented).
        prop_assert!(token_bytes <= non_ws + tokens.len());
    }

    /// Concatenating two texts with a space yields at least the tokens of
    /// the halves (boundary effects can only merge at the seam, which the
    /// space prevents).
    #[test]
    fn concatenation_safety(a in "[a-zA-Z0-9#@ ]{0,80}", b in "[a-zA-Z0-9#@ ]{0,80}") {
        let whole = format!("{a} {b}");
        let n_whole = tokenize(&whole).len();
        let n_parts = tokenize(&a).len() + tokenize(&b).len();
        prop_assert_eq!(n_whole, n_parts);
    }

    /// Sentence splitting returns non-empty trimmed slices that appear in
    /// order in the input.
    #[test]
    fn sentences_are_ordered_slices(text in "\\PC{0,200}") {
        let sentences = split_sentences(&text);
        let mut cursor = 0usize;
        for s in sentences {
            prop_assert!(!s.is_empty());
            prop_assert_eq!(s.trim(), s);
            let pos = text[cursor..].find(s).map(|p| p + cursor);
            prop_assert!(pos.is_some(), "sentence {s:?} not found in order");
            cursor = pos.unwrap() + s.len();
        }
    }

    /// Sentiment scores are always on SentiStrength's dual scale.
    #[test]
    fn sentiment_on_scale(text in "\\PC{0,300}") {
        let s = score_text(&text);
        prop_assert!((1..=5).contains(&s.positive));
        prop_assert!((-5..=-1).contains(&s.negative));
        prop_assert!((-5..=5).contains(&s.polarity()));
    }

    /// Adding an exclamation mark never weakens the negative pole.
    #[test]
    fn exclamation_monotone(word in prop::sample::select(vec![
        "bad", "terrible", "awful", "disgusting", "hate",
    ])) {
        let plain = score_text(&format!("that is {word}"));
        let loud = score_text(&format!("that is {word} !"));
        prop_assert!(loud.negative <= plain.negative);
    }

    /// POS tagging is total and case-insensitive.
    #[test]
    fn pos_tagging_case_insensitive(word in "[a-zA-Z]{1,15}") {
        let lower = tag_word(&word.to_lowercase());
        let upper = tag_word(&word.to_uppercase());
        prop_assert_eq!(lower, upper);
    }

    /// Mentions and hashtags keep their sigil and body.
    #[test]
    fn sigil_tokens_well_formed(body in "[a-zA-Z0-9_]{1,20}") {
        let text = format!("@{body} #{body}");
        let tokens = tokenize(&text);
        prop_assert_eq!(tokens.len(), 2);
        prop_assert_eq!(tokens[0].kind, TokenKind::Mention);
        let expected = format!("@{body}");
        prop_assert_eq!(tokens[0].text, expected.as_str());
        prop_assert_eq!(tokens[1].kind, TokenKind::Hashtag);
    }
}
