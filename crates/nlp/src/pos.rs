//! Rule/lexicon-based part-of-speech tagger.
//!
//! The paper's syntactic features are the relative frequencies of
//! *adjectives*, *adverbs*, and *verbs* in a tweet (Section IV-B). Those
//! counts do not require full sequence tagging: a greedy per-token tagger
//! backed by closed-class word lists, open-class lexicons, and suffix
//! heuristics yields stable counts with the same discriminative signal
//! (see the substitution table in `DESIGN.md`).
//!
//! Lookup order per word:
//! 1. closed classes (pronoun, determiner, preposition, conjunction,
//!    interjection),
//! 2. open-class lexicons (adverb before adjective before verb, so that
//!    `well`-like ambiguous words get their most frequent tag),
//! 3. suffix heuristics (`-ly` → adverb; `-ing`/`-ed`/`-ize`/`-ify` → verb;
//!    `-ous`/`-ful`/`-ive`/… → adjective),
//! 4. default: noun.

use crate::fxhash::FxHashMap;
use crate::lexicons;
use std::sync::OnceLock;

/// Part-of-speech tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PosTag {
    /// Noun (also the fallback for unknown words).
    Noun,
    /// Verb, any inflection.
    Verb,
    /// Adjective.
    Adjective,
    /// Adverb.
    Adverb,
    /// Pronoun.
    Pronoun,
    /// Determiner.
    Determiner,
    /// Preposition.
    Preposition,
    /// Conjunction.
    Conjunction,
    /// Interjection.
    Interjection,
}

const ADJ_SUFFIXES: &[&str] =
    &["ous", "ful", "ive", "able", "ible", "al", "ic", "less", "ish", "ary", "est"];
const VERB_SUFFIXES: &[&str] = &["ing", "ed", "ize", "ise", "ify", "ate"];

/// Tag a single word (case-insensitive).
pub fn tag_word(word: &str) -> PosTag {
    // ASCII fast path: almost every tweet word lowercases without
    // allocating — either it is already lowercase, or it fits a stack
    // buffer. ASCII lowercasing agrees with `str::to_lowercase` on ASCII
    // input, so the tag is identical.
    if word.is_ascii() {
        if !word.bytes().any(|b| b.is_ascii_uppercase()) {
            return tag_lower(word);
        }
        let mut buf = [0u8; 64];
        if let Some(buf) = buf.get_mut(..word.len()) {
            buf.copy_from_slice(word.as_bytes());
            buf.make_ascii_lowercase();
            // ASCII stays UTF-8; fall through to the allocating path if not.
            if let Ok(lower) = std::str::from_utf8(buf) {
                return tag_lower(lower);
            }
        }
    }
    tag_lower(&word.to_lowercase())
}

/// Unified lexicon lookup: one probe instead of eight sequential set
/// probes per word. Built by inserting the class tables in the documented
/// lookup order with first-wins semantics, so ambiguous words (e.g.
/// "well", both adverb and adjective) resolve exactly as the sequential
/// checks did.
fn lexicon_map() -> &'static FxHashMap<&'static str, PosTag> {
    static MAP: OnceLock<FxHashMap<&'static str, PosTag>> = OnceLock::new();
    MAP.get_or_init(|| {
        let classes: [(&'static [&'static str], PosTag); 8] = [
            (lexicons::PRONOUNS, PosTag::Pronoun),
            (lexicons::DETERMINERS, PosTag::Determiner),
            (lexicons::PREPOSITIONS, PosTag::Preposition),
            (lexicons::CONJUNCTIONS, PosTag::Conjunction),
            (lexicons::INTERJECTIONS, PosTag::Interjection),
            (lexicons::ADVERBS, PosTag::Adverb),
            (lexicons::ADJECTIVES, PosTag::Adjective),
            (lexicons::VERBS, PosTag::Verb),
        ];
        let mut map = FxHashMap::default();
        for (table, tag) in classes {
            for &w in table {
                map.entry(w).or_insert(tag);
            }
        }
        map
    })
}

/// Tag an already-lowercased word.
fn tag_lower(w: &str) -> PosTag {
    if let Some(&tag) = lexicon_map().get(w) {
        return tag;
    }
    // Suffix heuristics, longest-context first. Require a minimal stem so
    // short words like "red" or "king" don't get misparsed.
    if w.len() > 4 && w.ends_with("ly") {
        return PosTag::Adverb;
    }
    for suf in VERB_SUFFIXES {
        if w.len() > suf.len() + 2 && w.ends_with(suf) {
            return PosTag::Verb;
        }
    }
    for suf in ADJ_SUFFIXES {
        if w.len() > suf.len() + 2 && w.ends_with(suf) {
            return PosTag::Adjective;
        }
    }
    PosTag::Noun
}

/// Counts of the POS categories the feature extractor consumes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PosCounts {
    /// Number of adjective tokens (`cntAdjective`).
    pub adjectives: usize,
    /// Number of adverb tokens (`cntAdverbs`).
    pub adverbs: usize,
    /// Number of verb tokens (`cntVerbs`).
    pub verbs: usize,
    /// Total number of words tagged.
    pub total: usize,
}

/// Tag a sequence of words and tally the categories of interest.
pub fn count_pos<'a>(words: impl IntoIterator<Item = &'a str>) -> PosCounts {
    let mut counts = PosCounts::default();
    for w in words {
        counts.total += 1;
        match tag_word(w) {
            PosTag::Adjective => counts.adjectives += 1,
            PosTag::Adverb => counts.adverbs += 1,
            PosTag::Verb => counts.verbs += 1,
            _ => {}
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_classes() {
        assert_eq!(tag_word("they"), PosTag::Pronoun);
        assert_eq!(tag_word("The"), PosTag::Determiner);
        assert_eq!(tag_word("under"), PosTag::Preposition);
        assert_eq!(tag_word("because"), PosTag::Conjunction);
        assert_eq!(tag_word("wow"), PosTag::Interjection);
    }

    #[test]
    fn open_class_lexicons() {
        assert_eq!(tag_word("ugly"), PosTag::Adjective);
        assert_eq!(tag_word("quickly"), PosTag::Adverb);
        assert_eq!(tag_word("running"), PosTag::Verb);
        assert_eq!(tag_word("PATHETIC"), PosTag::Adjective, "case-insensitive");
    }

    #[test]
    fn suffix_heuristics() {
        assert_eq!(tag_word("gloriously"), PosTag::Adverb);
        assert_eq!(tag_word("tweeting"), PosTag::Verb);
        assert_eq!(tag_word("computerized"), PosTag::Verb);
        assert_eq!(tag_word("courageous"), PosTag::Adjective);
        assert_eq!(tag_word("meaningless"), PosTag::Adjective);
    }

    #[test]
    fn short_words_do_not_trigger_suffix_rules() {
        // "fly" ends in -ly, "king" in -ing, "red" in -ed: all too short.
        assert_eq!(tag_word("fly"), PosTag::Noun);
        assert_eq!(tag_word("king"), PosTag::Noun);
        assert_eq!(tag_word("red"), PosTag::Adjective, "lexicon hit, not suffix");
        assert_eq!(tag_word("bed"), PosTag::Noun);
    }

    #[test]
    fn unknown_defaults_to_noun() {
        assert_eq!(tag_word("covfefe"), PosTag::Noun);
        assert_eq!(tag_word("xyzzy"), PosTag::Noun);
    }

    #[test]
    fn count_pos_tallies() {
        let counts = count_pos(["the", "ugly", "dog", "ran", "quickly", "home"]);
        assert_eq!(counts.total, 6);
        assert_eq!(counts.adjectives, 1);
        assert_eq!(counts.adverbs, 1);
        assert_eq!(counts.verbs, 1);
    }

    #[test]
    fn count_pos_empty() {
        let counts = count_pos(std::iter::empty());
        assert_eq!(counts, PosCounts::default());
    }
}
