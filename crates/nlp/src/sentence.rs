//! Sentence splitting for the stylistic features.
//!
//! The paper's stylistic features are the *mean number of words per
//! sentence* and the *mean word length* (Section IV-B). Tweets rarely
//! contain elaborate sentence structure, so a boundary-character splitter
//! (`.` `!` `?` `\n`, with runs collapsed) is sufficient and fast.

use crate::tokenizer::{Token, TokenKind};

/// Split `text` into sentences, returning the non-empty trimmed slices.
///
/// Runs of terminator characters (`...`, `?!`) close a single sentence.
pub fn split_sentences(text: &str) -> Vec<&str> {
    let mut sentences = Vec::new();
    let mut start = 0;
    let mut in_terminator = false;
    for (i, c) in text.char_indices() {
        let is_term = matches!(c, '.' | '!' | '?' | '\n');
        if is_term && !in_terminator {
            let s = text[start..i].trim();
            if !s.is_empty() {
                sentences.push(s);
            }
            in_terminator = true;
        } else if !is_term && in_terminator {
            start = i;
            in_terminator = false;
        }
    }
    if !in_terminator {
        let s = text[start..].trim();
        if !s.is_empty() {
            sentences.push(s);
        }
    }
    sentences
}

/// Number of sentences that contain at least one word token.
///
/// Tweets commonly end with a trail of hashtags, URLs, or a `via @user`
/// attribution after the final terminator; counting those fragments as
/// sentences would skew the `wordsPerSentence` feature in a
/// class-dependent way (content-heavy classes append more of them). This
/// counts only segments that contribute actual words, using the byte
/// offsets of an existing tokenization pass.
pub fn count_word_sentences(text: &str, tokens: &[Token<'_>]) -> usize {
    let word_starts: Vec<usize> =
        tokens.iter().filter(|t| t.kind == TokenKind::Word).map(|t| t.start).collect();
    if word_starts.is_empty() {
        return 0;
    }
    let mut count = 0usize;
    let mut seg_start = 0usize;
    let mut in_terminator = false;
    let mut wi = 0usize;
    let close_segment = |start: usize, end: usize, wi: &mut usize, count: &mut usize| {
        // Advance over word starts inside [start, end); count the segment
        // if it contains any.
        let mut has_word = false;
        while *wi < word_starts.len() && word_starts[*wi] < end {
            if word_starts[*wi] >= start {
                has_word = true;
            }
            *wi += 1;
        }
        if has_word {
            *count += 1;
        }
    };
    for (i, c) in text.char_indices() {
        let is_term = matches!(c, '.' | '!' | '?' | '\n');
        if is_term && !in_terminator {
            close_segment(seg_start, i, &mut wi, &mut count);
            in_terminator = true;
        } else if !is_term && in_terminator {
            seg_start = i;
            in_terminator = false;
        }
    }
    if !in_terminator {
        close_segment(seg_start, text.len(), &mut wi, &mut count);
    }
    count
}

/// Summary statistics over the sentence/word structure of a text, computed
/// from one tokenization pass plus one sentence-splitting pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StylisticStats {
    /// Mean number of word tokens per sentence (`wordsPerSentence`).
    pub words_per_sentence: f64,
    /// Mean word length in characters (`meanWordLength`).
    pub mean_word_length: f64,
    /// Total number of word tokens.
    pub num_words: usize,
    /// Total number of sentences.
    pub num_sentences: usize,
}

/// Compute [`StylisticStats`] for `text`, given its precomputed tokens.
pub fn stylistic_stats(text: &str, tokens: &[Token<'_>]) -> StylisticStats {
    let words: Vec<&Token<'_>> = tokens.iter().filter(|t| t.kind == TokenKind::Word).collect();
    let num_words = words.len();
    let sentences = split_sentences(text);
    let num_sentences = sentences.len().max(1);
    let total_chars: usize = words.iter().map(|t| t.text.chars().count()).sum();
    StylisticStats {
        words_per_sentence: num_words as f64 / num_sentences as f64,
        mean_word_length: if num_words == 0 {
            0.0
        } else {
            total_chars as f64 / num_words as f64
        },
        num_words,
        num_sentences: sentences.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    #[test]
    fn splits_on_terminators() {
        let s = split_sentences("First one. Second one! Third?");
        assert_eq!(s, vec!["First one", "Second one", "Third"]);
    }

    #[test]
    fn collapses_terminator_runs() {
        let s = split_sentences("Wait... what?! ok");
        assert_eq!(s, vec!["Wait", "what", "ok"]);
    }

    #[test]
    fn newlines_are_boundaries() {
        let s = split_sentences("line one\nline two");
        assert_eq!(s, vec!["line one", "line two"]);
    }

    #[test]
    fn no_terminator_is_one_sentence() {
        assert_eq!(split_sentences("just one"), vec!["just one"]);
    }

    #[test]
    fn empty_input() {
        assert!(split_sentences("").is_empty());
        assert!(split_sentences("...").is_empty());
    }

    #[test]
    fn stats_basic() {
        let text = "one two three. four five.";
        let toks = tokenize(text);
        let st = stylistic_stats(text, &toks);
        assert_eq!(st.num_words, 5);
        assert_eq!(st.num_sentences, 2);
        assert!((st.words_per_sentence - 2.5).abs() < 1e-12);
        // (3 + 3 + 5 + 4 + 4) / 5 = 3.8
        assert!((st.mean_word_length - 3.8).abs() < 1e-12);
    }

    #[test]
    fn stats_ignore_non_words() {
        let text = "hey @you #tag http://x.co 42";
        let toks = tokenize(text);
        let st = stylistic_stats(text, &toks);
        assert_eq!(st.num_words, 1);
        assert!((st.mean_word_length - 3.0).abs() < 1e-12);
    }

    #[test]
    fn word_sentences_ignore_trailing_fragments() {
        let text = "Real words here. More words! #tag #tag2 http://t.co/xyz";
        let toks = tokenize(text);
        assert_eq!(count_word_sentences(text, &toks), 2, "hashtag/url trail not a sentence");
        let text = "one. two. three.";
        let toks = tokenize(text);
        assert_eq!(count_word_sentences(text, &toks), 3);
        let text = "#only #tags http://t.co/x";
        let toks = tokenize(text);
        assert_eq!(count_word_sentences(text, &toks), 0);
        assert_eq!(count_word_sentences("", &[]), 0);
    }

    #[test]
    fn word_sentences_with_via_attribution() {
        let text = "RT @a: you are the worst. via @someone";
        let toks = tokenize(text);
        // "RT ... worst" counts; "via @someone" contains the word "via".
        assert_eq!(count_word_sentences(text, &toks), 2);
        let text = "you are the worst. @someone http://x.co";
        let toks = tokenize(text);
        assert_eq!(count_word_sentences(text, &toks), 1);
    }

    #[test]
    fn stats_empty_text() {
        let st = stylistic_stats("", &[]);
        assert_eq!(st.num_words, 0);
        assert_eq!(st.num_sentences, 0);
        assert_eq!(st.words_per_sentence, 0.0);
        assert_eq!(st.mean_word_length, 0.0);
    }
}
