//! Sentence splitting for the stylistic features.
//!
//! The paper's stylistic features are the *mean number of words per
//! sentence* and the *mean word length* (Section IV-B). Tweets rarely
//! contain elaborate sentence structure, so a boundary-character splitter
//! (`.` `!` `?` `\n`, with runs collapsed) is sufficient and fast.

use crate::tokenizer::{Token, TokenKind, TokenSpan};

/// Split `text` into sentences, returning the non-empty trimmed slices.
///
/// Runs of terminator characters (`...`, `?!`) close a single sentence.
pub fn split_sentences(text: &str) -> Vec<&str> {
    let mut sentences = Vec::new();
    let mut start = 0;
    let mut in_terminator = false;
    for (i, c) in text.char_indices() {
        let is_term = matches!(c, '.' | '!' | '?' | '\n');
        if is_term && !in_terminator {
            let s = text[start..i].trim();
            if !s.is_empty() {
                sentences.push(s);
            }
            in_terminator = true;
        } else if !is_term && in_terminator {
            start = i;
            in_terminator = false;
        }
    }
    if !in_terminator {
        let s = text[start..].trim();
        if !s.is_empty() {
            sentences.push(s);
        }
    }
    sentences
}

/// Number of sentences that contain at least one word token.
///
/// Tweets commonly end with a trail of hashtags, URLs, or a `via @user`
/// attribution after the final terminator; counting those fragments as
/// sentences would skew the `wordsPerSentence` feature in a
/// class-dependent way (content-heavy classes append more of them). This
/// counts only segments that contribute actual words, using the byte
/// offsets of an existing tokenization pass.
pub fn count_word_sentences(text: &str, tokens: &[Token<'_>]) -> usize {
    count_with_word_starts(
        text,
        tokens.iter().filter(|t| t.kind == TokenKind::Word).map(|t| t.start),
    )
}

/// [`count_word_sentences`] over offset-based token spans — the
/// allocation-free form used by the feature extractor's hot path.
pub fn count_word_sentences_spans(text: &str, spans: &[TokenSpan]) -> usize {
    count_with_word_starts(
        text,
        spans.iter().filter(|s| s.kind == TokenKind::Word).map(|s| s.start as usize),
    )
}

/// Single-scan core: walk the text once, consuming the ascending stream of
/// word-token start offsets in lockstep, and count the segments between
/// terminator runs that contain at least one word start. Word tokens never
/// begin on a terminator character, so every start falls strictly inside a
/// segment.
fn count_with_word_starts(text: &str, word_starts: impl IntoIterator<Item = usize>) -> usize {
    let mut starts = word_starts.into_iter().peekable();
    let mut count = 0usize;
    let mut in_terminator = false;
    let mut has_word = false;
    for (i, c) in text.char_indices() {
        if starts.peek() == Some(&i) {
            starts.next();
            has_word = true;
        }
        let is_term = matches!(c, '.' | '!' | '?' | '\n');
        if is_term && !in_terminator {
            if has_word {
                count += 1;
            }
            has_word = false;
            in_terminator = true;
        } else if !is_term && in_terminator {
            in_terminator = false;
        }
    }
    if !in_terminator && has_word {
        count += 1;
    }
    count
}

/// Summary statistics over the sentence/word structure of a text, computed
/// from one tokenization pass plus one sentence-splitting pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StylisticStats {
    /// Mean number of word tokens per sentence (`wordsPerSentence`).
    pub words_per_sentence: f64,
    /// Mean word length in characters (`meanWordLength`).
    pub mean_word_length: f64,
    /// Total number of word tokens.
    pub num_words: usize,
    /// Total number of sentences.
    pub num_sentences: usize,
}

/// Compute [`StylisticStats`] for `text`, given its precomputed tokens.
pub fn stylistic_stats(text: &str, tokens: &[Token<'_>]) -> StylisticStats {
    let words: Vec<&Token<'_>> = tokens.iter().filter(|t| t.kind == TokenKind::Word).collect();
    let num_words = words.len();
    let sentences = split_sentences(text);
    let num_sentences = sentences.len().max(1);
    let total_chars: usize = words.iter().map(|t| t.text.chars().count()).sum();
    StylisticStats {
        words_per_sentence: num_words as f64 / num_sentences as f64,
        mean_word_length: if num_words == 0 {
            0.0
        } else {
            total_chars as f64 / num_words as f64
        },
        num_words,
        num_sentences: sentences.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    #[test]
    fn splits_on_terminators() {
        let s = split_sentences("First one. Second one! Third?");
        assert_eq!(s, vec!["First one", "Second one", "Third"]);
    }

    #[test]
    fn collapses_terminator_runs() {
        let s = split_sentences("Wait... what?! ok");
        assert_eq!(s, vec!["Wait", "what", "ok"]);
    }

    #[test]
    fn newlines_are_boundaries() {
        let s = split_sentences("line one\nline two");
        assert_eq!(s, vec!["line one", "line two"]);
    }

    #[test]
    fn no_terminator_is_one_sentence() {
        assert_eq!(split_sentences("just one"), vec!["just one"]);
    }

    #[test]
    fn empty_input() {
        assert!(split_sentences("").is_empty());
        assert!(split_sentences("...").is_empty());
    }

    #[test]
    fn stats_basic() {
        let text = "one two three. four five.";
        let toks = tokenize(text);
        let st = stylistic_stats(text, &toks);
        assert_eq!(st.num_words, 5);
        assert_eq!(st.num_sentences, 2);
        assert!((st.words_per_sentence - 2.5).abs() < 1e-12);
        // (3 + 3 + 5 + 4 + 4) / 5 = 3.8
        assert!((st.mean_word_length - 3.8).abs() < 1e-12);
    }

    #[test]
    fn stats_ignore_non_words() {
        let text = "hey @you #tag http://x.co 42";
        let toks = tokenize(text);
        let st = stylistic_stats(text, &toks);
        assert_eq!(st.num_words, 1);
        assert!((st.mean_word_length - 3.0).abs() < 1e-12);
    }

    #[test]
    fn word_sentences_ignore_trailing_fragments() {
        let text = "Real words here. More words! #tag #tag2 http://t.co/xyz";
        let toks = tokenize(text);
        assert_eq!(count_word_sentences(text, &toks), 2, "hashtag/url trail not a sentence");
        let text = "one. two. three.";
        let toks = tokenize(text);
        assert_eq!(count_word_sentences(text, &toks), 3);
        let text = "#only #tags http://t.co/x";
        let toks = tokenize(text);
        assert_eq!(count_word_sentences(text, &toks), 0);
        assert_eq!(count_word_sentences("", &[]), 0);
    }

    #[test]
    fn word_sentences_with_via_attribution() {
        let text = "RT @a: you are the worst. via @someone";
        let toks = tokenize(text);
        // "RT ... worst" counts; "via @someone" contains the word "via".
        assert_eq!(count_word_sentences(text, &toks), 2);
        let text = "you are the worst. @someone http://x.co";
        let toks = tokenize(text);
        assert_eq!(count_word_sentences(text, &toks), 1);
    }

    #[test]
    fn span_variant_agrees_with_token_variant() {
        let mut spans = Vec::new();
        for text in [
            "Real words here. More words! #tag #tag2 http://t.co/xyz",
            "RT @a: you are the worst. via @someone",
            "one. two. three.",
            "#only #tags http://t.co/x",
            "Wait... what?! ok",
            "",
            "...",
        ] {
            let toks = tokenize(text);
            crate::tokenizer::tokenize_into(text, &mut spans);
            assert_eq!(
                count_word_sentences_spans(text, &spans),
                count_word_sentences(text, &toks),
                "{text:?}"
            );
        }
    }

    #[test]
    fn stats_empty_text() {
        let st = stylistic_stats("", &[]);
        assert_eq!(st.num_words, 0);
        assert_eq!(st.num_sentences, 0);
        assert_eq!(st.words_per_sentence, 0.0);
        assert_eq!(st.mean_word_length, 0.0);
    }
}
