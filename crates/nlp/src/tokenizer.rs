//! Twitter-aware tokenizer.
//!
//! Splits raw tweet text into typed tokens: words, numbers, URLs, user
//! mentions, hashtags, emoticons, and punctuation. The preprocessing step of
//! the pipeline (Section III-A of the paper) drops URLs, mentions, hashtags,
//! numbers, punctuation, and tweet abbreviations such as `RT`; emitting them
//! as *typed* tokens here lets both the preprocessor and the basic text
//! features (`numHashtags`, `numUrls`, `numUpperCases`) consume a single
//! tokenization pass.

use crate::lexicons;
use std::sync::OnceLock;

/// Bitmap over the first byte of every known emoticon, so the tokenizer can
/// rule out an emoticon match with one array load instead of scanning both
/// emoticon tables at every token start (most tokens begin with a letter
/// that no emoticon starts with).
fn emoticon_first_bytes() -> &'static [bool; 256] {
    static TABLE: OnceLock<[bool; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [false; 256];
        for table in [lexicons::POSITIVE_EMOTICONS, lexicons::NEGATIVE_EMOTICONS] {
            for emo in table {
                t[emo.as_bytes()[0] as usize] = true;
            }
        }
        t
    })
}

/// The syntactic category of a raw token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// An alphabetic word (may contain internal apostrophes, e.g. `don't`).
    Word,
    /// A run of digits, possibly with `.`/`,` separators (e.g. `3,000`).
    Number,
    /// A URL (`http://…`, `https://…`, or `www.…`).
    Url,
    /// A user mention (`@handle`).
    Mention,
    /// A hashtag (`#topic`).
    Hashtag,
    /// An emoticon from the emoticon lexicons (e.g. `:)`, `D:`).
    Emoticon,
    /// A single punctuation mark or symbol.
    Punctuation,
}

/// A token slice borrowed from the input text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// The token text, borrowed from the input.
    pub text: &'a str,
    /// Its syntactic category.
    pub kind: TokenKind,
    /// Byte offset of the token's first byte in the input.
    pub start: usize,
}

impl Token<'_> {
    /// Byte offset one past the token's last byte.
    pub fn end(&self) -> usize {
        self.start + self.text.len()
    }

    /// True when every alphabetic character in the token is uppercase and
    /// the token contains at least two alphabetic characters (the paper's
    /// `numUpperCases` counts "uppercase words", i.e. shouting).
    pub fn is_shouting(&self) -> bool {
        is_shouting_text(self.text)
    }
}

pub(crate) fn is_shouting_text(text: &str) -> bool {
    let alpha_count = text.chars().filter(|c| c.is_alphabetic()).count();
    alpha_count >= 2 && text.chars().filter(|c| c.is_alphabetic()).all(|c| c.is_uppercase())
}

/// A token identified by byte offsets into its source text.
///
/// The lifetime-free form of [`Token`]: spans can live in long-lived
/// scratch buffers (`Vec<TokenSpan>`) that are refilled tweet after tweet
/// without borrowing the tweet's text. Offsets are `u32` — tweets are
/// bounded at a few kilobytes, and the narrow layout keeps scratch buffers
/// dense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TokenSpan {
    /// Byte offset of the token's first byte in the source text.
    pub start: u32,
    /// Byte offset one past the token's last byte.
    pub end: u32,
    /// Its syntactic category.
    pub kind: TokenKind,
}

impl TokenSpan {
    /// The token text within its source.
    pub fn text<'a>(&self, source: &'a str) -> &'a str {
        &source[self.start as usize..self.end as usize]
    }

    /// See [`Token::is_shouting`].
    pub fn is_shouting(&self, source: &str) -> bool {
        is_shouting_text(self.text(source))
    }
}

/// Tokenize `text` into a reusable span buffer (cleared first).
///
/// Produces exactly the token stream of [`tokenize`], as offsets instead of
/// borrowed slices: reusing `out` across calls amortizes the token vector,
/// the one per-tweet allocation [`tokenize`] cannot avoid. `text` must be
/// shorter than 4 GiB so offsets fit in `u32` (any real tweet is).
pub fn tokenize_into(text: &str, out: &mut Vec<TokenSpan>) {
    out.clear();
    for t in Tokenizer::new(text) {
        out.push(TokenSpan { start: t.start as u32, end: t.end() as u32, kind: t.kind });
    }
}

/// Tokenize `text` into typed tokens.
///
/// The tokenizer is a single forward scan with longest-match rules for the
/// multi-character token kinds (URL, mention, hashtag, emoticon, number).
/// Whitespace separates tokens and is never emitted.
pub fn tokenize(text: &str) -> Vec<Token<'_>> {
    Tokenizer::new(text).collect()
}

/// Iterator form of [`tokenize`], for callers that want to stop early.
pub struct Tokenizer<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Tokenizer<'a> {
    /// Create a tokenizer over `text`.
    pub fn new(text: &'a str) -> Self {
        Tokenizer { text, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }

    fn skip_whitespace(&mut self) {
        let rest = self.rest();
        let trimmed = rest.trim_start();
        self.pos += rest.len() - trimmed.len();
    }

    /// Length in bytes of a URL starting at the current position, if any.
    fn match_url(&self) -> Option<usize> {
        let rest = self.rest();
        let bytes = rest.as_bytes();
        let has_prefix = |p: &[u8]| bytes.len() >= p.len() && bytes[..p.len()].eq_ignore_ascii_case(p);
        let is_url = has_prefix(b"http://") || has_prefix(b"https://") || has_prefix(b"www.");
        if !is_url {
            return None;
        }
        let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
        Some(end)
    }

    /// Length of a mention/hashtag starting at the current position.
    fn match_sigil(&self, sigil: char) -> Option<usize> {
        let rest = self.rest();
        let mut chars = rest.char_indices();
        let (_, first) = chars.next()?;
        if first != sigil {
            return None;
        }
        let mut end = sigil.len_utf8();
        for (i, c) in chars {
            if c.is_alphanumeric() || c == '_' {
                end = i + c.len_utf8();
            } else {
                break;
            }
        }
        // A bare sigil with no body is punctuation, not a mention/hashtag.
        (end > sigil.len_utf8()).then_some(end)
    }

    /// Length of an emoticon starting at the current position, if the
    /// longest prefix match against the emoticon lexicons succeeds.
    fn match_emoticon(&self) -> Option<usize> {
        let rest = self.rest();
        if !emoticon_first_bytes()[*rest.as_bytes().first()? as usize] {
            return None;
        }
        let mut best = None;
        for table in [lexicons::POSITIVE_EMOTICONS, lexicons::NEGATIVE_EMOTICONS] {
            for emo in table {
                if let Some(after) = rest.strip_prefix(emo) {
                    // Require the emoticon to end at a boundary so `:pizza`
                    // does not match `:p`.
                    let boundary = after
                        .chars()
                        .next()
                        .map_or(true, |c| c.is_whitespace() || !c.is_alphanumeric());
                    if boundary && best.map_or(true, |b| emo.len() > b) {
                        best = Some(emo.len());
                    }
                }
            }
        }
        best
    }

    /// Length of a number starting at the current position.
    #[allow(clippy::if_same_then_else)] // branches differ in lookahead condition, not effect
    fn match_number(&self) -> Option<usize> {
        let rest = self.rest();
        let first = rest.chars().next()?;
        if !first.is_ascii_digit() {
            return None;
        }
        let mut end = 0;
        let mut chars = rest.char_indices().peekable();
        while let Some((i, c)) = chars.next() {
            if c.is_ascii_digit() {
                end = i + 1;
            } else if (c == '.' || c == ',')
                && chars.peek().is_some_and(|(_, n)| n.is_ascii_digit())
            {
                end = i + 1;
            } else {
                break;
            }
        }
        Some(end)
    }

    /// Length of an alphabetic word starting at the current position.
    /// Words may contain internal apostrophes (`don't`) and internal hyphens
    /// (`self-aware`).
    #[allow(clippy::if_same_then_else)] // branches differ in lookahead condition, not effect
    fn match_word(&self) -> Option<usize> {
        let rest = self.rest();
        let first = rest.chars().next()?;
        if !first.is_alphabetic() {
            return None;
        }
        let mut end = 0;
        let mut chars = rest.char_indices().peekable();
        while let Some((i, c)) = chars.next() {
            if c.is_alphabetic() {
                end = i + c.len_utf8();
            } else if (c == '\'' || c == '’' || c == '-')
                && i > 0
                && chars.peek().is_some_and(|(_, n)| n.is_alphabetic())
            {
                end = i + c.len_utf8();
            } else {
                break;
            }
        }
        Some(end)
    }
}

impl<'a> Iterator for Tokenizer<'a> {
    type Item = Token<'a>;

    fn next(&mut self) -> Option<Token<'a>> {
        self.skip_whitespace();
        if self.pos >= self.text.len() {
            return None;
        }
        let start = self.pos;
        let (len, kind) = if let Some(len) = self.match_url() {
            (len, TokenKind::Url)
        } else if let Some(len) = self.match_sigil('@') {
            (len, TokenKind::Mention)
        } else if let Some(len) = self.match_sigil('#') {
            (len, TokenKind::Hashtag)
        } else if let Some(len) = self.match_emoticon() {
            (len, TokenKind::Emoticon)
        } else if let Some(len) = self.match_number() {
            (len, TokenKind::Number)
        } else if let Some(len) = self.match_word() {
            (len, TokenKind::Word)
        } else {
            // Single punctuation/symbol character; emoji count as
            // emoticons (they carry sentiment, not syntax). `rest` is
            // non-empty here (pos < len was checked above), so the `?`
            // never actually fires.
            let c = self.rest().chars().next()?;
            let kind = if lexicons::is_emoji_char(c) {
                TokenKind::Emoticon
            } else {
                TokenKind::Punctuation
            };
            // Absorb a trailing variation selector (U+FE0F) after emoji.
            let mut len = c.len_utf8();
            if kind == TokenKind::Emoticon {
                if let Some(next) = self.rest()[len..].chars().next() {
                    if next == '\u{FE0F}' {
                        len += next.len_utf8();
                    }
                }
            }
            (len, kind)
        };
        self.pos = start + len;
        Some(Token { text: &self.text[start..start + len], kind, start })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<(String, TokenKind)> {
        tokenize(text).into_iter().map(|t| (t.text.to_string(), t.kind)).collect()
    }

    #[test]
    fn empty_and_whitespace_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n  ").is_empty());
    }

    #[test]
    fn plain_words() {
        let toks = kinds("hello world");
        assert_eq!(
            toks,
            vec![
                ("hello".into(), TokenKind::Word),
                ("world".into(), TokenKind::Word)
            ]
        );
    }

    #[test]
    fn urls_are_single_tokens() {
        let toks = kinds("see http://t.co/abc123 now");
        assert_eq!(toks[1], ("http://t.co/abc123".into(), TokenKind::Url));
        let toks = kinds("HTTPS://EXAMPLE.COM/x");
        assert_eq!(toks[0].1, TokenKind::Url);
        let toks = kinds("www.example.com rocks");
        assert_eq!(toks[0].1, TokenKind::Url);
        assert_eq!(toks[1].1, TokenKind::Word);
    }

    #[test]
    fn mentions_and_hashtags() {
        let toks = kinds("@alice_99 check #MeanBirds2017 out");
        assert_eq!(toks[0], ("@alice_99".into(), TokenKind::Mention));
        assert_eq!(toks[2], ("#MeanBirds2017".into(), TokenKind::Hashtag));
    }

    #[test]
    fn bare_sigils_are_punctuation() {
        let toks = kinds("a @ b # c");
        assert_eq!(toks[1], ("@".into(), TokenKind::Punctuation));
        assert_eq!(toks[3], ("#".into(), TokenKind::Punctuation));
    }

    #[test]
    fn emoticons() {
        let toks = kinds("great :) awful :(");
        assert_eq!(toks[1], (":)".into(), TokenKind::Emoticon));
        assert_eq!(toks[3], (":(".into(), TokenKind::Emoticon));
    }

    #[test]
    fn longest_emoticon_wins() {
        // ":-)" should match as one emoticon, not ":" + "-" + ")".
        let toks = kinds(":-)");
        assert_eq!(toks, vec![(":-)".into(), TokenKind::Emoticon)]);
    }

    #[test]
    fn emoticon_requires_boundary() {
        // ":pizza" must not match the ":p" emoticon.
        let toks = kinds(":pizza");
        assert_eq!(toks[0], (":".into(), TokenKind::Punctuation));
        assert_eq!(toks[1], ("pizza".into(), TokenKind::Word));
    }

    #[test]
    fn numbers_with_separators() {
        let toks = kinds("3,000 tweets and 2.5 hours");
        assert_eq!(toks[0], ("3,000".into(), TokenKind::Number));
        assert_eq!(toks[3], ("2.5".into(), TokenKind::Number));
    }

    #[test]
    fn number_does_not_swallow_trailing_period() {
        let toks = kinds("I saw 42.");
        assert_eq!(toks[2], ("42".into(), TokenKind::Number));
        assert_eq!(toks[3], (".".into(), TokenKind::Punctuation));
    }

    #[test]
    fn contractions_and_hyphens_stay_whole() {
        let toks = kinds("don't be self-aware");
        assert_eq!(toks[0], ("don't".into(), TokenKind::Word));
        assert_eq!(toks[2], ("self-aware".into(), TokenKind::Word));
    }

    #[test]
    fn trailing_apostrophe_is_split() {
        let toks = kinds("dogs' toys");
        assert_eq!(toks[0], ("dogs".into(), TokenKind::Word));
        assert_eq!(toks[1], ("'".into(), TokenKind::Punctuation));
    }

    #[test]
    fn punctuation_is_individual() {
        let toks = kinds("wow!!!");
        assert_eq!(toks.len(), 4);
        assert_eq!(toks[1].1, TokenKind::Punctuation);
        assert_eq!(toks[3].1, TokenKind::Punctuation);
    }

    #[test]
    fn offsets_are_correct() {
        let text = "hi @you :) 42";
        for tok in tokenize(text) {
            assert_eq!(&text[tok.start..tok.end()], tok.text);
        }
    }

    #[test]
    fn unicode_words_do_not_panic() {
        let toks = kinds("café naïve 日本語 ok");
        assert_eq!(toks[0].1, TokenKind::Word);
        assert_eq!(toks[2].1, TokenKind::Word);
        assert_eq!(toks[3], ("ok".into(), TokenKind::Word));
    }

    #[test]
    fn emoji_are_emoticon_tokens() {
        let toks = tokenize("nice \u{1F600} work \u{2764}\u{FE0F} done");
        let kinds: Vec<TokenKind> = toks.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::Word,
                TokenKind::Emoticon,
                TokenKind::Word,
                TokenKind::Emoticon,
                TokenKind::Word,
            ]
        );
        // The variation selector is absorbed into the emoji token.
        assert_eq!(toks[3].text, "\u{2764}\u{FE0F}");
        // Offsets stay valid.
        let text = "nice \u{1F600} work \u{2764}\u{FE0F} done";
        for t in tokenize(text) {
            assert_eq!(&text[t.start..t.end()], t.text);
        }
    }

    #[test]
    fn shouting_detection() {
        let toks = tokenize("YOU are THE WORST ok A");
        let shouting: Vec<_> = toks.iter().filter(|t| t.is_shouting()).map(|t| t.text).collect();
        // Single-letter "A" is not shouting; lowercase words are not.
        assert_eq!(shouting, vec!["YOU", "THE", "WORST"]);
    }

    #[test]
    fn spans_mirror_tokens() {
        let texts = [
            "RT @victim: you're PATHETIC!! http://t.co/x #loser :(",
            "nice \u{1F600} work \u{2764}\u{FE0F} done",
            "3,000 tweets... WWW.SITE.COM",
            "",
        ];
        let mut spans = Vec::new();
        for text in texts {
            tokenize_into(text, &mut spans);
            let tokens = tokenize(text);
            assert_eq!(spans.len(), tokens.len(), "{text:?}");
            for (s, t) in spans.iter().zip(&tokens) {
                assert_eq!(s.text(text), t.text);
                assert_eq!(s.kind, t.kind);
                assert_eq!(s.start as usize, t.start);
                assert_eq!(s.end as usize, t.end());
                assert_eq!(s.is_shouting(text), t.is_shouting());
            }
        }
        // The buffer is cleared per call, so reuse never leaks old tokens.
        tokenize_into("one", &mut spans);
        assert_eq!(spans.len(), 1);
    }

    #[test]
    fn realistic_tweet() {
        let toks = kinds("RT @victim: you're PATHETIC!! http://t.co/x #loser :(");
        let kinds_only: Vec<TokenKind> = toks.iter().map(|(_, k)| *k).collect();
        assert_eq!(
            kinds_only,
            vec![
                TokenKind::Word,        // RT
                TokenKind::Mention,     // @victim
                TokenKind::Punctuation, // :
                TokenKind::Word,        // you're
                TokenKind::Word,        // PATHETIC
                TokenKind::Punctuation, // !
                TokenKind::Punctuation, // !
                TokenKind::Url,
                TokenKind::Hashtag,
                TokenKind::Emoticon,
            ]
        );
    }
}
