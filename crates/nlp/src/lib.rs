//! NLP substrate for the `redhanded` framework.
//!
//! Everything the feature-extraction stage (Section IV-B of the paper) needs
//! from natural-language processing, implemented from scratch:
//!
//! * [`tokenizer`] — Twitter-aware typed tokenization (words, URLs,
//!   mentions, hashtags, emoticons, numbers, punctuation);
//! * [`sentence`] — sentence splitting and the stylistic statistics
//!   (`wordsPerSentence`, `meanWordLength`);
//! * [`pos`] — rule/lexicon part-of-speech tagging for the syntactic
//!   features (`cntAdjective`, `cntAdverbs`, `cntVerbs`);
//! * [`sentiment`] — a SentiStrength-style dual-polarity scorer on the
//!   [-5, 5] scale (`sentimentScorePos`, `sentimentScoreNeg`);
//! * [`lexicons`] — the static word lists backing all of the above,
//!   including the 347-entry profanity list that seeds the adaptive
//!   bag-of-words.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lexicons;
pub mod pos;
pub mod sentence;
pub mod sentiment;
pub mod tokenizer;

pub use pos::{count_pos, tag_word, PosCounts, PosTag};
pub use sentence::{count_word_sentences, split_sentences, stylistic_stats, StylisticStats};
pub use sentiment::{score_text, score_tokens, SentimentScore};
pub use tokenizer::{tokenize, Token, TokenKind, Tokenizer};
