//! NLP substrate for the `redhanded` framework.
//!
//! Everything the feature-extraction stage (Section IV-B of the paper) needs
//! from natural-language processing, implemented from scratch:
//!
//! * [`tokenizer`] — Twitter-aware typed tokenization (words, URLs,
//!   mentions, hashtags, emoticons, numbers, punctuation);
//! * [`sentence`] — sentence splitting and the stylistic statistics
//!   (`wordsPerSentence`, `meanWordLength`);
//! * [`pos`] — rule/lexicon part-of-speech tagging for the syntactic
//!   features (`cntAdjective`, `cntAdverbs`, `cntVerbs`);
//! * [`sentiment`] — a SentiStrength-style dual-polarity scorer on the
//!   [-5, 5] scale (`sentimentScorePos`, `sentimentScoreNeg`);
//! * [`lexicons`] — the static word lists backing all of the above,
//!   including the 347-entry profanity list that seeds the adaptive
//!   bag-of-words;
//! * [`intern`] — word interning (string → dense `u32` id) and the
//!   lowercase-arena helper behind the allocation-free extraction path;
//! * [`fxhash`] — the fast non-cryptographic hasher backing every lexicon
//!   table and id-keyed map on the per-token hot path.
//!
//! The tokenizer, sentiment scorer, and sentence counter each come in two
//! forms: a convenience API that allocates per call ([`tokenize`],
//! [`score_tokens`], [`count_word_sentences`]) and a scratch/span API
//! ([`tokenize_into`], [`score_spans`], [`count_word_sentences_spans`])
//! that reuses caller-owned buffers so a steady-state stream consumer
//! performs no per-tweet allocations.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fxhash;
pub mod intern;
pub mod lexicons;
pub mod pos;
pub mod sentence;
pub mod sentiment;
pub mod tokenizer;

pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use intern::{push_lowercase, WordId, WordInterner};
pub use pos::{count_pos, tag_word, PosCounts, PosTag};
pub use sentence::{
    count_word_sentences, count_word_sentences_spans, split_sentences, stylistic_stats,
    StylisticStats,
};
pub use sentiment::{
    score_spans, score_text, score_tokens, score_tokens_with, SentimentScore, SentimentScratch,
};
pub use tokenizer::{tokenize, tokenize_into, Token, TokenKind, TokenSpan, Tokenizer};
