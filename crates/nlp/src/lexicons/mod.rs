//! Lexicon tables and fast lookup structures.
//!
//! The raw tables live in [`data`] (generated; see `DESIGN.md` for
//! provenance). This module wraps them in hash-based lookup structures built
//! lazily on first use, so repeated feature extraction pays only a hash
//! probe per token.

mod data;

pub use data::{
    ADJECTIVES, ADVERBS, BOOSTERS, CONJUNCTIONS, DETERMINERS, DIMINISHERS, INTERJECTIONS,
    NEGATIVE_EMOTICONS, NEGATORS, POSITIVE_EMOTICONS, PREPOSITIONS, PRONOUNS,
    SENTIMENT_VALENCES, STOPWORDS, SWEAR_WORDS, VERBS,
};

use crate::fxhash::{FxHashMap, FxHashSet};
use std::sync::OnceLock;

fn set_of(words: &'static [&'static str]) -> FxHashSet<&'static str> {
    words.iter().copied().collect()
}

macro_rules! lazy_set {
    ($fn_name:ident, $table:ident, $doc:literal) => {
        #[doc = $doc]
        pub fn $fn_name() -> &'static FxHashSet<&'static str> {
            static SET: OnceLock<FxHashSet<&'static str>> = OnceLock::new();
            SET.get_or_init(|| set_of($table))
        }
    };
}

lazy_set!(swear_set, SWEAR_WORDS, "Profanity lexicon as a set (347 entries).");
lazy_set!(stopword_set, STOPWORDS, "Stopword lexicon as a set.");
lazy_set!(negator_set, NEGATORS, "Negation words as a set.");
lazy_set!(diminisher_set, DIMINISHERS, "Diminisher words as a set.");
lazy_set!(adjective_set, ADJECTIVES, "Adjective lexicon as a set.");
lazy_set!(adverb_set, ADVERBS, "Adverb lexicon as a set.");
lazy_set!(verb_set, VERBS, "Verb lexicon as a set.");
lazy_set!(pronoun_set, PRONOUNS, "Pronoun lexicon as a set.");
lazy_set!(determiner_set, DETERMINERS, "Determiner lexicon as a set.");
lazy_set!(preposition_set, PREPOSITIONS, "Preposition lexicon as a set.");
lazy_set!(conjunction_set, CONJUNCTIONS, "Conjunction lexicon as a set.");
lazy_set!(interjection_set, INTERJECTIONS, "Interjection lexicon as a set.");
lazy_set!(positive_emoticon_set, POSITIVE_EMOTICONS, "Positive emoticons as a set.");
lazy_set!(negative_emoticon_set, NEGATIVE_EMOTICONS, "Negative emoticons as a set.");

/// Sentiment valence lookup: term → strength on the SentiStrength scale
/// (positive `2..=5`, negative `-5..=-2`).
pub fn sentiment_map() -> &'static FxHashMap<&'static str, i8> {
    static MAP: OnceLock<FxHashMap<&'static str, i8>> = OnceLock::new();
    MAP.get_or_init(|| SENTIMENT_VALENCES.iter().copied().collect())
}

/// Booster strength lookup: booster word → increment it adds to a following
/// sentiment term.
pub fn booster_map() -> &'static FxHashMap<&'static str, i8> {
    static MAP: OnceLock<FxHashMap<&'static str, i8>> = OnceLock::new();
    MAP.get_or_init(|| BOOSTERS.iter().copied().collect())
}

/// Emoji scored as positive (+2), alongside the ASCII emoticons.
pub static POSITIVE_EMOJI: &[&str] = &[
    "\u{1F600}", "\u{1F601}", "\u{1F602}", "\u{1F603}", "\u{1F604}", "\u{1F60A}",
    "\u{1F60D}", "\u{1F60E}", "\u{1F618}", "\u{1F642}", "\u{1F970}", "\u{1F923}",
    "\u{2764}", "\u{1F495}", "\u{1F44D}", "\u{1F389}", "\u{2728}", "\u{1F973}",
];

/// Emoji scored as negative (-2), alongside the ASCII emoticons.
pub static NEGATIVE_EMOJI: &[&str] = &[
    "\u{1F620}", "\u{1F621}", "\u{1F92C}", "\u{1F61E}", "\u{1F622}", "\u{1F62D}",
    "\u{1F480}", "\u{1F44E}", "\u{1F612}", "\u{1F644}", "\u{1F624}", "\u{1F4A2}",
    "\u{1F63E}", "\u{1F494}", "\u{1F92F}",
];

lazy_set!(positive_emoji_set, POSITIVE_EMOJI, "Positive emoji as a set.");
lazy_set!(negative_emoji_set, NEGATIVE_EMOJI, "Negative emoji as a set.");

/// True when `c` falls in the Unicode blocks the tokenizer treats as emoji.
pub fn is_emoji_char(c: char) -> bool {
    matches!(u32::from(c),
        0x1F300..=0x1FAFF   // Misc symbols & pictographs .. symbols ext-A
        | 0x2600..=0x27BF   // Misc symbols, dingbats (incl. the heart)
        | 0x1F004 | 0x1F0CF
    )
}

/// True when `word` (already lowercased) appears in the profanity lexicon.
pub fn is_swear(word: &str) -> bool {
    swear_set().contains(word)
}

/// True when `word` (already lowercased) is a stopword.
pub fn is_stopword(word: &str) -> bool {
    stopword_set().contains(word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swear_lexicon_has_exactly_347_entries() {
        // The paper's adaptive BoW is seeded with a 347-word list (Fig. 10).
        assert_eq!(SWEAR_WORDS.len(), 347);
        assert_eq!(swear_set().len(), 347, "no duplicate entries");
    }

    #[test]
    fn lexicons_are_lowercase_and_trimmed() {
        for table in [SWEAR_WORDS, STOPWORDS, NEGATORS, ADJECTIVES, ADVERBS, VERBS] {
            for w in table {
                assert_eq!(w.trim(), *w, "{w:?} has surrounding whitespace");
                assert_eq!(
                    w.to_lowercase(),
                    *w,
                    "{w:?} is not lowercase"
                );
                assert!(!w.is_empty());
            }
        }
    }

    #[test]
    fn sentiment_valences_are_on_scale() {
        for (w, v) in SENTIMENT_VALENCES {
            assert!(
                (2..=5).contains(v) || (-5..=-2).contains(v),
                "{w} has off-scale valence {v}"
            );
        }
        assert_eq!(sentiment_map().len(), SENTIMENT_VALENCES.len(), "no duplicates");
    }

    #[test]
    fn booster_increments_are_small_and_positive() {
        for (w, inc) in BOOSTERS {
            assert!((1..=2).contains(inc), "{w} has increment {inc}");
        }
    }

    #[test]
    fn membership_helpers() {
        assert!(is_swear("asshole"));
        assert!(!is_swear("kitten"));
        assert!(is_stopword("the"));
        assert!(is_stopword("rt"));
        assert!(!is_stopword("aggression"));
    }

    #[test]
    fn emoticon_sets_are_disjoint() {
        for e in POSITIVE_EMOTICONS {
            assert!(!negative_emoticon_set().contains(e), "{e} in both sets");
        }
        for e in POSITIVE_EMOJI {
            assert!(!negative_emoji_set().contains(e), "{e} in both emoji sets");
        }
        // Every emoji entry is recognized by the char classifier.
        for e in POSITIVE_EMOJI.iter().chain(NEGATIVE_EMOJI) {
            let c = e.chars().next().unwrap();
            assert!(is_emoji_char(c), "{e} not classified as emoji");
        }
        assert!(!is_emoji_char('a'));
        assert!(!is_emoji_char('!'));
    }

    #[test]
    fn known_words_present() {
        assert!(sentiment_map().contains_key("hate"));
        assert_eq!(sentiment_map()["hate"], -5);
        assert!(sentiment_map()["love"] > 0);
        assert!(adjective_set().contains("ugly"));
        assert!(adverb_set().contains("quickly"));
        assert!(verb_set().contains("running"));
        assert!(negator_set().contains("not"));
    }
}
