//! A fast, non-cryptographic hasher for the per-token lookup tables.
//!
//! Every word of every tweet is probed against several lexicon tables
//! (valence, POS classes, profanity, stopwords) plus the interner, so the
//! hash function sits squarely on the hot path. The standard library's
//! default SipHash defends against adversarial collisions — protection the
//! lexicon tables (static, trusted keys) and `WordId` maps (dense integer
//! keys) do not need, and whose cost they cannot afford at Firehose rates.
//!
//! This is the multiply-rotate-xor scheme used by the Rust compiler
//! ("FxHash"): one rotate, one xor, and one multiply per 8-byte chunk. It
//! is implemented here because the workspace builds offline (see
//! `DESIGN.md` §7 on vendored dependencies).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// The rustc/Firefox multiply-rotate-xor hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while let Some(chunk) = bytes.first_chunk::<8>() {
            self.add_to_hash(u64::from_le_bytes(*chunk));
            bytes = &bytes[8..];
        }
        if let Some(chunk) = bytes.first_chunk::<4>() {
            self.add_to_hash(u64::from(u32::from_le_bytes(*chunk)));
            bytes = &bytes[4..];
        }
        if let Some(chunk) = bytes.first_chunk::<2>() {
            self.add_to_hash(u64::from(u16::from_le_bytes(*chunk)));
            bytes = &bytes[2..];
        }
        if let Some(&b) = bytes.first() {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of(v: impl Hash) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of("asshole"), hash_of("asshole"));
        assert_ne!(hash_of("asshole"), hash_of("asshola"));
        assert_ne!(hash_of(""), hash_of("a"));
        assert_ne!(hash_of(1u32), hash_of(2u32));
        // Words differing only past the 8-byte chunk boundary.
        assert_ne!(hash_of("aaaaaaaab"), hash_of("aaaaaaaac"));
    }

    #[test]
    fn maps_and_sets_behave() {
        let mut m: FxHashMap<&str, i8> = FxHashMap::default();
        m.insert("hate", -5);
        m.insert("love", 4);
        assert_eq!(m.get("hate"), Some(&-5));
        assert_eq!(m.get("like"), None);

        let s: FxHashSet<u32> = (0..1000).collect();
        assert_eq!(s.len(), 1000);
        assert!(s.contains(&999));
        assert!(!s.contains(&1000));
    }
}
