//! Word interning and lowercase-arena utilities for the per-tweet hot path.
//!
//! The adaptive bag-of-words keys its rolling statistics by word. With
//! `String` keys, every observed word costs a heap clone plus a full string
//! hash on each map touch. The [`WordInterner`] maps each distinct
//! (already lowercased) word to a stable dense [`WordId`] exactly once;
//! downstream bookkeeping then hashes and stores plain integers, and the
//! only string allocation left in the steady state is the first sighting of
//! a genuinely new word.
//!
//! By convention the 347-entry profanity lexicon is interned first (see
//! [`WordInterner::with_swear_lexicon`]), so seed membership — the BoW's
//! protected floor and the `cntSwearWords` feature — is an id-range test.

use std::sync::Arc;

use crate::fxhash::FxHashMap;
use crate::lexicons;

/// Dense identifier of an interned word.
///
/// Ids are assigned in interning order starting at 0 and are only
/// meaningful relative to the [`WordInterner`] that produced them; maps
/// keyed by `WordId` must translate through both interners when merging
/// state across interners (see `AdaptiveBow::merge` in the features crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WordId(u32);

impl WordId {
    /// The dense index value (interning order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only bidirectional map between words and dense [`WordId`]s.
///
/// Each word's bytes are stored once behind an `Arc<str>` shared by the
/// forward map and the id table, so cloning an interner (e.g. when forking
/// per-partition BoW state in the distributed engine) copies reference
/// counts, not strings.
#[derive(Debug, Clone, Default)]
pub struct WordInterner {
    ids: FxHashMap<Arc<str>, WordId>,
    words: Vec<Arc<str>>,
}

impl WordInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// An interner pre-loaded with the 347-entry profanity lexicon, in
    /// lexicon order: ids `0..lexicons::SWEAR_WORDS.len()` are exactly the
    /// seed swear words.
    pub fn with_swear_lexicon() -> Self {
        let mut interner = WordInterner::default();
        for w in lexicons::SWEAR_WORDS {
            interner.intern(w);
        }
        interner
    }

    /// The id of `word`, interning it first if it was never seen. Allocates
    /// only on the first sighting of a word.
    pub fn intern(&mut self, word: &str) -> WordId {
        if let Some(&id) = self.ids.get(word) {
            return id;
        }
        let id = WordId(self.words.len() as u32);
        let shared: Arc<str> = Arc::from(word);
        self.words.push(Arc::clone(&shared));
        self.ids.insert(shared, id);
        id
    }

    /// The id of `word`, if it has been interned. Never allocates.
    pub fn get(&self, word: &str) -> Option<WordId> {
        self.ids.get(word).copied()
    }

    /// The word behind `id`.
    ///
    /// # Panics
    /// Panics when `id` did not come from this interner (or a clone of it).
    pub fn resolve(&self, id: WordId) -> &str {
        &self.words[id.index()]
    }

    /// The id at dense `index` (interning order), if one has been assigned.
    /// The inverse of [`WordId::index`], used when deserializing id-keyed
    /// state against a rebuilt interner.
    pub fn id_at(&self, index: usize) -> Option<WordId> {
        if index < self.words.len() {
            Some(WordId(index as u32))
        } else {
            None
        }
    }

    /// Iterate `(id, word)` pairs in dense id order (interning order).
    /// Never allocates — the canonical traversal for serializing id-keyed
    /// state deterministically.
    pub fn iter(&self) -> impl Iterator<Item = (WordId, &str)> {
        self.words.iter().enumerate().map(|(i, w)| (WordId(i as u32), w.as_ref()))
    }

    /// Number of interned words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// Append the lowercase form of `text` to `arena`, returning the appended
/// byte range.
///
/// Pure-ASCII text — the overwhelming majority of tweet words — is lowered
/// byte-wise with no intermediate allocation. Anything else falls back to
/// [`str::to_lowercase`], preserving its context-sensitive mappings (final
/// sigma, expanding ligatures), so the arena contents are byte-identical to
/// per-word `to_lowercase()` calls.
pub fn push_lowercase(arena: &mut String, text: &str) -> (u32, u32) {
    let start = arena.len() as u32;
    if text.is_ascii() {
        if text.bytes().any(|b| b.is_ascii_uppercase()) {
            arena.extend(text.bytes().map(|b| b.to_ascii_lowercase() as char));
        } else {
            // Already lowercase — a straight copy (tweet words usually are).
            arena.push_str(text);
        }
    } else {
        arena.push_str(&text.to_lowercase());
    }
    (start, arena.len() as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut it = WordInterner::new();
        assert!(it.is_empty());
        let a = it.intern("alpha");
        let b = it.intern("beta");
        assert_ne!(a, b);
        assert_eq!(it.intern("alpha"), a, "re-interning returns the same id");
        assert_eq!(it.len(), 2);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(it.resolve(a), "alpha");
        assert_eq!(it.resolve(b), "beta");
        assert_eq!(it.get("alpha"), Some(a));
        assert_eq!(it.get("gamma"), None);
    }

    #[test]
    fn swear_lexicon_occupies_the_id_prefix() {
        let mut it = WordInterner::with_swear_lexicon();
        assert_eq!(it.len(), lexicons::SWEAR_WORDS.len());
        for (i, w) in lexicons::SWEAR_WORDS.iter().enumerate() {
            assert_eq!(it.get(w).unwrap().index(), i);
            assert!(lexicons::is_swear(it.resolve(WordId(i as u32))));
        }
        let extra = it.intern("zorgon");
        assert_eq!(extra.index(), lexicons::SWEAR_WORDS.len());
        assert!(!lexicons::is_swear(it.resolve(extra)));
    }

    #[test]
    fn clones_share_ids() {
        let mut a = WordInterner::new();
        let id = a.intern("word");
        let b = a.clone();
        assert_eq!(b.get("word"), Some(id));
        assert_eq!(b.resolve(id), "word");
    }

    #[test]
    fn push_lowercase_matches_to_lowercase() {
        let mut arena = String::new();
        for text in ["HELLO", "don't", "Καλά", "ΟΔΟΣ", "İstanbul", "ﬁn", "mixedCASE123"] {
            let (s, e) = push_lowercase(&mut arena, text);
            assert_eq!(&arena[s as usize..e as usize], text.to_lowercase(), "{text}");
        }
        // Ranges tile the arena without gaps.
        let mut arena2 = String::new();
        let r1 = push_lowercase(&mut arena2, "ABC");
        let r2 = push_lowercase(&mut arena2, "DeF");
        assert_eq!((r1, r2), ((0, 3), (3, 6)));
        assert_eq!(arena2, "abcdef");
    }
}
