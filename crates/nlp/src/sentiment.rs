//! SentiStrength-style dual sentiment scorer.
//!
//! The paper estimates "how positive or negative is the sentiment expressed
//! in the posted content (on a [-5, 5] scale)" with the SentiStrength tool
//! (Section IV-B). This module implements the documented SentiStrength
//! algorithm over the built-in valence lexicon:
//!
//! * each term carries a valence (positive `2..=5`, negative `-5..=-2`);
//! * *boosters* before a term strengthen it (`very bad` → −4),
//!   *diminishers* weaken it;
//! * *negators* within two tokens before a term invert it and reduce its
//!   magnitude by one (`not good` → −2);
//! * repeated-letter emphasis (`soooo`) and a following exclamation mark
//!   strengthen a term by one; an all-caps term likewise;
//! * emoticons contribute ±2;
//! * the text's **positive score** is the maximum positive term strength
//!   (floor `1`), the **negative score** is the minimum negative term
//!   strength (ceiling `-1`) — SentiStrength's dual output.

use crate::intern::push_lowercase;
use crate::lexicons;
use crate::tokenizer::{is_shouting_text, Token, TokenKind, TokenSpan};

/// Dual sentiment score of a text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SentimentScore {
    /// Positive strength in `1..=5` (`1` = no positive sentiment).
    pub positive: i8,
    /// Negative strength in `-5..=-1` (`-1` = no negative sentiment).
    pub negative: i8,
}

impl SentimentScore {
    /// The neutral score.
    pub const NEUTRAL: SentimentScore = SentimentScore { positive: 1, negative: -1 };

    /// Single scalar in `[-5, 5]`: whichever pole is stronger, signed
    /// (ties → 0). Useful for compact reporting.
    pub fn polarity(&self) -> i8 {
        match self.positive.cmp(&(-self.negative)) {
            std::cmp::Ordering::Greater => self.positive,
            std::cmp::Ordering::Less => self.negative,
            std::cmp::Ordering::Equal => 0,
        }
    }
}

/// Collapse letter runs longer than two (`coooool` → `cool`, `coool` →
/// `cool`) into `out`, reporting whether any run of three or more was
/// present.
fn squeeze_repeats_into(word: &str, out: &mut String) -> bool {
    let mut prev: Option<char> = None;
    let mut run = 0usize;
    let mut emphasized = false;
    for c in word.chars() {
        if Some(c) == prev {
            run += 1;
            if run >= 3 {
                emphasized = true;
            }
            if run <= 2 {
                out.push(c);
            }
        } else {
            prev = Some(c);
            run = 1;
            out.push(c);
        }
    }
    emphasized
}

/// Allocating form of [`squeeze_repeats_into`].
#[cfg(test)]
fn squeeze_repeats(word: &str) -> (String, bool) {
    let mut out = String::with_capacity(word.len());
    let emphasized = squeeze_repeats_into(word, &mut out);
    (out, emphasized)
}

/// True when `word` contains a run of three or more identical characters —
/// the emphasis flag of [`squeeze_repeats`] without building the squeezed
/// spelling.
fn has_triple_repeat(word: &str) -> bool {
    let mut prev: Option<char> = None;
    let mut run = 0usize;
    for c in word.chars() {
        if Some(c) == prev {
            run += 1;
            if run >= 3 {
                return true;
            }
        } else {
            prev = Some(c);
            run = 1;
        }
    }
    false
}

/// True when `word` contains two identical adjacent characters — the
/// precondition for either fallback spelling of [`lookup_valence_with`] to
/// differ from the raw one.
fn has_adjacent_repeat(word: &str) -> bool {
    let mut prev: Option<char> = None;
    for c in word.chars() {
        if Some(c) == prev {
            return true;
        }
        prev = Some(c);
    }
    false
}

/// Valence of a lowercased word, trying the raw spelling, then the
/// double-letter squeezed form, then the fully deduplicated form so
/// emphasized spellings ("looooove", "baaad") still hit the lexicon.
/// `squeeze` and `dedup` are reusable work buffers (overwritten).
fn lookup_valence_with(lower: &str, squeeze: &mut String, dedup: &mut String) -> Option<i8> {
    let map = lexicons::sentiment_map();
    if let Some(&v) = map.get(lower) {
        return Some(v);
    }
    // Without a doubled character both fallback spellings equal `lower`,
    // which already missed.
    if !has_adjacent_repeat(lower) {
        return None;
    }
    squeeze.clear();
    squeeze_repeats_into(lower, squeeze);
    if squeeze.as_str() != lower {
        if let Some(&v) = map.get(squeeze.as_str()) {
            return Some(v);
        }
    }
    dedup.clear();
    let mut prev = None;
    for c in lower.chars() {
        if Some(c) != prev {
            dedup.push(c);
        }
        prev = Some(c);
    }
    if dedup.as_str() != lower {
        if let Some(&v) = map.get(dedup.as_str()) {
            return Some(v);
        }
    }
    None
}

fn clamp_strength(v: i32) -> i8 {
    if v > 0 {
        v.clamp(2, 5) as i8
    } else if v < 0 {
        v.clamp(-5, -2) as i8
    } else {
        0
    }
}

/// Reusable buffers for the sentiment scorer.
///
/// One scratch amortizes the per-tweet allocations of the scoring pass —
/// the lowercased-word table and the squeezed-spelling work strings —
/// across a whole stream. Only non-ASCII word tokens still allocate (the
/// Unicode lowercasing fallback of [`push_lowercase`]).
#[derive(Debug, Clone, Default)]
pub struct SentimentScratch {
    /// Per-token byte range of the lowercased form in `arena` (words only).
    lowers: Vec<Option<(u32, u32)>>,
    /// Lowercase arena backing `lowers`.
    arena: String,
    /// Work buffer for the double-letter squeezed spelling.
    squeeze: String,
    /// Work buffer for the fully deduplicated spelling.
    dedup: String,
}

impl SentimentScratch {
    /// An empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The scoring algorithm, generic over how token texts are accessed:
/// `tok(i)` returns the `i`-th token's text and kind. Both the borrowed
/// [`Token`] slice and the offset-based [`TokenSpan`] slice provide it.
fn score_core<'t>(
    n: usize,
    tok: &dyn Fn(usize) -> (&'t str, TokenKind),
    scratch: &mut SentimentScratch,
) -> SentimentScore {
    let SentimentScratch { lowers, arena, squeeze, dedup } = scratch;
    let mut max_pos: i8 = 1;
    let mut min_neg: i8 = -1;

    // Lowercased word texts for context lookups (boosters/negators).
    lowers.clear();
    arena.clear();
    for i in 0..n {
        let (text, kind) = tok(i);
        lowers.push((kind == TokenKind::Word).then(|| push_lowercase(arena, text)));
    }
    fn lower_of<'a>(ranges: &[Option<(u32, u32)>], arena: &'a str, j: usize) -> Option<&'a str> {
        ranges[j].map(|(s, e)| &arena[s as usize..e as usize])
    }

    for i in 0..n {
        let (text, kind) = tok(i);
        let base: i32 = match kind {
            TokenKind::Emoticon => {
                // ASCII emoticons and emoji both score ±2; a variation
                // selector may trail an emoji token.
                let bare = text.trim_end_matches('\u{FE0F}');
                if lexicons::positive_emoticon_set().contains(text)
                    || lexicons::positive_emoji_set().contains(bare)
                {
                    2
                } else if lexicons::negative_emoticon_set().contains(text)
                    || lexicons::negative_emoji_set().contains(bare)
                {
                    -2
                } else {
                    0
                }
            }
            // Word tokens always have a lowercase range, but scoring 0 on a
            // miss is the panic-free equivalent.
            TokenKind::Word => lower_of(lowers, arena, i)
                .and_then(|lower| lookup_valence_with(lower, squeeze, dedup))
                .map_or(0, |v| v as i32),
            _ => 0,
        };
        if base == 0 {
            continue;
        }
        let mut strength = base;
        let sign = if base > 0 { 1 } else { -1 };

        if kind == TokenKind::Word {
            // Booster / diminisher immediately before the term.
            if i > 0 {
                if let Some(prev) = lower_of(lowers, arena, i - 1) {
                    if let Some(&inc) = lexicons::booster_map().get(prev) {
                        strength += sign * inc as i32;
                    } else if lexicons::diminisher_set().contains(prev) {
                        strength -= sign;
                    }
                }
            }
            // Negator within the two preceding word tokens inverts the term
            // and reduces its magnitude by one.
            let negated = (i.saturating_sub(2)..i).any(|j| {
                lower_of(lowers, arena, j).is_some_and(|w| lexicons::negator_set().contains(w))
            });
            if negated {
                strength = -sign * (strength.abs() - 1);
            }
            // Emphasis: repeated letters or all-caps spelling. Repeat runs
            // survive lowercasing, so the arena form is checked.
            if lower_of(lowers, arena, i).is_some_and(has_triple_repeat) || is_shouting_text(text) {
                strength += if strength > 0 { 1 } else { -1 };
            }
        }
        // A following exclamation mark strengthens the term.
        if i + 1 < n {
            let (next_text, next_kind) = tok(i + 1);
            if next_kind == TokenKind::Punctuation && next_text == "!" {
                strength += if strength > 0 { 1 } else { -1 };
            }
        }

        let s = clamp_strength(strength);
        if s > 0 {
            max_pos = max_pos.max(s);
        } else if s < 0 {
            min_neg = min_neg.min(s);
        }
    }
    SentimentScore { positive: max_pos, negative: min_neg }
}

/// Score pre-tokenized text.
///
/// `tokens` must come from [`crate::tokenizer::tokenize`] on the *raw* text:
/// punctuation and emoticons carry signal here, so sentiment is computed
/// before the pipeline's cleaning step. Allocates a fresh
/// [`SentimentScratch`] per call — hot loops should hold one and call
/// [`score_tokens_with`] or [`score_spans`] instead.
pub fn score_tokens(tokens: &[Token<'_>]) -> SentimentScore {
    score_tokens_with(tokens, &mut SentimentScratch::new())
}

/// [`score_tokens`] with caller-provided scratch buffers.
pub fn score_tokens_with(tokens: &[Token<'_>], scratch: &mut SentimentScratch) -> SentimentScore {
    score_core(tokens.len(), &|i| (tokens[i].text, tokens[i].kind), scratch)
}

/// Score offset-based token spans against their source `text` with
/// caller-provided scratch buffers — the allocation-free form used by the
/// feature extractor's hot path.
pub fn score_spans(
    text: &str,
    spans: &[TokenSpan],
    scratch: &mut SentimentScratch,
) -> SentimentScore {
    score_core(spans.len(), &|i| (spans[i].text(text), spans[i].kind), scratch)
}

/// Tokenize and score `text` in one call.
pub fn score_text(text: &str) -> SentimentScore {
    score_tokens(&crate::tokenizer::tokenize(text))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neutral_text() {
        let s = score_text("the table has four legs");
        assert_eq!(s, SentimentScore::NEUTRAL);
        assert_eq!(s.polarity(), 0);
    }

    #[test]
    fn empty_text() {
        assert_eq!(score_text(""), SentimentScore::NEUTRAL);
    }

    #[test]
    fn simple_polarity() {
        let s = score_text("what a wonderful day");
        assert_eq!(s.positive, 4);
        assert_eq!(s.negative, -1);
        let s = score_text("this is terrible");
        assert_eq!(s.positive, 1);
        assert_eq!(s.negative, -4);
    }

    #[test]
    fn dual_output_keeps_both_poles() {
        let s = score_text("I love it but I hate the price");
        assert_eq!(s.positive, 4);
        assert_eq!(s.negative, -5);
    }

    #[test]
    fn booster_strengthens() {
        let plain = score_text("that was bad");
        let boosted = score_text("that was very bad");
        assert!(boosted.negative < plain.negative);
        assert_eq!(boosted.negative, -4);
    }

    #[test]
    fn booster_caps_at_scale_limit() {
        let s = score_text("absolutely disgusting");
        assert_eq!(s.negative, -5, "clamped to -5");
    }

    #[test]
    fn diminisher_weakens() {
        let plain = score_text("that was awful");
        let dim = score_text("that was slightly awful");
        assert!(dim.negative > plain.negative);
    }

    #[test]
    fn negation_inverts() {
        // "not good": good(+3) → inverted, magnitude-1 → -2.
        let s = score_text("this is not good");
        assert_eq!(s.positive, 1);
        assert_eq!(s.negative, -2);
        // "never hate": hate(-5) → +4.
        let s = score_text("I could never hate you");
        assert_eq!(s.positive, 4);
        assert_eq!(s.negative, -1);
    }

    #[test]
    fn negation_reaches_across_one_token() {
        // Negator two words before the term still applies.
        let s = score_text("not a good idea");
        assert_eq!(s.negative, -2);
    }

    #[test]
    fn exclamation_strengthens() {
        let plain = score_text("that was bad");
        let excl = score_text("that was bad !");
        assert!(excl.negative < plain.negative);
    }

    #[test]
    fn repeated_letters_hit_lexicon_and_emphasize() {
        let s = score_text("I looooove this");
        assert_eq!(s.positive, 5, "love(+4) + emphasis = 5");
    }

    #[test]
    fn all_caps_emphasizes() {
        let plain = score_text("you are pathetic");
        let caps = score_text("you are PATHETIC");
        assert!(caps.negative < plain.negative);
    }

    #[test]
    fn emoticons_score() {
        let s = score_text("meeting at noon :)");
        assert_eq!(s.positive, 2);
        let s = score_text("meeting at noon :(");
        assert_eq!(s.negative, -2);
    }

    #[test]
    fn emoji_score() {
        let s = score_text("great job \u{1F389}");
        assert_eq!(s.positive, 3, "word valence (great = +3) dominates the +2 emoji");
        let s = score_text("meeting moved \u{1F621}");
        assert_eq!(s.negative, -2, "angry emoji scores negative");
        let s = score_text("ok \u{2764}\u{FE0F}");
        assert_eq!(s.positive, 2, "heart with variation selector");
    }

    #[test]
    fn scores_stay_on_scale() {
        for text in [
            "ABSOLUTELY DISGUSTING!!! you VILE wretched SCUM",
            "incredibly absolutely magnificently wonderful amazing!!!",
            "not not not good bad terrible love hate",
        ] {
            let s = score_text(text);
            assert!((1..=5).contains(&s.positive), "{text}: {s:?}");
            assert!((-5..=-1).contains(&s.negative), "{text}: {s:?}");
        }
    }

    #[test]
    fn polarity_scalar() {
        assert_eq!(score_text("wonderful").polarity(), 4);
        assert_eq!(score_text("terrible").polarity(), -4);
        assert_eq!(score_text("ok fine whatever").polarity(), 0);
    }

    #[test]
    fn scratch_and_span_paths_match_allocating_path() {
        let mut scratch = SentimentScratch::new();
        let mut spans = Vec::new();
        for text in [
            "what a wonderful day",
            "this is not good !",
            "ABSOLUTELY DISGUSTING!!! you VILE wretched SCUM",
            "I looooove this :) but haaaate that :(",
            "great job \u{1F389} ok \u{2764}\u{FE0F}",
            "Καλά VERY bad day",
            "",
        ] {
            let tokens = crate::tokenizer::tokenize(text);
            crate::tokenizer::tokenize_into(text, &mut spans);
            let expected = score_tokens(&tokens);
            // The same scratch is reused across inputs on purpose: stale
            // state from the previous text must never leak into the next.
            assert_eq!(score_tokens_with(&tokens, &mut scratch), expected, "{text:?}");
            assert_eq!(score_spans(text, &spans, &mut scratch), expected, "{text:?}");
        }
    }

    #[test]
    fn squeeze_repeats_behaviour() {
        assert_eq!(squeeze_repeats("cool"), ("cool".into(), false));
        assert_eq!(squeeze_repeats("coool"), ("cool".into(), true));
        assert_eq!(squeeze_repeats("cooooool"), ("cool".into(), true));
        assert_eq!(squeeze_repeats(""), (String::new(), false));
    }
}
