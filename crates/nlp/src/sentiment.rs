//! SentiStrength-style dual sentiment scorer.
//!
//! The paper estimates "how positive or negative is the sentiment expressed
//! in the posted content (on a [-5, 5] scale)" with the SentiStrength tool
//! (Section IV-B). This module implements the documented SentiStrength
//! algorithm over the built-in valence lexicon:
//!
//! * each term carries a valence (positive `2..=5`, negative `-5..=-2`);
//! * *boosters* before a term strengthen it (`very bad` → −4),
//!   *diminishers* weaken it;
//! * *negators* within two tokens before a term invert it and reduce its
//!   magnitude by one (`not good` → −2);
//! * repeated-letter emphasis (`soooo`) and a following exclamation mark
//!   strengthen a term by one; an all-caps term likewise;
//! * emoticons contribute ±2;
//! * the text's **positive score** is the maximum positive term strength
//!   (floor `1`), the **negative score** is the minimum negative term
//!   strength (ceiling `-1`) — SentiStrength's dual output.

use crate::lexicons;
use crate::tokenizer::{Token, TokenKind};

/// Dual sentiment score of a text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SentimentScore {
    /// Positive strength in `1..=5` (`1` = no positive sentiment).
    pub positive: i8,
    /// Negative strength in `-5..=-1` (`-1` = no negative sentiment).
    pub negative: i8,
}

impl SentimentScore {
    /// The neutral score.
    pub const NEUTRAL: SentimentScore = SentimentScore { positive: 1, negative: -1 };

    /// Single scalar in `[-5, 5]`: whichever pole is stronger, signed
    /// (ties → 0). Useful for compact reporting.
    pub fn polarity(&self) -> i8 {
        match self.positive.cmp(&(-self.negative)) {
            std::cmp::Ordering::Greater => self.positive,
            std::cmp::Ordering::Less => self.negative,
            std::cmp::Ordering::Equal => 0,
        }
    }
}

/// Collapse letter runs longer than two (`coooool` → `cool`, `coool` →
/// `cool`) and report whether any run of three or more was present.
fn squeeze_repeats(word: &str) -> (String, bool) {
    let mut out = String::with_capacity(word.len());
    let mut prev: Option<char> = None;
    let mut run = 0usize;
    let mut emphasized = false;
    for c in word.chars() {
        if Some(c) == prev {
            run += 1;
            if run >= 3 {
                emphasized = true;
            }
            if run <= 2 {
                out.push(c);
            }
        } else {
            prev = Some(c);
            run = 1;
            out.push(c);
        }
    }
    (out, emphasized)
}

fn lookup_valence(lower: &str) -> Option<i8> {
    let map = lexicons::sentiment_map();
    if let Some(&v) = map.get(lower) {
        return Some(v);
    }
    // Try the double-letter and single-letter squeezed forms so emphasized
    // spellings ("looooove", "baaad") still hit the lexicon.
    let (squeezed, _) = squeeze_repeats(lower);
    if squeezed != lower {
        if let Some(&v) = map.get(squeezed.as_str()) {
            return Some(v);
        }
    }
    let fully: String = {
        let mut s = String::with_capacity(lower.len());
        let mut prev = None;
        for c in lower.chars() {
            if Some(c) != prev {
                s.push(c);
            }
            prev = Some(c);
        }
        s
    };
    if fully != lower {
        if let Some(&v) = map.get(fully.as_str()) {
            return Some(v);
        }
    }
    None
}

fn clamp_strength(v: i32) -> i8 {
    if v > 0 {
        v.clamp(2, 5) as i8
    } else if v < 0 {
        v.clamp(-5, -2) as i8
    } else {
        0
    }
}

/// Score pre-tokenized text.
///
/// `tokens` must come from [`crate::tokenizer::tokenize`] on the *raw* text:
/// punctuation and emoticons carry signal here, so sentiment is computed
/// before the pipeline's cleaning step.
pub fn score_tokens(tokens: &[Token<'_>]) -> SentimentScore {
    let mut max_pos: i8 = 1;
    let mut min_neg: i8 = -1;

    // Lowercased word texts for context lookups (boosters/negators).
    let lowers: Vec<Option<String>> = tokens
        .iter()
        .map(|t| (t.kind == TokenKind::Word).then(|| t.text.to_lowercase()))
        .collect();

    for (i, tok) in tokens.iter().enumerate() {
        let base: i32 = match tok.kind {
            TokenKind::Emoticon => {
                // ASCII emoticons and emoji both score ±2; a variation
                // selector may trail an emoji token.
                let bare = tok.text.trim_end_matches('\u{FE0F}');
                if lexicons::positive_emoticon_set().contains(tok.text)
                    || lexicons::positive_emoji_set().contains(bare)
                {
                    2
                } else if lexicons::negative_emoticon_set().contains(tok.text)
                    || lexicons::negative_emoji_set().contains(bare)
                {
                    -2
                } else {
                    0
                }
            }
            TokenKind::Word => {
                let lower = lowers[i].as_deref().expect("word token has lowercase form");
                match lookup_valence(lower) {
                    Some(v) => v as i32,
                    None => 0,
                }
            }
            _ => 0,
        };
        if base == 0 {
            continue;
        }
        let mut strength = base;
        let sign = if base > 0 { 1 } else { -1 };

        if tok.kind == TokenKind::Word {
            // Booster / diminisher immediately before the term.
            if i > 0 {
                if let Some(prev) = lowers[i - 1].as_deref() {
                    if let Some(&inc) = lexicons::booster_map().get(prev) {
                        strength += sign * inc as i32;
                    } else if lexicons::diminisher_set().contains(prev) {
                        strength -= sign;
                    }
                }
            }
            // Negator within the two preceding word tokens inverts the term
            // and reduces its magnitude by one.
            let negated = (i.saturating_sub(2)..i).any(|j| {
                lowers[j].as_deref().is_some_and(|w| lexicons::negator_set().contains(w))
            });
            if negated {
                strength = -sign * (strength.abs() - 1);
            }
            // Emphasis: repeated letters or all-caps spelling.
            let (_, emphasized) = squeeze_repeats(&tok.text.to_lowercase());
            if emphasized || tok.is_shouting() {
                strength += if strength > 0 { 1 } else { -1 };
            }
        }
        // A following exclamation mark strengthens the term.
        if tokens.get(i + 1).is_some_and(|t| t.kind == TokenKind::Punctuation && t.text == "!") {
            strength += if strength > 0 { 1 } else { -1 };
        }

        let s = clamp_strength(strength);
        if s > 0 {
            max_pos = max_pos.max(s);
        } else if s < 0 {
            min_neg = min_neg.min(s);
        }
    }
    SentimentScore { positive: max_pos, negative: min_neg }
}

/// Tokenize and score `text` in one call.
pub fn score_text(text: &str) -> SentimentScore {
    score_tokens(&crate::tokenizer::tokenize(text))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neutral_text() {
        let s = score_text("the table has four legs");
        assert_eq!(s, SentimentScore::NEUTRAL);
        assert_eq!(s.polarity(), 0);
    }

    #[test]
    fn empty_text() {
        assert_eq!(score_text(""), SentimentScore::NEUTRAL);
    }

    #[test]
    fn simple_polarity() {
        let s = score_text("what a wonderful day");
        assert_eq!(s.positive, 4);
        assert_eq!(s.negative, -1);
        let s = score_text("this is terrible");
        assert_eq!(s.positive, 1);
        assert_eq!(s.negative, -4);
    }

    #[test]
    fn dual_output_keeps_both_poles() {
        let s = score_text("I love it but I hate the price");
        assert_eq!(s.positive, 4);
        assert_eq!(s.negative, -5);
    }

    #[test]
    fn booster_strengthens() {
        let plain = score_text("that was bad");
        let boosted = score_text("that was very bad");
        assert!(boosted.negative < plain.negative);
        assert_eq!(boosted.negative, -4);
    }

    #[test]
    fn booster_caps_at_scale_limit() {
        let s = score_text("absolutely disgusting");
        assert_eq!(s.negative, -5, "clamped to -5");
    }

    #[test]
    fn diminisher_weakens() {
        let plain = score_text("that was awful");
        let dim = score_text("that was slightly awful");
        assert!(dim.negative > plain.negative);
    }

    #[test]
    fn negation_inverts() {
        // "not good": good(+3) → inverted, magnitude-1 → -2.
        let s = score_text("this is not good");
        assert_eq!(s.positive, 1);
        assert_eq!(s.negative, -2);
        // "never hate": hate(-5) → +4.
        let s = score_text("I could never hate you");
        assert_eq!(s.positive, 4);
        assert_eq!(s.negative, -1);
    }

    #[test]
    fn negation_reaches_across_one_token() {
        // Negator two words before the term still applies.
        let s = score_text("not a good idea");
        assert_eq!(s.negative, -2);
    }

    #[test]
    fn exclamation_strengthens() {
        let plain = score_text("that was bad");
        let excl = score_text("that was bad !");
        assert!(excl.negative < plain.negative);
    }

    #[test]
    fn repeated_letters_hit_lexicon_and_emphasize() {
        let s = score_text("I looooove this");
        assert_eq!(s.positive, 5, "love(+4) + emphasis = 5");
    }

    #[test]
    fn all_caps_emphasizes() {
        let plain = score_text("you are pathetic");
        let caps = score_text("you are PATHETIC");
        assert!(caps.negative < plain.negative);
    }

    #[test]
    fn emoticons_score() {
        let s = score_text("meeting at noon :)");
        assert_eq!(s.positive, 2);
        let s = score_text("meeting at noon :(");
        assert_eq!(s.negative, -2);
    }

    #[test]
    fn emoji_score() {
        let s = score_text("great job \u{1F389}");
        assert_eq!(s.positive, 3, "word valence (great = +3) dominates the +2 emoji");
        let s = score_text("meeting moved \u{1F621}");
        assert_eq!(s.negative, -2, "angry emoji scores negative");
        let s = score_text("ok \u{2764}\u{FE0F}");
        assert_eq!(s.positive, 2, "heart with variation selector");
    }

    #[test]
    fn scores_stay_on_scale() {
        for text in [
            "ABSOLUTELY DISGUSTING!!! you VILE wretched SCUM",
            "incredibly absolutely magnificently wonderful amazing!!!",
            "not not not good bad terrible love hate",
        ] {
            let s = score_text(text);
            assert!((1..=5).contains(&s.positive), "{text}: {s:?}");
            assert!((-5..=-1).contains(&s.negative), "{text}: {s:?}");
        }
    }

    #[test]
    fn polarity_scalar() {
        assert_eq!(score_text("wonderful").polarity(), 4);
        assert_eq!(score_text("terrible").polarity(), -4);
        assert_eq!(score_text("ok fine whatever").polarity(), 0);
    }

    #[test]
    fn squeeze_repeats_behaviour() {
        assert_eq!(squeeze_repeats("cool"), ("cool".into(), false));
        assert_eq!(squeeze_repeats("coool"), ("cool".into(), true));
        assert_eq!(squeeze_repeats("cooooool"), ("cool".into(), true));
        assert_eq!(squeeze_repeats(""), (String::new(), false));
    }
}
