//! Typed metrics registry: monotonic counters, gauges, and fixed-bucket
//! log-scale latency histograms.
//!
//! Design constraints (DESIGN.md §10):
//!
//! * **Alloc-free hot path.** All storage is registered (and therefore
//!   allocated) at construction time; `inc`/`add`/`set`/`set_max`/`record`
//!   touch pre-allocated slots only, so they are legal inside the
//!   `hot-path-alloc` lint's designated hot functions.
//! * **No panics.** An id from a different registry is a silent no-op (or
//!   zero on read), never an index panic — a metrics bug must not abort
//!   the stream.
//! * **Determinism classes.** Every metric is tagged [`Determinism`]:
//!   `Deterministic` metrics count semantic, exactly-once facts (records
//!   processed, alerts raised, drift detections) and are checkpointed and
//!   compared bit-identically between a fault-free and a recovered chaos
//!   run; `Runtime` metrics measure the *execution* (task durations,
//!   retries, checkpoint bytes) and legitimately differ run-to-run, so
//!   they are excluded from snapshots and chaos comparisons.
//! * **Associative merge.** Partition- or incarnation-local registries
//!   merge into a parent by metric name: counters add, gauges keep the
//!   max, histograms add bucket-wise with `wrapping_add`, which makes the
//!   merge exactly associative (property-tested in `tests/proptests.rs`).

use redhanded_types::{Checkpoint, Error, Result, SnapshotReader, SnapshotWriter};

/// Whether a metric is part of the exactly-once deterministic state or a
/// runtime-only measurement. See the module docs for the contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Determinism {
    /// Semantic counts: checkpointed, replay-stable, chaos-compared.
    Deterministic,
    /// Execution measurements: never checkpointed or chaos-compared.
    Runtime,
}

impl Determinism {
    /// Stable label used by the sinks (`deterministic` / `runtime`).
    pub fn label(self) -> &'static str {
        match self {
            Determinism::Deterministic => "deterministic",
            Determinism::Runtime => "runtime",
        }
    }
}

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Number of buckets in every histogram: bucket 0 holds the value 0, bucket
/// `b` (1..=40) holds values in `[2^(b-1), 2^b)`, and values of 2^40 or more
/// clamp into the last bucket. 2^40 µs is ~12.7 days, far beyond any latency
/// this system measures.
pub const HISTOGRAM_BUCKETS: usize = 41;

/// Fixed-bucket log2 histogram over `u64` samples, pre-allocated inline so
/// [`Histogram::record`] never allocates.
///
/// `count`/`sum`/bucket increments use `wrapping_add` and `max` folds the
/// maxima, so [`Histogram::merge_from`] is exactly associative and
/// commutative for arbitrary inputs — partition-local histograms can be
/// merged in any grouping and yield bit-identical state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

fn bucket_index(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `b` (`u64::MAX` for the clamp bucket).
fn bucket_upper(b: usize) -> u64 {
    if b + 1 >= HISTOGRAM_BUCKETS {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample. Alloc-free and panic-free.
    pub fn record(&mut self, v: u64) {
        let b = bucket_index(v);
        self.buckets[b] = self.buckets[b].wrapping_add(1);
        self.count = self.count.wrapping_add(1);
        self.sum = self.sum.wrapping_add(v);
        if v > self.max {
            self.max = v;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (wrapping).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value; 0.0 when empty (never NaN).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts, low to high.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Approximate quantile `q` in `[0, 1]`: the inclusive upper bound of
    /// the first bucket whose cumulative count reaches `ceil(q * count)`,
    /// clamped to the exact observed max. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(n);
            if cum >= target {
                return bucket_upper(b).min(self.max);
            }
        }
        self.max
    }

    /// Median (bucket-resolution).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (bucket-resolution).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (bucket-resolution).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold `other` into `self` (bucket-wise wrapping add, max of maxima).
    pub fn merge_from(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.wrapping_add(*b);
        }
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    fn snapshot_into(&self, w: &mut SnapshotWriter) {
        for &b in &self.buckets {
            w.write_u64(b);
        }
        w.write_u64(self.count);
        w.write_u64(self.sum);
        w.write_u64(self.max);
    }

    fn restore_from(&mut self, r: &mut SnapshotReader) -> Result<()> {
        for b in self.buckets.iter_mut() {
            *b = r.read_u64()?;
        }
        self.count = r.read_u64()?;
        self.sum = r.read_u64()?;
        self.max = r.read_u64()?;
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct Meta {
    name: &'static str,
    det: Determinism,
}

/// The metrics registry: name- and determinism-tagged counters, gauges,
/// and histograms.
///
/// Registration (`counter`/`gauge`/`histogram`) allocates and is meant for
/// construction time; the record operations are alloc-free. Names are
/// `&'static str` so the registry never copies strings and merge-by-name
/// needs no hashing.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: Vec<(Meta, u64)>,
    gauges: Vec<(Meta, f64)>,
    histograms: Vec<(Meta, Histogram)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register (or look up) a counter. Re-registering an existing name
    /// returns the original id; the determinism tag of the first
    /// registration wins.
    pub fn counter(&mut self, name: &'static str, det: Determinism) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(m, _)| m.name == name) {
            return CounterId(i);
        }
        self.counters.push((Meta { name, det }, 0));
        CounterId(self.counters.len() - 1)
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&mut self, name: &'static str, det: Determinism) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(m, _)| m.name == name) {
            return GaugeId(i);
        }
        self.gauges.push((Meta { name, det }, 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Register (or look up) a histogram.
    pub fn histogram(&mut self, name: &'static str, det: Determinism) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|(m, _)| m.name == name) {
            return HistogramId(i);
        }
        self.histograms.push((Meta { name, det }, Histogram::new()));
        HistogramId(self.histograms.len() - 1)
    }

    /// Increment a counter by 1. Alloc-free; unknown ids are a no-op.
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Increment a counter by `n`. Alloc-free; unknown ids are a no-op.
    pub fn add(&mut self, id: CounterId, n: u64) {
        if let Some((_, v)) = self.counters.get_mut(id.0) {
            *v = v.wrapping_add(n);
        }
    }

    /// Set a gauge. Alloc-free; unknown ids are a no-op.
    pub fn set(&mut self, id: GaugeId, v: f64) {
        if let Some((_, g)) = self.gauges.get_mut(id.0) {
            *g = v;
        }
    }

    /// Raise a gauge to `v` if `v` is larger (NaN is ignored). Alloc-free.
    pub fn set_max(&mut self, id: GaugeId, v: f64) {
        if let Some((_, g)) = self.gauges.get_mut(id.0) {
            if v > *g {
                *g = v;
            }
        }
    }

    /// Record a histogram sample. Alloc-free; unknown ids are a no-op.
    pub fn record(&mut self, id: HistogramId, v: u64) {
        if let Some((_, h)) = self.histograms.get_mut(id.0) {
            h.record(v);
        }
    }

    /// Current counter value (0 for unknown ids).
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters.get(id.0).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Current gauge value (0.0 for unknown ids).
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges.get(id.0).map(|(_, v)| *v).unwrap_or(0.0)
    }

    /// Borrow a histogram (None for unknown ids).
    pub fn histogram_ref(&self, id: HistogramId) -> Option<&Histogram> {
        self.histograms.get(id.0).map(|(_, h)| h)
    }

    /// Look up a counter's value by name (tests, sinks).
    pub fn counter_by_name(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(m, _)| m.name == name).map(|(_, v)| *v)
    }

    /// Look up a gauge's value by name.
    pub fn gauge_by_name(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(m, _)| m.name == name).map(|(_, v)| *v)
    }

    /// Look up a histogram by name.
    pub fn histogram_by_name(&self, name: &str) -> Option<&Histogram> {
        self.histograms.iter().find(|(m, _)| m.name == name).map(|(_, h)| h)
    }

    /// Iterate counters as `(name, determinism, value)`.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, Determinism, u64)> + '_ {
        self.counters.iter().map(|(m, v)| (m.name, m.det, *v))
    }

    /// Iterate gauges as `(name, determinism, value)`.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, Determinism, f64)> + '_ {
        self.gauges.iter().map(|(m, v)| (m.name, m.det, *v))
    }

    /// Iterate histograms as `(name, determinism, histogram)`.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, Determinism, &Histogram)> + '_ {
        self.histograms.iter().map(|(m, h)| (m.name, m.det, h))
    }

    /// Fold another registry into this one by metric name: counters add,
    /// gauges keep the max, histograms merge bucket-wise. Metrics present
    /// only in `other` are registered here (with `other`'s determinism
    /// tag), so merging never drops data.
    pub fn merge_from(&mut self, other: &Registry) {
        for (m, v) in &other.counters {
            let id = self.counter(m.name, m.det);
            self.add(id, *v);
        }
        for (m, v) in &other.gauges {
            let id = self.gauge(m.name, m.det);
            self.set_max(id, *v);
        }
        for (m, h) in &other.histograms {
            let id = self.histogram(m.name, m.det);
            if let Some((_, mine)) = self.histograms.get_mut(id.0) {
                mine.merge_from(h);
            }
        }
    }

    /// Stable digest of the deterministic metrics only — the bytes the
    /// chaos harness compares between a fault-free and a recovered run.
    pub fn deterministic_digest(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        self.snapshot_into(&mut w);
        w.into_bytes()
    }
}

/// Checkpoints **deterministic metrics only** (see [`Determinism`]):
/// runtime measurements from a pre-crash incarnation must not leak into
/// the recovered run's exactly-once state. Restore validates metric names
/// positionally, so a snapshot from a structurally different registry is
/// rejected as corrupt instead of silently misassigning values.
impl Checkpoint for Registry {
    fn snapshot_into(&self, w: &mut SnapshotWriter) {
        let det = |d: Determinism| d == Determinism::Deterministic;
        w.write_usize(self.counters.iter().filter(|(m, _)| det(m.det)).count());
        for (m, v) in self.counters.iter().filter(|(m, _)| det(m.det)) {
            w.write_str(m.name);
            w.write_u64(*v);
        }
        w.write_usize(self.gauges.iter().filter(|(m, _)| det(m.det)).count());
        for (m, v) in self.gauges.iter().filter(|(m, _)| det(m.det)) {
            w.write_str(m.name);
            w.write_f64(*v);
        }
        w.write_usize(self.histograms.iter().filter(|(m, _)| det(m.det)).count());
        for (m, h) in self.histograms.iter().filter(|(m, _)| det(m.det)) {
            w.write_str(m.name);
            h.snapshot_into(w);
        }
    }

    fn restore_from(&mut self, r: &mut SnapshotReader) -> Result<()> {
        let n = r.read_usize()?;
        for _ in 0..n {
            let name = r.read_str()?;
            let v = r.read_u64()?;
            let slot = self
                .counters
                .iter_mut()
                .find(|(m, _)| m.det == Determinism::Deterministic && m.name == name);
            match slot {
                Some((_, c)) => *c = v,
                None => {
                    return Err(Error::Snapshot(format!("unknown counter in snapshot: {name}")))
                }
            }
        }
        let n = r.read_usize()?;
        for _ in 0..n {
            let name = r.read_str()?;
            let v = r.read_f64()?;
            let slot = self
                .gauges
                .iter_mut()
                .find(|(m, _)| m.det == Determinism::Deterministic && m.name == name);
            match slot {
                Some((_, g)) => *g = v,
                None => return Err(Error::Snapshot(format!("unknown gauge in snapshot: {name}"))),
            }
        }
        let n = r.read_usize()?;
        for _ in 0..n {
            let name = r.read_str()?;
            let slot = self
                .histograms
                .iter_mut()
                .find(|(m, _)| m.det == Determinism::Deterministic && m.name == name);
            match slot {
                Some((_, h)) => h.restore_from(r)?,
                None => {
                    return Err(Error::Snapshot(format!("unknown histogram in snapshot: {name}")))
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn empty_histogram_is_all_zero_no_nan() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p95(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.mean().is_finite());
    }

    #[test]
    fn quantiles_are_ordered_and_bounded_by_max() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 10, 100, 1000, 5000] {
            h.record(v);
        }
        assert!(h.p50() <= h.p95());
        assert!(h.p95() <= h.p99());
        assert!(h.p99() <= h.max());
        assert_eq!(h.max(), 5000);
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 6116);
    }

    #[test]
    fn single_sample_quantiles_collapse_to_it() {
        let mut h = Histogram::new();
        h.record(77);
        assert_eq!(h.p50(), 77);
        assert_eq!(h.p95(), 77);
        assert_eq!(h.p99(), 77);
        assert_eq!(h.max(), 77);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(500);
        b.record(7);
        a.merge_from(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 512);
        assert_eq!(a.max(), 500);
    }

    #[test]
    fn registry_register_is_idempotent() {
        let mut r = Registry::new();
        let a = r.counter("x_total", Determinism::Deterministic);
        let b = r.counter("x_total", Determinism::Runtime);
        assert_eq!(a, b);
        r.inc(a);
        r.add(b, 2);
        assert_eq!(r.counter_value(a), 3);
        assert_eq!(r.counter_by_name("x_total"), Some(3));
        assert_eq!(r.counters().count(), 1);
        // First registration's determinism tag wins.
        assert_eq!(r.counters().next().unwrap().1, Determinism::Deterministic);
    }

    #[test]
    fn foreign_ids_are_silent_noops() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        let c = b.counter("only_in_b", Determinism::Runtime);
        let g = b.gauge("g", Determinism::Runtime);
        let h = b.histogram("h", Determinism::Runtime);
        // `a` has no metrics at all: every op must be a no-op, not a panic.
        a.inc(c);
        a.set(g, 1.0);
        a.record(h, 9);
        assert_eq!(a.counter_value(c), 0);
        assert_eq!(a.gauge_value(g), 0.0);
        assert!(a.histogram_ref(h).is_none());
    }

    #[test]
    fn gauge_set_max_ignores_nan_and_smaller() {
        let mut r = Registry::new();
        let g = r.gauge("peak", Determinism::Runtime);
        r.set_max(g, 5.0);
        r.set_max(g, 3.0);
        r.set_max(g, f64::NAN);
        assert_eq!(r.gauge_value(g), 5.0);
    }

    #[test]
    fn merge_by_name_adds_counters_and_merges_histograms() {
        let mut parent = Registry::new();
        let pc = parent.counter("records_total", Determinism::Deterministic);
        let ph = parent.histogram("lat_us", Determinism::Runtime);
        parent.add(pc, 10);
        parent.record(ph, 100);

        let mut child = Registry::new();
        let cc = child.counter("records_total", Determinism::Deterministic);
        let ch = child.histogram("lat_us", Determinism::Runtime);
        let only = child.counter("child_only_total", Determinism::Runtime);
        child.add(cc, 5);
        child.record(ch, 200);
        child.inc(only);

        parent.merge_from(&child);
        assert_eq!(parent.counter_by_name("records_total"), Some(15));
        assert_eq!(parent.counter_by_name("child_only_total"), Some(1));
        let h = parent.histogram_by_name("lat_us").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 200);
    }

    fn sample_registry() -> Registry {
        let mut r = Registry::new();
        let c = r.counter("alerts_total", Determinism::Deterministic);
        let rc = r.counter("retries_total", Determinism::Runtime);
        let g = r.gauge("bow_size", Determinism::Deterministic);
        let h = r.histogram("conf_1e6", Determinism::Deterministic);
        let rh = r.histogram("task_us", Determinism::Runtime);
        r.add(c, 7);
        r.add(rc, 3);
        r.set(g, 42.0);
        r.record(h, 900_000);
        r.record(rh, 1234);
        r
    }

    #[test]
    fn checkpoint_round_trips_deterministic_metrics_only() {
        let orig = sample_registry();
        let bytes = orig.snapshot();

        // Restore into a structurally identical registry with different
        // values: deterministic metrics come back, runtime ones stay.
        let mut restored = sample_registry();
        let ac = restored.counter("alerts_total", Determinism::Deterministic);
        let rc = restored.counter("retries_total", Determinism::Runtime);
        restored.add(ac, 100);
        restored.add(rc, 100);
        let mut r = SnapshotReader::new(&bytes);
        restored.restore_from(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(restored.counter_by_name("alerts_total"), Some(7));
        assert_eq!(restored.counter_by_name("retries_total"), Some(103), "runtime untouched");
        assert_eq!(restored.gauge_by_name("bow_size"), Some(42.0));
        assert_eq!(restored.histogram_by_name("conf_1e6").unwrap().count(), 1);
        assert_eq!(restored.snapshot(), bytes, "snapshot → restore → snapshot is stable");
        assert_eq!(restored.deterministic_digest(), orig.deterministic_digest());
    }

    #[test]
    fn checkpoint_rejects_unknown_metric_names() {
        let orig = sample_registry();
        let bytes = orig.snapshot();
        let mut stranger = Registry::new();
        stranger.counter("different_total", Determinism::Deterministic);
        let mut r = SnapshotReader::new(&bytes);
        assert!(stranger.restore_from(&mut r).is_err());
    }

    #[test]
    fn deterministic_digest_ignores_runtime_metrics() {
        let mut a = sample_registry();
        let mut b = sample_registry();
        // Perturb only runtime metrics on one side.
        let rc = b.counter("retries_total", Determinism::Runtime);
        b.add(rc, 99);
        let rh = b.histogram("task_us", Determinism::Runtime);
        b.record(rh, 999);
        assert_eq!(a.deterministic_digest(), b.deterministic_digest());
        // But a deterministic change shows up.
        let c = a.counter("alerts_total", Determinism::Deterministic);
        a.inc(c);
        assert_ne!(a.deterministic_digest(), b.deterministic_digest());
    }
}
