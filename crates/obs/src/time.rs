//! The observability layer's only wall-clock touchpoint.
//!
//! Everything else in the workspace is deterministic and replayable, so
//! real time lives behind one switchable source: `SpanClock::off()` (the
//! default everywhere) reads nothing and returns 0, which keeps pipeline
//! runs bit-identical; `SpanClock::wall()` anchors an `Instant` origin for
//! bench binaries that want real span timings. This file is the sole
//! `wall-clock` lint allowlist entry for the crate — adding `Instant`
//! reads anywhere else in `redhanded-obs` fails the lint gate.

use std::time::Instant;

/// A span-timing clock: either disabled (deterministic runs) or anchored
/// to a wall-clock origin (benches).
#[derive(Debug, Clone, Copy)]
pub enum SpanClock {
    /// Timing disabled: `now_us` always returns 0.
    Off,
    /// Wall-clock timing relative to the contained origin.
    Wall(Instant),
}

impl Default for SpanClock {
    fn default() -> Self {
        SpanClock::Off
    }
}

impl SpanClock {
    /// The deterministic no-op clock.
    pub fn off() -> Self {
        SpanClock::Off
    }

    /// A wall clock anchored at "now". Only call from bench/CLI code —
    /// span samples taken from it are `Runtime`-class by definition.
    pub fn wall() -> Self {
        SpanClock::Wall(Instant::now())
    }

    /// Whether spans should be recorded at all.
    pub fn enabled(&self) -> bool {
        matches!(self, SpanClock::Wall(_))
    }

    /// Microseconds since the origin (0 when off). Alloc-free.
    pub fn now_us(&self) -> u64 {
        match self {
            SpanClock::Off => 0,
            SpanClock::Wall(origin) => origin.elapsed().as_micros() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_clock_reads_zero_and_is_disabled() {
        let c = SpanClock::off();
        assert!(!c.enabled());
        assert_eq!(c.now_us(), 0);
        assert_eq!(SpanClock::default().now_us(), 0);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = SpanClock::wall();
        assert!(c.enabled());
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }
}
