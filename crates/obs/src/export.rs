//! Sinks: Prometheus text exposition and a hand-rolled JSON report.
//!
//! Both are pure string producers — callers (bench binaries, the chaos
//! harness test) decide where the bytes go. No float formatted here is
//! ever NaN or infinite: non-finite values are mapped to 0.0 before
//! serialization, so `results/OBS_report.json` always parses.

use crate::critical_path::TraceAnalysis;
use crate::events::EventLog;
use crate::metrics::{Determinism, Histogram, Registry};
use crate::trace::{SpanKind, Tracer};

/// Map a possibly non-finite float to something JSON can carry.
fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// Escape a string for inclusion in a JSON string literal: quotes and
/// backslashes are escaped, control characters become `\uXXXX` (with the
/// common short forms for `\n`/`\r`/`\t`), and non-ASCII passes through
/// untouched (JSON is UTF-8). Every dynamic string a sink emits — report
/// sources, custom span labels, hostile BoW tokens — goes through here so
/// `OBS_report.json` and the Perfetto trace never parse as invalid JSON.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn push_f64(out: &mut String, v: f64) {
    // `{}` on a whole f64 prints without a decimal point ("42"), which is
    // valid JSON (a number) and valid Prometheus exposition.
    out.push_str(&format!("{}", finite(v)));
}

/// Render the registry in Prometheus text exposition format. Histograms
/// emit cumulative `_bucket{le=...}` series up to the bucket containing
/// the max, then `+Inf`, `_sum`, and `_count`. Every series carries a
/// `class` label with the metric's determinism tag.
pub fn prometheus_text(reg: &Registry) -> String {
    let mut out = String::new();
    for (name, det, v) in reg.counters() {
        out.push_str(&format!("# TYPE {name} counter\n"));
        out.push_str(&format!("{name}{{class=\"{}\"}} {v}\n", det.label()));
    }
    for (name, det, v) in reg.gauges() {
        out.push_str(&format!("# TYPE {name} gauge\n"));
        out.push_str(&format!("{name}{{class=\"{}\"}} ", det.label()));
        push_f64(&mut out, v);
        out.push('\n');
    }
    for (name, det, h) in reg.histograms() {
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let class = det.label();
        let mut cum = 0u64;
        for (b, &n) in h.buckets().iter().enumerate() {
            cum = cum.saturating_add(n);
            let le = if b + 1 >= crate::metrics::HISTOGRAM_BUCKETS {
                u64::MAX
            } else {
                (1u64 << b) - 1
            };
            out.push_str(&format!("{name}_bucket{{class=\"{class}\",le=\"{le}\"}} {cum}\n"));
            if le >= h.max() {
                break;
            }
        }
        out.push_str(&format!(
            "{name}_bucket{{class=\"{class}\",le=\"+Inf\"}} {}\n",
            h.count()
        ));
        out.push_str(&format!("{name}_sum{{class=\"{class}\"}} {}\n", h.sum()));
        out.push_str(&format!("{name}_count{{class=\"{class}\"}} {}\n", h.count()));
    }
    out
}

fn histogram_json(h: &Histogram) -> String {
    format!(
        "{{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
        h.count(),
        h.sum(),
        finite(h.mean()),
        h.p50(),
        h.p95(),
        h.p99(),
        h.max()
    )
}

/// Render the full observability report as JSON: all metrics (with their
/// determinism class), event totals per kind, and the tail of the event
/// log. This is the payload written to `results/OBS_report.json`.
pub fn obs_report_json(source: &str, reg: &Registry, events: &EventLog) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"source\": \"{}\",\n", escape_json(source)));

    let class = |d: Determinism| d.label();

    out.push_str("  \"counters\": {\n");
    let counters: Vec<String> = reg
        .counters()
        .map(|(n, d, v)| format!("    \"{n}\": {{\"class\": \"{}\", \"value\": {v}}}", class(d)))
        .collect();
    out.push_str(&counters.join(",\n"));
    out.push_str("\n  },\n");

    out.push_str("  \"gauges\": {\n");
    let gauges: Vec<String> = reg
        .gauges()
        .map(|(n, d, v)| {
            format!("    \"{n}\": {{\"class\": \"{}\", \"value\": {}}}", class(d), finite(v))
        })
        .collect();
    out.push_str(&gauges.join(",\n"));
    out.push_str("\n  },\n");

    out.push_str("  \"histograms\": {\n");
    let hists: Vec<String> = reg
        .histograms()
        .map(|(n, d, h)| {
            format!("    \"{n}\": {{\"class\": \"{}\", \"stats\": {}}}", class(d), histogram_json(h))
        })
        .collect();
    out.push_str(&hists.join(",\n"));
    out.push_str("\n  },\n");

    out.push_str("  \"events\": {\n");
    out.push_str(&format!("    \"total\": {},\n", events.total()));
    out.push_str(&format!("    \"dropped\": {},\n", events.dropped()));
    out.push_str("    \"counts\": {");
    let mut kinds: Vec<(&'static str, usize)> = Vec::new();
    for e in events.iter() {
        match kinds.iter_mut().find(|(n, _)| *n == e.kind.name()) {
            Some((_, c)) => *c += 1,
            None => kinds.push((e.kind.name(), 1)),
        }
    }
    let counts: Vec<String> = kinds.iter().map(|(n, c)| format!("\"{n}\": {c}")).collect();
    out.push_str(&counts.join(", "));
    out.push_str("},\n");
    out.push_str("    \"tail\": [\n");
    let len = events.len();
    let tail: Vec<String> = events
        .iter()
        .skip(len.saturating_sub(20))
        .map(|e| {
            format!(
                "      {{\"batch\": {}, \"kind\": \"{}\", \"a\": {}, \"b\": {}}}",
                e.batch,
                e.kind.name(),
                e.a,
                e.b
            )
        })
        .collect();
    out.push_str(&tail.join(",\n"));
    out.push_str("\n    ]\n");
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

/// Render a recorded trace in Chrome-trace ("Trace Event") JSON — the
/// array-of-events format Perfetto and `chrome://tracing` load directly.
/// Each span becomes a complete (`"ph": "X"`) event; the `pid` is always
/// 1 and the `tid` lane separates task partitions (partition index + 1)
/// from driver-side spans (lane 0) so stages render as parallel tracks.
pub fn chrome_trace_json(tracer: &Tracer) -> String {
    let mut out = String::from("[\n");
    let events: Vec<String> = tracer
        .spans()
        .iter()
        .map(|s| {
            let tid = match s.kind {
                SpanKind::Task | SpanKind::Backoff => s.b.saturating_add(1),
                _ => 0,
            };
            format!(
                "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}, \
                 \"dur\": {}, \"pid\": 1, \"tid\": {}, \"args\": {{\"batch\": {}, \
                 \"a\": {}, \"b\": {}, \"attempt\": {}, \"straggle_us\": {}, \
                 \"failed\": {}}}}}",
                escape_json(tracer.display_name(s)),
                if s.kind.deterministic() { "deterministic" } else { "runtime" },
                finite(s.start_us),
                finite(s.duration_us()),
                tid,
                s.batch,
                s.a,
                s.b,
                s.attempt,
                s.straggle_us,
                s.failed
            )
        })
        .collect();
    out.push_str(&events.join(",\n"));
    out.push_str("\n]\n");
    out
}

/// Render the critical-path analysis (plus trace bookkeeping) as JSON —
/// the payload written to `results/TRACE_report.json`.
pub fn trace_report_json(source: &str, tracer: &Tracer, analysis: &TraceAnalysis) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"source\": \"{}\",\n", escape_json(source)));
    out.push_str(&format!("  \"spans\": {},\n", tracer.len()));
    out.push_str(&format!("  \"dropped_spans\": {},\n", analysis.dropped_spans));
    out.push_str(&format!("  \"batches\": {},\n", analysis.batches));
    out.push_str(&format!("  \"total_us\": {},\n", finite(analysis.total_us)));
    out.push_str(&format!(
        "  \"critical_path_us\": {},\n",
        finite(analysis.critical_path_us)
    ));
    out.push_str(&format!(
        "  \"scheduling_overhead_us\": {},\n",
        finite(analysis.scheduling_overhead_us)
    ));
    out.push_str(&format!(
        "  \"longest_span_us\": {},\n",
        finite(analysis.longest_span_us)
    ));
    out.push_str("  \"stages\": [\n");
    let rows: Vec<String> = analysis
        .stages
        .iter()
        .map(|s| {
            format!(
                "    {{\"stage\": \"{}\", \"spans\": {}, \"total_us\": {}, \
                 \"self_us\": {}, \"straggler_us\": {}, \"retry_backoff_us\": {}}}",
                s.kind.name(),
                s.spans,
                finite(s.total_us),
                finite(s.self_us),
                finite(s.straggler_us),
                finite(s.retry_backoff_us)
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critical_path::analyze;
    use crate::events::EventKind;
    use crate::trace::SpanRef;

    fn sample() -> (Registry, EventLog) {
        let mut reg = Registry::new();
        let c = reg.counter("pipeline_records_total", Determinism::Deterministic);
        let g = reg.gauge("bow_size", Determinism::Deterministic);
        let h = reg.histogram("span_classify_us", Determinism::Runtime);
        reg.add(c, 1000);
        reg.set(g, 512.0);
        reg.record(h, 250);
        reg.record(h, 1000);
        let mut log = EventLog::new(64);
        log.push(3, EventKind::AlertRaised, 1, 42);
        log.push(5, EventKind::CheckpointSaved, 1, 4096);
        (reg, log)
    }

    #[test]
    fn prometheus_text_has_expected_series() {
        let (reg, _) = sample();
        let text = prometheus_text(&reg);
        assert!(text.contains("# TYPE pipeline_records_total counter"));
        assert!(text.contains("pipeline_records_total{class=\"deterministic\"} 1000"));
        assert!(text.contains("# TYPE bow_size gauge"));
        assert!(text.contains("# TYPE span_classify_us histogram"));
        assert!(text.contains("span_classify_us_bucket{class=\"runtime\",le=\"+Inf\"} 2"));
        assert!(text.contains("span_classify_us_sum{class=\"runtime\"} 1250"));
        assert!(text.contains("span_classify_us_count{class=\"runtime\"} 2"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let mut reg = Registry::new();
        let h = reg.histogram("h_us", Determinism::Runtime);
        reg.record(h, 1);
        reg.record(h, 2);
        reg.record(h, 3);
        let text = prometheus_text(&reg);
        // Bucket le="1" holds the single value 1; le="3" holds all three.
        assert!(text.contains("h_us_bucket{class=\"runtime\",le=\"1\"} 1"));
        assert!(text.contains("h_us_bucket{class=\"runtime\",le=\"3\"} 3"));
    }

    #[test]
    fn json_report_is_well_formed_and_nan_free() {
        let (mut reg, log) = sample();
        let g = reg.gauge("weird", Determinism::Runtime);
        reg.set(g, f64::NAN);
        let json = obs_report_json("unit_test", &reg, &log);
        assert!(!json.contains("NaN"));
        assert!(!json.contains("inf"));
        assert!(json.contains("\"source\": \"unit_test\""));
        assert!(json.contains("\"pipeline_records_total\""));
        assert!(json.contains("\"alert_raised\": 1"));
        assert!(json.contains("\"checkpoint_saved\": 1"));
        // Balanced braces/brackets — a cheap structural sanity check that
        // catches a missing separator without a JSON parser.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_registry_report_still_renders() {
        let reg = Registry::new();
        let log = EventLog::new(4);
        let json = obs_report_json("empty", &reg, &log);
        assert!(json.contains("\"total\": 0"));
        let text = prometheus_text(&reg);
        assert!(text.is_empty());
    }

    /// Cheap structural well-formedness check: a hand-rolled JSON walker
    /// that verifies strings are terminated, escapes are legal, and
    /// braces/brackets balance outside strings. Catches exactly the class
    /// of bug hostile payloads cause (an unescaped quote ends the string
    /// early and derails the rest of the document).
    fn assert_parses_as_json(json: &str) {
        let mut depth: i64 = 0;
        let mut in_string = false;
        let mut chars = json.chars();
        while let Some(c) = chars.next() {
            if in_string {
                match c {
                    '\\' => {
                        let e = chars.next().expect("dangling escape");
                        match e {
                            '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' => {}
                            'u' => {
                                for _ in 0..4 {
                                    let h = chars.next().expect("truncated \\u escape");
                                    assert!(h.is_ascii_hexdigit(), "bad \\u escape: {h}");
                                }
                            }
                            other => panic!("illegal escape \\{other}"),
                        }
                    }
                    '"' => in_string = false,
                    c => assert!(
                        (c as u32) >= 0x20,
                        "raw control character {:#x} inside JSON string",
                        c as u32
                    ),
                }
            } else {
                match c {
                    '"' => in_string = true,
                    '{' | '[' => depth += 1,
                    '}' | ']' => {
                        depth -= 1;
                        assert!(depth >= 0, "unbalanced close");
                    }
                    _ => {}
                }
            }
        }
        assert!(!in_string, "unterminated string");
        assert_eq!(depth, 0, "unbalanced braces/brackets");
    }

    #[test]
    fn escape_json_handles_hostile_tokens() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_json("back\\slash"), "back\\\\slash");
        assert_eq!(escape_json("line\nbreak\ttab\rret"), "line\\nbreak\\ttab\\rret");
        assert_eq!(escape_json("\u{1}\u{1f}"), "\\u0001\\u001f");
        // Non-ASCII BoW words pass through as UTF-8.
        assert_eq!(escape_json("мат🤬"), "мат🤬");
    }

    #[test]
    fn reports_with_hostile_payloads_stay_valid_json() {
        let hostile = "tok\"en\\ with \n ctrl \u{7} and ünïcode🤬";
        let (reg, log) = sample();
        assert_parses_as_json(&obs_report_json(hostile, &reg, &log));

        let mut t = Tracer::new();
        let root = t.begin_named(hostile, SpanRef::INVALID, 0, 0.0);
        t.end(root, 10.0);
        let analysis = analyze(&t);
        assert_parses_as_json(&chrome_trace_json(&t));
        assert_parses_as_json(&trace_report_json(hostile, &t, &analysis));
    }

    #[test]
    fn chrome_trace_has_one_event_per_span_on_partition_lanes() {
        let mut t = Tracer::new();
        let b = t.begin(SpanKind::Batch, SpanRef::INVALID, 7, 100, 0, 0.0);
        let s = t.begin(SpanKind::Stage, b, 7, 0, 2, 10.0);
        let task = t.begin(SpanKind::Task, s, 7, 0, 1, 10.0);
        t.annotate_task(task, 1, 5, false);
        t.end(task, 30.0);
        t.end(s, 40.0);
        t.end(b, 50.0);
        let json = chrome_trace_json(&t);
        assert_parses_as_json(&json);
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 3);
        assert!(json.contains("\"name\": \"task\""));
        // Task rides partition lane b+1 = 2; driver-side spans lane 0.
        assert!(json.contains("\"tid\": 2"));
        assert!(json.contains("\"straggle_us\": 5"));
        assert!(json.contains("\"batch\": 7"));
    }

    #[test]
    fn trace_report_carries_the_stage_breakdown() {
        let mut t = Tracer::new();
        let b = t.begin(SpanKind::Batch, SpanRef::INVALID, 0, 10, 0, 0.0);
        t.record(SpanKind::Driver, b, 0, 0, 0, 0.0, 40.0);
        t.end(b, 100.0);
        let analysis = analyze(&t);
        let json = trace_report_json("unit", &t, &analysis);
        assert_parses_as_json(&json);
        assert!(json.contains("\"batches\": 1"));
        assert!(json.contains("\"stage\": \"driver\""));
        assert!(json.contains("\"total_us\": 40"));
    }
}
