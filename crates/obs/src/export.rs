//! Sinks: Prometheus text exposition and a hand-rolled JSON report.
//!
//! Both are pure string producers — callers (bench binaries, the chaos
//! harness test) decide where the bytes go. No float formatted here is
//! ever NaN or infinite: non-finite values are mapped to 0.0 before
//! serialization, so `results/OBS_report.json` always parses.

use crate::events::EventLog;
use crate::metrics::{Determinism, Histogram, Registry};

/// Map a possibly non-finite float to something JSON can carry.
fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

fn push_f64(out: &mut String, v: f64) {
    // `{}` on a whole f64 prints without a decimal point ("42"), which is
    // valid JSON (a number) and valid Prometheus exposition.
    out.push_str(&format!("{}", finite(v)));
}

/// Render the registry in Prometheus text exposition format. Histograms
/// emit cumulative `_bucket{le=...}` series up to the bucket containing
/// the max, then `+Inf`, `_sum`, and `_count`. Every series carries a
/// `class` label with the metric's determinism tag.
pub fn prometheus_text(reg: &Registry) -> String {
    let mut out = String::new();
    for (name, det, v) in reg.counters() {
        out.push_str(&format!("# TYPE {name} counter\n"));
        out.push_str(&format!("{name}{{class=\"{}\"}} {v}\n", det.label()));
    }
    for (name, det, v) in reg.gauges() {
        out.push_str(&format!("# TYPE {name} gauge\n"));
        out.push_str(&format!("{name}{{class=\"{}\"}} ", det.label()));
        push_f64(&mut out, v);
        out.push('\n');
    }
    for (name, det, h) in reg.histograms() {
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let class = det.label();
        let mut cum = 0u64;
        for (b, &n) in h.buckets().iter().enumerate() {
            cum = cum.saturating_add(n);
            let le = if b + 1 >= crate::metrics::HISTOGRAM_BUCKETS {
                u64::MAX
            } else {
                (1u64 << b) - 1
            };
            out.push_str(&format!("{name}_bucket{{class=\"{class}\",le=\"{le}\"}} {cum}\n"));
            if le >= h.max() {
                break;
            }
        }
        out.push_str(&format!(
            "{name}_bucket{{class=\"{class}\",le=\"+Inf\"}} {}\n",
            h.count()
        ));
        out.push_str(&format!("{name}_sum{{class=\"{class}\"}} {}\n", h.sum()));
        out.push_str(&format!("{name}_count{{class=\"{class}\"}} {}\n", h.count()));
    }
    out
}

fn histogram_json(h: &Histogram) -> String {
    format!(
        "{{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
        h.count(),
        h.sum(),
        finite(h.mean()),
        h.p50(),
        h.p95(),
        h.p99(),
        h.max()
    )
}

/// Render the full observability report as JSON: all metrics (with their
/// determinism class), event totals per kind, and the tail of the event
/// log. This is the payload written to `results/OBS_report.json`.
pub fn obs_report_json(source: &str, reg: &Registry, events: &EventLog) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"source\": \"{source}\",\n"));

    let class = |d: Determinism| d.label();

    out.push_str("  \"counters\": {\n");
    let counters: Vec<String> = reg
        .counters()
        .map(|(n, d, v)| format!("    \"{n}\": {{\"class\": \"{}\", \"value\": {v}}}", class(d)))
        .collect();
    out.push_str(&counters.join(",\n"));
    out.push_str("\n  },\n");

    out.push_str("  \"gauges\": {\n");
    let gauges: Vec<String> = reg
        .gauges()
        .map(|(n, d, v)| {
            format!("    \"{n}\": {{\"class\": \"{}\", \"value\": {}}}", class(d), finite(v))
        })
        .collect();
    out.push_str(&gauges.join(",\n"));
    out.push_str("\n  },\n");

    out.push_str("  \"histograms\": {\n");
    let hists: Vec<String> = reg
        .histograms()
        .map(|(n, d, h)| {
            format!("    \"{n}\": {{\"class\": \"{}\", \"stats\": {}}}", class(d), histogram_json(h))
        })
        .collect();
    out.push_str(&hists.join(",\n"));
    out.push_str("\n  },\n");

    out.push_str("  \"events\": {\n");
    out.push_str(&format!("    \"total\": {},\n", events.total()));
    out.push_str(&format!("    \"dropped\": {},\n", events.dropped()));
    out.push_str("    \"counts\": {");
    let mut kinds: Vec<(&'static str, usize)> = Vec::new();
    for e in events.iter() {
        match kinds.iter_mut().find(|(n, _)| *n == e.kind.name()) {
            Some((_, c)) => *c += 1,
            None => kinds.push((e.kind.name(), 1)),
        }
    }
    let counts: Vec<String> = kinds.iter().map(|(n, c)| format!("\"{n}\": {c}")).collect();
    out.push_str(&counts.join(", "));
    out.push_str("},\n");
    out.push_str("    \"tail\": [\n");
    let len = events.len();
    let tail: Vec<String> = events
        .iter()
        .skip(len.saturating_sub(20))
        .map(|e| {
            format!(
                "      {{\"batch\": {}, \"kind\": \"{}\", \"a\": {}, \"b\": {}}}",
                e.batch,
                e.kind.name(),
                e.a,
                e.b
            )
        })
        .collect();
    out.push_str(&tail.join(",\n"));
    out.push_str("\n    ]\n");
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventKind;

    fn sample() -> (Registry, EventLog) {
        let mut reg = Registry::new();
        let c = reg.counter("pipeline_records_total", Determinism::Deterministic);
        let g = reg.gauge("bow_size", Determinism::Deterministic);
        let h = reg.histogram("span_classify_us", Determinism::Runtime);
        reg.add(c, 1000);
        reg.set(g, 512.0);
        reg.record(h, 250);
        reg.record(h, 1000);
        let mut log = EventLog::new(64);
        log.push(3, EventKind::AlertRaised, 1, 42);
        log.push(5, EventKind::CheckpointSaved, 1, 4096);
        (reg, log)
    }

    #[test]
    fn prometheus_text_has_expected_series() {
        let (reg, _) = sample();
        let text = prometheus_text(&reg);
        assert!(text.contains("# TYPE pipeline_records_total counter"));
        assert!(text.contains("pipeline_records_total{class=\"deterministic\"} 1000"));
        assert!(text.contains("# TYPE bow_size gauge"));
        assert!(text.contains("# TYPE span_classify_us histogram"));
        assert!(text.contains("span_classify_us_bucket{class=\"runtime\",le=\"+Inf\"} 2"));
        assert!(text.contains("span_classify_us_sum{class=\"runtime\"} 1250"));
        assert!(text.contains("span_classify_us_count{class=\"runtime\"} 2"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let mut reg = Registry::new();
        let h = reg.histogram("h_us", Determinism::Runtime);
        reg.record(h, 1);
        reg.record(h, 2);
        reg.record(h, 3);
        let text = prometheus_text(&reg);
        // Bucket le="1" holds the single value 1; le="3" holds all three.
        assert!(text.contains("h_us_bucket{class=\"runtime\",le=\"1\"} 1"));
        assert!(text.contains("h_us_bucket{class=\"runtime\",le=\"3\"} 3"));
    }

    #[test]
    fn json_report_is_well_formed_and_nan_free() {
        let (mut reg, log) = sample();
        let g = reg.gauge("weird", Determinism::Runtime);
        reg.set(g, f64::NAN);
        let json = obs_report_json("unit_test", &reg, &log);
        assert!(!json.contains("NaN"));
        assert!(!json.contains("inf"));
        assert!(json.contains("\"source\": \"unit_test\""));
        assert!(json.contains("\"pipeline_records_total\""));
        assert!(json.contains("\"alert_raised\": 1"));
        assert!(json.contains("\"checkpoint_saved\": 1"));
        // Balanced braces/brackets — a cheap structural sanity check that
        // catches a missing separator without a JSON parser.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_registry_report_still_renders() {
        let reg = Registry::new();
        let log = EventLog::new(4);
        let json = obs_report_json("empty", &reg, &log);
        assert!(json.contains("\"total\": 0"));
        let text = prometheus_text(&reg);
        assert!(text.is_empty());
    }
}
