//! Causal span tracing: a batch's full execution tree under the simulated
//! clock.
//!
//! A [`Span`] records one timed region — driver work, a broadcast, a stage,
//! a task attempt, a retry backoff, a per-operator phase — with a causal
//! link to its parent, so a batch becomes a tree: driver → broadcast →
//! stage → partition/task (including retry attempts from the fault layer)
//! → per-operator phases. Per-tweet spans sit behind a deterministic
//! 1-in-N sampler ([`Tracer::sample`]).
//!
//! Design constraints (DESIGN.md §11):
//!
//! * **Alloc-free hot path.** Span kinds are a closed, pre-registered enum
//!   ([`SpanKind`]) and storage is pre-allocated at construction, so
//!   [`Tracer::begin`]/[`Tracer::end`] touch existing slots only and pass
//!   the `hot-path-alloc` lint. When the buffer is full, spans are counted
//!   as dropped rather than grown. The *dynamic* API
//!   ([`Tracer::begin_named`]) allocates a label string and is banned from
//!   hot functions by the `trace-preregistered` lint rule.
//! * **No panics.** An invalid or dropped [`SpanRef`] makes every
//!   operation a silent no-op.
//! * **Determinism classes.** Span *structure* (kind, batch, payload
//!   words, causal parent chain) is deterministic: a fault-free run and a
//!   crash-recovered run describe the same semantic tree. Timings,
//!   attempt numbers, straggle and backoff are runtime facts. The
//!   [`Tracer::deterministic_digest`] therefore hashes each span's
//!   deterministic fields *recursively through its parent chain*, then
//!   sorts and dedups the keys — a recovered run that re-executes batches
//!   after a restore re-emits structurally identical spans which collapse
//!   onto the fault-free run's, so the tracer itself never needs to be
//!   checkpointed (`tests/obs_consistency.rs` asserts the digests match).
//!   Retry attempts (`attempt > 1`) and the runtime-only kinds
//!   ([`SpanKind::Backoff`], [`SpanKind::Checkpoint`],
//!   [`SpanKind::Custom`]) are excluded from the digest.
//!
//! Sibling spans of the same kind under the same parent must differ in
//! their `(batch, a, b)` payload (stage index, partition, merge round,
//! record index, …) — the digest dedups identical keys by design, because
//! "identical deterministic description" is exactly what replay produces.

use redhanded_types::SnapshotWriter;

/// The closed set of span kinds. Pre-registered (like `EventKind`) so
/// hot-path emission never constructs a name; the positional code is
/// append-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// One micro-batch, driver entry to driver exit. `a` = records in the
    /// batch.
    Batch,
    /// Broadcasting the model/BoW/normalizer to executors. `a` = bytes.
    Broadcast,
    /// One distributed stage (all retry waves). `a` = stage index within
    /// the batch, `b` = partition count.
    Stage,
    /// One task attempt on one partition. `a` = stage index, `b` =
    /// partition index. Annotated with attempt number, straggle, and
    /// failure via [`Tracer::annotate_task`].
    Task,
    /// Retry backoff charged to the simulated clock before a retry wave.
    /// `a` = stage index, `b` = wave number. Runtime-only.
    Backoff,
    /// One tree-reduce combine round. `a` = items entering the round,
    /// `b` = round number.
    Merge,
    /// Driver-side state merge (models, BoW, normalizer, matrix).
    Driver,
    /// Driver-side alerting/sampling over the batch's classifications.
    /// `a` = classifications observed.
    Alert,
    /// Writing a checkpoint. `a` = checkpoint seq. Runtime-only.
    Checkpoint,
    /// One sampled tweet end-to-end. `a` = record index.
    Tweet,
    /// Feature extraction phase of a sampled tweet.
    Extract,
    /// Normalization phase of a sampled tweet.
    Normalize,
    /// Classification phase of a sampled tweet.
    Classify,
    /// Training phase of a sampled labeled tweet.
    Train,
    /// Dynamically-named span from [`Tracer::begin_named`]. Runtime-only
    /// and banned in hot functions (`trace-preregistered` lint rule).
    Custom,
}

impl SpanKind {
    /// All kinds, in positional-code order. **Append-only**: codes are
    /// stable across versions.
    pub const ALL: [SpanKind; 15] = [
        SpanKind::Batch,
        SpanKind::Broadcast,
        SpanKind::Stage,
        SpanKind::Task,
        SpanKind::Backoff,
        SpanKind::Merge,
        SpanKind::Driver,
        SpanKind::Alert,
        SpanKind::Checkpoint,
        SpanKind::Tweet,
        SpanKind::Extract,
        SpanKind::Normalize,
        SpanKind::Classify,
        SpanKind::Train,
        SpanKind::Custom,
    ];

    /// Stable name used by the sinks and the Chrome-trace export.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Batch => "batch",
            SpanKind::Broadcast => "broadcast",
            SpanKind::Stage => "stage",
            SpanKind::Task => "task",
            SpanKind::Backoff => "backoff",
            SpanKind::Merge => "merge",
            SpanKind::Driver => "driver",
            SpanKind::Alert => "alert",
            SpanKind::Checkpoint => "checkpoint",
            SpanKind::Tweet => "tweet",
            SpanKind::Extract => "extract",
            SpanKind::Normalize => "normalize",
            SpanKind::Classify => "classify",
            SpanKind::Train => "train",
            SpanKind::Custom => "custom",
        }
    }

    /// Positional code (stable; used in the digest).
    pub fn code(self) -> u8 {
        SpanKind::ALL.iter().position(|k| *k == self).unwrap_or(0) as u8
    }

    /// Whether spans of this kind describe deterministic semantic
    /// structure (included in the digest) or one incarnation's execution
    /// (excluded). See the module docs.
    pub fn deterministic(self) -> bool {
        !matches!(self, SpanKind::Backoff | SpanKind::Checkpoint | SpanKind::Custom)
    }
}

/// Handle to a span in one [`Tracer`]. Obtained from
/// [`Tracer::begin`]/[`Tracer::begin_named`]; may be
/// [`SpanRef::INVALID`] when the buffer was full (all later operations on
/// it are no-ops).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRef(u32);

impl SpanRef {
    /// The null parent / dropped-span sentinel.
    pub const INVALID: SpanRef = SpanRef(u32::MAX);

    /// Whether this handle refers to a recorded span.
    pub fn is_valid(self) -> bool {
        self.0 != u32::MAX
    }
}

/// One recorded span. Times are microseconds on whichever clock the
/// emitter used (the DSPE's simulated clock for distributed runs, the
/// optional wall clock for the sequential pipeline).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// What this span measures.
    pub kind: SpanKind,
    /// Global batch index (or record index for per-tweet spans outside a
    /// batch context).
    pub batch: u64,
    /// Kind-specific payload word (see [`SpanKind`]).
    pub a: u64,
    /// Kind-specific payload word (see [`SpanKind`]).
    pub b: u64,
    /// Index of the parent span, or `u32::MAX` for a root.
    pub parent: u32,
    /// Label-table index for [`SpanKind::Custom`] spans (`u32::MAX`
    /// otherwise).
    pub label: u32,
    /// Start time, µs.
    pub start_us: f64,
    /// End time, µs (equals `start_us` until [`Tracer::end`]).
    pub end_us: f64,
    /// Injected straggle on a task attempt, µs. Runtime field.
    pub straggle_us: u64,
    /// Attempt number for task spans (1-based; 0 = not a task attempt).
    /// Attempts beyond the first are runtime-only.
    pub attempt: u32,
    /// Whether this task attempt failed. Runtime field.
    pub failed: bool,
}

impl Span {
    /// The span's duration in µs (0 while unfinished, never negative).
    pub fn duration_us(&self) -> f64 {
        (self.end_us - self.start_us).max(0.0)
    }
}

/// Default span buffer capacity: enough for the per-batch trees of every
/// test- and `--scale 1` bench-size run without eviction (~15 spans per
/// batch).
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// Default per-tweet sampling period: one tweet in 1024 gets a full
/// phase-level span subtree.
pub const DEFAULT_SAMPLE_EVERY: u64 = 1024;

/// Pre-allocated causal span recorder. See the module docs for the
/// determinism contract.
#[derive(Debug, Clone)]
pub struct Tracer {
    spans: Vec<Span>,
    labels: Vec<String>,
    cap: usize,
    dropped: u64,
    sample_every: u64,
    sample_seen: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A tracer with the default capacity and sampling period.
    pub fn new() -> Self {
        Tracer::with_capacity(DEFAULT_SPAN_CAPACITY, DEFAULT_SAMPLE_EVERY)
    }

    /// A tracer holding at most `capacity` spans (minimum 1), sampling one
    /// tweet in `sample_every` (minimum 1). Storage is allocated up front
    /// so [`Tracer::begin`] is alloc-free.
    pub fn with_capacity(capacity: usize, sample_every: u64) -> Self {
        let cap = capacity.max(1);
        Tracer {
            spans: Vec::with_capacity(cap),
            labels: Vec::new(),
            cap,
            dropped: 0,
            sample_every: sample_every.max(1),
            sample_seen: 0,
        }
    }

    /// Open a span. Alloc-free: when the buffer is full the span is
    /// counted as dropped and [`SpanRef::INVALID`] is returned (children
    /// parented on it become roots of a detached subtree and are dropped
    /// from the digest's parent chain, not miscounted).
    pub fn begin(
        &mut self,
        kind: SpanKind,
        parent: SpanRef,
        batch: u64,
        a: u64,
        b: u64,
        start_us: f64,
    ) -> SpanRef {
        if self.spans.len() >= self.cap {
            self.dropped += 1;
            return SpanRef::INVALID;
        }
        self.spans.push(Span {
            kind,
            batch,
            a,
            b,
            parent: parent.0,
            label: u32::MAX,
            start_us,
            end_us: start_us,
            straggle_us: 0,
            attempt: 0,
            failed: false,
        });
        SpanRef((self.spans.len() - 1) as u32)
    }

    /// Close a span. No-op for invalid refs.
    pub fn end(&mut self, span: SpanRef, end_us: f64) {
        if let Some(s) = self.spans.get_mut(span.0 as usize) {
            s.end_us = end_us;
        }
    }

    /// Record a complete span in one call (for post-hoc emission where
    /// both endpoints are already known).
    pub fn record(
        &mut self,
        kind: SpanKind,
        parent: SpanRef,
        batch: u64,
        a: u64,
        b: u64,
        start_us: f64,
        end_us: f64,
    ) -> SpanRef {
        let r = self.begin(kind, parent, batch, a, b, start_us);
        self.end(r, end_us);
        r
    }

    /// Annotate a task-attempt span with its runtime facts. Attempts
    /// beyond the first are excluded from the deterministic digest.
    pub fn annotate_task(&mut self, span: SpanRef, attempt: u32, straggle_us: u64, failed: bool) {
        if let Some(s) = self.spans.get_mut(span.0 as usize) {
            s.attempt = attempt;
            s.straggle_us = straggle_us;
            s.failed = failed;
        }
    }

    /// Open a dynamically-named [`SpanKind::Custom`] span. **Allocates**
    /// (the label is copied into the tracer's label table) — this is the
    /// API the `trace-preregistered` lint rule bans from hot-path
    /// functions; use [`Tracer::begin`] with a pre-registered kind there.
    pub fn begin_named(
        &mut self,
        name: &str,
        parent: SpanRef,
        batch: u64,
        start_us: f64,
    ) -> SpanRef {
        let r = self.begin(SpanKind::Custom, parent, batch, 0, 0, start_us);
        if let Some(s) = self.spans.get_mut(r.0 as usize) {
            s.label = self.labels.len() as u32;
            self.labels.push(name.to_string());
        }
        r
    }

    /// Deterministic 1-in-N admission for per-tweet spans: returns whether
    /// the next tweet should get a span subtree. Alloc-free; the decision
    /// depends only on how many tweets this tracer has been offered.
    pub fn sample(&mut self) -> bool {
        let n = self.sample_seen;
        self.sample_seen = self.sample_seen.wrapping_add(1);
        n % self.sample_every == 0
    }

    /// The sampling period (1 = every tweet).
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// All recorded spans, in begin order (parents precede children).
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no spans are recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans lost because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The label of a [`SpanKind::Custom`] span (None otherwise).
    pub fn label(&self, span: &Span) -> Option<&str> {
        self.labels.get(span.label as usize).map(|s| s.as_str())
    }

    /// Display name for a span: its kind name, or the dynamic label for
    /// custom spans.
    pub fn display_name<'a>(&'a self, span: &Span) -> &'a str {
        match span.kind {
            SpanKind::Custom => self.label(span).unwrap_or("custom"),
            k => k.name(),
        }
    }

    /// Forget all recorded spans (capacity and the sampler position are
    /// kept).
    pub fn clear(&mut self) {
        self.spans.clear();
        self.labels.clear();
        self.dropped = 0;
    }

    /// Per-span recursive keys over the deterministic fields: each span's
    /// key mixes its kind code, batch, and payload words with its
    /// *parent's key*, so a key pins the span's whole causal path.
    /// Computed in one forward pass (parents always precede children).
    fn keys(&self) -> Vec<u64> {
        let mut keys = vec![0u64; self.spans.len()];
        for (i, s) in self.spans.iter().enumerate() {
            let parent_key =
                keys.get(s.parent as usize).copied().unwrap_or(0x5EED_0F_DE7EC7ED);
            let mut k = mix(parent_key, s.kind.code() as u64);
            k = mix(k, s.batch);
            k = mix(k, s.a);
            k = mix(k, s.b);
            keys[i] = k;
        }
        keys
    }

    /// Stable digest of the deterministic span-tree structure: the sorted,
    /// deduplicated recursive keys of every deterministic span (runtime
    /// kinds and retry attempts excluded). A recovered run's re-executed
    /// batches produce keys identical to the fault-free run's, so the
    /// digests compare bit-identical without checkpointing the tracer.
    pub fn deterministic_digest(&self) -> Vec<u8> {
        let keys = self.keys();
        let mut det: Vec<u64> = self
            .spans
            .iter()
            .zip(keys.iter())
            .filter(|(s, _)| s.kind.deterministic() && s.attempt <= 1)
            .map(|(_, k)| *k)
            .collect();
        det.sort_unstable();
        det.dedup();
        let mut w = SnapshotWriter::new();
        for k in det {
            w.write_u64(k);
        }
        w.into_bytes()
    }
}

/// splitmix64-style diffusion step used by the span keys.
fn mix(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_are_stable_and_distinct() {
        for (i, k) in SpanKind::ALL.iter().enumerate() {
            assert_eq!(k.code() as usize, i);
        }
        assert!(SpanKind::Batch.deterministic());
        assert!(SpanKind::Task.deterministic());
        assert!(!SpanKind::Backoff.deterministic());
        assert!(!SpanKind::Checkpoint.deterministic());
        assert!(!SpanKind::Custom.deterministic());
    }

    #[test]
    fn begin_end_builds_a_tree() {
        let mut t = Tracer::new();
        let batch = t.begin(SpanKind::Batch, SpanRef::INVALID, 0, 500, 0, 0.0);
        let stage = t.begin(SpanKind::Stage, batch, 0, 0, 4, 10.0);
        let task = t.begin(SpanKind::Task, stage, 0, 0, 2, 10.0);
        t.annotate_task(task, 1, 0, false);
        t.end(task, 40.0);
        t.end(stage, 50.0);
        t.end(batch, 90.0);
        assert_eq!(t.len(), 3);
        let spans = t.spans();
        assert_eq!(spans[0].parent, u32::MAX);
        assert_eq!(spans[1].parent, 0);
        assert_eq!(spans[2].parent, 1);
        assert_eq!(spans[2].duration_us(), 30.0);
        assert_eq!(spans[0].duration_us(), 90.0);
    }

    #[test]
    fn full_buffer_drops_instead_of_growing() {
        let mut t = Tracer::with_capacity(2, 1);
        let a = t.begin(SpanKind::Batch, SpanRef::INVALID, 0, 0, 0, 0.0);
        let b = t.begin(SpanKind::Stage, a, 0, 0, 1, 0.0);
        let c = t.begin(SpanKind::Task, b, 0, 0, 0, 0.0);
        assert!(a.is_valid() && b.is_valid());
        assert!(!c.is_valid());
        assert_eq!(t.dropped(), 1);
        // Operations on the dropped ref are silent no-ops.
        t.end(c, 99.0);
        t.annotate_task(c, 3, 7, true);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn sampler_is_deterministic_one_in_n() {
        let mut t = Tracer::with_capacity(16, 4);
        let admitted: Vec<bool> = (0..10).map(|_| t.sample()).collect();
        assert_eq!(
            admitted,
            vec![true, false, false, false, true, false, false, false, true, false]
        );
    }

    #[test]
    fn digest_dedups_replayed_batches() {
        let emit = |t: &mut Tracer, batch: u64| {
            let b = t.begin(SpanKind::Batch, SpanRef::INVALID, batch, 100, 0, 0.0);
            let s = t.begin(SpanKind::Stage, b, batch, 0, 2, 1.0);
            for p in 0..2 {
                let task = t.begin(SpanKind::Task, s, batch, 0, p, 1.0);
                t.annotate_task(task, 1, 0, false);
                t.end(task, 5.0);
            }
            t.end(s, 6.0);
            t.end(b, 9.0);
        };
        let mut clean = Tracer::new();
        for b in 0..4 {
            emit(&mut clean, b);
        }
        // "Recovered" run: re-executes batches 2 and 3 after a restore.
        let mut recovered = Tracer::new();
        for b in [0u64, 1, 2, 3, 2, 3] {
            emit(&mut recovered, b);
        }
        assert_eq!(clean.deterministic_digest(), recovered.deterministic_digest());
    }

    #[test]
    fn digest_ignores_runtime_facts_but_sees_structure() {
        let emit = |t: &mut Tracer, straggle: u64, retried: bool| {
            let b = t.begin(SpanKind::Batch, SpanRef::INVALID, 0, 10, 0, 0.0);
            let s = t.begin(SpanKind::Stage, b, 0, 0, 1, 1.0);
            let t1 = t.begin(SpanKind::Task, s, 0, 0, 0, 1.0);
            t.annotate_task(t1, 1, straggle, retried);
            t.end(t1, 4.0 + straggle as f64);
            if retried {
                let bo = t.begin(SpanKind::Backoff, s, 0, 0, 1, 5.0);
                t.end(bo, 6.0);
                let t2 = t.begin(SpanKind::Task, s, 0, 0, 0, 6.0);
                t.annotate_task(t2, 2, 0, false);
                t.end(t2, 9.0);
            }
            t.end(s, 10.0);
            t.end(b, 12.0);
        };
        let mut clean = Tracer::new();
        emit(&mut clean, 0, false);
        let mut chaotic = Tracer::new();
        emit(&mut chaotic, 900, true);
        assert_eq!(clean.deterministic_digest(), chaotic.deterministic_digest());

        // A structural difference (an extra deterministic span) shows up.
        let mut bigger = Tracer::new();
        emit(&mut bigger, 0, false);
        let extra = bigger.begin(SpanKind::Broadcast, SpanRef::INVALID, 0, 64, 0, 0.0);
        bigger.end(extra, 1.0);
        assert_ne!(clean.deterministic_digest(), bigger.deterministic_digest());
    }

    #[test]
    fn digest_distinguishes_parent_chains() {
        // Same (kind, batch, a, b) but different parents must not collide.
        let mut one = Tracer::new();
        let b0 = one.begin(SpanKind::Batch, SpanRef::INVALID, 0, 0, 0, 0.0);
        let s0 = one.begin(SpanKind::Stage, b0, 0, 0, 1, 0.0);
        one.begin(SpanKind::Task, s0, 0, 7, 7, 0.0);

        let mut two = Tracer::new();
        let b1 = two.begin(SpanKind::Batch, SpanRef::INVALID, 0, 0, 0, 0.0);
        let s1 = two.begin(SpanKind::Stage, b1, 0, 1, 1, 0.0);
        two.begin(SpanKind::Task, s1, 0, 7, 7, 0.0);
        assert_ne!(one.deterministic_digest(), two.deterministic_digest());
    }

    #[test]
    fn named_spans_are_runtime_only() {
        let mut t = Tracer::new();
        let c = t.begin_named("warmup", SpanRef::INVALID, 0, 0.0);
        t.end(c, 5.0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.display_name(&t.spans()[0]), "warmup");
        assert!(t.deterministic_digest().is_empty());
    }

    #[test]
    fn clear_resets_spans_but_not_sampler_position() {
        let mut t = Tracer::with_capacity(8, 2);
        assert!(t.sample());
        assert!(!t.sample());
        t.begin(SpanKind::Batch, SpanRef::INVALID, 0, 0, 0, 0.0);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
        // Sampler continues where it was: next offer is index 2 → admitted.
        assert!(t.sample());
    }
}
