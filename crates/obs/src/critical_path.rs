//! Critical-path analysis over a recorded span forest.
//!
//! Walks each batch's span tree and attributes end-to-end latency to the
//! span kinds on the path: how much of a stage's makespan was its own
//! compute vs. blocked on an injected straggler vs. retry backoff, what
//! fraction of a batch the driver-side phases took, and how much is
//! micro-batch scheduling overhead (batch time not covered by any child
//! span). The result feeds the per-stage breakdown consumed by
//! `fig15_execution_time`/`fig16_throughput` and the
//! `results/TRACE_report.json` artifact.
//!
//! The critical path of a node is defined recursively:
//! `cp(n) = max(duration(n), max over children cp(c))` — with children
//! temporally contained in their parent (which the simulated clock
//! guarantees: stages advance one global clock), this is the longest
//! chain through the tree. Two invariants hold by construction and are
//! property-tested in `tests/proptests.rs`: the critical path is at least
//! the longest single span in the batch and at most the batch's wall
//! time.

use crate::trace::{Span, SpanKind, Tracer};

/// Latency attribution for one span kind, aggregated over the whole
/// trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageAttribution {
    /// The span kind this row describes.
    pub kind: SpanKind,
    /// Number of spans of this kind.
    pub spans: u64,
    /// Sum of span durations, µs.
    pub total_us: f64,
    /// Time attributable to the kind's own work, µs: for
    /// [`SpanKind::Stage`] this is makespan minus straggle and backoff;
    /// for container kinds it is duration not covered by direct children
    /// (task children of a stage run in parallel, so they are *not*
    /// subtracted from the stage — their straggle/backoff is).
    pub self_us: f64,
    /// Time blocked on injected stragglers, µs (task straggle summed onto
    /// the owning stage and the task itself).
    pub straggler_us: f64,
    /// Retry-backoff time charged under spans of this kind, µs.
    pub retry_backoff_us: f64,
}

/// The analyzer's output: per-kind attribution plus whole-trace facts.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAnalysis {
    /// Number of batch roots in the trace.
    pub batches: u64,
    /// Sum of batch-root durations, µs (end-to-end time the trace
    /// covers).
    pub total_us: f64,
    /// Sum over batches of the critical path through each batch tree, µs.
    pub critical_path_us: f64,
    /// Batch time not covered by any direct child span (micro-batch
    /// scheduling overhead), µs.
    pub scheduling_overhead_us: f64,
    /// Longest single span in the trace, µs.
    pub longest_span_us: f64,
    /// Per-kind attribution rows, in [`SpanKind::ALL`] order, kinds with
    /// no spans omitted.
    pub stages: Vec<StageAttribution>,
    /// Spans the tracer had to drop (a non-zero value means the
    /// attribution undercounts).
    pub dropped_spans: u64,
}

impl TraceAnalysis {
    /// The attribution row for `kind`, if any spans of it were recorded.
    pub fn stage(&self, kind: SpanKind) -> Option<&StageAttribution> {
        self.stages.iter().find(|s| s.kind == kind)
    }

    /// Total µs recorded for `kind` (0.0 when absent).
    pub fn total_for(&self, kind: SpanKind) -> f64 {
        self.stage(kind).map(|s| s.total_us).unwrap_or(0.0)
    }

    /// Render the per-stage breakdown as an aligned text table (one row
    /// per kind), for the bench binaries' stdout.
    pub fn breakdown_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>8} {:>14} {:>14} {:>14} {:>14}\n",
            "stage", "spans", "total_ms", "self_ms", "straggler_ms", "backoff_ms"
        ));
        for s in &self.stages {
            out.push_str(&format!(
                "{:<12} {:>8} {:>14.3} {:>14.3} {:>14.3} {:>14.3}\n",
                s.kind.name(),
                s.spans,
                s.total_us / 1e3,
                s.self_us / 1e3,
                s.straggler_us / 1e3,
                s.retry_backoff_us / 1e3
            ));
        }
        out.push_str(&format!(
            "{:<12} {:>8} {:>14.3}   (critical path {:.3} ms, scheduling overhead {:.3} ms)\n",
            "batch-total",
            self.batches,
            self.total_us / 1e3,
            self.critical_path_us / 1e3,
            self.scheduling_overhead_us / 1e3
        ));
        out
    }
}

/// Per-span index of direct children (span indices, begin order).
fn children_of(spans: &[Span]) -> Vec<Vec<u32>> {
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); spans.len()];
    for (i, s) in spans.iter().enumerate() {
        if let Some(list) = children.get_mut(s.parent as usize) {
            list.push(i as u32);
        }
    }
    children
}

/// Critical path per span: `cp(n) = max(dur(n), max cp(child))`. Children
/// always have larger indices than their parent (begin order), so one
/// reverse pass suffices.
fn critical_paths(spans: &[Span], children: &[Vec<u32>]) -> Vec<f64> {
    let mut cp = vec![0.0f64; spans.len()];
    for i in (0..spans.len()).rev() {
        let mut best = spans[i].duration_us();
        if let Some(kids) = children.get(i) {
            for &c in kids {
                if let Some(&v) = cp.get(c as usize) {
                    if v > best {
                        best = v;
                    }
                }
            }
        }
        cp[i] = best;
    }
    cp
}

/// Analyze a recorded trace into per-kind latency attribution. See the
/// module docs for the attribution model.
pub fn analyze(tracer: &Tracer) -> TraceAnalysis {
    let spans = tracer.spans();
    let children = children_of(spans);
    let cp = critical_paths(spans, &children);

    let mut rows: Vec<StageAttribution> = SpanKind::ALL
        .iter()
        .map(|&kind| StageAttribution {
            kind,
            spans: 0,
            total_us: 0.0,
            self_us: 0.0,
            straggler_us: 0.0,
            retry_backoff_us: 0.0,
        })
        .collect();

    let mut batches = 0u64;
    let mut total_us = 0.0f64;
    let mut critical_path_us = 0.0f64;
    let mut scheduling_overhead_us = 0.0f64;
    let mut longest_span_us = 0.0f64;

    for (i, s) in spans.iter().enumerate() {
        let dur = s.duration_us();
        longest_span_us = longest_span_us.max(dur);
        let code = s.kind.code() as usize;

        // Per-kind totals.
        if let Some(row) = rows.get_mut(code) {
            row.spans += 1;
            row.total_us += dur;
            row.straggler_us += s.straggle_us as f64;
        }

        // Child-derived attribution: straggle and backoff bubble up onto
        // the owning stage; serial container kinds subtract child time to
        // get self time.
        let mut child_serial_us = 0.0f64;
        let mut child_straggle_us = 0.0f64;
        let mut child_backoff_us = 0.0f64;
        if let Some(kids) = children.get(i) {
            for &c in kids {
                if let Some(k) = spans.get(c as usize) {
                    child_serial_us += k.duration_us();
                    child_straggle_us += k.straggle_us as f64;
                    if k.kind == SpanKind::Backoff {
                        child_backoff_us += k.duration_us();
                    }
                }
            }
        }
        if let Some(row) = rows.get_mut(code) {
            match s.kind {
                // Task children of a stage overlap in sim time; the
                // stage's self time is its makespan minus what it spent
                // blocked on stragglers and backoff.
                SpanKind::Stage => {
                    row.straggler_us += child_straggle_us;
                    row.retry_backoff_us += child_backoff_us;
                    row.self_us += (dur - child_straggle_us - child_backoff_us).max(0.0);
                }
                // Container kinds whose children run serially under the
                // global clock: self = duration − children.
                _ => {
                    row.retry_backoff_us += child_backoff_us;
                    row.self_us += (dur - child_serial_us).max(0.0);
                }
            }
        }

        if s.kind == SpanKind::Batch && s.parent == u32::MAX {
            batches += 1;
            total_us += dur;
            critical_path_us += cp.get(i).copied().unwrap_or(dur);
            scheduling_overhead_us += (dur - child_serial_us).max(0.0);
        }
    }

    rows.retain(|r| r.spans > 0);
    TraceAnalysis {
        batches,
        total_us,
        critical_path_us,
        scheduling_overhead_us,
        longest_span_us,
        stages: rows,
        dropped_spans: tracer.dropped(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanRef;

    /// One synthetic batch: broadcast, a stage with 2 tasks (one straggled,
    /// one retried with backoff), a merge, driver and alert phases.
    fn sample_tracer() -> Tracer {
        let mut t = Tracer::new();
        let b = t.begin(SpanKind::Batch, SpanRef::INVALID, 0, 100, 0, 0.0);
        let bc = t.record(SpanKind::Broadcast, b, 0, 4096, 0, 0.0, 100.0);
        assert!(bc.is_valid());
        let s = t.begin(SpanKind::Stage, b, 0, 0, 2, 100.0);
        let t0 = t.begin(SpanKind::Task, s, 0, 0, 0, 100.0);
        t.annotate_task(t0, 1, 300, false);
        t.end(t0, 500.0);
        let t1 = t.begin(SpanKind::Task, s, 0, 0, 1, 100.0);
        t.annotate_task(t1, 1, 0, true);
        t.end(t1, 150.0);
        let bo = t.record(SpanKind::Backoff, s, 0, 0, 1, 500.0, 600.0);
        assert!(bo.is_valid());
        let t1b = t.begin(SpanKind::Task, s, 0, 0, 1, 600.0);
        t.annotate_task(t1b, 2, 0, false);
        t.end(t1b, 650.0);
        t.end(s, 700.0);
        t.record(SpanKind::Merge, b, 0, 2, 0, 700.0, 750.0);
        t.record(SpanKind::Driver, b, 0, 0, 0, 750.0, 800.0);
        t.record(SpanKind::Alert, b, 0, 90, 0, 800.0, 820.0);
        t.end(b, 900.0);
        t
    }

    #[test]
    fn attribution_splits_self_straggle_backoff() {
        let a = analyze(&sample_tracer());
        assert_eq!(a.batches, 1);
        assert_eq!(a.total_us, 900.0);
        let stage = a.stage(SpanKind::Stage).expect("stage row");
        assert_eq!(stage.total_us, 600.0);
        assert_eq!(stage.straggler_us, 300.0);
        assert_eq!(stage.retry_backoff_us, 100.0);
        assert_eq!(stage.self_us, 200.0);
        // Scheduling overhead: batch 900 − (broadcast 100 + stage 600 +
        // merge 50 + driver 50 + alert 20) = 80.
        assert!((a.scheduling_overhead_us - 80.0).abs() < 1e-9);
        assert_eq!(a.total_for(SpanKind::Broadcast), 100.0);
        assert_eq!(a.total_for(SpanKind::Driver), 50.0);
    }

    #[test]
    fn critical_path_is_bounded() {
        let a = analyze(&sample_tracer());
        assert!(a.critical_path_us >= a.longest_span_us);
        assert!(a.critical_path_us <= a.total_us + 1e-9);
    }

    #[test]
    fn empty_trace_analyzes_to_zeroes() {
        let a = analyze(&Tracer::new());
        assert_eq!(a.batches, 0);
        assert_eq!(a.total_us, 0.0);
        assert!(a.stages.is_empty());
        assert!(a.breakdown_table().contains("batch-total"));
    }

    #[test]
    fn breakdown_table_lists_present_kinds_only() {
        let table = analyze(&sample_tracer()).breakdown_table();
        assert!(table.contains("stage"));
        assert!(table.contains("broadcast"));
        assert!(table.contains("backoff"));
        assert!(!table.contains("tweet"));
    }
}
