//! `redhanded-obs`: deterministic, allocation-aware observability.
//!
//! The paper's headline claim is operational — sustained Firehose-scale
//! throughput at second-scale latency on a stream processing engine — so
//! the reproduction needs first-class instrumentation, not ad-hoc
//! `Instant` snapshots. This crate provides:
//!
//! * [`Registry`] — typed metrics (monotonic counters, gauges, fixed-bucket
//!   log-scale [`Histogram`]s with p50/p95/p99/max), pre-allocated so the
//!   hot-path record operations never allocate;
//! * [`EventLog`] — a bounded structured event ring for drift signals,
//!   alerts, suspensions, and checkpoint/recovery/retry events, stamped
//!   with batch indices (never wall time) so it replays deterministically;
//! * [`SpanClock`] — the one place real wall time may be read, disabled by
//!   default;
//! * [`Tracer`] — causal span tracing (driver → broadcast → stage →
//!   task/retry → per-operator phases) with pre-registered [`SpanKind`]s
//!   so hot-path emission is alloc-free, plus a deterministic 1-in-N
//!   per-tweet sampler;
//! * [`analyze`] — the critical-path analyzer attributing end-to-end batch
//!   latency to stages (self vs. straggler vs. retry-backoff time);
//! * sinks: [`prometheus_text`], [`obs_report_json`]
//!   (`results/OBS_report.json`), [`chrome_trace_json`]
//!   (Perfetto-loadable), and [`trace_report_json`]
//!   (`results/TRACE_report.json`).
//!
//! Every metric and event kind carries a [`Determinism`] class. The
//! deterministic subset is checkpointed via `redhanded_types::Checkpoint`
//! and must be **bit-identical** between a fault-free run and a
//! crash-recovered run (asserted by `tests/obs_consistency.rs`); the
//! runtime subset (timings, retries, checkpoint costs) describes one
//! incarnation's execution and is excluded from snapshots and comparisons.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod critical_path;
mod events;
mod export;
mod metrics;
mod time;
mod trace;

pub use critical_path::{analyze, StageAttribution, TraceAnalysis};
pub use events::{Event, EventKind, EventLog};
pub use export::{
    chrome_trace_json, escape_json, obs_report_json, prometheus_text, trace_report_json,
};
pub use metrics::{
    CounterId, Determinism, GaugeId, Histogram, HistogramId, Registry, HISTOGRAM_BUCKETS,
};
pub use time::SpanClock;
pub use trace::{Span, SpanKind, SpanRef, Tracer, DEFAULT_SAMPLE_EVERY, DEFAULT_SPAN_CAPACITY};
