//! Bounded structured event log.
//!
//! Events are stamped with the **global batch index** and a monotonic
//! sequence number — never wall time — so the log is replay-deterministic:
//! a recovered run re-emits exactly the events of a fault-free run for the
//! deterministic kinds (alerts, suspensions, drift, drains), while
//! operational kinds (checkpoint saves/restores, driver kills) record what
//! actually happened to *this* incarnation and are excluded from the
//! chaos-comparison digest.
//!
//! Storage is a pre-allocated ring: `push` never allocates, and overflow
//! drops the oldest events while counting how many were lost (silent
//! truncation would read as "nothing happened").

use redhanded_types::{Checkpoint, Error, Result, SnapshotReader, SnapshotWriter};

/// What happened. The two payload words `a`/`b` are kind-specific (see
/// each variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Concept drift fired in the model. `a` = cumulative drift count.
    DriftDetected,
    /// An alert was raised. `a` = alert seq, `b` = user id.
    AlertRaised,
    /// A user crossed the suspension threshold. `a` = user id.
    UserSuspended,
    /// `Alerter::drain` handed pending alerts to a consumer. `a` = number
    /// drained, `b` = cumulative drained total.
    AlertsDrained,
    /// A checkpoint was written. `a` = checkpoint seq, `b` = bytes.
    CheckpointSaved,
    /// State was restored from a checkpoint. `a` = checkpoint seq,
    /// `b` = records already done.
    CheckpointRestored,
    /// No checkpoint existed; recovery reset to a fresh detector.
    RecoveryReset,
    /// The driver was killed by fault injection after batch `a`.
    DriverKilled,
    /// A task failed and will be retried. `a` = packed stage/partition,
    /// `b` = attempt number.
    TaskRetried,
}

impl EventKind {
    const ALL: [EventKind; 9] = [
        EventKind::DriftDetected,
        EventKind::AlertRaised,
        EventKind::UserSuspended,
        EventKind::AlertsDrained,
        EventKind::CheckpointSaved,
        EventKind::CheckpointRestored,
        EventKind::RecoveryReset,
        EventKind::DriverKilled,
        EventKind::TaskRetried,
    ];

    /// Stable name used by the sinks.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::DriftDetected => "drift_detected",
            EventKind::AlertRaised => "alert_raised",
            EventKind::UserSuspended => "user_suspended",
            EventKind::AlertsDrained => "alerts_drained",
            EventKind::CheckpointSaved => "checkpoint_saved",
            EventKind::CheckpointRestored => "checkpoint_restored",
            EventKind::RecoveryReset => "recovery_reset",
            EventKind::DriverKilled => "driver_killed",
            EventKind::TaskRetried => "task_retried",
        }
    }

    /// Deterministic kinds describe exactly-once semantic facts and are
    /// included in [`EventLog::deterministic_digest`]; operational kinds
    /// describe one incarnation's execution and are excluded.
    pub fn deterministic(self) -> bool {
        matches!(
            self,
            EventKind::DriftDetected
                | EventKind::AlertRaised
                | EventKind::UserSuspended
                | EventKind::AlertsDrained
        )
    }

    fn code(self) -> u8 {
        EventKind::ALL.iter().position(|k| *k == self).unwrap_or(0) as u8
    }

    fn from_code(c: u8) -> Result<EventKind> {
        EventKind::ALL
            .get(c as usize)
            .copied()
            .ok_or_else(|| Error::Snapshot(format!("invalid event kind code {c}")))
    }
}

/// One fixed-size log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Global batch index at which the event occurred.
    pub batch: u64,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific payload word.
    pub a: u64,
    /// Kind-specific payload word.
    pub b: u64,
}

/// Pre-allocated ring buffer of [`Event`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventLog {
    cap: usize,
    buf: Vec<Event>,
    /// Index of the chronologically oldest entry once the ring is full.
    start: usize,
    /// Events overwritten because the ring was full.
    dropped: u64,
    /// Total events ever pushed (monotonic; also the next sequence number).
    total: u64,
}

impl EventLog {
    /// A log holding at most `capacity` events (minimum 1), with the
    /// backing storage allocated up front so [`EventLog::push`] is
    /// alloc-free.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        EventLog { cap, buf: Vec::with_capacity(cap), start: 0, dropped: 0, total: 0 }
    }

    /// Append an event, overwriting the oldest if full. Alloc-free.
    pub fn push(&mut self, batch: u64, kind: EventKind, a: u64, b: u64) {
        let e = Event { batch, kind, a, b };
        if self.buf.len() < self.cap {
            self.buf.push(e);
        } else {
            self.buf[self.start] = e;
            self.start = (self.start + 1) % self.cap;
            self.dropped += 1;
        }
        self.total += 1;
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events lost to ring overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever pushed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Retained events in chronological order.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.buf[self.start..].iter().chain(self.buf[..self.start].iter())
    }

    /// Number of retained events of `kind`.
    pub fn count(&self, kind: EventKind) -> usize {
        self.buf.iter().filter(|e| e.kind == kind).count()
    }

    /// Stable byte digest of the retained **deterministic** events, in
    /// chronological order — what the chaos harness compares between a
    /// fault-free and a recovered run.
    pub fn deterministic_digest(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        for e in self.iter().filter(|e| e.kind.deterministic()) {
            w.write_u64(e.batch);
            w.write_u8(e.kind.code());
            w.write_u64(e.a);
            w.write_u64(e.b);
        }
        w.into_bytes()
    }
}

/// The full log state round-trips (all kinds, including operational ones):
/// on recovery the restored log continues exactly where the checkpointed
/// incarnation left off, so replayed deterministic events line up with a
/// fault-free run's.
impl Checkpoint for EventLog {
    fn snapshot_into(&self, w: &mut SnapshotWriter) {
        w.write_usize(self.buf.len());
        for e in self.iter() {
            w.write_u64(e.batch);
            w.write_u8(e.kind.code());
            w.write_u64(e.a);
            w.write_u64(e.b);
        }
        w.write_u64(self.dropped);
        w.write_u64(self.total);
    }

    fn restore_from(&mut self, r: &mut SnapshotReader) -> Result<()> {
        let n = r.read_usize()?;
        if n > self.cap {
            return Err(Error::Snapshot(format!(
                "event log snapshot holds {n} events but capacity is {}",
                self.cap
            )));
        }
        self.buf.clear();
        self.start = 0;
        for _ in 0..n {
            let batch = r.read_u64()?;
            let kind = EventKind::from_code(r.read_u8()?)?;
            let a = r.read_u64()?;
            let b = r.read_u64()?;
            self.buf.push(Event { batch, kind, a, b });
        }
        self.dropped = r.read_u64()?;
        self.total = r.read_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_round_trip() {
        for k in EventKind::ALL {
            assert_eq!(EventKind::from_code(k.code()).unwrap(), k);
        }
        assert!(EventKind::from_code(200).is_err());
    }

    #[test]
    fn push_and_iterate_in_order() {
        let mut log = EventLog::new(8);
        log.push(0, EventKind::AlertRaised, 1, 10);
        log.push(1, EventKind::UserSuspended, 10, 0);
        let got: Vec<_> = log.iter().map(|e| e.kind).collect();
        assert_eq!(got, vec![EventKind::AlertRaised, EventKind::UserSuspended]);
        assert_eq!(log.count(EventKind::AlertRaised), 1);
        assert_eq!(log.total(), 2);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let mut log = EventLog::new(3);
        for i in 0..5u64 {
            log.push(i, EventKind::AlertRaised, i, 0);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.total(), 5);
        let batches: Vec<u64> = log.iter().map(|e| e.batch).collect();
        assert_eq!(batches, vec![2, 3, 4], "oldest events were dropped");
    }

    #[test]
    fn digest_filters_operational_kinds() {
        let mut a = EventLog::new(16);
        let mut b = EventLog::new(16);
        a.push(0, EventKind::AlertRaised, 1, 7);
        b.push(0, EventKind::AlertRaised, 1, 7);
        // Operational noise only on one side.
        b.push(1, EventKind::CheckpointSaved, 1, 4096);
        b.push(2, EventKind::DriverKilled, 2, 0);
        b.push(2, EventKind::CheckpointRestored, 1, 500);
        b.push(2, EventKind::TaskRetried, 3, 1);
        assert_eq!(a.deterministic_digest(), b.deterministic_digest());
        b.push(3, EventKind::DriftDetected, 1, 0);
        assert_ne!(a.deterministic_digest(), b.deterministic_digest());
    }

    #[test]
    fn checkpoint_round_trip_including_wrapped_ring() {
        let mut log = EventLog::new(4);
        for i in 0..7u64 {
            log.push(i, EventKind::AlertRaised, i, i * 2);
        }
        let bytes = log.snapshot();
        let mut restored = EventLog::new(4);
        let mut r = SnapshotReader::new(&bytes);
        restored.restore_from(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.dropped(), 3);
        assert_eq!(restored.total(), 7);
        assert_eq!(
            restored.iter().collect::<Vec<_>>(),
            log.iter().collect::<Vec<_>>(),
            "chronological order survives the round trip"
        );
        assert_eq!(restored.snapshot(), bytes, "snapshot → restore → snapshot is stable");
    }

    #[test]
    fn restore_rejects_oversized_snapshot() {
        let mut big = EventLog::new(8);
        for i in 0..6u64 {
            big.push(i, EventKind::AlertRaised, i, 0);
        }
        let bytes = big.snapshot();
        let mut small = EventLog::new(2);
        let mut r = SnapshotReader::new(&bytes);
        assert!(small.restore_from(&mut r).is_err());
    }
}
