//! Property-based tests for the observability crate (DESIGN.md §10):
//! histogram merge must be exactly associative and commutative, because
//! partition-local histograms are folded into the driver registry in
//! whatever grouping the engine produces, and the chaos harness demands
//! bit-identical state regardless.

use proptest::prelude::*;
use redhanded_obs::{Determinism, Histogram, Registry};

fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..=u64::MAX, 0..64)
}

fn hist_of(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

proptest! {
    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c): bucket counts, count, sum, and max all
    /// agree bit-for-bit however the merge tree is shaped.
    #[test]
    fn histogram_merge_is_associative(
        xs in arb_samples(),
        ys in arb_samples(),
        zs in arb_samples(),
    ) {
        let (a, b, c) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));

        let mut left = a.clone();
        left.merge_from(&b);
        left.merge_from(&c);

        let mut bc = b.clone();
        bc.merge_from(&c);
        let mut right = a.clone();
        right.merge_from(&bc);

        prop_assert_eq!(left, right);
    }

    /// a ⊕ b == b ⊕ a.
    #[test]
    fn histogram_merge_is_commutative(xs in arb_samples(), ys in arb_samples()) {
        let (a, b) = (hist_of(&xs), hist_of(&ys));
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        prop_assert_eq!(ab, ba);
    }

    /// Merging equals recording the concatenated sample stream, and the
    /// identity element is the empty histogram.
    #[test]
    fn merge_equals_concatenated_recording(xs in arb_samples(), ys in arb_samples()) {
        let mut merged = hist_of(&xs);
        merged.merge_from(&hist_of(&ys));
        let mut concat = xs.clone();
        concat.extend_from_slice(&ys);
        prop_assert_eq!(&merged, &hist_of(&concat));

        let mut with_empty = merged.clone();
        with_empty.merge_from(&Histogram::new());
        prop_assert_eq!(with_empty, merged);
    }

    /// Quantiles are ordered, bounded by the observed max, and never
    /// panic or produce NaN for any sample set.
    #[test]
    fn quantiles_ordered_and_bounded(xs in arb_samples()) {
        let h = hist_of(&xs);
        prop_assert!(h.p50() <= h.p95());
        prop_assert!(h.p95() <= h.p99());
        prop_assert!(h.p99() <= h.max());
        prop_assert!(h.mean().is_finite());
        if let Some(&max) = xs.iter().max() {
            prop_assert_eq!(h.max(), max);
        } else {
            prop_assert_eq!(h.max(), 0);
        }
    }

    /// Registry-level merge is associative too (counters add, gauges take
    /// max, histograms merge) — the engine merges executor registries in
    /// arbitrary grouping.
    #[test]
    fn registry_merge_is_associative(
        xs in arb_samples(),
        ys in arb_samples(),
        zs in arb_samples(),
    ) {
        let build = |samples: &[u64]| {
            let mut r = Registry::new();
            let c = r.counter("n_total", Determinism::Deterministic);
            let g = r.gauge("peak", Determinism::Runtime);
            let h = r.histogram("lat_us", Determinism::Runtime);
            for &v in samples {
                r.add(c, v % 17);
                r.set_max(g, (v % 1024) as f64);
                r.record(h, v);
            }
            r
        };
        let (a, b, c) = (build(&xs), build(&ys), build(&zs));

        let mut left = a.clone();
        left.merge_from(&b);
        left.merge_from(&c);

        let mut bc = b.clone();
        bc.merge_from(&c);
        let mut right = a.clone();
        right.merge_from(&bc);

        prop_assert_eq!(left.deterministic_digest(), right.deterministic_digest());
        prop_assert_eq!(left.counter_by_name("n_total"), right.counter_by_name("n_total"));
        prop_assert_eq!(left.gauge_by_name("peak"), right.gauge_by_name("peak"));
        prop_assert_eq!(
            left.histogram_by_name("lat_us"),
            right.histogram_by_name("lat_us")
        );
    }
}
