//! Property-based tests for the observability crate (DESIGN.md §10):
//! histogram merge must be exactly associative and commutative, because
//! partition-local histograms are folded into the driver registry in
//! whatever grouping the engine produces, and the chaos harness demands
//! bit-identical state regardless.

use proptest::prelude::*;
use redhanded_obs::{analyze, Determinism, Histogram, Registry, SpanKind, SpanRef, Tracer};

fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..=u64::MAX, 0..64)
}

/// Random batch forests for the critical-path analyzer: each batch is a
/// slack plus stages, each stage a slack plus `(compute, straggle)` tasks.
/// Durations are derived bottom-up (stage = longest task + slack, batch =
/// sum of stages + slack) so children are exactly contained in their
/// parents, the same containment the simulated clock guarantees.
type BatchSpec = (u64, Vec<(u64, Vec<(u64, u64)>)>);

fn arb_batches() -> impl Strategy<Value = Vec<BatchSpec>> {
    prop::collection::vec(
        (
            0u64..3000,
            prop::collection::vec(
                (0u64..300, prop::collection::vec((0u64..500, 0u64..100), 0..5)),
                0..5,
            ),
        ),
        1..4,
    )
}

/// Emit the spec as a span forest: stages serial under the batch, tasks
/// parallel under the stage (all starting at the stage's start). With
/// `reverse`, sibling stages are emitted in reverse order — span ids and
/// wall placement change, but the causal key set must not.
fn build_trace(batches: &[BatchSpec], reverse: bool) -> Tracer {
    let mut t = Tracer::new();
    let mut clock = 0.0f64;
    for (bi, (bslack, stages)) in batches.iter().enumerate() {
        let stage_durs: Vec<f64> = stages
            .iter()
            .map(|(slack, tasks)| {
                let longest = tasks.iter().map(|&(d, s)| d + s).max().unwrap_or(0);
                (longest + slack) as f64
            })
            .collect();
        let bdur = stage_durs.iter().sum::<f64>() + *bslack as f64;
        let root = t.begin(SpanKind::Batch, SpanRef::INVALID, bi as u64, 0, 0, clock);
        let mut cursor = clock;
        let order: Vec<usize> = if reverse {
            (0..stages.len()).rev().collect()
        } else {
            (0..stages.len()).collect()
        };
        for si in order {
            let (_, tasks) = &stages[si];
            let sdur = stage_durs[si];
            let stage = t.begin(
                SpanKind::Stage,
                root,
                bi as u64,
                si as u64,
                tasks.len() as u64,
                cursor,
            );
            for (pi, &(tdur, straggle)) in tasks.iter().enumerate() {
                let task =
                    t.begin(SpanKind::Task, stage, bi as u64, si as u64, pi as u64, cursor);
                t.annotate_task(task, 1, straggle, false);
                t.end(task, cursor + (tdur + straggle) as f64);
            }
            t.end(stage, cursor + sdur);
            cursor += sdur;
        }
        t.end(root, clock + bdur);
        clock += bdur;
    }
    t
}

fn hist_of(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

proptest! {
    /// (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c): bucket counts, count, sum, and max all
    /// agree bit-for-bit however the merge tree is shaped.
    #[test]
    fn histogram_merge_is_associative(
        xs in arb_samples(),
        ys in arb_samples(),
        zs in arb_samples(),
    ) {
        let (a, b, c) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));

        let mut left = a.clone();
        left.merge_from(&b);
        left.merge_from(&c);

        let mut bc = b.clone();
        bc.merge_from(&c);
        let mut right = a.clone();
        right.merge_from(&bc);

        prop_assert_eq!(left, right);
    }

    /// a ⊕ b == b ⊕ a.
    #[test]
    fn histogram_merge_is_commutative(xs in arb_samples(), ys in arb_samples()) {
        let (a, b) = (hist_of(&xs), hist_of(&ys));
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        prop_assert_eq!(ab, ba);
    }

    /// Merging equals recording the concatenated sample stream, and the
    /// identity element is the empty histogram.
    #[test]
    fn merge_equals_concatenated_recording(xs in arb_samples(), ys in arb_samples()) {
        let mut merged = hist_of(&xs);
        merged.merge_from(&hist_of(&ys));
        let mut concat = xs.clone();
        concat.extend_from_slice(&ys);
        prop_assert_eq!(&merged, &hist_of(&concat));

        let mut with_empty = merged.clone();
        with_empty.merge_from(&Histogram::new());
        prop_assert_eq!(with_empty, merged);
    }

    /// Quantiles are ordered, bounded by the observed max, and never
    /// panic or produce NaN for any sample set.
    #[test]
    fn quantiles_ordered_and_bounded(xs in arb_samples()) {
        let h = hist_of(&xs);
        prop_assert!(h.p50() <= h.p95());
        prop_assert!(h.p95() <= h.p99());
        prop_assert!(h.p99() <= h.max());
        prop_assert!(h.mean().is_finite());
        if let Some(&max) = xs.iter().max() {
            prop_assert_eq!(h.max(), max);
        } else {
            prop_assert_eq!(h.max(), 0);
        }
    }

    /// Registry-level merge is associative too (counters add, gauges take
    /// max, histograms merge) — the engine merges executor registries in
    /// arbitrary grouping.
    #[test]
    fn registry_merge_is_associative(
        xs in arb_samples(),
        ys in arb_samples(),
        zs in arb_samples(),
    ) {
        let build = |samples: &[u64]| {
            let mut r = Registry::new();
            let c = r.counter("n_total", Determinism::Deterministic);
            let g = r.gauge("peak", Determinism::Runtime);
            let h = r.histogram("lat_us", Determinism::Runtime);
            for &v in samples {
                r.add(c, v % 17);
                r.set_max(g, (v % 1024) as f64);
                r.record(h, v);
            }
            r
        };
        let (a, b, c) = (build(&xs), build(&ys), build(&zs));

        let mut left = a.clone();
        left.merge_from(&b);
        left.merge_from(&c);

        let mut bc = b.clone();
        bc.merge_from(&c);
        let mut right = a.clone();
        right.merge_from(&bc);

        prop_assert_eq!(left.deterministic_digest(), right.deterministic_digest());
        prop_assert_eq!(left.counter_by_name("n_total"), right.counter_by_name("n_total"));
        prop_assert_eq!(left.gauge_by_name("peak"), right.gauge_by_name("peak"));
        prop_assert_eq!(
            left.histogram_by_name("lat_us"),
            right.histogram_by_name("lat_us")
        );
    }

    /// The critical path is bounded: at least the longest single span
    /// (cp(n) = max(dur, max child cp) dominates every descendant), at
    /// most the summed batch wall time (children are contained in their
    /// parents), for any batch forest shape.
    #[test]
    fn critical_path_bounded_by_longest_span_and_wall_time(specs in arb_batches()) {
        let tracer = build_trace(&specs, false);
        let a = analyze(&tracer);
        prop_assert_eq!(a.batches, specs.len() as u64);
        prop_assert_eq!(a.dropped_spans, 0);
        prop_assert!(a.critical_path_us >= a.longest_span_us - 1e-9);
        prop_assert!(a.critical_path_us <= a.total_us + 1e-9);
        prop_assert!(a.scheduling_overhead_us >= 0.0);
        prop_assert!(a.scheduling_overhead_us <= a.total_us + 1e-9);
        for row in &a.stages {
            prop_assert!(row.spans > 0);
            prop_assert!(row.self_us >= 0.0);
            prop_assert!(row.straggler_us >= 0.0);
            prop_assert!(row.retry_backoff_us >= 0.0);
            prop_assert!(row.self_us <= row.total_us + 1e-9);
        }
    }

    /// The deterministic span-tree digest hashes causal structure, not
    /// emission order or wall placement: emitting sibling stages in
    /// reverse (which shifts every span id and timestamp) yields a
    /// bit-identical digest.
    #[test]
    fn trace_digest_ignores_sibling_order_and_timing(specs in arb_batches()) {
        let forward = build_trace(&specs, false);
        let reversed = build_trace(&specs, true);
        prop_assert_eq!(forward.deterministic_digest(), reversed.deterministic_digest());
    }
}
