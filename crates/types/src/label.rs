//! Annotation labels and class schemes.
//!
//! The paper's main dataset labels tweets as *normal*, *abusive*, *hateful*,
//! or *spam* (spam is filtered out before classification, Section IV-A). The
//! evaluation considers both a 3-class problem (normal / abusive / hateful)
//! and a 2-class problem where abusive and hateful collapse into a single
//! *aggressive* class. Section V-F additionally evaluates a sarcasm dataset
//! (sarcastic vs. not) and an offensive dataset (racist / sexist / none).
//!
//! A [`ClassScheme`] maps a [`ClassLabel`] onto a dense class index in
//! `0..num_classes`, which is what classifiers operate on.

use std::fmt;

/// A human-assigned annotation on a tweet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassLabel {
    /// Benign content.
    Normal,
    /// Abusive content (strongly impolite, rude, or hurtful language).
    Abusive,
    /// Hateful content (attacks on protected characteristics).
    Hateful,
    /// Spam — removed before classification in the paper (Section IV-A).
    Spam,
    /// Sarcastic tweet (the Sarcasm dataset of Section V-F).
    Sarcastic,
    /// Racist tweet (the Offensive dataset of Section V-F).
    Racist,
    /// Sexist tweet (the Offensive dataset of Section V-F).
    Sexist,
}

impl ClassLabel {
    /// Whether the label counts as *aggressive* in the 2-class collapse
    /// (abusive or hateful, Section V-A).
    pub fn is_aggressive(self) -> bool {
        matches!(self, ClassLabel::Abusive | ClassLabel::Hateful)
    }

    /// Canonical lowercase name, matching the JSON encoding.
    pub fn name(self) -> &'static str {
        match self {
            ClassLabel::Normal => "normal",
            ClassLabel::Abusive => "abusive",
            ClassLabel::Hateful => "hateful",
            ClassLabel::Spam => "spam",
            ClassLabel::Sarcastic => "sarcastic",
            ClassLabel::Racist => "racist",
            ClassLabel::Sexist => "sexist",
        }
    }

    /// Parse a canonical lowercase name back into a label.
    pub fn parse(name: &str) -> Option<Self> {
        Some(match name {
            "normal" => ClassLabel::Normal,
            "abusive" => ClassLabel::Abusive,
            "hateful" => ClassLabel::Hateful,
            "spam" => ClassLabel::Spam,
            "sarcastic" => ClassLabel::Sarcastic,
            "racist" => ClassLabel::Racist,
            "sexist" => ClassLabel::Sexist,
            _ => return None,
        })
    }
}

impl fmt::Display for ClassLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Maps annotation labels onto dense class indices for a classification task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassScheme {
    /// 2-class problem: class 0 = normal, class 1 = aggressive
    /// (abusive ∪ hateful). Spam is excluded.
    TwoClass,
    /// 3-class problem: class 0 = normal, 1 = abusive, 2 = hateful.
    /// Spam is excluded.
    ThreeClass,
    /// Sarcasm dataset: class 0 = not sarcastic (normal), 1 = sarcastic.
    Sarcasm,
    /// Offensive dataset: class 0 = none (normal), 1 = racist, 2 = sexist.
    Offensive,
}

impl ClassScheme {
    /// Number of dense classes in this scheme.
    pub fn num_classes(self) -> usize {
        match self {
            ClassScheme::TwoClass | ClassScheme::Sarcasm => 2,
            ClassScheme::ThreeClass | ClassScheme::Offensive => 3,
        }
    }

    /// Dense class index for `label`, or `None` if the label does not belong
    /// to this scheme (e.g. spam, which the paper filters out).
    pub fn index_of(self, label: ClassLabel) -> Option<usize> {
        match (self, label) {
            (ClassScheme::TwoClass, ClassLabel::Normal) => Some(0),
            (ClassScheme::TwoClass, l) if l.is_aggressive() => Some(1),
            (ClassScheme::ThreeClass, ClassLabel::Normal) => Some(0),
            (ClassScheme::ThreeClass, ClassLabel::Abusive) => Some(1),
            (ClassScheme::ThreeClass, ClassLabel::Hateful) => Some(2),
            (ClassScheme::Sarcasm, ClassLabel::Normal) => Some(0),
            (ClassScheme::Sarcasm, ClassLabel::Sarcastic) => Some(1),
            (ClassScheme::Offensive, ClassLabel::Normal) => Some(0),
            (ClassScheme::Offensive, ClassLabel::Racist) => Some(1),
            (ClassScheme::Offensive, ClassLabel::Sexist) => Some(2),
            _ => None,
        }
    }

    /// Human-readable name of a dense class index.
    ///
    /// # Panics
    /// Panics if `class >= self.num_classes()`.
    pub fn class_name(self, class: usize) -> &'static str {
        let names: &[&'static str] = match self {
            ClassScheme::TwoClass => &["normal", "aggressive"],
            ClassScheme::ThreeClass => &["normal", "abusive", "hateful"],
            ClassScheme::Sarcasm => &["normal", "sarcastic"],
            ClassScheme::Offensive => &["none", "racist", "sexist"],
        };
        names[class]
    }

    /// Class indices considered "positive" when computing macro F1 restricted
    /// to the minority/interest classes. For all schemes this is every class
    /// except the benign class 0.
    pub fn positive_classes(self) -> impl Iterator<Item = usize> {
        1..self.num_classes()
    }
}

impl fmt::Display for ClassScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ClassScheme::TwoClass => "2-class",
            ClassScheme::ThreeClass => "3-class",
            ClassScheme::Sarcasm => "sarcasm",
            ClassScheme::Offensive => "offensive",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggressive_collapse() {
        assert!(ClassLabel::Abusive.is_aggressive());
        assert!(ClassLabel::Hateful.is_aggressive());
        assert!(!ClassLabel::Normal.is_aggressive());
        assert!(!ClassLabel::Spam.is_aggressive());
    }

    #[test]
    fn two_class_mapping() {
        let s = ClassScheme::TwoClass;
        assert_eq!(s.num_classes(), 2);
        assert_eq!(s.index_of(ClassLabel::Normal), Some(0));
        assert_eq!(s.index_of(ClassLabel::Abusive), Some(1));
        assert_eq!(s.index_of(ClassLabel::Hateful), Some(1));
        assert_eq!(s.index_of(ClassLabel::Spam), None);
        assert_eq!(s.index_of(ClassLabel::Sarcastic), None);
    }

    #[test]
    fn three_class_mapping() {
        let s = ClassScheme::ThreeClass;
        assert_eq!(s.num_classes(), 3);
        assert_eq!(s.index_of(ClassLabel::Normal), Some(0));
        assert_eq!(s.index_of(ClassLabel::Abusive), Some(1));
        assert_eq!(s.index_of(ClassLabel::Hateful), Some(2));
        assert_eq!(s.index_of(ClassLabel::Spam), None);
    }

    #[test]
    fn related_behavior_mappings() {
        assert_eq!(ClassScheme::Sarcasm.index_of(ClassLabel::Sarcastic), Some(1));
        assert_eq!(ClassScheme::Sarcasm.index_of(ClassLabel::Normal), Some(0));
        assert_eq!(ClassScheme::Sarcasm.index_of(ClassLabel::Racist), None);
        assert_eq!(ClassScheme::Offensive.index_of(ClassLabel::Racist), Some(1));
        assert_eq!(ClassScheme::Offensive.index_of(ClassLabel::Sexist), Some(2));
        assert_eq!(ClassScheme::Offensive.index_of(ClassLabel::Sarcastic), None);
    }

    #[test]
    fn class_names_cover_all_indices() {
        for scheme in [
            ClassScheme::TwoClass,
            ClassScheme::ThreeClass,
            ClassScheme::Sarcasm,
            ClassScheme::Offensive,
        ] {
            for c in 0..scheme.num_classes() {
                assert!(!scheme.class_name(c).is_empty());
            }
        }
    }

    #[test]
    fn positive_classes_exclude_benign() {
        let pos: Vec<_> = ClassScheme::ThreeClass.positive_classes().collect();
        assert_eq!(pos, vec![1, 2]);
        let pos: Vec<_> = ClassScheme::TwoClass.positive_classes().collect();
        assert_eq!(pos, vec![1]);
    }

    #[test]
    fn name_parse_roundtrip() {
        for l in [
            ClassLabel::Normal,
            ClassLabel::Abusive,
            ClassLabel::Hateful,
            ClassLabel::Spam,
            ClassLabel::Sarcastic,
            ClassLabel::Racist,
            ClassLabel::Sexist,
        ] {
            assert_eq!(ClassLabel::parse(l.name()), Some(l));
        }
        assert_eq!(ClassLabel::parse("bogus"), None);
    }

    #[test]
    fn wire_format_uses_lowercase_names() {
        assert_eq!(ClassLabel::Hateful.name(), "hateful");
        assert_eq!(ClassLabel::parse("hateful"), Some(ClassLabel::Hateful));
        assert_eq!(ClassLabel::parse("Hateful"), None, "wire names are lowercase");
    }
}
