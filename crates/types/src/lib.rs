//! Shared data model for the `redhanded` framework.
//!
//! This crate defines the vocabulary types used across every other crate in
//! the workspace:
//!
//! * [`Tweet`] / [`TwitterUser`] — the raw social-media payload, mirroring the
//!   JSON format delivered by the Twitter Streaming API (the system input in
//!   Section III-A of the paper).
//! * [`ClassLabel`] / [`ClassScheme`] — annotation labels and the mapping from
//!   labels to dense class indices for the 2-class, 3-class, and
//!   related-behavior (sarcasm / offensive) problems.
//! * [`Instance`] — a dense feature vector with an optional label, the unit of
//!   work flowing through the streaming pipeline after feature extraction.
//! * [`Dataset`] — an in-memory collection of instances with day-segment
//!   structure (the paper's dataset spans 10 consecutive days).
//! * [`FeatureSet`] — feature-name metadata shared by extraction, model
//!   inspection, and the Gini-importance experiment.
//! * [`io`] — JSONL persistence of tweet streams (the wire format doubles
//!   as the on-disk dataset format).
//! * [`snapshot`] — the [`Checkpoint`] trait and binary codec used by the
//!   DSPE's fault-tolerance layer to capture and restore model state.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod dataset;
mod error;
mod instance;
pub mod io;
pub mod json;
mod label;
pub mod snapshot;
mod tweet;

pub use dataset::{Dataset, DaySegment};
pub use error::{Error, Result};
pub use io::{load_labeled, read_labeled_jsonl, read_unlabeled_jsonl, save_labeled, write_labeled_jsonl, write_unlabeled_jsonl};
pub use instance::{FeatureSet, Instance};
pub use label::{ClassLabel, ClassScheme};
pub use snapshot::{Checkpoint, SnapshotReader, SnapshotWriter};
pub use tweet::{LabeledTweet, Tweet, TwitterUser};
