//! In-memory datasets of extracted instances with day-segment structure.

use crate::{ClassScheme, Instance};

/// A contiguous range of instances belonging to one collection day.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaySegment {
    /// Zero-based day index.
    pub day: u32,
    /// Start index (inclusive) into the dataset's instance vector.
    pub start: usize,
    /// End index (exclusive).
    pub end: usize,
}

impl DaySegment {
    /// Number of instances in the segment.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the segment holds no instances.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// An ordered collection of instances under a single class scheme.
///
/// Instances are stored in stream arrival order; the paper's dataset was
/// collected over 10 consecutive days of roughly 8–9k tweets each, and the
/// batch-vs-streaming comparison (Figures 13–14) trains and tests on day
/// boundaries, so the day structure is first-class here.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// The class scheme the labels are encoded under.
    pub scheme: ClassScheme,
    instances: Vec<Instance>,
}

impl Dataset {
    /// An empty dataset under `scheme`.
    pub fn new(scheme: ClassScheme) -> Self {
        Dataset { scheme, instances: Vec::new() }
    }

    /// Build a dataset from pre-extracted instances.
    pub fn from_instances(scheme: ClassScheme, instances: Vec<Instance>) -> Self {
        Dataset { scheme, instances }
    }

    /// Append one instance, preserving arrival order.
    pub fn push(&mut self, instance: Instance) {
        self.instances.push(instance);
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True when the dataset holds no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// All instances in arrival order.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Mutable access to the instances (e.g. for in-place normalization).
    pub fn instances_mut(&mut self) -> &mut [Instance] {
        &mut self.instances
    }

    /// Consume the dataset, yielding its instances.
    pub fn into_instances(self) -> Vec<Instance> {
        self.instances
    }

    /// Per-class instance counts (ignoring unlabeled instances).
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.scheme.num_classes()];
        for inst in &self.instances {
            if let Some(l) = inst.label {
                if l < counts.len() {
                    counts[l] += 1;
                }
            }
        }
        counts
    }

    /// Contiguous day segments in day order.
    ///
    /// Instances are assumed grouped by day in arrival order (as a real
    /// stream is); a new segment starts whenever the day field changes.
    pub fn day_segments(&self) -> Vec<DaySegment> {
        let mut segments = Vec::new();
        let mut start = 0usize;
        for i in 1..=self.instances.len() {
            let boundary =
                i == self.instances.len() || self.instances[i].day != self.instances[start].day;
            if boundary {
                segments.push(DaySegment { day: self.instances[start].day, start, end: i });
                start = i;
            }
        }
        segments
    }

    /// Instances of one day segment.
    pub fn day_slice(&self, segment: DaySegment) -> &[Instance] {
        &self.instances[segment.start..segment.end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClassScheme;

    fn inst(label: usize, day: u32) -> Instance {
        Instance::labeled(vec![0.0], label).with_day(day)
    }

    #[test]
    fn class_counts_ignore_unlabeled() {
        let mut ds = Dataset::new(ClassScheme::ThreeClass);
        ds.push(inst(0, 0));
        ds.push(inst(1, 0));
        ds.push(inst(1, 0));
        ds.push(Instance::unlabeled(vec![0.0]));
        assert_eq!(ds.class_counts(), vec![1, 2, 0]);
        assert_eq!(ds.len(), 4);
    }

    #[test]
    fn day_segments_split_on_boundaries() {
        let mut ds = Dataset::new(ClassScheme::TwoClass);
        for day in 0..3u32 {
            for _ in 0..(day + 1) {
                ds.push(inst(0, day));
            }
        }
        let segs = ds.day_segments();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0], DaySegment { day: 0, start: 0, end: 1 });
        assert_eq!(segs[1], DaySegment { day: 1, start: 1, end: 3 });
        assert_eq!(segs[2], DaySegment { day: 2, start: 3, end: 6 });
        assert_eq!(ds.day_slice(segs[2]).len(), 3);
        assert_eq!(segs[2].len(), 3);
        assert!(!segs[2].is_empty());
    }

    #[test]
    fn empty_dataset_has_no_segments() {
        let ds = Dataset::new(ClassScheme::TwoClass);
        assert!(ds.is_empty());
        assert!(ds.day_segments().is_empty());
    }

    #[test]
    fn from_instances_preserves_order() {
        let v = vec![inst(0, 0), inst(1, 0)];
        let ds = Dataset::from_instances(ClassScheme::TwoClass, v.clone());
        assert_eq!(ds.instances(), v.as_slice());
        assert_eq!(ds.into_instances(), v);
    }

    #[test]
    fn out_of_range_labels_do_not_panic_in_counts() {
        let mut ds = Dataset::new(ClassScheme::TwoClass);
        ds.push(inst(9, 0));
        assert_eq!(ds.class_counts(), vec![0, 0]);
    }
}
