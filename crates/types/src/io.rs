//! JSONL (one JSON payload per line) dataset I/O.
//!
//! The wire format of the paper's input streams (Section III-A) doubles as
//! the on-disk dataset format: `redhanded generate` emits it, the CLI's
//! `detect`/`evaluate` consume it, and these helpers read/write it in bulk
//! so generated datasets can be persisted and shared between runs.

use crate::{LabeledTweet, Result, Tweet};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Write labeled tweets as JSONL.
pub fn write_labeled_jsonl<W: Write>(writer: W, tweets: &[LabeledTweet]) -> Result<()> {
    let mut w = BufWriter::new(writer);
    for t in tweets {
        writeln!(w, "{}", t.to_json())?;
    }
    w.flush()?;
    Ok(())
}

/// Write unlabeled tweets as JSONL.
pub fn write_unlabeled_jsonl<W: Write>(writer: W, tweets: &[Tweet]) -> Result<()> {
    let mut w = BufWriter::new(writer);
    for t in tweets {
        writeln!(w, "{}", t.to_json())?;
    }
    w.flush()?;
    Ok(())
}

/// Read labeled tweets from JSONL. Blank lines are skipped; a malformed
/// line is an error (datasets are machine-written).
pub fn read_labeled_jsonl<R: Read>(reader: R) -> Result<Vec<LabeledTweet>> {
    let mut out = Vec::new();
    for line in BufReader::new(reader).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        out.push(LabeledTweet::from_json(&line)?);
    }
    Ok(out)
}

/// Read unlabeled tweets from JSONL (labels on a line, if any, are
/// ignored — a labeled file downgrades cleanly to an unlabeled stream).
pub fn read_unlabeled_jsonl<R: Read>(reader: R) -> Result<Vec<Tweet>> {
    let mut out = Vec::new();
    for line in BufReader::new(reader).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        out.push(Tweet::from_json(&line)?);
    }
    Ok(out)
}

/// Write labeled tweets to a file path.
pub fn save_labeled(path: impl AsRef<Path>, tweets: &[LabeledTweet]) -> Result<()> {
    write_labeled_jsonl(std::fs::File::create(path)?, tweets)
}

/// Read labeled tweets from a file path.
pub fn load_labeled(path: impl AsRef<Path>) -> Result<Vec<LabeledTweet>> {
    read_labeled_jsonl(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassLabel, TwitterUser};

    fn tweets(n: u64) -> Vec<LabeledTweet> {
        (0..n)
            .map(|i| LabeledTweet {
                tweet: Tweet {
                    id: i,
                    text: format!("tweet number {i} with ünïcode"),
                    timestamp_ms: i * 1000,
                    is_retweet: i % 2 == 0,
                    is_reply: false,
                    user: TwitterUser::synthetic(i),
                },
                label: if i % 3 == 0 { ClassLabel::Abusive } else { ClassLabel::Normal },
            })
            .collect()
    }

    #[test]
    fn labeled_roundtrip_through_memory() {
        let original = tweets(25);
        let mut buf = Vec::new();
        write_labeled_jsonl(&mut buf, &original).unwrap();
        let back = read_labeled_jsonl(buf.as_slice()).unwrap();
        assert_eq!(original, back);
    }

    #[test]
    fn labeled_file_downgrades_to_unlabeled() {
        let original = tweets(5);
        let mut buf = Vec::new();
        write_labeled_jsonl(&mut buf, &original).unwrap();
        let plain = read_unlabeled_jsonl(buf.as_slice()).unwrap();
        assert_eq!(plain.len(), 5);
        assert_eq!(plain[3], original[3].tweet);
    }

    #[test]
    fn blank_lines_are_skipped_and_garbage_is_an_error() {
        let mut buf = Vec::new();
        write_labeled_jsonl(&mut buf, &tweets(2)).unwrap();
        buf.extend_from_slice(b"\n\n");
        assert_eq!(read_labeled_jsonl(buf.as_slice()).unwrap().len(), 2);
        buf.extend_from_slice(b"{not json}\n");
        assert!(read_labeled_jsonl(buf.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("redhanded_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.jsonl");
        let original = tweets(10);
        save_labeled(&path, &original).unwrap();
        let back = load_labeled(&path).unwrap();
        assert_eq!(original, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_labeled("/definitely/not/a/path.jsonl").unwrap_err();
        assert!(matches!(err, crate::Error::Io(_)));
    }
}
