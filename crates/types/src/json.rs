//! Minimal JSON parser and writer for the tweet wire format.
//!
//! The workspace builds offline, so instead of `serde_json` the wire types
//! serialize through this hand-rolled module. It implements the full JSON
//! grammar on the read side (objects, arrays, strings with escapes and
//! surrogate pairs, numbers, literals) and serde_json-compatible output on
//! the write side (same escaping rules, floats always carry a decimal
//! point, object fields in declaration order).

use std::fmt;

/// Error produced when a JSON payload fails to parse or is missing fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    /// Byte offset of the failure in the input (0 for semantic errors).
    pub position: usize,
}

impl JsonError {
    fn syntax(message: impl Into<String>, position: usize) -> Self {
        JsonError { message: message.into(), position }
    }

    /// A required object field was absent.
    pub fn missing_field(name: &str) -> Self {
        JsonError { message: format!("missing field `{name}`"), position: 0 }
    }

    /// A field was present but held the wrong JSON type.
    pub fn type_mismatch(name: &str, expected: &str) -> Self {
        JsonError { message: format!("field `{name}` is not {expected}"), position: 0 }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.position > 0 {
            write!(f, "{} at byte {}", self.message, self.position)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON number, preserving integer exactness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Any number written with a fraction or exponent, or out of integer
    /// range.
    Float(f64),
}

/// A JSON document value.
///
/// Objects preserve insertion order (a `Vec` of pairs — payloads here are
/// small, so linear key lookup beats hashing).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string literal.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object as an ordered key–value list.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<Value, JsonError> {
        let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(JsonError::syntax("trailing characters", parser.pos));
        }
        Ok(value)
    }

    /// Object field lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// True for numbers representable as `u64`.
    pub fn is_u64(&self) -> bool {
        matches!(self, Value::Number(Number::PosInt(_)))
    }

    /// True for string values.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// Numeric value as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n as f64),
            Value::Number(Number::NegInt(n)) => Some(*n as f64),
            Value::Number(Number::Float(x)) => Some(*x),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean contents, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// serde_json-style indexing: `v["key"]` yields `Null` for anything absent.
impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::syntax(
                format!("expected `{}`", char::from(b)),
                self.pos,
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::syntax(format!("expected `{word}`"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(JsonError::syntax("expected a JSON value", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(JsonError::syntax("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(JsonError::syntax("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        let start = self.pos;
        loop {
            match self.peek() {
                None => return Err(JsonError::syntax("unterminated string", start)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::syntax("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a trailing \uXXXX.
                                if self.peek() != Some(b'\\') {
                                    return Err(JsonError::syntax(
                                        "unpaired surrogate",
                                        self.pos,
                                    ));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(JsonError::syntax(
                                        "invalid low surrogate",
                                        self.pos,
                                    ));
                                }
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| {
                                JsonError::syntax("invalid unicode escape", self.pos)
                            })?);
                        }
                        _ => {
                            return Err(JsonError::syntax("invalid escape", self.pos - 1))
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(JsonError::syntax("control character in string", self.pos))
                }
                Some(_) => {
                    // Copy a whole UTF-8 scalar (input is a valid &str).
                    let run_start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| b != b'"' && b != b'\\' && b >= 0x20)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[run_start..self.pos])
                            .expect("input is valid UTF-8"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(JsonError::syntax("truncated unicode escape", self.pos));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| JsonError::syntax("invalid unicode escape", self.pos))?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| JsonError::syntax("invalid unicode escape", self.pos))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
            return Err(JsonError::syntax("expected a digit", self.pos));
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
                return Err(JsonError::syntax("expected a fraction digit", self.pos));
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
                return Err(JsonError::syntax("expected an exponent digit", self.pos));
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number chars are ASCII");
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(n) = digits.parse::<u64>() {
                    if n <= i64::MAX as u64 + 1 {
                        return Ok(Value::Number(Number::NegInt((n as i64).wrapping_neg())));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
        }
        text.parse::<f64>()
            .map(|x| Value::Number(Number::Float(x)))
            .map_err(|_| JsonError::syntax("invalid number", start))
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Append `s` as a JSON string literal (quotes included), using serde_json's
/// escaping rules: short escapes where defined, `\u00XX` for other control
/// characters, raw UTF-8 for everything else.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a float in serde_json style: integral values keep a `.0` suffix so
/// the token stays unambiguously a float.
pub fn write_f64(value: f64, out: &mut String) {
    use std::fmt::Write;
    if value.is_finite() && value == value.trunc() && value.abs() < 1e16 {
        let _ = write!(out, "{value:.1}");
    } else {
        let _ = write!(out, "{value}");
    }
}

/// Extract a required field from a parsed object.
pub fn required<'v>(obj: &'v Value, name: &str) -> Result<&'v Value, JsonError> {
    obj.get(name).ok_or_else(|| JsonError::missing_field(name))
}

/// Extract a required `u64` field.
pub fn req_u64(obj: &Value, name: &str) -> Result<u64, JsonError> {
    required(obj, name)?
        .as_u64()
        .ok_or_else(|| JsonError::type_mismatch(name, "an unsigned integer"))
}

/// Extract a required numeric field as `f64`.
pub fn req_f64(obj: &Value, name: &str) -> Result<f64, JsonError> {
    required(obj, name)?
        .as_f64()
        .ok_or_else(|| JsonError::type_mismatch(name, "a number"))
}

/// Extract a required string field.
pub fn req_str<'v>(obj: &'v Value, name: &str) -> Result<&'v str, JsonError> {
    required(obj, name)?
        .as_str()
        .ok_or_else(|| JsonError::type_mismatch(name, "a string"))
}

/// Extract an optional boolean field, defaulting to `false` when absent
/// (serde's `#[serde(default)]` semantics).
pub fn opt_bool_default(obj: &Value, name: &str) -> Result<bool, JsonError> {
    match obj.get(name) {
        None => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| JsonError::type_mismatch(name, "a boolean")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = Value::parse(
            r#"{"a": 1, "b": -2.5, "c": "x", "d": [true, false, null], "e": {"f": 1e3}}"#,
        )
        .unwrap();
        assert_eq!(v["a"].as_u64(), Some(1));
        assert!(v["a"].is_u64());
        assert_eq!(v["b"].as_f64(), Some(-2.5));
        assert_eq!(v["c"].as_str(), Some("x"));
        assert!(v["c"].is_string());
        match &v["d"] {
            Value::Array(items) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[0].as_bool(), Some(true));
                assert_eq!(items[2], Value::Null);
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(v["e"]["f"].as_f64(), Some(1000.0));
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn integer_exactness_preserved() {
        let v = Value::parse("[18446744073709551615, -9223372036854775808, 1.0]").unwrap();
        match &v {
            Value::Array(items) => {
                assert_eq!(items[0].as_u64(), Some(u64::MAX));
                assert_eq!(items[1].as_f64(), Some(i64::MIN as f64));
                assert!(!items[2].is_u64(), "1.0 is a float, not a u64");
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "quote:\" back:\\ nl:\n tab:\t bell:\u{7} emoji:😀 pair:𝄞";
        let mut encoded = String::new();
        write_escaped(original, &mut encoded);
        let back = Value::parse(&encoded).unwrap();
        assert_eq!(back.as_str(), Some(original));
        // Explicit escape forms parse too, including surrogate pairs.
        let v = Value::parse(r#""\u0041\u00e9\ud834\udd1e\/""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé𝄞/"));
    }

    #[test]
    fn float_formatting_matches_serde_style() {
        let mut s = String::new();
        write_f64(1000.0, &mut s);
        assert_eq!(s, "1000.0");
        s.clear();
        write_f64(1234.5678, &mut s);
        assert_eq!(s, "1234.5678");
        s.clear();
        write_f64(-0.5, &mut s);
        assert_eq!(s, "-0.5");
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "", "{", "{\"a\"}", "{\"a\":}", "[1,]", "\"abc", "01x", "nul",
            "{\"a\":1} extra", "\"\\u12\"", "\"\\ud800\"", "{1:2}", "tru",
            "-", "1.", "1e", "[\u{1}]",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn field_helpers_enforce_presence_and_type() {
        let v = Value::parse(r#"{"n": 3, "s": "hi", "f": 2.5, "b": true}"#).unwrap();
        assert_eq!(req_u64(&v, "n").unwrap(), 3);
        assert_eq!(req_str(&v, "s").unwrap(), "hi");
        assert_eq!(req_f64(&v, "f").unwrap(), 2.5);
        assert_eq!(req_f64(&v, "n").unwrap(), 3.0);
        assert!(opt_bool_default(&v, "b").unwrap());
        assert!(!opt_bool_default(&v, "zz").unwrap());
        assert!(req_u64(&v, "zz").is_err());
        assert!(req_u64(&v, "s").is_err());
        assert!(req_str(&v, "n").is_err());
    }
}
