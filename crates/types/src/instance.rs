//! Feature-vector instances — the unit of work after feature extraction.

use crate::json::{self, Value};

/// Names and arity of a feature vector layout.
///
/// Shared between the extractor (which produces vectors in this order), the
/// models (which report per-feature statistics such as Gini importance), and
/// the experiment harness (which prints feature names in figures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureSet {
    names: Vec<String>,
}

impl FeatureSet {
    /// Create a feature set from an ordered list of names.
    pub fn new<S: Into<String>>(names: impl IntoIterator<Item = S>) -> Self {
        FeatureSet { names: names.into_iter().map(Into::into).collect() }
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the set contains no features.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of feature `i`.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// All names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Index of the feature called `name`, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }
}

/// A dense feature vector with an optional class label.
///
/// Instances flow from feature extraction through normalization into the
/// streaming model. Labeled instances additionally drive training and
/// prequential evaluation; unlabeled instances drive alerting and sampling.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Dense feature values, in [`FeatureSet`] order.
    pub features: Vec<f64>,
    /// Dense class index under the active [`crate::ClassScheme`], if the
    /// instance came from the labeled stream.
    pub label: Option<usize>,
    /// Importance weight (1.0 for plain instances; online bagging in the
    /// Adaptive Random Forest re-weights per tree).
    pub weight: f64,
    /// Zero-based day segment the instance belongs to (the paper's dataset
    /// spans 10 consecutive days; Figures 13–14 train/test on day boundaries).
    pub day: u32,
    /// The id of the originating tweet, for alerting and sampling.
    pub tweet_id: u64,
    /// The id of the posting user, for per-user alert history.
    pub user_id: u64,
}

impl Instance {
    /// An unlabeled instance with unit weight.
    pub fn unlabeled(features: Vec<f64>) -> Self {
        Instance { features, label: None, weight: 1.0, day: 0, tweet_id: 0, user_id: 0 }
    }

    /// A labeled instance with unit weight.
    pub fn labeled(features: Vec<f64>, label: usize) -> Self {
        Instance { features, label: Some(label), weight: 1.0, day: 0, tweet_id: 0, user_id: 0 }
    }

    /// Builder-style setter for the day segment.
    pub fn with_day(mut self, day: u32) -> Self {
        self.day = day;
        self
    }

    /// Builder-style setter for the originating ids.
    pub fn with_ids(mut self, tweet_id: u64, user_id: u64) -> Self {
        self.tweet_id = tweet_id;
        self.user_id = user_id;
        self
    }

    /// Builder-style setter for the instance weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Number of features.
    pub fn dim(&self) -> usize {
        self.features.len()
    }

    /// True when the instance carries a label.
    pub fn is_labeled(&self) -> bool {
        self.label.is_some()
    }

    /// Serialize the instance to a single JSON line.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(64 + self.features.len() * 8);
        out.push_str("{\"features\":[");
        for (i, f) in self.features.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_f64(*f, &mut out);
        }
        out.push_str("],\"label\":");
        match self.label {
            Some(l) => {
                let _ = write!(out, "{l}");
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"weight\":");
        json::write_f64(self.weight, &mut out);
        let _ = write!(
            out,
            ",\"day\":{},\"tweet_id\":{},\"user_id\":{}}}",
            self.day, self.tweet_id, self.user_id
        );
        out
    }

    /// Parse an instance from its JSON line format.
    pub fn from_json(text: &str) -> crate::Result<Self> {
        let v = Value::parse(text)?;
        let features = match json::required(&v, "features")? {
            Value::Array(items) => items
                .iter()
                .map(|x| {
                    x.as_f64()
                        .ok_or_else(|| json::JsonError::type_mismatch("features", "numbers"))
                })
                .collect::<Result<Vec<f64>, _>>()?,
            _ => return Err(json::JsonError::type_mismatch("features", "an array").into()),
        };
        let label = match json::required(&v, "label")? {
            Value::Null => None,
            other => Some(other.as_u64().ok_or_else(|| {
                json::JsonError::type_mismatch("label", "an unsigned integer or null")
            })? as usize),
        };
        Ok(Instance {
            features,
            label,
            weight: json::req_f64(&v, "weight")?,
            day: json::req_u64(&v, "day")? as u32,
            tweet_id: json::req_u64(&v, "tweet_id")?,
            user_id: json::req_u64(&v, "user_id")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_set_lookup() {
        let fs = FeatureSet::new(["a", "b", "c"]);
        assert_eq!(fs.len(), 3);
        assert!(!fs.is_empty());
        assert_eq!(fs.name(1), "b");
        assert_eq!(fs.index_of("c"), Some(2));
        assert_eq!(fs.index_of("zz"), None);
    }

    #[test]
    fn empty_feature_set() {
        let fs = FeatureSet::new(Vec::<String>::new());
        assert!(fs.is_empty());
        assert_eq!(fs.len(), 0);
    }

    #[test]
    fn instance_builders() {
        let i = Instance::labeled(vec![1.0, 2.0], 1)
            .with_day(3)
            .with_ids(10, 20)
            .with_weight(2.5);
        assert_eq!(i.dim(), 2);
        assert!(i.is_labeled());
        assert_eq!(i.label, Some(1));
        assert_eq!(i.day, 3);
        assert_eq!(i.tweet_id, 10);
        assert_eq!(i.user_id, 20);
        assert!((i.weight - 2.5).abs() < 1e-12);
    }

    #[test]
    fn unlabeled_instance_defaults() {
        let i = Instance::unlabeled(vec![0.0; 5]);
        assert!(!i.is_labeled());
        assert_eq!(i.weight, 1.0);
        assert_eq!(i.day, 0);
    }

    #[test]
    fn instance_json_roundtrip() {
        let i = Instance::labeled(vec![1.5, -2.0, 0.0], 2).with_day(7);
        let back = Instance::from_json(&i.to_json()).unwrap();
        assert_eq!(i, back);
        let u = Instance::unlabeled(vec![0.25]).with_ids(9, 11);
        assert!(u.to_json().contains("\"label\":null"));
        assert_eq!(Instance::from_json(&u.to_json()).unwrap(), u);
    }
}
