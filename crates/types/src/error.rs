//! Error type shared across the workspace.

use std::fmt;

/// Convenience alias for results produced by `redhanded` crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the `redhanded` framework.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A JSON payload could not be parsed into a [`crate::Tweet`] or related type.
    Json(crate::json::JsonError),
    /// An instance had a different number of features than the model expects.
    DimensionMismatch {
        /// Number of features the component was configured for.
        expected: usize,
        /// Number of features actually observed.
        actual: usize,
    },
    /// A label index was outside the class scheme's range.
    InvalidClass {
        /// The offending class index.
        class: usize,
        /// Number of classes in the scheme.
        num_classes: usize,
    },
    /// A component was used before it observed any data.
    Untrained(&'static str),
    /// Configuration rejected at construction time.
    InvalidConfig(String),
    /// An I/O failure while reading or writing datasets.
    Io(std::io::Error),
    /// A checkpoint snapshot could not be decoded (truncated or corrupt).
    Snapshot(String),
    /// A stream task kept failing after exhausting its retry budget.
    TaskFailed {
        /// Micro-batch (global index) in which the task ran.
        batch: u64,
        /// Stage index within the batch.
        stage: u32,
        /// Input partition the task was processing.
        partition: usize,
        /// Attempts consumed (= the configured maximum).
        attempts: u32,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Json(e) => write!(f, "malformed tweet JSON: {e}"),
            Error::DimensionMismatch { expected, actual } => {
                write!(f, "feature dimension mismatch: expected {expected}, got {actual}")
            }
            Error::InvalidClass { class, num_classes } => {
                write!(f, "class index {class} out of range for {num_classes}-class scheme")
            }
            Error::Untrained(what) => write!(f, "{what} has not observed any training data"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Snapshot(msg) => write!(f, "corrupt snapshot: {msg}"),
            Error::TaskFailed { batch, stage, partition, attempts } => write!(
                f,
                "task failed permanently: batch {batch} stage {stage} partition {partition} \
                 after {attempts} attempts"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Json(e) => Some(e),
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::json::JsonError> for Error {
    fn from(e: crate::json::JsonError) -> Self {
        Error::Json(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::DimensionMismatch { expected: 17, actual: 16 };
        assert!(e.to_string().contains("expected 17"));
        let e = Error::InvalidClass { class: 5, num_classes: 3 };
        assert!(e.to_string().contains("3-class"));
        let e = Error::Untrained("HoeffdingTree");
        assert!(e.to_string().contains("HoeffdingTree"));
    }

    #[test]
    fn json_error_converts() {
        let parse_err = crate::json::Value::parse("{invalid").unwrap_err();
        let e: Error = parse_err.into();
        assert!(matches!(e, Error::Json(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
    }
}
