//! Raw tweet payloads, mirroring the Twitter Streaming API JSON format.
//!
//! The system input (Section III-A of the paper) is a stream of JSON payloads
//! carrying the tweet text plus metadata about the tweet and the posting
//! user. A second stream carries the same payloads with an added class label
//! (the labeled stream used for training). [`Tweet`] models the former and
//! [`LabeledTweet`] the latter.

use crate::json::{self, Value};
use crate::ClassLabel;

/// The user profile embedded in a tweet payload.
///
/// Only the fields the feature extractor consumes are modeled: account
/// creation age, activity counts, and the network-degree counts used as
/// popularity features (Section IV-B).
#[derive(Debug, Clone, PartialEq)]
pub struct TwitterUser {
    /// Stable numeric user id.
    pub id: u64,
    /// Screen name (informational; not a model feature).
    pub screen_name: String,
    /// Days since the account was created, relative to the tweet's post time.
    ///
    /// The paper's `accountAge` profile feature. Stored pre-resolved in days
    /// rather than as a raw timestamp so generated datasets are
    /// self-contained.
    pub account_age_days: f64,
    /// Total number of statuses the user has posted (`cntPosts`).
    pub statuses_count: u64,
    /// Number of public lists the user is a member of (`cntLists`).
    pub listed_count: u64,
    /// Number of followers — in-degree centrality (`cntFollowers`).
    pub followers_count: u64,
    /// Number of accounts the user follows — out-degree centrality
    /// (`cntFriends`).
    pub friends_count: u64,
}

impl TwitterUser {
    /// A minimal synthetic user, useful in tests.
    pub fn synthetic(id: u64) -> Self {
        TwitterUser {
            id,
            screen_name: format!("user{id}"),
            account_age_days: 1000.0,
            statuses_count: 5000,
            listed_count: 10,
            followers_count: 300,
            friends_count: 200,
        }
    }
}

impl TwitterUser {
    fn write_json(&self, out: &mut String) {
        use std::fmt::Write;
        out.push_str("{\"id\":");
        let _ = write!(out, "{}", self.id);
        out.push_str(",\"screen_name\":");
        json::write_escaped(&self.screen_name, out);
        out.push_str(",\"account_age_days\":");
        json::write_f64(self.account_age_days, out);
        let _ = write!(
            out,
            ",\"statuses_count\":{},\"listed_count\":{},\"followers_count\":{},\"friends_count\":{}}}",
            self.statuses_count, self.listed_count, self.followers_count, self.friends_count
        );
    }

    fn from_value(v: &Value) -> Result<Self, json::JsonError> {
        Ok(TwitterUser {
            id: json::req_u64(v, "id")?,
            screen_name: json::req_str(v, "screen_name")?.to_string(),
            account_age_days: json::req_f64(v, "account_age_days")?,
            statuses_count: json::req_u64(v, "statuses_count")?,
            listed_count: json::req_u64(v, "listed_count")?,
            followers_count: json::req_u64(v, "followers_count")?,
            friends_count: json::req_u64(v, "friends_count")?,
        })
    }
}

/// A single tweet as delivered by the streaming input.
#[derive(Debug, Clone, PartialEq)]
pub struct Tweet {
    /// Stable numeric tweet id.
    pub id: u64,
    /// The raw tweet text, before any preprocessing.
    pub text: String,
    /// Posting timestamp in milliseconds since an arbitrary stream epoch.
    pub timestamp_ms: u64,
    /// Whether the tweet is a retweet (defaults to false when absent).
    pub is_retweet: bool,
    /// Whether the tweet is a reply (defaults to false when absent).
    pub is_reply: bool,
    /// The posting user's profile.
    pub user: TwitterUser,
}

impl Tweet {
    /// Writes the tweet's fields, without the enclosing braces, so the
    /// labeled wire format can flatten them next to its `label` attribute.
    fn write_fields(&self, out: &mut String) {
        use std::fmt::Write;
        let _ = write!(out, "\"id\":{},\"text\":", self.id);
        json::write_escaped(&self.text, out);
        let _ = write!(
            out,
            ",\"timestamp_ms\":{},\"is_retweet\":{},\"is_reply\":{},\"user\":",
            self.timestamp_ms, self.is_retweet, self.is_reply
        );
        self.user.write_json(out);
    }

    fn from_value(v: &Value) -> Result<Self, json::JsonError> {
        Ok(Tweet {
            id: json::req_u64(v, "id")?,
            text: json::req_str(v, "text")?.to_string(),
            timestamp_ms: json::req_u64(v, "timestamp_ms")?,
            is_retweet: json::opt_bool_default(v, "is_retweet")?,
            is_reply: json::opt_bool_default(v, "is_reply")?,
            user: TwitterUser::from_value(json::required(v, "user")?)?,
        })
    }

    /// Parse a tweet from its JSON wire format.
    pub fn from_json(json: &str) -> crate::Result<Self> {
        Ok(Tweet::from_value(&Value::parse(json)?)?)
    }

    /// Serialize the tweet to its JSON wire format.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(192 + self.text.len());
        out.push('{');
        self.write_fields(&mut out);
        out.push('}');
        out
    }
}

/// A tweet from the labeled input stream: the same JSON payload as [`Tweet`]
/// plus a `label` attribute flattened next to the tweet fields
/// (Section III-A, "Data Input").
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledTweet {
    /// The tweet payload.
    pub tweet: Tweet,
    /// The human-assigned class label.
    pub label: ClassLabel,
}

impl LabeledTweet {
    /// Parse a labeled tweet from its JSON wire format.
    pub fn from_json(json: &str) -> crate::Result<Self> {
        let v = Value::parse(json)?;
        let name = crate::json::req_str(&v, "label")?;
        let label = ClassLabel::parse(name).ok_or_else(|| {
            crate::json::JsonError::type_mismatch("label", "a known class label")
        })?;
        Ok(LabeledTweet { tweet: Tweet::from_value(&v)?, label })
    }

    /// Serialize the labeled tweet to its JSON wire format.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(208 + self.tweet.text.len());
        out.push('{');
        self.tweet.write_fields(&mut out);
        out.push_str(",\"label\":\"");
        out.push_str(self.label.name());
        out.push_str("\"}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tweet() -> Tweet {
        Tweet {
            id: 42,
            text: "RT @victim you are THE WORST http://t.co/abc #mean".to_string(),
            timestamp_ms: 1_600_000_000_000,
            is_retweet: true,
            is_reply: false,
            user: TwitterUser::synthetic(7),
        }
    }

    #[test]
    fn tweet_json_roundtrip() {
        let t = sample_tweet();
        let json = t.to_json();
        let back = Tweet::from_json(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn labeled_tweet_json_roundtrip_and_flattening() {
        let lt = LabeledTweet { tweet: sample_tweet(), label: ClassLabel::Abusive };
        let json = lt.to_json();
        // The label is flattened next to the tweet fields, matching the
        // paper's "same JSON format plus a label attribute".
        assert!(json.contains("\"label\":\"abusive\""));
        assert!(json.contains("\"text\""));
        let back = LabeledTweet::from_json(&json).unwrap();
        assert_eq!(lt, back);
    }

    #[test]
    fn unlabeled_json_parses_as_tweet_but_not_labeled() {
        let json = sample_tweet().to_json();
        assert!(Tweet::from_json(&json).is_ok());
        assert!(LabeledTweet::from_json(&json).is_err());
    }

    #[test]
    fn retweet_and_reply_flags_default_to_false() {
        let json = r#"{
            "id": 1, "text": "hello", "timestamp_ms": 0,
            "user": {"id": 2, "screen_name": "u", "account_age_days": 1.0,
                     "statuses_count": 0, "listed_count": 0,
                     "followers_count": 0, "friends_count": 0}
        }"#;
        let t = Tweet::from_json(json).unwrap();
        assert!(!t.is_retweet);
        assert!(!t.is_reply);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(Tweet::from_json("{not json").is_err());
        assert!(Tweet::from_json("{}").is_err());
    }
}
