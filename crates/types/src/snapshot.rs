//! Checkpoint snapshots: a small hand-rolled binary codec plus the
//! [`Checkpoint`] trait every stateful pipeline component implements.
//!
//! Spark Streaming checkpoints RDD lineage and updateStateByKey state to a
//! reliable store; our single-process engine checkpoints *model state*
//! (classifier statistics, the adaptive vocabulary, alert/session history)
//! instead, which is what the paper's framework would lose on a driver
//! failure. Snapshots must round-trip **bit-identically** — the chaos
//! harness asserts recovered predictions equal a fault-free run — so
//! floating-point values are encoded via [`f64::to_bits`] and every
//! implementor serializes collections in a canonical order.
//!
//! The codec is deliberately minimal (little-endian fixed-width integers,
//! length-prefixed byte strings): the workspace builds offline, so no serde.

use crate::error::{Error, Result};

/// Byte-buffer sink for snapshot encoding.
///
/// Writing is infallible; the writer only appends to its internal buffer.
/// Components implement [`Checkpoint::snapshot_into`] against this type so
/// nested state concatenates into one flat, self-describing byte stream.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapshotWriter { buf: Vec::new() }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Borrow the encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` (encoded as `u64` for cross-width stability).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Append an `f64` by its exact bit pattern (lossless round-trip,
    /// including signed zeros, infinities, and NaN payloads).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Append a `bool` as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, v: &str) {
        self.write_usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Append a length-prefixed raw byte string (used to nest an opaque
    /// snapshot — e.g. a component payload inside a checkpoint file).
    pub fn write_bytes(&mut self, v: &[u8]) {
        self.write_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed slice of `f64` bit patterns.
    pub fn write_f64s(&mut self, vs: &[f64]) {
        self.write_usize(vs.len());
        for &v in vs {
            self.write_f64(v);
        }
    }
}

/// Cursor over snapshot bytes; every read validates remaining length, so a
/// truncated or corrupt snapshot surfaces as [`Error::Snapshot`] instead of
/// a panic.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        SnapshotReader { buf: bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fail unless the snapshot was consumed exactly — catches encoder/
    /// decoder drift where trailing garbage would otherwise pass silently.
    pub fn finish(&self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(Error::Snapshot(format!("{} trailing bytes", self.remaining())))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::Snapshot(format!(
                "truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn read_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        let mut arr = [0u8; 4];
        arr.copy_from_slice(b);
        Ok(u32::from_le_bytes(arr))
    }

    /// Read a little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    /// Read a `usize` (stored as `u64`).
    pub fn read_usize(&mut self) -> Result<usize> {
        let v = self.read_u64()?;
        usize::try_from(v).map_err(|_| Error::Snapshot(format!("usize overflow: {v}")))
    }

    /// Read an `f64` bit pattern.
    pub fn read_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Read a `bool` (one byte; anything other than 0/1 is corrupt).
    pub fn read_bool(&mut self) -> Result<bool> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(Error::Snapshot(format!("invalid bool byte {b}"))),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn read_str(&mut self) -> Result<String> {
        let len = self.read_usize()?;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|e| Error::Snapshot(format!("invalid utf-8 in string: {e}")))
    }

    /// Read a length-prefixed raw byte string.
    pub fn read_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.read_usize()?;
        self.take(len)
    }

    /// Read a length-prefixed `f64` vector.
    pub fn read_f64s(&mut self) -> Result<Vec<f64>> {
        let len = self.read_usize()?;
        // Cap pre-allocation by what the buffer could actually hold.
        let mut out = Vec::with_capacity(len.min(self.remaining() / 8 + 1));
        for _ in 0..len {
            out.push(self.read_f64()?);
        }
        Ok(out)
    }
}

/// State that can be captured into, and restored from, a snapshot.
///
/// The restore contract is **restore-into-self**: callers first construct
/// the component from its (non-serialized) configuration exactly as at the
/// start of the original run, then `restore_from` overwrites the mutable
/// state. This keeps configuration out of the wire format and guarantees a
/// restored component is structurally identical to a freshly built one.
///
/// Round-trip law, asserted by the snapshot test suite for every
/// implementor: `snapshot → restore → snapshot` yields identical bytes, and
/// a restored component produces bit-identical outputs to the original.
pub trait Checkpoint {
    /// Serialize all mutable state into `w`, in a canonical order
    /// (hash-map contents sorted by key, interned words by id).
    fn snapshot_into(&self, w: &mut SnapshotWriter);

    /// Overwrite this component's mutable state from `r`. On error the
    /// component may be left partially restored; callers discard it.
    fn restore_from(&mut self, r: &mut SnapshotReader) -> Result<()>;

    /// Convenience: snapshot into a fresh byte vector.
    fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        self.snapshot_into(&mut w);
        w.into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut w = SnapshotWriter::new();
        w.write_u8(7);
        w.write_u32(0xDEAD_BEEF);
        w.write_u64(u64::MAX);
        w.write_usize(12345);
        w.write_f64(-0.0);
        w.write_f64(f64::NAN);
        w.write_bool(true);
        w.write_str("naïve α");
        w.write_bytes(&[0xCA, 0xFE]);
        w.write_f64s(&[1.5, -2.5, 0.0]);
        let bytes = w.into_bytes();

        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(r.read_u8().unwrap(), 7);
        assert_eq!(r.read_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.read_u64().unwrap(), u64::MAX);
        assert_eq!(r.read_usize().unwrap(), 12345);
        assert_eq!(r.read_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.read_f64().unwrap().is_nan());
        assert!(r.read_bool().unwrap());
        assert_eq!(r.read_str().unwrap(), "naïve α");
        assert_eq!(r.read_bytes().unwrap(), &[0xCA, 0xFE]);
        assert_eq!(r.read_f64s().unwrap(), vec![1.5, -2.5, 0.0]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = SnapshotWriter::new();
        w.write_u64(42);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes[..5]);
        assert!(matches!(r.read_u64(), Err(Error::Snapshot(_))));
    }

    #[test]
    fn bad_bool_and_bad_utf8_are_errors() {
        let mut r = SnapshotReader::new(&[9]);
        assert!(matches!(r.read_bool(), Err(Error::Snapshot(_))));

        let mut w = SnapshotWriter::new();
        w.write_usize(2);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        let mut r = SnapshotReader::new(&bytes);
        assert!(matches!(r.read_str(), Err(Error::Snapshot(_))));
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let bytes = [1u8, 2, 3];
        let mut r = SnapshotReader::new(&bytes);
        r.read_u8().unwrap();
        assert!(matches!(r.finish(), Err(Error::Snapshot(_))));
    }

    #[test]
    fn oversized_length_prefix_fails_cleanly() {
        let mut w = SnapshotWriter::new();
        w.write_usize(usize::MAX);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert!(matches!(r.read_f64s(), Err(Error::Snapshot(_))));
    }

    struct Counter {
        n: u64,
    }

    impl Checkpoint for Counter {
        fn snapshot_into(&self, w: &mut SnapshotWriter) {
            w.write_u64(self.n);
        }

        fn restore_from(&mut self, r: &mut SnapshotReader) -> Result<()> {
            self.n = r.read_u64()?;
            Ok(())
        }
    }

    #[test]
    fn checkpoint_trait_round_trip() {
        let a = Counter { n: 99 };
        let bytes = a.snapshot();
        let mut b = Counter { n: 0 };
        let mut r = SnapshotReader::new(&bytes);
        b.restore_from(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(b.n, 99);
        assert_eq!(b.snapshot(), bytes, "snapshot → restore → snapshot is stable");
    }
}
