//! Shared infrastructure for the experiment binaries that regenerate every
//! table and figure of the paper (see DESIGN.md's per-experiment index).
//!
//! Every binary accepts a `--scale <f>` argument (or the `RH_SCALE`
//! environment variable) that multiplies the paper-scale tweet counts, so
//! smoke runs finish in seconds while `--scale 1` reproduces the full
//! workload. Results are printed as aligned text and also written as CSV
//! under `results/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod seed_baseline;

use std::fmt::Display;
use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// Parse the run scale from `--scale <f>` argv or the `RH_SCALE`
/// environment variable (default 1.0 = paper scale).
pub fn run_scale() -> f64 {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--scale" {
            if let Some(v) = args.next().and_then(|v| v.parse::<f64>().ok()) {
                return v.clamp(0.001, 100.0);
            }
        } else if let Some(v) = a.strip_prefix("--scale=").and_then(|v| v.parse::<f64>().ok()) {
            return v.clamp(0.001, 100.0);
        }
    }
    std::env::var("RH_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .map(|v| v.clamp(0.001, 100.0))
        .unwrap_or(1.0)
}

/// Scale a paper-scale count, keeping a sane floor.
pub fn scaled(paper_count: usize, scale: f64) -> usize {
    ((paper_count as f64 * scale) as usize).max(200)
}

/// Print a figure/table banner.
pub fn banner(id: &str, title: &str, scale: f64) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("(scale = {scale} of the paper's workload)");
    println!("================================================================");
}

/// Print an aligned table: the x column plus one y column per named
/// series. Rows are the union of x values; missing points print blank.
pub fn print_series(x_label: &str, series: &[(String, Vec<(f64, f64)>)]) {
    print!("{x_label:>14}");
    for (name, _) in series {
        print!("  {name:>28}");
    }
    println!();
    let mut xs: Vec<f64> = series.iter().flat_map(|(_, s)| s.iter().map(|(x, _)| *x)).collect();
    xs.sort_by(|a, b| a.total_cmp(b));
    xs.dedup();
    for x in xs {
        print!("{x:>14.0}");
        for (_, s) in series {
            match s.iter().find(|(sx, _)| (sx - x).abs() < 1e-9) {
                Some((_, y)) => print!("  {y:>28.4}"),
                None => print!("  {:>28}", ""),
            }
        }
        println!();
    }
}

/// Write rows of displayable values as CSV under `results/<name>.csv`.
pub fn write_csv<R, V>(name: &str, header: &[&str], rows: R)
where
    R: IntoIterator<Item = Vec<V>>,
    V: Display,
{
    let dir = PathBuf::from("results");
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    let Ok(mut f) = fs::File::create(&path) else { return };
    let _ = writeln!(f, "{}", header.join(","));
    for row in rows {
        let line: Vec<String> = row.into_iter().map(|v| v.to_string()).collect();
        let _ = writeln!(f, "{}", line.join(","));
    }
    println!("[csv] wrote {}", path.display());
}

/// Format a `SeriesPoint` list as `(instances, f1)` pairs.
pub fn f1_series(points: &[redhanded_streamml::SeriesPoint]) -> Vec<(f64, f64)> {
    points.iter().map(|p| (p.instances as f64, p.metrics.f1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_has_floor() {
        assert_eq!(scaled(86_000, 1.0), 86_000);
        assert_eq!(scaled(86_000, 0.001), 200);
        assert_eq!(scaled(1000, 0.5), 500);
    }

    #[test]
    fn f1_series_maps_points() {
        use redhanded_streamml::{Metrics, SeriesPoint};
        let pts = vec![SeriesPoint {
            instances: 10,
            metrics: Metrics { f1: 0.5, ..Default::default() },
        }];
        assert_eq!(f1_series(&pts), vec![(10.0, 0.5)]);
    }
}
