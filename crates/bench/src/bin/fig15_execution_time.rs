//! Figure 15: execution time per streaming system (MOA, SparkSingle,
//! SparkLocal, SparkCluster) for 250k-2M incoming tweets.

use redhanded_bench::{banner, run_scale, write_csv};
use redhanded_core::experiments::run_scalability;
use redhanded_core::SystemFlavor;

fn main() {
    let scale = run_scale();
    banner("Figure 15", "Execution time per streaming system", scale);
    let counts: Vec<usize> = [250_000usize, 500_000, 1_000_000, 1_500_000, 2_000_000]
        .iter()
        .map(|&c| ((c as f64 * scale) as usize).max(1_000))
        .collect();
    let labeled = ((85_984.0 * scale) as usize).max(500);
    // The paper's micro-batch size stays fixed at 10k regardless of sweep
    // scale: per-batch overheads amortize over batch size, not stream size.
    let microbatch = 10_000;
    let out = run_scalability(&counts, labeled, &SystemFlavor::paper_set(), microbatch, 0xF1615)
        .expect("sweep runs");
    println!("\n{:>12} {:>14} {:>16}", "system", "tweets", "exec time (s)");
    for p in &out.points {
        println!("{:>12} {:>14} {:>16.2}", p.system, p.tweets, p.elapsed.as_secs_f64());
    }
    println!("\n(paper shape: MOA ≈ SparkSingle (7-17% apart); SparkLocal ~5.5x");
    println!(" faster than SparkSingle at 2M tweets; SparkCluster ~2.5x over SparkLocal)");
    // Where the time goes: critical-path attribution of the largest sweep
    // point per system, from the recorded span trace.
    for system in ["SparkSingle", "SparkLocal", "SparkCluster"] {
        if let Some(b) =
            out.system_points(system).last().and_then(|p| p.breakdown.as_ref())
        {
            println!("\n{system} stage breakdown (largest sweep point):");
            print!("{}", b.breakdown_table());
        }
    }
    write_csv(
        "fig15_execution_time",
        &["system", "tweets", "exec_time_s"],
        out.points.iter().map(|p| {
            vec![p.system.to_string(), p.tweets.to_string(), p.elapsed.as_secs_f64().to_string()]
        }),
    );
    write_csv(
        "fig15_stage_breakdown",
        &["system", "tweets", "stage", "spans", "total_us", "self_us", "straggler_us",
          "retry_backoff_us"],
        out.points.iter().flat_map(|p| {
            p.breakdown.iter().flat_map(|b| {
                b.stages.iter().map(|s| {
                    vec![
                        p.system.to_string(),
                        p.tweets.to_string(),
                        s.kind.name().to_string(),
                        s.spans.to_string(),
                        s.total_us.to_string(),
                        s.self_us.to_string(),
                        s.straggler_us.to_string(),
                        s.retry_backoff_us.to_string(),
                    ]
                })
            }).collect::<Vec<_>>()
        }),
    );
}
