//! Figure 6: F1 for HT (2- and 3-class) with preprocessing ON vs OFF
//! (normalization and adaptive BoW enabled).

use redhanded_bench::{banner, f1_series, run_scale, scaled, write_csv};
use redhanded_core::experiments::{run_ablation, AblationSpec};
use redhanded_core::ModelKind;
use redhanded_features::NormalizationKind;
use redhanded_types::ClassScheme;

fn main() {
    let scale = run_scale();
    banner("Figure 6", "Impact of preprocessing on HT", scale);
    let total = scaled(85_984, scale);
    let n = NormalizationKind::MinMaxNoOutliers;
    let specs = [
        AblationSpec::new(ModelKind::ht(), ClassScheme::ThreeClass, false, n, true),
        AblationSpec::new(ModelKind::ht(), ClassScheme::ThreeClass, true, n, true),
        AblationSpec::new(ModelKind::ht(), ClassScheme::TwoClass, false, n, true),
        AblationSpec::new(ModelKind::ht(), ClassScheme::TwoClass, true, n, true),
    ];
    let mut series = Vec::new();
    for spec in &specs {
        let out = run_ablation(spec, total, 0xF1606).expect("ablation runs");
        println!("{:<34} final F1 = {:.4}", out.label, out.metrics.f1);
        series.push((out.label.clone(), f1_series(&out.series)));
    }
    println!();
    redhanded_bench::print_series("tweets", &series);
    write_csv(
        "fig06_preprocessing",
        &["variant", "tweets", "f1"],
        series.iter().flat_map(|(label, s)| {
            s.iter().map(move |(x, y)| vec![label.clone(), x.to_string(), y.to_string()])
        }),
    );
}
