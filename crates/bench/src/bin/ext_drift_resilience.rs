//! Extension experiment (beyond the paper's figures): the adaptive
//! bag-of-words' F1 advantage over a frozen lexicon as vocabulary drift
//! intensifies — the scenario Section I motivates the design with.

use redhanded_bench::{banner, run_scale, scaled, write_csv};
use redhanded_core::experiments::run_drift_resilience;

fn main() {
    let scale = run_scale();
    banner("Extension", "Adaptive BoW resilience under vocabulary drift", scale);
    let total = scaled(40_000, scale);
    let adoptions = [0.0, 0.2, 0.4, 0.6, 0.8];
    let points = run_drift_resilience(&adoptions, total, 0xD81F7).expect("sweep runs");
    println!(
        "\n{:>14} {:>14} {:>14} {:>12} {:>10}",
        "drift level", "adaptive F1", "frozen F1", "advantage", "BoW size"
    );
    for p in &points {
        println!(
            "{:>14.1} {:>14.4} {:>14.4} {:>12.4} {:>10}",
            p.max_adoption,
            p.adaptive_f1,
            p.frozen_f1,
            p.advantage(),
            p.adaptive_bow_size
        );
    }
    println!("\n(the paper's Figure 9 measures the dataset's natural drift level;");
    println!(" this sweep shows the adaptive BoW's edge growing as aggressors");
    println!(" rotate vocabulary faster)");
    write_csv(
        "ext_drift_resilience",
        &["max_adoption", "adaptive_f1", "frozen_f1", "bow_size"],
        points.iter().map(|p| {
            vec![
                p.max_adoption.to_string(),
                p.adaptive_f1.to_string(),
                p.frozen_f1.to_string(),
                p.adaptive_bow_size.to_string(),
            ]
        }),
    );
}
