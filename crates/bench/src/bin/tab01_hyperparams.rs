//! Table I: hyperparameter tuning for the streaming models (grid search
//! scored by prequential F1).

use redhanded_bench::{banner, run_scale, scaled, write_csv};
use redhanded_core::experiments::{prepare_instances, tune_arf, tune_ht, tune_slr};
use redhanded_types::ClassScheme;

fn main() {
    let scale = run_scale();
    banner("Table I", "Hyperparameter tuning for streaming models", scale);
    // Grid search replays the prepared stream once per grid point (246
    // combinations), so tuning uses a 10%-of-paper-scale stream.
    let total = scaled(8_600, scale);
    let instances = prepare_instances(ClassScheme::ThreeClass, total, 0x7AB01)
        .expect("instances prepare");
    println!("\ntuning on {} instances (3-class)\n", instances.len());
    let mut rows = Vec::new();
    for outcome in [
        tune_ht(&instances, ClassScheme::ThreeClass).expect("HT grid"),
        tune_arf(&instances, ClassScheme::ThreeClass).expect("ARF grid"),
        tune_slr(&instances, ClassScheme::ThreeClass).expect("SLR grid"),
    ] {
        println!("--- {} ({} grid points) ---", outcome.model, outcome.results.len());
        println!("best F1 = {:.4} at:", outcome.best_score());
        for (k, v) in outcome.best() {
            println!("    {k:>12} = {v}");
            rows.push(vec![
                outcome.model.to_string(),
                k.clone(),
                v.to_string(),
                outcome.best_score().to_string(),
            ]);
        }
        println!();
    }
    println!("(paper selects: HT InfoGain/0.01/0.05/200/20; ARF ensemble 10;");
    println!(" SLR lambda 0.1, L2, reg 0.01)");
    write_csv("tab01_hyperparams", &["model", "parameter", "selected", "best_f1"], rows);
}
