//! Figure 7: F1 for HT (2- and 3-class) with normalization ON vs OFF
//! (preprocessing and adaptive BoW enabled).

use redhanded_bench::{banner, f1_series, run_scale, scaled, write_csv};
use redhanded_core::experiments::{run_ablation, AblationSpec};
use redhanded_core::ModelKind;
use redhanded_features::NormalizationKind;
use redhanded_types::ClassScheme;

fn main() {
    let scale = run_scale();
    banner("Figure 7", "Impact of normalization on HT", scale);
    let total = scaled(85_984, scale);
    let specs = [
        AblationSpec::new(ModelKind::ht(), ClassScheme::ThreeClass, true, NormalizationKind::None, true),
        AblationSpec::new(ModelKind::ht(), ClassScheme::ThreeClass, true, NormalizationKind::MinMaxNoOutliers, true),
        AblationSpec::new(ModelKind::ht(), ClassScheme::TwoClass, true, NormalizationKind::None, true),
        AblationSpec::new(ModelKind::ht(), ClassScheme::TwoClass, true, NormalizationKind::MinMaxNoOutliers, true),
    ];
    let mut series = Vec::new();
    for spec in &specs {
        let out = run_ablation(spec, total, 0xF1607).expect("ablation runs");
        println!("{:<34} final F1 = {:.4}", out.label, out.metrics.f1);
        series.push((out.label.clone(), f1_series(&out.series)));
    }
    println!("\n(paper: enabling/disabling normalization has a marginal effect on HT)\n");
    redhanded_bench::print_series("tweets", &series);
    write_csv(
        "fig07_norm_ht",
        &["variant", "tweets", "f1"],
        series.iter().flat_map(|(label, s)| {
            s.iter().map(move |(x, y)| vec![label.clone(), x.to_string(), y.to_string()])
        }),
    );
}
