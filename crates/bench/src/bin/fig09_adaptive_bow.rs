//! Figure 9: F1 for HT (2- and 3-class) with the adaptive bag-of-words ON
//! vs a fixed bag-of-words (preprocessing and normalization enabled).

use redhanded_bench::{banner, f1_series, run_scale, scaled, write_csv};
use redhanded_core::experiments::{run_ablation, AblationSpec};
use redhanded_core::ModelKind;
use redhanded_features::NormalizationKind;
use redhanded_types::ClassScheme;

fn main() {
    let scale = run_scale();
    banner("Figure 9", "Impact of the adaptive bag-of-words on HT", scale);
    let total = scaled(85_984, scale);
    let n = NormalizationKind::MinMaxNoOutliers;
    let specs = [
        AblationSpec::new(ModelKind::ht(), ClassScheme::ThreeClass, true, n, false),
        AblationSpec::new(ModelKind::ht(), ClassScheme::ThreeClass, true, n, true),
        AblationSpec::new(ModelKind::ht(), ClassScheme::TwoClass, true, n, false),
        AblationSpec::new(ModelKind::ht(), ClassScheme::TwoClass, true, n, true),
    ];
    let mut series = Vec::new();
    for spec in &specs {
        let out = run_ablation(spec, total, 0xF1609).expect("ablation runs");
        println!("{:<34} final F1 = {:.4}  (BoW {} words)", out.label, out.metrics.f1, out.bow_final);
        series.push((out.label.clone(), f1_series(&out.series)));
    }
    println!("\n(paper: adaptive BoW adds 2-4% F1 and smooths the curve)\n");
    redhanded_bench::print_series("tweets", &series);
    write_csv(
        "fig09_adaptive_bow",
        &["variant", "tweets", "f1"],
        series.iter().flat_map(|(label, s)| {
            s.iter().map(move |(x, y)| vec![label.clone(), x.to_string(), y.to_string()])
        }),
    );
}
