//! Checkpoint-overhead benchmark for the fault-tolerant deployment.
//!
//! Runs the distributed detector (`SparkDetector`) over the same generated
//! traffic four times — once with checkpointing disabled, then through
//! `run_with_recovery` at checkpoint cadences M = 1, 4, 16 batches — and
//! reports the throughput lost to snapshotting at each cadence. The
//! acceptance budget (DESIGN.md §9) is < 15% overhead at the default
//! cadence of 4:
//!
//! ```text
//! cargo run --release -p redhanded-bench --bin perf_recovery
//! ```
//!
//! Results land in `results/BENCH_recovery.json`.

use redhanded_bench::run_scale;
use redhanded_core::config::ModelKind;
use redhanded_core::{
    intermix, run_with_recovery, PipelineConfig, SparkConfig, SparkDetector, StreamItem,
};
use redhanded_datagen::{generate_abusive, generate_unlabeled, AbusiveConfig};
use redhanded_dspe::{CostModel, EngineConfig, FaultPlan, MemoryCheckpointStore, Topology};
use redhanded_types::ClassScheme;
use std::fmt::Write as _;
use std::fs;
use std::time::Instant;

/// Checkpoint cadences to measure (batches between snapshots).
const CADENCES: [u64; 3] = [1, 4, 16];

/// The overhead budget at the default cadence of 4 (percent).
const BUDGET_PERCENT: f64 = 15.0;

const RUNS: usize = 3;

fn detector() -> SparkDetector {
    let pipeline = PipelineConfig::paper(ClassScheme::TwoClass, ModelKind::ht());
    let mut engine = EngineConfig::for_topology(Topology::local(4));
    engine.microbatch_size = 500;
    engine.cost_model = CostModel::default();
    engine.faults = FaultPlan::none();
    SparkDetector::new(SparkConfig::new(pipeline, engine)).expect("detector builds")
}

/// Best-of-`RUNS` wall seconds for one configuration (`every == 0` means
/// a plain uncheckpointed `run()`). The checkpoint count is the snapshots
/// *taken*, not the (bounded) number the store retains.
fn measure(items: &[StreamItem], every: u64) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut checkpoints = 0usize;
    for _ in 0..RUNS {
        let mut d = detector();
        let start = Instant::now();
        if every == 0 {
            d.run(items.to_vec()).expect("plain run");
        } else {
            let mut store = MemoryCheckpointStore::new(2);
            run_with_recovery(&mut d, items.to_vec(), &mut store, every)
                .expect("checkpointed run");
            checkpoints = store.saves();
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, checkpoints)
}

fn main() {
    let scale = run_scale();
    let n = ((30_000.0 * scale) as usize).max(2_000);

    eprintln!("perf_recovery: generating {n} mixed items...");
    let items = intermix(
        generate_abusive(&AbusiveConfig::small(n / 2, 0xC4A0)),
        generate_unlabeled(n / 2, 0xC4A1),
    );
    let n = items.len();

    eprintln!("perf_recovery: baseline (no checkpoints)...");
    let (base_wall, _) = measure(&items, 0);
    let base_rate = n as f64 / base_wall;
    eprintln!("perf_recovery: baseline {base_rate:.0} tweets/s ({base_wall:.2}s)");

    let mut rows = String::new();
    let mut overhead_at_4 = f64::NAN;
    for (i, &every) in CADENCES.iter().enumerate() {
        let (wall, checkpoints) = measure(&items, every);
        let rate = n as f64 / wall;
        let overhead = (wall - base_wall) / base_wall * 100.0;
        if every == 4 {
            overhead_at_4 = overhead;
        }
        eprintln!(
            "perf_recovery: M={every}: {rate:.0} tweets/s, {checkpoints} checkpoint(s), \
             {overhead:+.1}% vs baseline"
        );
        let comma = if i + 1 == CADENCES.len() { "" } else { "," };
        let _ = writeln!(
            rows,
            "    {{ \"every_batches\": {every}, \"wall_seconds\": {wall:.4}, \
             \"tweets_per_second\": {rate:.1}, \"checkpoints\": {checkpoints}, \
             \"overhead_percent\": {overhead:.2} }}{comma}"
        );
    }

    let within_budget = overhead_at_4 < BUDGET_PERCENT;
    eprintln!(
        "perf_recovery: M=4 overhead {overhead_at_4:.1}% vs {BUDGET_PERCENT}% budget — {}",
        if within_budget { "OK" } else { "OVER BUDGET" }
    );

    let json = format!(
        "{{\n  \"bench\": \"checkpoint_recovery\",\n  \"model\": \"ht\",\n  \
         \"scheme\": \"2-class\",\n  \"tweets\": {n},\n  \
         \"baseline_wall_seconds\": {base_wall:.4},\n  \
         \"baseline_tweets_per_second\": {base_rate:.1},\n  \
         \"budget_percent_at_4\": {BUDGET_PERCENT},\n  \
         \"within_budget\": {within_budget},\n  \"cadences\": [\n{rows}  ]\n}}\n"
    );
    if fs::create_dir_all("results").is_ok() {
        match fs::write("results/BENCH_recovery.json", &json) {
            Ok(()) => eprintln!("perf_recovery: wrote results/BENCH_recovery.json"),
            Err(e) => eprintln!("perf_recovery: could not write results: {e}"),
        }
    }
    println!("{json}");
}
