//! Quick end-to-end throughput smoke test for the sequential pipeline.
//!
//! Runs the full detection pipeline (extraction → normalization →
//! prequential train/test → adaptive BoW) over 50k generated labeled
//! tweets on one thread and reports wall-clock tweets/sec against the
//! paper's Twitter Firehose reference rate (~9k tweets/sec, Section VI-C).
//! Unlike the Criterion micro-benchmarks this measures the whole hot path
//! in one number, making before/after comparisons of pipeline-level
//! changes (e.g. the scratch-buffer extraction path) a single command:
//!
//! ```text
//! cargo run --release -p redhanded-bench --bin perf_smoke
//! ```
//!
//! Results land in `results/BENCH_pipeline.json`, and the observability
//! registry (per-step wall-clock spans, record/alert counters, event log)
//! is dumped to `results/OBS_report.json` + `results/OBS_report.prom`.

use redhanded_bench::run_scale;
use redhanded_core::config::ModelKind;
use redhanded_core::{DetectionPipeline, PipelineConfig, StreamItem};
use redhanded_datagen::{generate_abusive, AbusiveConfig};
use redhanded_obs::{analyze, chrome_trace_json, obs_report_json, prometheus_text, trace_report_json};
use redhanded_types::ClassScheme;
use std::fs;
use std::time::Instant;

/// Firehose reference rate from the paper (tweets/sec).
const FIREHOSE_RATE: f64 = 9000.0;

fn main() {
    let scale = run_scale();
    let n = ((50_000.0 * scale) as usize).max(1_000);

    eprintln!("perf_smoke: generating {n} labeled tweets...");
    let items: Vec<StreamItem> = generate_abusive(&AbusiveConfig::small(n, 0xF1FE))
        .into_iter()
        .map(StreamItem::from)
        .collect();

    let mut pipeline =
        DetectionPipeline::new(PipelineConfig::paper(ClassScheme::TwoClass, ModelKind::ht()))
            .expect("pipeline builds");
    // Benchmarks are the one place wall-clock span timing is on: the
    // per-step histograms (extract/normalize/classify/train) land in the
    // OBS report alongside the headline tweets/sec number.
    pipeline.enable_wall_timing();

    eprintln!("perf_smoke: running the sequential pipeline...");
    let start = Instant::now();
    pipeline.run(&items).expect("stream runs");
    let wall = start.elapsed();

    let wall_seconds = wall.as_secs_f64();
    let tweets_per_second = n as f64 / wall_seconds;
    let f1 = pipeline.cumulative_metrics().f1;

    eprintln!(
        "perf_smoke: {n} tweets in {wall_seconds:.2}s = {tweets_per_second:.0} tweets/s \
         ({:.1}x the Firehose rate), cumulative F1 {f1:.3}",
        tweets_per_second / FIREHOSE_RATE
    );

    let json = format!(
        "{{\n  \"bench\": \"sequential_pipeline\",\n  \"model\": \"ht\",\n  \
         \"scheme\": \"2-class\",\n  \"tweets\": {n},\n  \
         \"wall_seconds\": {wall_seconds:.4},\n  \
         \"tweets_per_second\": {tweets_per_second:.1},\n  \
         \"paper_firehose_tweets_per_second\": {FIREHOSE_RATE},\n  \
         \"cumulative_f1\": {f1:.4}\n}}\n"
    );
    if fs::create_dir_all("results").is_ok() {
        match fs::write("results/BENCH_pipeline.json", &json) {
            Ok(()) => eprintln!("perf_smoke: wrote results/BENCH_pipeline.json"),
            Err(e) => eprintln!("perf_smoke: could not write results: {e}"),
        }
        let obs = pipeline.obs();
        let report = obs_report_json("perf_smoke", obs.registry(), obs.events());
        match fs::write("results/OBS_report.json", report) {
            Ok(()) => eprintln!("perf_smoke: wrote results/OBS_report.json"),
            Err(e) => eprintln!("perf_smoke: could not write OBS report: {e}"),
        }
        match fs::write("results/OBS_report.prom", prometheus_text(obs.registry())) {
            Ok(()) => eprintln!("perf_smoke: wrote results/OBS_report.prom"),
            Err(e) => eprintln!("perf_smoke: could not write Prometheus dump: {e}"),
        }
        // Span trace: sampled per-tweet operator phases under the wall
        // clock. The report carries the critical-path attribution; the
        // chrome-trace file loads directly into Perfetto (ui.perfetto.dev).
        let analysis = analyze(obs.trace());
        let report = trace_report_json("perf_smoke", obs.trace(), &analysis);
        match fs::write("results/TRACE_report.json", report) {
            Ok(()) => eprintln!("perf_smoke: wrote results/TRACE_report.json"),
            Err(e) => eprintln!("perf_smoke: could not write TRACE report: {e}"),
        }
        match fs::write("results/TRACE_perfetto.json", chrome_trace_json(obs.trace())) {
            Ok(()) => eprintln!("perf_smoke: wrote results/TRACE_perfetto.json"),
            Err(e) => eprintln!("perf_smoke: could not write Perfetto trace: {e}"),
        }
        eprint!("{}", analysis.breakdown_table());
    }
    println!("{json}");
}
