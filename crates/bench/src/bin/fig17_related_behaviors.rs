//! Figure 17: streaming HT on the Sarcasm and Offensive datasets vs the
//! performance the original (batch) authors report.

use redhanded_bench::{banner, run_scale, write_csv};
use redhanded_core::experiments::{run_related, RelatedDataset};

fn main() {
    let scale = run_scale();
    banner("Figure 17", "Detecting related behaviors in real time", scale);
    let mut rows = Vec::new();
    for (dataset, paper_total) in
        [(RelatedDataset::Sarcasm, 61_075usize), (RelatedDataset::Offensive, 16_914)]
    {
        let total = ((paper_total as f64 * scale) as usize).max(1_000);
        let out = run_related(dataset, total, 0xF1617).expect("experiment runs");
        println!("\n--- {} dataset ({} tweets, metric: {}) ---", out.dataset, total, out.metric);
        println!("{:>14} {:>16}", "tweets", out.metric);
        for (x, y) in &out.streaming_series {
            println!("{x:>14} {y:>16.4}");
            rows.push(vec![out.dataset.to_string(), x.to_string(), y.to_string()]);
        }
        println!("streaming HT final: {:.4}", out.streaming_final);
        println!("our batch LR 10-fold CV: {:.4}", out.batch_cv);
        println!("reported by original authors: {:.2}", out.reported);
    }
    println!("\n(paper: HT converges toward 93% accuracy on Sarcasm and reaches ~73%");
    println!(" F1 on Offensive after 16k tweets, matching the batch numbers)");
    write_csv("fig17_related_behaviors", &["dataset", "tweets", "metric_value"], rows);
}
