//! Figure 10: adaptive bag-of-words size while processing the stream
//! (paper: 347 seed words growing to 529 after 86k tweets).

use redhanded_bench::{banner, run_scale, scaled, write_csv};
use redhanded_core::experiments::{run_ablation, AblationSpec};
use redhanded_core::ModelKind;
use redhanded_features::NormalizationKind;
use redhanded_types::ClassScheme;

fn main() {
    let scale = run_scale();
    banner("Figure 10", "Adaptive BoW size over the stream", scale);
    let total = scaled(85_984, scale);
    let spec = AblationSpec::new(
        ModelKind::ht(),
        ClassScheme::TwoClass,
        true,
        NormalizationKind::MinMaxNoOutliers,
        true,
    );
    let out = run_ablation(&spec, total, 0xF1610).expect("ablation runs");
    println!("\n{:>14} {:>12}", "tweets", "BoW size");
    for p in &out.bow_series {
        println!("{:>14} {:>12}", p.instances, p.size);
    }
    println!("\nseed = 347 words; final = {} words (paper: 529)", out.bow_final);
    write_csv(
        "fig10_bow_size",
        &["tweets", "bow_size"],
        out.bow_series.iter().map(|p| vec![p.instances.to_string(), p.size.to_string()]),
    );
}
