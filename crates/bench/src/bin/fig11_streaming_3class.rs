//! Figure 11: F1 over the stream for HT, ARF, and SLR on the 3-class
//! problem (p=ON, n=ON, ad=ON).

use redhanded_bench::{banner, f1_series, run_scale, scaled, write_csv};
use redhanded_core::experiments::{run_ablation, AblationSpec};
use redhanded_core::ModelKind;
use redhanded_features::NormalizationKind;
use redhanded_types::ClassScheme;

fn main() {
    let scale = run_scale();
    banner("Figure 11", "Streaming methods on the 3-class problem", scale);
    let total = scaled(85_984, scale);
    let n = NormalizationKind::MinMaxNoOutliers;
    let mut series = Vec::new();
    for model in [ModelKind::ht(), ModelKind::arf(), ModelKind::slr()] {
        let spec = AblationSpec::new(model, ClassScheme::ThreeClass, true, n, true);
        let out = run_ablation(&spec, total, 0xF1611).expect("ablation runs");
        println!("{:<34} final F1 = {:.4}", out.label, out.metrics.f1);
        series.push((out.label.clone(), f1_series(&out.series)));
    }
    println!("\n(paper: all 80-90% F1; HT/SLR similar; ARF ~4% lower, slower to plateau)\n");
    redhanded_bench::print_series("tweets", &series);
    write_csv(
        "fig11_streaming_3class",
        &["variant", "tweets", "f1"],
        series.iter().flat_map(|(label, s)| {
            s.iter().map(move |(x, y)| vec![label.clone(), x.to_string(), y.to_string()])
        }),
    );
}
