//! Figure 4: per-class PDFs of (a) account age, (b) uppercase letters,
//! (c) adjectives, (d) mean words per sentence, (e) negative sentiment,
//! and (f) swear words.

use redhanded_bench::{banner, run_scale, scaled, write_csv};
use redhanded_core::experiments::feature_pdfs;

fn main() {
    let scale = run_scale();
    banner("Figure 4", "Per-class feature PDFs", scale);
    let total = scaled(85_984, scale);
    let features = [
        "accountAge",
        "numUpperCases",
        "cntAdjective",
        "wordsPerSentence",
        "sentimentScoreNeg",
        "cntSwearWords",
    ];
    let pdfs = feature_pdfs(&features, total, 0xF1604, 30).expect("experiment runs");
    println!("\nPer-class means (paper quotes: accountAge 1487.74/1291.97/1379.95;");
    println!("numUpperCases 0.96/1.84/1.57; wordsPerSentence 16.66/12.66/15.93;");
    println!("cntSwearWords 0.10/2.54/1.84 for normal/abusive/hateful)\n");
    println!("{:>20} {:>10} {:>12} {:>12}", "feature", "class", "mean", "std");
    for p in &pdfs {
        println!("{:>20} {:>10} {:>12.2} {:>12.2}", p.feature, p.class_name, p.mean, p.std);
    }
    let rows = pdfs.iter().flat_map(|p| {
        p.bins.iter().map(move |(x, d)| {
            vec![p.feature.clone(), p.class_name.clone(), x.to_string(), d.to_string()]
        })
    });
    write_csv("fig04_feature_pdfs", &["feature", "class", "bin_center", "density"], rows);
}
