//! Figure 8: F1 for SLR (2- and 3-class) with normalization ON vs OFF —
//! the paper reports a >42% F1 gap.

use redhanded_bench::{banner, f1_series, run_scale, scaled, write_csv};
use redhanded_core::experiments::{run_ablation, AblationSpec};
use redhanded_core::ModelKind;
use redhanded_features::NormalizationKind;
use redhanded_types::ClassScheme;

fn main() {
    let scale = run_scale();
    banner("Figure 8", "Impact of normalization on SLR", scale);
    let total = scaled(85_984, scale);
    let specs = [
        AblationSpec::new(ModelKind::slr(), ClassScheme::ThreeClass, true, NormalizationKind::None, true),
        AblationSpec::new(ModelKind::slr(), ClassScheme::ThreeClass, true, NormalizationKind::MinMaxNoOutliers, true),
        AblationSpec::new(ModelKind::slr(), ClassScheme::TwoClass, true, NormalizationKind::None, true),
        AblationSpec::new(ModelKind::slr(), ClassScheme::TwoClass, true, NormalizationKind::MinMaxNoOutliers, true),
    ];
    let mut series = Vec::new();
    for spec in &specs {
        let out = run_ablation(spec, total, 0xF1608).expect("ablation runs");
        println!("{:<35} final F1 = {:.4}", out.label, out.metrics.f1);
        series.push((out.label.clone(), f1_series(&out.series)));
    }
    println!("\n(paper: normalization increases SLR F1 by over 42%)\n");
    redhanded_bench::print_series("tweets", &series);
    write_csv(
        "fig08_norm_slr",
        &["variant", "tweets", "f1"],
        series.iter().flat_map(|(label, s)| {
            s.iter().map(move |(x, y)| vec![label.clone(), x.to_string(), y.to_string()])
        }),
    );
}
