//! Figure 5: features ranked by normalized Gini importance (random-forest
//! total impurity reduction).

use redhanded_bench::{banner, run_scale, scaled, write_csv};
use redhanded_core::experiments::gini_importance_ranking;

fn main() {
    let scale = run_scale();
    banner("Figure 5", "Feature ranking by Gini importance", scale);
    let total = scaled(85_984, scale);
    let ranking = gini_importance_ranking(total, 0xF1605).expect("experiment runs");
    println!("\n(paper's top features: cntSwearWords, sentimentScoreNeg,");
    println!(" wordsPerSentence, meanWordLength, accountAge, cntPosts)\n");
    println!("{:>4} {:>20} {:>12}", "#", "feature", "importance");
    for (i, e) in ranking.iter().enumerate() {
        let bar = "#".repeat((e.importance * 100.0).round() as usize);
        println!("{:>4} {:>20} {:>12.4}  {bar}", i + 1, e.feature, e.importance);
    }
    write_csv(
        "fig05_gini_importance",
        &["rank", "feature", "importance"],
        ranking.iter().enumerate().map(|(i, e)| {
            vec![(i + 1).to_string(), e.feature.clone(), e.importance.to_string()]
        }),
    );
}
