//! Table II: accuracy, precision, recall, and F1 for HT, ARF, and SLR on
//! the 3-class and 2-class problems (p=ON, n=ON, ad=ON).

use redhanded_bench::{banner, run_scale, scaled, write_csv};
use redhanded_core::experiments::{run_ablation, AblationSpec};
use redhanded_core::ModelKind;
use redhanded_features::NormalizationKind;
use redhanded_types::ClassScheme;

fn main() {
    let scale = run_scale();
    banner("Table II", "Key evaluation metrics for HT, ARF, SLR", scale);
    let total = scaled(85_984, scale);
    let n = NormalizationKind::MinMaxNoOutliers;
    let mut rows = Vec::new();
    println!(
        "\n{:>8} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "scheme", "model", "accuracy", "precision", "recall", "f1"
    );
    for scheme in [ClassScheme::ThreeClass, ClassScheme::TwoClass] {
        for model in [ModelKind::ht(), ModelKind::arf(), ModelKind::slr()] {
            let name = model.name();
            let spec = AblationSpec::new(model, scheme, true, n, true);
            let out = run_ablation(&spec, total, 0x7AB02).expect("ablation runs");
            let m = out.metrics;
            println!(
                "{:>8} {:>8} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                scheme.to_string(),
                name,
                m.accuracy,
                m.precision,
                m.recall,
                m.f1
            );
            rows.push(vec![
                scheme.to_string(),
                name.to_string(),
                format!("{:.4}", m.accuracy),
                format!("{:.4}", m.precision),
                format!("{:.4}", m.recall),
                format!("{:.4}", m.f1),
            ]);
        }
    }
    println!("\n(paper 3-class: HT .89/.85/.89/.87, ARF .85/.80/.85/.83, SLR .89/.85/.89/.87;");
    println!(" paper 2-class: HT .93/.92/.90/.91, ARF .92/.85/.93/.89, SLR .93/.91/.91/.91)");
    write_csv(
        "tab02_key_metrics",
        &["scheme", "model", "accuracy", "precision", "recall", "f1"],
        rows,
    );
}
