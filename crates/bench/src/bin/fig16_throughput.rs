//! Figure 16: throughput (tweets/sec) per streaming system vs the
//! reported Twitter Firehose rate (~9k tweets/sec).

use redhanded_bench::{banner, run_scale, write_csv};
use redhanded_core::experiments::run_scalability;
use redhanded_core::SystemFlavor;

fn main() {
    let scale = run_scale();
    banner("Figure 16", "Throughput per streaming system", scale);
    let counts: Vec<usize> = [250_000usize, 500_000, 1_000_000, 1_500_000, 2_000_000]
        .iter()
        .map(|&c| ((c as f64 * scale) as usize).max(1_000))
        .collect();
    let labeled = ((85_984.0 * scale) as usize).max(500);
    // The paper's micro-batch size stays fixed at 10k regardless of sweep
    // scale: per-batch overheads amortize over batch size, not stream size.
    let microbatch = 10_000;
    let out = run_scalability(&counts, labeled, &SystemFlavor::paper_set(), microbatch, 0xF1616)
        .expect("sweep runs");
    println!("\n{:>12} {:>14} {:>22}", "system", "tweets", "throughput (tw/s)");
    for p in &out.points {
        println!("{:>12} {:>14} {:>22.0}", p.system, p.tweets, p.throughput);
    }
    println!("\nTwitter Firehose reference rate: {:.0} tweets/sec", out.firehose_rate);
    for system in ["SparkCluster", "SparkLocal", "SparkSingle", "MOA"] {
        if let Some(p) = out.system_points(system).last() {
            let verdict = if p.throughput >= out.firehose_rate { "CAN" } else { "cannot" };
            println!("  {system:>12}: {:.0} tw/s — {verdict} absorb the Firehose", p.throughput);
        }
    }
    println!("\n(paper: MOA/SparkSingle ~1.1k tw/s; SparkLocal ~6k; SparkCluster up to");
    println!(" 14.5k, plateauing past ~1M tweets — 3 machines cover the Firehose)");
    // The throughput ceiling is set by the batch critical path; show where
    // it goes for the fastest system's largest sweep point.
    if let Some(b) =
        out.system_points("SparkCluster").last().and_then(|p| p.breakdown.as_ref())
    {
        println!("\nSparkCluster critical-path breakdown (largest sweep point):");
        print!("{}", b.breakdown_table());
        if b.total_us > 0.0 {
            println!(
                "critical path covers {:.1}% of batch time; scheduling overhead {:.1}%",
                100.0 * b.critical_path_us / b.total_us,
                100.0 * b.scheduling_overhead_us / b.total_us
            );
        }
    }
    write_csv(
        "fig16_throughput",
        &["system", "tweets", "throughput"],
        out.points.iter().map(|p| {
            vec![p.system.to_string(), p.tweets.to_string(), p.throughput.to_string()]
        }),
    );
}
