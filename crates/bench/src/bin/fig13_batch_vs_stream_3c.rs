//! Figure 13: streaming HT vs batch decision tree under the two batch
//! training scenarios, 3-class problem.

use redhanded_bench::{banner, f1_series, run_scale, scaled, write_csv};
use redhanded_core::experiments::run_batch_vs_stream;
use redhanded_types::ClassScheme;

fn main() {
    let scale = run_scale();
    banner("Figure 13", "HT vs batch DT (3-class)", scale);
    run(ClassScheme::ThreeClass, scaled(85_984, scale), "fig13_batch_vs_stream_3c");
}

pub(crate) fn run(scheme: ClassScheme, total: usize, csv: &str) {
    let out = run_batch_vs_stream(scheme, total, 0xF1613).expect("experiment runs");
    println!("\n{:>6} {:>16} {:>28} {:>28}", "day", "HT (daily avg)", "DT train-first-day", "DT train-one-day-next");
    let lookup = |v: &[(u32, f64)], d: u32| {
        v.iter().find(|(day, _)| *day == d).map(|(_, f1)| format!("{f1:.4}")).unwrap_or_default()
    };
    for d in 0..10u32 {
        println!(
            "{:>6} {:>16} {:>28} {:>28}",
            d,
            lookup(&out.streaming_daily, d),
            lookup(&out.batch_first_day, d),
            lookup(&out.batch_daily_retrain, d),
        );
    }
    println!("\nfine-grained streaming HT F1 curve:");
    redhanded_bench::print_series(
        "tweets",
        &[("HT".to_string(), f1_series(&out.streaming_series))],
    );
    let mut rows = Vec::new();
    for (d, f1) in &out.streaming_daily {
        rows.push(vec!["HT_daily".to_string(), d.to_string(), f1.to_string()]);
    }
    for (d, f1) in &out.batch_first_day {
        rows.push(vec!["DT_first_day".to_string(), d.to_string(), f1.to_string()]);
    }
    for (d, f1) in &out.batch_daily_retrain {
        rows.push(vec!["DT_daily_retrain".to_string(), d.to_string(), f1.to_string()]);
    }
    write_csv(csv, &["series", "day", "f1"], rows);
}
