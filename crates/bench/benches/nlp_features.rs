//! Micro-benchmarks for the NLP substrate and feature extraction — the
//! per-tweet cost that dominates the pipeline (Figure 2's op #1).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use redhanded_datagen::{generate_abusive, AbusiveConfig};
use redhanded_features::{AdaptiveBow, ExtractScratch, FeatureExtractor};
use redhanded_nlp::{score_text, tokenize};
use redhanded_types::LabeledTweet;
use std::hint::black_box;

fn sample_tweets(n: usize) -> Vec<LabeledTweet> {
    generate_abusive(&AbusiveConfig::small(n, 0xBE7C4))
}

fn bench_nlp(c: &mut Criterion) {
    let tweets = sample_tweets(1000);
    let texts: Vec<&str> = tweets.iter().map(|t| t.tweet.text.as_str()).collect();

    let mut group = c.benchmark_group("nlp");
    group.throughput(Throughput::Elements(texts.len() as u64));
    group.sample_size(20);

    group.bench_function("tokenize_1k_tweets", |b| {
        b.iter(|| {
            for t in &texts {
                black_box(tokenize(t));
            }
        })
    });

    group.bench_function("sentiment_1k_tweets", |b| {
        b.iter(|| {
            for t in &texts {
                black_box(score_text(t));
            }
        })
    });

    group.bench_function("pos_tagging_1k_tweets", |b| {
        b.iter(|| {
            for t in &texts {
                let toks = tokenize(t);
                black_box(redhanded_nlp::count_pos(
                    toks.iter()
                        .filter(|tk| tk.kind == redhanded_nlp::TokenKind::Word)
                        .map(|tk| tk.text),
                ));
            }
        })
    });
    group.finish();
}

fn bench_extraction(c: &mut Criterion) {
    let tweets = sample_tweets(1000);
    let extractor = FeatureExtractor::default();
    let bow = AdaptiveBow::with_defaults();

    let mut group = c.benchmark_group("extract");
    group.throughput(Throughput::Elements(tweets.len() as u64));
    group.sample_size(20);

    // Pre-refactor allocating path (see `redhanded_bench::seed_baseline`):
    // per-word heap Strings, allocating sentiment/POS lookups. This is the
    // "before" of the scratch/interning rewrite.
    group.bench_function("allocating_baseline_1k_tweets", |b| {
        b.iter(|| {
            for lt in &tweets {
                black_box(redhanded_bench::seed_baseline::extract(&lt.tweet, &bow));
            }
        })
    });

    // Current convenience wrapper: a fresh scratch per call plus the
    // `Extraction` materialization (this is also what a
    // fresh-scratch-per-tweet costs, since `extract` wraps `extract_into`).
    group.bench_function("full_feature_vector_1k_tweets", |b| {
        b.iter(|| {
            for lt in &tweets {
                black_box(extractor.extract(&lt.tweet, &bow));
            }
        })
    });

    // Scratch-reuse path: one `ExtractScratch` amortized over the stream —
    // the configuration the sequential pipeline and the DSPE tasks run.
    group.bench_function("extract_into_scratch_reuse_1k_tweets", |b| {
        let mut scratch = ExtractScratch::new();
        b.iter(|| {
            for lt in &tweets {
                extractor.extract_into(&lt.tweet, &bow, &mut scratch);
                black_box(scratch.features());
            }
        })
    });

    group.bench_function("json_parse_1k_tweets", |b| {
        let jsons: Vec<String> = tweets.iter().map(|t| t.to_json()).collect();
        b.iter_batched(
            || jsons.clone(),
            |jsons| {
                for j in &jsons {
                    black_box(LabeledTweet::from_json(j).expect("valid json"));
                }
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_bow_observe(c: &mut Criterion) {
    let tweets = sample_tweets(1000);
    let extractor = FeatureExtractor::default();
    let seed_bow = AdaptiveBow::with_defaults();
    // Pre-extract the word sequences so the bench isolates `observe`
    // (interning + document-frequency counting), not extraction.
    let word_lists: Vec<Vec<String>> =
        tweets.iter().map(|lt| extractor.extract(&lt.tweet, &seed_bow).words).collect();

    let mut group = c.benchmark_group("bow");
    group.throughput(Throughput::Elements(word_lists.len() as u64));
    group.sample_size(20);

    group.bench_function("bow_observe_interned_1k_tweets", |b| {
        let mut bow = AdaptiveBow::with_defaults();
        // Warm the interner with the full vocabulary so iterations measure
        // the steady state (already-seen words, integer-keyed updates).
        for (i, words) in word_lists.iter().enumerate() {
            bow.observe(words.iter().map(String::as_str), i % 2 == 0);
        }
        b.iter(|| {
            for (i, words) in word_lists.iter().enumerate() {
                bow.observe(words.iter().map(String::as_str), i % 2 == 0);
            }
            black_box(bow.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_nlp, bench_extraction, bench_bow_observe);
criterion_main!(benches);
