//! Micro-benchmarks for the NLP substrate and feature extraction — the
//! per-tweet cost that dominates the pipeline (Figure 2's op #1).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use redhanded_datagen::{generate_abusive, AbusiveConfig};
use redhanded_features::{AdaptiveBow, FeatureExtractor};
use redhanded_nlp::{score_text, tokenize};
use redhanded_types::LabeledTweet;
use std::hint::black_box;

fn sample_tweets(n: usize) -> Vec<LabeledTweet> {
    generate_abusive(&AbusiveConfig::small(n, 0xBE7C4))
}

fn bench_nlp(c: &mut Criterion) {
    let tweets = sample_tweets(1000);
    let texts: Vec<&str> = tweets.iter().map(|t| t.tweet.text.as_str()).collect();

    let mut group = c.benchmark_group("nlp");
    group.throughput(Throughput::Elements(texts.len() as u64));
    group.sample_size(20);

    group.bench_function("tokenize_1k_tweets", |b| {
        b.iter(|| {
            for t in &texts {
                black_box(tokenize(t));
            }
        })
    });

    group.bench_function("sentiment_1k_tweets", |b| {
        b.iter(|| {
            for t in &texts {
                black_box(score_text(t));
            }
        })
    });

    group.bench_function("pos_tagging_1k_tweets", |b| {
        b.iter(|| {
            for t in &texts {
                let toks = tokenize(t);
                black_box(redhanded_nlp::count_pos(
                    toks.iter()
                        .filter(|tk| tk.kind == redhanded_nlp::TokenKind::Word)
                        .map(|tk| tk.text),
                ));
            }
        })
    });
    group.finish();
}

fn bench_extraction(c: &mut Criterion) {
    let tweets = sample_tweets(1000);
    let extractor = FeatureExtractor::default();
    let bow = AdaptiveBow::with_defaults();

    let mut group = c.benchmark_group("extract");
    group.throughput(Throughput::Elements(tweets.len() as u64));
    group.sample_size(20);

    group.bench_function("full_feature_vector_1k_tweets", |b| {
        b.iter(|| {
            for lt in &tweets {
                black_box(extractor.extract(&lt.tweet, &bow));
            }
        })
    });

    group.bench_function("json_parse_1k_tweets", |b| {
        let jsons: Vec<String> = tweets.iter().map(|t| t.to_json()).collect();
        b.iter_batched(
            || jsons.clone(),
            |jsons| {
                for j in &jsons {
                    black_box(LabeledTweet::from_json(j).expect("valid json"));
                }
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_nlp, bench_extraction);
criterion_main!(benches);
