//! Ablation bench: the three normalization variants (minmax, minmax
//! without outliers, z-score) plus the disabled baseline — the design
//! choice behind Figures 7–8.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use redhanded_features::{NormalizationKind, Normalizer, NUM_FEATURES};
use redhanded_types::Instance;
use std::hint::black_box;

fn vectors(n: usize) -> Vec<Vec<f64>> {
    let mut state = 0x5EEDu64;
    (0..n)
        .map(|_| {
            (0..NUM_FEATURES)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state % 10_000) as f64 / 10.0
                })
                .collect()
        })
        .collect()
}

fn bench_normalization(c: &mut Criterion) {
    let data = vectors(5_000);
    let mut group = c.benchmark_group("normalization");
    group.throughput(Throughput::Elements(data.len() as u64));
    group.sample_size(20);
    for (name, kind) in [
        ("none", NormalizationKind::None),
        ("minmax", NormalizationKind::MinMax),
        ("minmax_no_outliers", NormalizationKind::MinMaxNoOutliers),
        ("zscore", NormalizationKind::ZScore),
    ] {
        group.bench_function(format!("{name}_5k_vectors"), |b| {
            b.iter(|| {
                let mut norm = Normalizer::new(kind, NUM_FEATURES);
                for v in &data {
                    let mut inst = Instance::unlabeled(v.clone());
                    norm.process(&mut inst).expect("process");
                    black_box(&inst);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_normalization);
criterion_main!(benches);
