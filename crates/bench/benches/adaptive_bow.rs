//! Micro-benchmarks for the adaptive bag-of-words: scoring, observation,
//! and the periodic maintenance round (Section IV-B's adaptive feature).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use redhanded_datagen::{generate_abusive, AbusiveConfig};
use redhanded_features::{AdaptiveBow, AdaptiveBowConfig, FeatureExtractor};
use std::hint::black_box;

fn tweet_words(n: usize) -> Vec<(Vec<String>, bool)> {
    let tweets = generate_abusive(&AbusiveConfig::small(n, 0xBE7C6));
    let extractor = FeatureExtractor::default();
    let bow = AdaptiveBow::with_defaults();
    tweets
        .iter()
        .map(|lt| {
            let ext = extractor.extract(&lt.tweet, &bow);
            (ext.words, lt.label.is_aggressive())
        })
        .collect()
}

fn bench_bow(c: &mut Criterion) {
    let words = tweet_words(2_000);
    let mut group = c.benchmark_group("adaptive_bow");
    group.throughput(Throughput::Elements(words.len() as u64));
    group.sample_size(20);

    group.bench_function("score_2k_tweets", |b| {
        let bow = AdaptiveBow::with_defaults();
        b.iter(|| {
            for (w, _) in &words {
                black_box(bow.score(w.iter().map(String::as_str)));
            }
        })
    });

    group.bench_function("observe_2k_tweets", |b| {
        b.iter_batched(
            AdaptiveBow::with_defaults,
            |mut bow| {
                for (w, aggressive) in &words {
                    bow.observe(w.iter().map(String::as_str), *aggressive);
                }
                black_box(bow)
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("maintenance_round", |b| {
        // A BoW loaded with rolling statistics from 2k tweets.
        let mut loaded = AdaptiveBow::new(AdaptiveBowConfig {
            update_interval: u64::MAX,
            ..Default::default()
        });
        for (w, aggressive) in &words {
            loaded.observe(w.iter().map(String::as_str), *aggressive);
        }
        b.iter_batched(
            || loaded.clone(),
            |mut bow| {
                bow.force_maintain();
                black_box(bow)
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_bow);
criterion_main!(benches);
