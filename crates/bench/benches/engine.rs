//! Engine benches: micro-batch scheduling overhead, the micro-batch-size
//! latency/throughput trade-off (a design choice DESIGN.md calls out), and
//! the model merge step of the distributed training protocol.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use redhanded_core::experiments::prepare_instances;
use redhanded_dspe::{CostModel, EngineConfig, MicroBatchEngine, Topology};
use redhanded_streamml::{HoeffdingTree, StreamingClassifier};
use redhanded_types::ClassScheme;
use std::hint::black_box;

fn bench_microbatch_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("microbatch_size");
    group.sample_size(10);
    for batch_size in [100usize, 1_000, 10_000] {
        group.bench_function(format!("map_20k_records_batch{batch_size}"), |b| {
            let mut cfg = EngineConfig::for_topology(Topology::local(4));
            cfg.microbatch_size = batch_size;
            cfg.cost_model = CostModel::default();
            let engine = MicroBatchEngine::new(cfg);
            b.iter(|| {
                let report = engine.run_stream(0..20_000u64, |ctx, batch| {
                    let data = ctx.parallelize(batch);
                    let _ = ctx.map(&data, |x| x.wrapping_mul(2654435761));
                });
                black_box(report)
            })
        });
    }
    group.finish();
}

fn bench_model_merge(c: &mut Criterion) {
    // The driver-side cost of Figure 2's op #3 second half: merging N
    // partition-local HT forks into the global tree.
    let insts = prepare_instances(ClassScheme::ThreeClass, 4_000, 0xBE7C7).expect("prepare");
    let mut global = HoeffdingTree::with_paper_defaults(3, 17).unwrap();
    for inst in &insts[..2_000] {
        global.train(inst).expect("train");
    }
    let mut group = c.benchmark_group("model_merge");
    group.sample_size(10);
    for partitions in [2usize, 8, 24] {
        // Build per-partition delta forks trained on disjoint slices.
        let locals: Vec<Box<dyn StreamingClassifier>> = (0..partitions)
            .map(|p| {
                let mut local = StreamingClassifier::local_copy(&global);
                for inst in insts[2_000..].iter().skip(p).step_by(partitions) {
                    local.accumulate(inst).expect("accumulate");
                }
                local
            })
            .collect();
        group.bench_function(format!("merge_{partitions}_local_forks"), |b| {
            b.iter_batched(
                || (global.clone_box(), locals.clone()),
                |(mut g, locals)| {
                    g.merge_locals(locals).expect("merge");
                    black_box(g)
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_broadcast_clone(c: &mut Criterion) {
    // The per-batch cost of snapshotting the global model for broadcast.
    let insts = prepare_instances(ClassScheme::ThreeClass, 4_000, 0xBE7C8).expect("prepare");
    let mut global = HoeffdingTree::with_paper_defaults(3, 17).unwrap();
    for inst in &insts {
        global.train(inst).expect("train");
    }
    c.bench_function("model_snapshot_clone", |b| b.iter(|| black_box(global.clone_box())));
}

criterion_group!(benches, bench_microbatch_size, bench_model_merge, bench_broadcast_clone);
criterion_main!(benches);
