//! Micro-benchmarks for the streaming classifiers: per-instance train and
//! predict cost for HT, ARF, and SLR (the per-record budget that caps the
//! throughput of Figure 16).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use redhanded_core::experiments::prepare_instances;
use redhanded_streamml::{
    AdaptiveRandomForest, HoeffdingTree, StreamingClassifier, StreamingLogisticRegression,
};
use redhanded_types::{ClassScheme, Instance};
use std::hint::black_box;

fn instances() -> Vec<Instance> {
    prepare_instances(ClassScheme::ThreeClass, 2000, 0xBE7C5).expect("instances prepare")
}

fn models() -> Vec<Box<dyn StreamingClassifier>> {
    vec![
        Box::new(HoeffdingTree::with_paper_defaults(3, 17).unwrap()),
        Box::new(AdaptiveRandomForest::with_paper_defaults(3, 17).unwrap()),
        Box::new(StreamingLogisticRegression::with_paper_defaults(3, 17).unwrap()),
    ]
}

fn bench_train(c: &mut Criterion) {
    let insts = instances();
    let mut group = c.benchmark_group("train");
    group.throughput(Throughput::Elements(insts.len() as u64));
    group.sample_size(10);
    for model in models() {
        group.bench_function(format!("{}_2k_instances", model.name()), |b| {
            b.iter_batched(
                || model.clone_box(),
                |mut m| {
                    for inst in &insts {
                        m.train(inst).expect("train");
                    }
                    black_box(m)
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let insts = instances();
    let mut group = c.benchmark_group("predict");
    group.throughput(Throughput::Elements(insts.len() as u64));
    group.sample_size(10);
    for mut model in models() {
        for inst in &insts {
            model.train(inst).expect("train");
        }
        group.bench_function(format!("{}_2k_instances", model.name()), |b| {
            b.iter(|| {
                for inst in &insts {
                    black_box(model.predict_proba(&inst.features).expect("predict"));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_train, bench_predict);
criterion_main!(benches);
