//! Ablation benches for the remaining design choices DESIGN.md calls out:
//! Hoeffding-Tree leaf prediction strategy, candidate-split granularity of
//! the Gaussian observers, and ARF drift detection on/off.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use redhanded_core::experiments::prepare_instances;
use redhanded_streamml::{
    AdaptiveRandomForest, ArfConfig, HoeffdingTree, HoeffdingTreeConfig, LeafPrediction,
    StreamingClassifier,
};
use redhanded_types::{ClassScheme, Instance};
use std::hint::black_box;

fn instances() -> Vec<Instance> {
    prepare_instances(ClassScheme::ThreeClass, 3_000, 0xBE7C9).expect("prepare")
}

fn train_all(mut model: Box<dyn StreamingClassifier>, insts: &[Instance]) -> Box<dyn StreamingClassifier> {
    for inst in insts {
        model.train(inst).expect("train");
    }
    model
}

fn bench_ht_leaf_strategy(c: &mut Criterion) {
    let insts = instances();
    let mut group = c.benchmark_group("ht_leaf_strategy");
    group.throughput(Throughput::Elements(insts.len() as u64));
    group.sample_size(10);
    for (name, strategy) in [
        ("majority_class", LeafPrediction::MajorityClass),
        ("naive_bayes", LeafPrediction::NaiveBayes),
        ("nb_adaptive", LeafPrediction::NBAdaptive),
    ] {
        group.bench_function(format!("train_{name}"), |b| {
            b.iter_batched(
                || {
                    let mut cfg = HoeffdingTreeConfig::paper_defaults(3, 17);
                    cfg.leaf_prediction = strategy;
                    Box::new(HoeffdingTree::new(cfg).expect("valid")) as Box<dyn StreamingClassifier>
                },
                |m| black_box(train_all(m, &insts)),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_ht_observer_candidates(c: &mut Criterion) {
    let insts = instances();
    let mut group = c.benchmark_group("ht_observer_candidates");
    group.throughput(Throughput::Elements(insts.len() as u64));
    group.sample_size(10);
    for candidates in [5usize, 10, 50] {
        group.bench_function(format!("train_{candidates}_candidates"), |b| {
            b.iter_batched(
                || {
                    let mut cfg = HoeffdingTreeConfig::paper_defaults(3, 17);
                    cfg.num_candidates = candidates;
                    Box::new(HoeffdingTree::new(cfg).expect("valid")) as Box<dyn StreamingClassifier>
                },
                |m| black_box(train_all(m, &insts)),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_arf_drift(c: &mut Criterion) {
    use redhanded_streamml::DetectorKind;
    let insts = instances();
    let mut group = c.benchmark_group("arf_drift");
    group.throughput(Throughput::Elements(insts.len() as u64));
    group.sample_size(10);
    let variants: [(&str, bool, Option<DetectorKind>); 3] = [
        ("with_adwin", true, None),
        ("with_ddm", true, Some(DetectorKind::Ddm)),
        ("without_detection", false, None),
    ];
    for (name, enabled, detector) in variants {
        group.bench_function(format!("train_{name}"), |b| {
            b.iter_batched(
                || {
                    let mut cfg = ArfConfig::paper_defaults(3, 17);
                    cfg.enable_drift_detection = enabled;
                    if let Some(d) = detector {
                        cfg.warning_detector = d;
                        cfg.drift_detector = d;
                    }
                    Box::new(AdaptiveRandomForest::new(cfg).expect("valid"))
                        as Box<dyn StreamingClassifier>
                },
                |m| black_box(train_all(m, &insts)),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ht_leaf_strategy,
    bench_ht_observer_candidates,
    bench_arf_drift
);
criterion_main!(benches);
