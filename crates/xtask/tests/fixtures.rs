//! Rule-engine fixtures: for each rule, a passing snippet, a violating
//! snippet, a violating-but-baselined snippet (suppressed via
//! [`xtask::reconcile`]), and a `#[cfg(test)]`-gated snippet that must be
//! skipped — plus baseline ratchet semantics (stale-entry detection).

use xtask::baseline::Baseline;
use xtask::{analyze_source, analyze_workspace, reconcile, scan_unsafe, LintConfig, Rule, Violation};

fn run(file: &str, src: &str) -> Vec<Violation> {
    analyze_source(&LintConfig::default(), file, src)
}

fn rules(vs: &[Violation]) -> Vec<Rule> {
    vs.iter().map(|v| v.rule).collect()
}

// A library-code path subject to no-panic/nan-unsafe-cmp but none of the
// crate-scoped rules.
const LIB: &str = "crates/batchml/src/fixture.rs";

#[test]
fn no_panic_flags_unwrap_expect_and_macros() {
    let src = r#"
        pub fn f(x: Option<u32>) -> u32 {
            let a = x.unwrap();
            let b = x.expect("present");
            if a == 0 { panic!("zero"); }
            if b == 1 { todo!(); }
            if a == 2 { unreachable!(); }
            a + b
        }
    "#;
    let vs = run(LIB, src);
    let symbols: Vec<&str> = vs.iter().map(|v| v.symbol.as_str()).collect();
    assert_eq!(symbols, ["unwrap", "expect", "panic!", "todo!", "unreachable!"]);
    assert!(vs.iter().all(|v| v.rule == Rule::NoPanic));
    assert_eq!(vs[0].line, 3);
}

#[test]
fn no_panic_passes_clean_code() {
    let src = r#"
        pub fn f(x: Option<u32>) -> Option<u32> {
            // Mentions in comments ("just unwrap() it") and strings are not
            // calls: "call .unwrap() here".
            let msg = "never unwrap() in library code";
            x.map(|v| v + msg.len() as u32)
        }
    "#;
    assert!(run(LIB, src).is_empty());
}

#[test]
fn no_panic_skips_cfg_test_items() {
    let src = r#"
        pub fn f(x: Option<u32>) -> Option<u32> { x }

        #[cfg(test)]
        mod tests {
            #[test]
            fn t() {
                let v: Option<u32> = Some(1);
                assert_eq!(v.unwrap(), 1);
                std::panic::catch_unwind(|| panic!("fine in tests")).ok();
            }
        }
    "#;
    assert!(run(LIB, src).is_empty());
}

#[test]
fn no_panic_skips_bench_and_bin_paths() {
    let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }";
    assert_eq!(run(LIB, src).len(), 1);
    assert!(run("crates/bench/src/lib.rs", src).is_empty());
    assert!(run("crates/core/src/bin/redhanded.rs", src).is_empty());
}

#[test]
fn nan_unsafe_cmp_supersedes_no_panic() {
    let src = r#"
        pub fn sort(xs: &mut Vec<f64>) {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        }
    "#;
    let vs = run(LIB, src);
    // Exactly one violation: the nan rule, not a second no-panic report for
    // the same `unwrap` token.
    assert_eq!(rules(&vs), [Rule::NanUnsafeCmp]);
    assert_eq!(vs[0].symbol, "partial_cmp().unwrap");

    let expect_src = r#"
        pub fn max(xs: &[f64]) -> Option<f64> {
            xs.iter().copied().max_by(|a, b| a.partial_cmp(b).expect("no NaN"))
        }
    "#;
    let vs = run(LIB, expect_src);
    assert_eq!(rules(&vs), [Rule::NanUnsafeCmp]);
    assert_eq!(vs[0].symbol, "partial_cmp().expect");
}

#[test]
fn nan_unsafe_cmp_passes_total_cmp_and_handled_partial_cmp() {
    let src = r#"
        pub fn sort(xs: &mut Vec<f64>) {
            xs.sort_by(|a, b| a.total_cmp(b));
        }
        pub fn cmp_or_less(a: f64, b: f64) -> std::cmp::Ordering {
            a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Less)
        }
    "#;
    assert!(run(LIB, src).is_empty());
}

#[test]
fn nan_unsafe_cmp_applies_even_where_no_panic_is_exempt() {
    let src = "pub fn f(a: f64, b: f64) { let _ = a.partial_cmp(&b).unwrap(); }";
    let vs = run("crates/bench/src/lib.rs", src);
    assert_eq!(rules(&vs), [Rule::NanUnsafeCmp]);
}

#[test]
fn hot_path_alloc_flags_designated_function_only() {
    let src = r#"
        pub fn extract_into(out: &mut Vec<f64>, words: &[&str]) {
            let joined = words.to_vec();
            let s = format!("{}", joined.len());
            out.push(s.len() as f64);
        }
        pub fn cold_setup() -> Vec<f64> {
            let v = Vec::with_capacity(64);
            let _s = "x".to_string();
            v
        }
    "#;
    let vs = run("crates/features/src/extract.rs", src);
    let symbols: Vec<&str> = vs.iter().map(|v| v.symbol.as_str()).collect();
    // Only the allocations inside `extract_into` fire (in line order);
    // `cold_setup` is not a designated hot function.
    assert_eq!(symbols, ["to_vec", "format!"]);
    assert!(vs.iter().all(|v| v.rule == Rule::HotPathAlloc && v.line <= 5));
}

#[test]
fn hot_path_alloc_covers_closures_nested_in_hot_fns() {
    let src = r#"
        pub fn extract_into(out: &mut Vec<f64>, words: &[&str]) {
            let total: usize = words.iter().map(|w| w.to_owned().len()).sum();
            out.push(total as f64);
        }
    "#;
    let vs = run("crates/features/src/extract.rs", src);
    assert_eq!(rules(&vs), [Rule::HotPathAlloc]);
    assert_eq!(vs[0].symbol, "to_owned");
}

#[test]
fn hot_path_alloc_ignores_undesignated_files() {
    let src = r#"
        pub fn extract_into(out: &mut Vec<String>) {
            out.push(String::new());
        }
    "#;
    // Same function name, wrong file: the allowlist is per-file.
    assert!(run("crates/features/src/stats.rs", src).is_empty());
}

#[test]
fn trace_preregistered_flags_named_spans_in_hot_fns() {
    let src = r#"
        pub fn process_batch(&mut self, ctx: &mut BatchContext) {
            let span = self.obs.trace.begin_named("ad-hoc", parent, 0, t0);
            self.obs.trace.end(span, t1);
        }
        pub fn cold_summary(&mut self) {
            let span = self.obs.trace.begin_named("summary", parent, 0, t0);
            self.obs.trace.end(span, t1);
        }
    "#;
    let vs = run("crates/core/src/spark.rs", src);
    // Only the hot function fires; `begin_named` is fine in cold code.
    assert_eq!(rules(&vs), [Rule::TracePreregistered]);
    assert_eq!(vs[0].symbol, "begin_named");
    assert_eq!(vs[0].line, 3);
}

#[test]
fn trace_preregistered_passes_preregistered_emission() {
    let src = r#"
        pub fn process_batch(&mut self, ctx: &mut BatchContext) {
            let span = ctx.trace_begin(SpanKind::Broadcast, bytes, 0);
            ctx.trace_end(span);
        }
    "#;
    assert!(run("crates/core/src/spark.rs", src).is_empty());
}

#[test]
fn sip_hash_scopes_to_hot_crates() {
    let src = r#"
        use std::collections::HashMap;
        pub struct S { m: HashMap<u64, u32> }
    "#;
    let vs = run("crates/core/src/fixture.rs", src);
    assert_eq!(rules(&vs), [Rule::SipHash, Rule::SipHash]);
    assert!(vs.iter().all(|v| v.symbol == "HashMap"));
    // batchml is offline training code — SipHash there is acceptable.
    assert!(run("crates/batchml/src/fixture.rs", src).is_empty());
    // The shim file itself must be allowed to re-export std's types.
    assert!(run("crates/nlp/src/fxhash.rs", src).is_empty());
}

#[test]
fn sip_hash_passes_fx_tables() {
    let src = r#"
        use redhanded_nlp::{FxHashMap, FxHashSet};
        pub struct S { m: FxHashMap<u64, u32>, s: FxHashSet<u64> }
    "#;
    assert!(run("crates/core/src/fixture.rs", src).is_empty());
}

#[test]
fn wall_clock_scopes_to_timing_layer() {
    let src = r#"
        use std::time::Instant;
        pub fn stamp() -> Instant { Instant::now() }
        pub fn epoch() -> std::time::SystemTime { std::time::SystemTime::now() }
    "#;
    let vs = run("crates/core/src/fixture.rs", src);
    let symbols: Vec<&str> = vs.iter().map(|v| v.symbol.as_str()).collect();
    assert_eq!(symbols, ["Instant::now", "SystemTime::now"]);
    assert!(vs.iter().all(|v| v.rule == Rule::WallClock));
    // The DSPE timing layer and benches own the clock.
    assert!(run("crates/dspe/src/engine.rs", src).is_empty());
    assert!(run("crates/bench/src/timer.rs", src).is_empty());
}

#[test]
fn catch_unwind_flags_use_outside_the_fault_boundary() {
    let src = r#"
        use std::panic::catch_unwind;
        pub fn swallow(f: impl FnOnce() + std::panic::UnwindSafe) {
            let _ = catch_unwind(f);
        }
    "#;
    let vs = run("crates/dspe/src/executor.rs", src);
    // Both the import and the call are breaches.
    assert_eq!(rules(&vs), [Rule::CatchUnwindBoundary, Rule::CatchUnwindBoundary]);
    assert!(vs.iter().all(|v| v.symbol == "catch_unwind"));
}

#[test]
fn catch_unwind_is_allowed_at_the_fault_boundary_and_in_tests() {
    let src = r#"
        use std::panic::{catch_unwind, AssertUnwindSafe};
        pub fn call_guarded<T>(f: impl FnOnce() -> T) -> Option<T> {
            catch_unwind(AssertUnwindSafe(f)).ok()
        }
    "#;
    assert!(run("crates/dspe/src/fault.rs", src).is_empty());

    let test_src = r#"
        pub fn f() {}

        #[cfg(test)]
        mod tests {
            #[test]
            fn panics_are_observable() {
                std::panic::catch_unwind(|| super::f()).ok();
            }
        }
    "#;
    assert!(run("crates/dspe/src/executor.rs", test_src).is_empty());
}

// --- baseline ratchet semantics ---------------------------------------

fn baseline_with(file: &str, rule: &str, symbol: &str, count: usize) -> Baseline {
    let mut b = Baseline::default();
    b.entries.insert((file.to_string(), rule.to_string(), symbol.to_string()), count);
    b
}

#[test]
fn baselined_violation_is_suppressed_but_tracked() {
    let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }";
    let vs = run(LIB, src);
    assert_eq!(vs.len(), 1);
    let baseline = baseline_with(LIB, "no-panic", "unwrap", 1);
    let outcome = reconcile(vs, &baseline, 1);
    assert!(outcome.is_clean());
    assert!(outcome.new_violations.is_empty());
    assert!(outcome.stale_entries.is_empty());
    assert_eq!(
        outcome.baselined.get(&(LIB.into(), "no-panic".into(), "unwrap".into())),
        Some(&1)
    );
}

#[test]
fn violations_beyond_the_recorded_count_are_new() {
    let src = r#"
        pub fn f(x: Option<u32>, y: Option<u32>) -> u32 {
            x.unwrap() + y.unwrap()
        }
    "#;
    let vs = run(LIB, src);
    assert_eq!(vs.len(), 2);
    let baseline = baseline_with(LIB, "no-panic", "unwrap", 1);
    let outcome = reconcile(vs, &baseline, 1);
    assert!(!outcome.is_clean());
    // The first (by line order) is suppressed; the second is new debt.
    assert_eq!(outcome.new_violations.len(), 1);
    assert!(outcome.stale_entries.is_empty());
}

#[test]
fn paid_down_debt_makes_the_entry_stale() {
    // The file is now clean but the baseline still records one unwrap:
    // the ratchet must force a regenerate.
    let src = "pub fn f(x: Option<u32>) -> Option<u32> { x }";
    let vs = run(LIB, src);
    assert!(vs.is_empty());
    let baseline = baseline_with(LIB, "no-panic", "unwrap", 1);
    let outcome = reconcile(vs, &baseline, 1);
    assert!(!outcome.is_clean());
    assert_eq!(outcome.stale_entries.len(), 1);
    assert_eq!(outcome.stale_entries[0].recorded, 1);
    assert_eq!(outcome.stale_entries[0].actual, 0);
}

#[test]
fn partially_paid_debt_is_also_stale() {
    let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }";
    let vs = run(LIB, src);
    let baseline = baseline_with(LIB, "no-panic", "unwrap", 3);
    let outcome = reconcile(vs, &baseline, 1);
    assert!(!outcome.is_clean());
    assert_eq!(outcome.stale_entries.len(), 1);
    assert_eq!(outcome.stale_entries[0].recorded, 3);
    assert_eq!(outcome.stale_entries[0].actual, 1);
    // The one real violation is still suppressed (it is within the count).
    assert!(outcome.new_violations.is_empty());
}

// ------------------------------------------------------------- exec-ready

#[test]
fn exec_static_flags_mutable_and_interior_mut_statics() {
    let src = r#"
        static mut COUNTER: u64 = 0;
        thread_local! { static SCRATCH: Vec<f64> = Vec::new(); }
        static CACHE: RefCell<u32> = RefCell::new(0);
    "#;
    let vs = run(LIB, src);
    let ex: Vec<&Violation> = vs.iter().filter(|v| v.rule == Rule::ExecStatic).collect();
    assert_eq!(ex.len(), 3, "{vs:?}");
    assert!(ex.iter().any(|v| v.symbol == "static mut COUNTER"), "{ex:?}");
    assert!(ex.iter().any(|v| v.symbol == "thread_local!"), "{ex:?}");
    assert!(ex.iter().any(|v| v.symbol == "static CACHE: RefCell"), "{ex:?}");
}

#[test]
fn exec_static_passes_plain_immutable_statics() {
    let src = r#"
        static NAME: &str = "redhanded";
        static LIMIT: usize = 64;
        pub fn f() -> usize { LIMIT }
    "#;
    let vs = run(LIB, src);
    assert!(!rules(&vs).contains(&Rule::ExecStatic), "{vs:?}");
}

#[test]
fn exec_static_skips_cfg_test_items() {
    let src = r#"
        pub fn f() {}
        #[cfg(test)]
        mod tests {
            static mut TEST_ONLY: u64 = 0;
            thread_local! { static T: u32 = 0; }
        }
    "#;
    let vs = run(LIB, src);
    assert!(!rules(&vs).contains(&Rule::ExecStatic), "{vs:?}");
}

#[test]
fn exec_interior_mut_flags_task_reachable_fns_only() {
    // `process_batch` is a task root in the default config's overlay; the
    // cold fn in the same file is outside every task region.
    let src = r#"
        pub fn process_batch(&mut self) {
            let scratch = RefCell::new(0u32);
        }
        pub fn cold_setup() {
            let shared = Rc::new(1u32);
        }
    "#;
    let vs = run("crates/core/src/spark.rs", src);
    let ex: Vec<&Violation> =
        vs.iter().filter(|v| v.rule == Rule::ExecInteriorMut).collect();
    assert_eq!(ex.len(), 1, "{vs:?}");
    assert_eq!(ex[0].symbol, "RefCell");
}

#[test]
fn exec_interior_mut_ignores_undesignated_files() {
    let src = "pub fn f() { let c = Cell::new(0u32); }";
    let vs = run(LIB, src);
    assert!(!rules(&vs).contains(&Rule::ExecInteriorMut), "{vs:?}");
}

// ----------------------------------------------------------- unsafe-safety

#[test]
fn unsafe_safety_requires_a_safety_comment() {
    let src = r#"
        pub fn f(p: *const u8) -> u8 {
            unsafe { *p }
        }
    "#;
    let (sites, vs) = scan_unsafe(LIB, src);
    assert_eq!(sites.len(), 1, "{sites:?}");
    assert!(!sites[0].has_safety);
    assert_eq!(sites[0].context, "unsafe block");
    assert_eq!(rules(&vs), vec![Rule::UnsafeSafety]);
}

#[test]
fn unsafe_safety_passes_commented_sites_and_names_contexts() {
    let src = r#"
        // SAFETY: caller guarantees `p` is valid for reads.
        pub unsafe fn read(p: *const u8) -> u8 {
            // The walk tolerates interleaved prose lines.
            // SAFETY: validity was checked by the caller.
            unsafe { *p }
        }
    "#;
    let (sites, vs) = scan_unsafe(LIB, src);
    assert_eq!(sites.len(), 2, "{sites:?}");
    assert!(sites.iter().all(|s| s.has_safety), "{sites:?}");
    assert_eq!(sites[0].context, "unsafe fn read");
    assert_eq!(sites[1].context, "unsafe block");
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn unsafe_safety_applies_even_in_test_sources() {
    // Test code may unwrap and allocate, but unsound unsafe is unsound
    // anywhere: the rule has no test exemption.
    let src = r#"
        #[cfg(test)]
        mod tests {
            fn t() { unsafe { core::hint::unreachable_unchecked() } }
        }
    "#;
    let (sites, vs) = scan_unsafe(LIB, src);
    assert_eq!(sites.len(), 1);
    assert_eq!(rules(&vs), vec![Rule::UnsafeSafety]);
}

// --------------------------------------------------------------- det-taint

#[test]
fn det_taint_flows_interprocedurally_through_the_workspace_pass() {
    let mut config = LintConfig::default();
    config.det_sinks = &[("crates/obs/src/digest_fixture.rs", &["deterministic_digest"])];
    let srcs = vec![(
        "crates/obs/src/digest_fixture.rs".to_string(),
        r#"
        fn stamp() -> u64 { let t = Instant::now(); 0 }
        fn mid() -> u64 { stamp() }
        pub fn deterministic_digest() -> u64 { mid() }
        "#
        .to_string(),
    )];
    let analysis = analyze_workspace(&config, &srcs, &[], &std::collections::BTreeMap::new());
    let taint: Vec<&Violation> =
        analysis.violations.iter().filter(|v| v.rule == Rule::DetTaint).collect();
    assert_eq!(taint.len(), 1, "{:?}", analysis.violations);
    assert_eq!(taint[0].symbol, "deterministic_digest <- mid <- stamp [Instant::now]");
    // The graph stats expose the same flow: 3 fns, all clock-tainted.
    assert_eq!(analysis.stats.nodes, 3);
    assert_eq!(analysis.stats.clock_tainted, 3);
}

#[test]
fn det_taint_passes_a_pure_digest_next_to_timing_code() {
    let mut config = LintConfig::default();
    config.det_sinks = &[("crates/obs/src/digest_fixture.rs", &["deterministic_digest"])];
    let srcs = vec![(
        "crates/obs/src/digest_fixture.rs".to_string(),
        r#"
        fn timing_layer() -> u64 { let t = Instant::now(); 0 }
        pub fn deterministic_digest(data: &[u64]) -> u64 {
            data.iter().fold(0u64, |a, b| a.wrapping_mul(31).wrapping_add(*b))
        }
        "#
        .to_string(),
    )];
    let analysis = analyze_workspace(&config, &srcs, &[], &std::collections::BTreeMap::new());
    assert!(
        !analysis.violations.iter().any(|v| v.rule == Rule::DetTaint),
        "{:?}",
        analysis.violations
    );
}

#[test]
fn baseline_round_trips_through_render_and_parse() {
    let mut b = Baseline::default();
    b.entries.insert((LIB.into(), "no-panic".into(), "unwrap".into()), 2);
    b.entries.insert(
        ("crates/core/src/spark.rs".into(), "hot-path-alloc".into(), "clone".into()),
        1,
    );
    let rendered = Baseline::render(&b.entries);
    match Baseline::parse(&rendered) {
        Ok(parsed) => assert_eq!(parsed.entries, b.entries),
        Err(e) => panic!("rendered baseline failed to parse: {e}"),
    }
}
