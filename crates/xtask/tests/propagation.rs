//! Interprocedural propagation tests: hot-path designation flowing along
//! call edges, the monotonicity property of `reach`, and the regression
//! guarantee that the propagated hot set covers every function from the
//! retired hand-maintained `HOT_PATH_FUNCTIONS` list.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use xtask::{analyze_root, analyze_workspace, CallGraph, LintConfig, Rule, SymbolTable};

fn workspace_root() -> &'static Path {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().and_then(Path::parent);
    match root {
        Some(r) => {
            assert!(r.join("Cargo.toml").exists(), "workspace root not found at {}", r.display());
            Box::leak(r.to_path_buf().into_boxed_path())
        }
        None => panic!("crates/xtask has no grandparent directory"),
    }
}

// ------------------------------------------------------ end-to-end overlay

#[test]
fn hot_designation_propagates_to_callees_and_fires_alloc_rule() {
    // `extract_into` is a hot root; `helper` is designated only through the
    // call edge, and the alloc rule must fire inside it.
    let srcs = vec![(
        "crates/features/src/extract.rs".to_string(),
        r#"
        pub fn extract_into(out: &mut Vec<f64>, words: &[&str]) {
            helper(out, words);
        }
        fn helper(out: &mut Vec<f64>, words: &[&str]) {
            let owned: Vec<String> = words.iter().map(|w| w.to_string()).collect();
            out.push(owned.len() as f64);
        }
        fn unreached() {
            let s = "cold".to_string();
        }
        "#
        .to_string(),
    )];
    let analysis = analyze_workspace(&LintConfig::default(), &srcs, &[], &BTreeMap::new());
    let hot = &analysis.hot_overlay["crates/features/src/extract.rs"];
    assert!(hot.contains(&"extract_into".to_string()), "{hot:?}");
    assert!(hot.contains(&"helper".to_string()), "propagation missed the callee: {hot:?}");
    assert!(!hot.contains(&"unreached".to_string()), "{hot:?}");
    assert!(
        analysis
            .violations
            .iter()
            .any(|v| v.rule == Rule::HotPathAlloc && v.symbol == "to_string" && v.line == 6),
        "alloc rule did not fire in the propagated callee: {:?}",
        analysis.violations
    );
}

#[test]
fn boundaries_exempt_their_body_and_stop_descent() {
    let mut config = LintConfig::default();
    config.hot_boundaries = &[(
        "crates/features/src/extract.rs",
        "amortized",
        "test fixture: per-batch work",
    )];
    let srcs = vec![(
        "crates/features/src/extract.rs".to_string(),
        r#"
        pub fn extract_into(out: &mut Vec<f64>) { amortized(out); }
        fn amortized(out: &mut Vec<f64>) { deep(out); }
        fn deep(out: &mut Vec<f64>) { out.push(0.0); }
        "#
        .to_string(),
    )];
    let analysis = analyze_workspace(&config, &srcs, &[], &BTreeMap::new());
    let hot = &analysis.hot_overlay["crates/features/src/extract.rs"];
    assert!(hot.contains(&"extract_into".to_string()), "{hot:?}");
    // The boundary's own body is the exemption point — it may allocate at
    // its amortized granularity — and nothing below it is designated.
    assert!(!hot.contains(&"amortized".to_string()), "boundary body designated: {hot:?}");
    assert!(!hot.contains(&"deep".to_string()), "descent through boundary: {hot:?}");
}

// ------------------------------------------------------------ monotonicity

/// Deterministic SplitMix64 stream (the test must not read entropy: the
/// repo's own determinism rules apply to its tooling too).
struct Stream(u64);

impl Stream {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[test]
fn reach_is_monotone_in_the_edge_set() {
    // Hand-rolled property loop (the workspace takes no proptest
    // dependency): over random graph shapes, adding one call edge must
    // never remove a function from the propagated hot set — the guarantee
    // that makes the ratchet safe under refactors that add calls.
    const FILE: &str = "crates/features/src/extract.rs";
    let mut rng = Stream(42);
    let mut tested = 0;
    for _trial in 0..60 {
        let n = 4 + (rng.next() % 10) as usize;
        let mut adj = vec![vec![false; n]; n];
        for row in adj.iter_mut() {
            for cell in row.iter_mut() {
                if rng.next() % 4 == 0 {
                    *cell = true;
                }
            }
        }
        // A candidate edge that is not yet present.
        let extra = (0..50).find_map(|_| {
            let a = (rng.next() % n as u64) as usize;
            let b = (rng.next() % n as u64) as usize;
            (a != b && !adj[a][b]).then_some((a, b))
        });
        let Some((ea, eb)) = extra else { continue };
        let boundary_idx: Vec<usize> = (0..n).filter(|_| rng.next() % 5 == 0).collect();

        let render = |adj: &[Vec<bool>]| {
            let mut s = String::new();
            for (i, row) in adj.iter().enumerate() {
                s.push_str(&format!("pub fn f{i}() {{ "));
                for (j, &edge) in row.iter().enumerate() {
                    if i != j && edge {
                        s.push_str(&format!("f{j}(); "));
                    }
                }
                s.push_str("}\n");
            }
            s
        };
        let hot_names = |adj: &[Vec<bool>]| -> BTreeSet<String> {
            let src = render(adj);
            let mut table = SymbolTable::default();
            let toks = table.add_file(FILE, &src);
            let mut files = BTreeMap::new();
            files.insert(FILE.to_string(), (src, toks));
            let graph = CallGraph::build(&table, &files, &BTreeMap::new());
            let roots: Vec<usize> = table.named("f0").to_vec();
            let boundaries: BTreeSet<usize> = boundary_idx
                .iter()
                .flat_map(|&i| table.named(&format!("f{i}")).to_vec())
                .collect();
            graph
                .reach(&roots, &boundaries)
                .iter()
                .map(|&id| table.fns[id].name.clone())
                .collect()
        };

        let before = hot_names(&adj);
        let mut grown = adj.clone();
        grown[ea][eb] = true;
        let after = hot_names(&grown);
        assert!(
            before.is_subset(&after),
            "adding edge f{ea}->f{eb} shrank the hot set: {before:?} -> {after:?}"
        );
        tested += 1;
    }
    assert!(tested >= 40, "too few effective trials: {tested}");
}

// --------------------------------------------------- hand-list regression

/// The hand-maintained `HOT_PATH_FUNCTIONS` list this analyzer retired,
/// verbatim. Every entry was a real hot-path designation, so the computed
/// set must cover all of them — losing one would silently re-enable
/// allocation in a per-tweet path.
const RETIRED_HAND_LIST: &[(&str, &[&str])] = &[
    ("crates/features/src/extract.rs", &["extract_into"]),
    (
        "crates/features/src/adaptive_bow.rs",
        &[
            "contains",
            "score",
            "swear_and_bow_counts",
            "observe",
            "observe_only",
            "record",
            "snapshot_into",
        ],
    ),
    ("crates/nlp/src/tokenizer.rs", &["tokenize_into", "next"]),
    ("crates/nlp/src/sentiment.rs", &["score_tokens_with", "score_spans", "score_core"]),
    ("crates/nlp/src/pos.rs", &["tag_word", "tag_lower", "count_pos"]),
    ("crates/nlp/src/intern.rs", &["get", "push_lowercase"]),
    ("crates/core/src/spark.rs", &["process_batch"]),
    ("crates/dspe/src/engine.rs", &["execute_with_retries"]),
    ("crates/obs/src/metrics.rs", &["inc", "add", "set", "set_max", "record"]),
    ("crates/obs/src/events.rs", &["push"]),
    ("crates/obs/src/trace.rs", &["begin", "end", "record", "annotate_task", "sample"]),
];

#[test]
fn propagated_hot_set_covers_the_retired_hand_list() {
    let analysis = match analyze_root(&LintConfig::default(), workspace_root()) {
        Ok(a) => a,
        Err(e) => panic!("workspace analysis failed: {e}"),
    };
    let mut missing = Vec::new();
    for &(file, names) in RETIRED_HAND_LIST {
        let hot = analysis.hot_overlay.get(file).cloned().unwrap_or_default();
        for name in names {
            if !hot.iter().any(|n| n == name) {
                missing.push(format!("{file}::{name}"));
            }
        }
    }
    assert!(
        missing.is_empty(),
        "propagation lost retired hand-list designations:\n  {}",
        missing.join("\n  ")
    );
    // The computed set strictly extends the hand list (the point of the
    // analyzer: callees the list never knew about are now covered).
    let hand_count: usize = RETIRED_HAND_LIST.iter().map(|(_, ns)| ns.len()).sum();
    assert!(
        analysis.stats.hot_fns > hand_count,
        "hot set ({}) no larger than the retired hand list ({hand_count})",
        analysis.stats.hot_fns
    );
    // Graph-shape sanity: the workspace is large and well connected.
    assert!(analysis.stats.nodes > 500, "nodes: {}", analysis.stats.nodes);
    assert!(analysis.stats.edges > 1000, "edges: {}", analysis.stats.edges);
    assert!(analysis.stats.task_fns > 0, "task set empty");
}
