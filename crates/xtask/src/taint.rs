//! Determinism taint analysis.
//!
//! The chaos suite's recovery checks and the trace digests compare
//! `deterministic_digest` outputs across runs; those functions must be
//! pure functions of the recorded data. Until this pass, the separation
//! between the wall-clock/RNG world and the digest world in `crates/obs`
//! was enforced only by convention.
//!
//! The model: a function is **clock-tainted** when its body reads a
//! wall-clock or entropy source directly (`Instant::now`,
//! `SpanClock::wall`, `now_us`, `thread_rng`, ...) or when any call-graph
//! edge from it leads to a tainted function. A violation is a designated
//! sink (see `LintConfig::det_sinks`) that is tainted; the diagnostic
//! carries a shortest witness call path so the offending edge is obvious.
//!
//! Seeded generators (`SmallRng::seed_from_u64`, the xorshift/SplitMix64
//! samplers) are deterministic and deliberately *not* sources.

use crate::callgraph::CallGraph;
use crate::config::LintConfig;
use crate::lexer::Tok;
use crate::scan::{ident_at, is_punct, Violation};
use crate::symbols::SymbolTable;
use std::collections::{BTreeMap, BTreeSet};

/// Function ids whose *own body* reads a clock/RNG source, with the
/// source symbol that fired (first one found, for diagnostics).
pub fn direct_sources(
    config: &LintConfig,
    table: &SymbolTable,
    files: &BTreeMap<String, (String, Vec<Tok>)>,
) -> BTreeMap<usize, String> {
    let mut out = BTreeMap::new();
    for (id, f) in table.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let Some((src, toks)) = files.get(&f.file) else { continue };
        let (a, b) = f.body;
        for i in a..=b.min(toks.len().saturating_sub(1)) {
            let Some(word) = ident_at(toks, i, src) else { continue };
            let mut hit: Option<String> = None;
            for &(ty, method) in config.taint_paths {
                if word == ty
                    && is_punct(toks, i + 1, b':')
                    && is_punct(toks, i + 2, b':')
                    && ident_at(toks, i + 3, src) == Some(method)
                {
                    hit = Some(format!("{ty}::{method}"));
                }
            }
            if hit.is_none()
                && config.taint_calls.contains(&word)
                && (is_punct(toks, i + 1, b'(') || is_punct(toks, i.wrapping_sub(1), b'.'))
            {
                hit = Some(word.to_string());
            }
            if let Some(symbol) = hit {
                out.entry(id).or_insert(symbol);
                break;
            }
        }
    }
    out
}

/// Run the pass: every designated sink that can reach a source along call
/// edges produces one `det-taint` violation whose symbol embeds the
/// witness path (`sink <- mid <- source [Instant::now]`).
pub fn det_taint_violations(
    config: &LintConfig,
    table: &SymbolTable,
    graph: &CallGraph,
    files: &BTreeMap<String, (String, Vec<Tok>)>,
) -> Vec<Violation> {
    let sources = direct_sources(config, table, files);
    let seed_ids: BTreeSet<usize> = sources.keys().copied().collect();
    let tainted = graph.reach_rev(&seed_ids);

    let mut out = Vec::new();
    for &(file, names) in config.det_sinks {
        for name in names {
            for &sink in table.named(name) {
                if table.fns[sink].file != file || table.fns[sink].in_test {
                    continue;
                }
                if !tainted.contains(&sink) {
                    continue;
                }
                // `path_to` walks caller→callee, so the path reads
                // `sink <- ... <- source`: each arrow is "is tainted by".
                let symbol = match graph.path_to(sink, &seed_ids) {
                    Some(path) => {
                        let mut s = String::new();
                        for (i, &id) in path.iter().enumerate() {
                            if i > 0 {
                                s.push_str(" <- ");
                            }
                            s.push_str(&table.fns[id].name);
                        }
                        let last = path.last().copied().unwrap_or(sink);
                        if let Some(src_sym) = sources.get(&last) {
                            s.push_str(" [");
                            s.push_str(src_sym);
                            s.push(']');
                        }
                        s
                    }
                    None => table.fns[sink].name.clone(),
                };
                out.push(Violation {
                    rule: crate::config::Rule::DetTaint,
                    symbol,
                    file: table.fns[sink].file.clone(),
                    line: table.fns[sink].line,
                    severity: crate::config::Rule::DetTaint.severity(),
                });
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, &a.symbol).cmp(&(&b.file, b.line, &b.symbol)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str, sinks: &'static [(&'static str, &'static [&'static str])]) -> Vec<Violation> {
        let mut config = LintConfig::default();
        config.det_sinks = sinks;
        let mut table = SymbolTable::default();
        let file = "crates/obs/src/metrics.rs";
        let toks = table.add_file(file, src);
        let mut files = BTreeMap::new();
        files.insert(file.to_string(), (src.to_string(), toks));
        let graph = CallGraph::build(&table, &files, &BTreeMap::new());
        det_taint_violations(&config, &table, &graph, &files)
    }

    const SINKS: &[(&str, &[&str])] = &[("crates/obs/src/metrics.rs", &["deterministic_digest"])];

    #[test]
    fn direct_clock_read_in_sink_is_flagged() {
        let v = analyze(
            "pub fn deterministic_digest() -> u64 { let t = Instant::now(); 0 }",
            SINKS,
        );
        assert_eq!(v.len(), 1);
        assert!(v[0].symbol.contains("Instant::now"), "{}", v[0].symbol);
    }

    #[test]
    fn taint_flows_along_call_edges_with_witness_path() {
        let v = analyze(
            r#"
            fn stamp() -> u64 { clock.now_us() }
            fn helper() -> u64 { stamp() }
            pub fn deterministic_digest() -> u64 { helper() }
            "#,
            SINKS,
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].symbol, "deterministic_digest <- helper <- stamp [now_us]");
    }

    #[test]
    fn clean_sink_and_unrelated_clock_code_pass() {
        let v = analyze(
            r#"
            fn timing_layer() -> u64 { clock.now_us() }
            pub fn deterministic_digest(data: &[u64]) -> u64 {
                data.iter().fold(0u64, |a, b| a.wrapping_mul(31).wrapping_add(*b))
            }
            "#,
            SINKS,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn seeded_rng_is_not_a_source() {
        let v = analyze(
            r#"
            fn sample(seed: u64) -> u64 { let rng = SmallRng::seed_from_u64(seed); rng.next() }
            pub fn deterministic_digest() -> u64 { sample(42) }
            "#,
            SINKS,
        );
        // `next` resolves to no workspace fn here; seed_from_u64 is not a
        // taint source.
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn rng_sources_taint() {
        let v = analyze(
            r#"
            fn jitter() -> u64 { let mut r = thread_rng(); 1 }
            pub fn deterministic_digest() -> u64 { jitter() }
            "#,
            SINKS,
        );
        assert_eq!(v.len(), 1);
        assert!(v[0].symbol.ends_with("[thread_rng]"), "{}", v[0].symbol);
    }
}
