//! Token-stream analysis: test-region marking, function-scope tracking,
//! and the seven invariant rules.
//!
//! The rules operate on the lexed token stream with two per-token context
//! bits computed first:
//!
//! * **test region** — tokens inside an item annotated `#[cfg(test)]` or
//!   `#[test]` (the annotated item's body is skipped by every rule: test
//!   code may unwrap freely);
//! * **hot region** — tokens inside one of the designated hot-path
//!   functions (per-file allowlist in [`crate::config`]), including any
//!   closures nested in them.

use crate::config::{LintConfig, Rule, Severity};
use crate::lexer::{lex, Tok, TokKind};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// The offending symbol (`unwrap`, `Vec::new`, `panic!`, ...). Baseline
    /// entries are keyed by `(file, rule, symbol)`.
    pub symbol: String,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule severity (deny fails the gate, warn only reports).
    pub severity: Severity,
}

impl Violation {
    /// `file:line: rule [symbol]` rendering used by diagnostics.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] `{}` — {}",
            self.file,
            self.line,
            self.rule.name(),
            self.symbol,
            self.rule.message()
        )
    }
}

pub(crate) fn is_punct(toks: &[Tok], i: usize, c: u8) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokKind::Punct(c))
}

pub(crate) fn ident_at<'a>(toks: &[Tok], i: usize, src: &'a str) -> Option<&'a str> {
    toks.get(i).filter(|t| t.kind == TokKind::Ident).map(|t| t.text(src))
}

/// [`matching`] as an `Option`: `None` when the close is missing.
pub(crate) fn maybe_matching(toks: &[Tok], open: usize, open_c: u8, close_c: u8) -> Option<usize> {
    let end = matching(toks, open, open_c, close_c);
    (end < toks.len()).then_some(end)
}

/// Find the matching close token for the open token at `open` (which must
/// be `open_c`), counting only `open_c`/`close_c`. Returns the index of the
/// close token, or `toks.len()` when unbalanced.
pub(crate) fn matching(toks: &[Tok], open: usize, open_c: u8, close_c: u8) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if is_punct(toks, i, open_c) {
            depth += 1;
        } else if is_punct(toks, i, close_c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len()
}

/// Mark every token that belongs to a `#[cfg(test)]`/`#[test]`-gated item.
///
/// `#[cfg(not(test))]` and `#[cfg_attr(...)]` are conservatively treated as
/// *non*-test (the attribute contains `not`/`cfg_attr`, so skipping would
/// hide production code from the linter).
pub(crate) fn mark_test_regions(toks: &[Tok], src: &str) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !(is_punct(toks, i, b'#') && is_punct(toks, i + 1, b'[')) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let close = matching(toks, i + 1, b'[', b']');
        let mut has_test = false;
        let mut negated = false;
        for j in (i + 2)..close {
            match ident_at(toks, j, src) {
                Some("test") => has_test = true,
                Some("not") | Some("cfg_attr") => negated = true,
                _ => {}
            }
        }
        if !(has_test && !negated) {
            i = close + 1;
            continue;
        }
        // Skip any further attributes on the same item, then the item
        // itself: up to the first `;` at bracket depth zero, or the body's
        // balanced `{...}` block. A `}` before either means we ran out of
        // the enclosing scope (e.g. an annotated field) — stop there.
        let mut k = close + 1;
        while is_punct(toks, k, b'#') && is_punct(toks, k + 1, b'[') {
            k = matching(toks, k + 1, b'[', b']') + 1;
        }
        let mut depth = 0i32;
        let item_end = loop {
            let Some(t) = toks.get(k) else { break toks.len() };
            match t.kind {
                TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
                TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
                TokKind::Punct(b';') if depth == 0 => break k,
                TokKind::Punct(b'{') if depth == 0 => break matching(toks, k, b'{', b'}'),
                TokKind::Punct(b'}') if depth == 0 => break k.saturating_sub(1),
                _ => {}
            }
            k += 1;
        };
        for flag in in_test.iter_mut().take((item_end + 1).min(toks.len())).skip(attr_start) {
            *flag = true;
        }
        i = item_end + 1;
    }
    in_test
}

/// Mark every token inside one of this file's designated hot functions
/// (body tokens, including nested closures and nested fns).
fn mark_hot_regions(toks: &[Tok], src: &str, hot_fns: &[&str]) -> Vec<bool> {
    let mut hot = vec![false; toks.len()];
    if hot_fns.is_empty() {
        return hot;
    }
    // Stack of (is_hot, brace_depth_at_open).
    let mut stack: Vec<(bool, i32)> = Vec::new();
    let mut depth = 0i32;
    let mut pending: Option<bool> = None;
    let mut sig_depth = 0i32; // (){}[] nesting inside a pending signature
    let mut i = 0usize;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Ident if toks[i].text(src) == "fn" => {
                if let Some(name) = ident_at(toks, i + 1, src) {
                    pending = Some(hot_fns.contains(&name));
                    sig_depth = 0;
                }
            }
            TokKind::Punct(b'(') | TokKind::Punct(b'[') if pending.is_some() => sig_depth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') if pending.is_some() => sig_depth -= 1,
            TokKind::Punct(b';') if pending.is_some() && sig_depth == 0 => pending = None,
            TokKind::Punct(b'{') => {
                if let Some(is_hot) = pending.take() {
                    stack.push((is_hot, depth));
                }
                depth += 1;
            }
            TokKind::Punct(b'}') => {
                depth -= 1;
                if stack.last().is_some_and(|&(_, d)| d == depth) {
                    stack.pop();
                }
            }
            _ => {}
        }
        hot[i] = stack.iter().any(|&(h, _)| h);
        i += 1;
    }
    hot
}

/// One `unsafe` site found by [`scan_unsafe`], for the report registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// `unsafe fn alloc`, `unsafe impl GlobalAlloc`, `unsafe block`, ...
    pub context: String,
    /// Whether a `// SAFETY:` comment immediately precedes the site.
    pub has_safety: bool,
}

/// Enumerate every `unsafe` site in `src` and flag the ones missing a
/// `// SAFETY:` comment on the contiguous comment block directly above.
///
/// Runs over *raw source lines* for the comment check (the lexer drops
/// comments) and over the token stream for site discovery. Test regions
/// are **not** exempt: the workspace's only unsafe code today lives in a
/// test-support allocator, and unsoundness in tests still aborts CI.
pub fn scan_unsafe(file: &str, src: &str) -> (Vec<UnsafeSite>, Vec<Violation>) {
    let toks = lex(src);
    let lines: Vec<&str> = src.lines().collect();
    let mut sites = Vec::new();
    let mut violations = Vec::new();
    for i in 0..toks.len() {
        if ident_at(&toks, i, src) != Some("unsafe") {
            continue;
        }
        let context = match ident_at(&toks, i + 1, src) {
            Some(kw @ ("fn" | "impl" | "trait")) => match ident_at(&toks, i + 2, src) {
                Some(name) => format!("unsafe {kw} {name}"),
                None => format!("unsafe {kw}"),
            },
            _ => "unsafe block".to_string(),
        };
        // Walk the contiguous `//` comment block above the site's line.
        let mut has_safety = false;
        let mut k = toks[i].line as usize; // lines[] index of the line above
        while k >= 2 {
            let above = lines.get(k - 2).map(|l| l.trim()).unwrap_or("");
            if !above.starts_with("//") {
                break;
            }
            if above.contains("SAFETY:") {
                has_safety = true;
                break;
            }
            k -= 1;
        }
        if !has_safety {
            violations.push(Violation {
                rule: Rule::UnsafeSafety,
                symbol: context.clone(),
                file: file.to_string(),
                line: toks[i].line,
                severity: Rule::UnsafeSafety.severity(),
            });
        }
        sites.push(UnsafeSite { file: file.to_string(), line: toks[i].line, context, has_safety });
    }
    (sites, violations)
}

/// Whether token `i` is a method-call name: `.name(` or `.name::<...>(`.
fn is_method_call(toks: &[Tok], i: usize) -> bool {
    if !is_punct(toks, i.wrapping_sub(1), b'.') {
        return false;
    }
    is_punct(toks, i + 1, b'(')
        || (is_punct(toks, i + 1, b':') && is_punct(toks, i + 2, b':'))
}

/// Whether tokens at `i` spell `First::second` for the given pair.
fn is_path_call(toks: &[Tok], i: usize, src: &str, first: &str, second: &str) -> bool {
    ident_at(toks, i, src) == Some(first)
        && is_punct(toks, i + 1, b':')
        && is_punct(toks, i + 2, b':')
        && ident_at(toks, i + 3, src) == Some(second)
}

/// Run every applicable rule over one file. `file` is the
/// workspace-relative path with forward slashes (used for rule scoping).
pub fn analyze_source(config: &LintConfig, file: &str, src: &str) -> Vec<Violation> {
    let toks = lex(src);
    let in_test = mark_test_regions(&toks, src);
    let hot_fns = config.hot_functions(file);
    let hot = mark_hot_regions(&toks, src, &hot_fns);
    let task_fns = config.task_functions(file);
    let task = mark_hot_regions(&toks, src, &task_fns);

    let no_panic = config.applies(Rule::NoPanic, file);
    let nan_cmp = config.applies(Rule::NanUnsafeCmp, file);
    let hot_alloc = config.applies(Rule::HotPathAlloc, file);
    let sip_hash = config.applies(Rule::SipHash, file);
    let wall_clock = config.applies(Rule::WallClock, file);
    let unwind_boundary = config.applies(Rule::CatchUnwindBoundary, file);
    let trace_prereg = config.applies(Rule::TracePreregistered, file);
    let exec_static = config.applies(Rule::ExecStatic, file);
    let exec_interior = config.applies(Rule::ExecInteriorMut, file);

    let mut out = Vec::new();
    // Token indices whose `unwrap`/`expect` was already reported by the
    // (more specific) nan-unsafe-cmp rule.
    let mut nan_consumed = vec![false; toks.len()];

    let mut push = |rule: Rule, symbol: String, tok: &Tok| {
        out.push(Violation {
            rule,
            symbol,
            file: file.to_string(),
            line: tok.line,
            severity: rule.severity(),
        });
    };

    // Pass 1: nan-unsafe-cmp — `partial_cmp(...)` chained into
    // `.unwrap()`/`.expect(`. Runs first so no-panic can skip the same
    // token instead of double-reporting.
    if nan_cmp {
        for i in 0..toks.len() {
            if in_test[i] || ident_at(&toks, i, src) != Some("partial_cmp") {
                continue;
            }
            if !is_punct(&toks, i + 1, b'(') {
                continue;
            }
            let close = matching(&toks, i + 1, b'(', b')');
            if is_punct(&toks, close + 1, b'.') {
                if let Some(name @ ("unwrap" | "expect")) = ident_at(&toks, close + 2, src) {
                    if is_punct(&toks, close + 3, b'(') {
                        nan_consumed[close + 2] = true;
                        push(
                            Rule::NanUnsafeCmp,
                            format!("partial_cmp().{name}"),
                            &toks[close + 2],
                        );
                    }
                }
            }
        }
    }

    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        let Some(word) = ident_at(&toks, i, src) else { continue };

        if no_panic && !nan_consumed[i] {
            match word {
                "unwrap" | "expect" if is_method_call(&toks, i) => {
                    push(Rule::NoPanic, word.to_string(), &toks[i]);
                }
                "panic" | "todo" | "unreachable" | "unimplemented"
                    if is_punct(&toks, i + 1, b'!') =>
                {
                    push(Rule::NoPanic, format!("{word}!"), &toks[i]);
                }
                _ => {}
            }
        }

        if hot_alloc && hot[i] {
            if config.alloc_methods.contains(&word) && is_method_call(&toks, i) {
                push(Rule::HotPathAlloc, word.to_string(), &toks[i]);
            } else if config.alloc_macros.contains(&word) && is_punct(&toks, i + 1, b'!') {
                push(Rule::HotPathAlloc, format!("{word}!"), &toks[i]);
            } else {
                for &(ty, method) in config.alloc_paths {
                    if is_path_call(&toks, i, src, ty, method) {
                        push(Rule::HotPathAlloc, format!("{ty}::{method}"), &toks[i]);
                    }
                }
            }
        }

        if sip_hash && matches!(word, "HashMap" | "HashSet") {
            push(Rule::SipHash, word.to_string(), &toks[i]);
        }

        if wall_clock
            && (is_path_call(&toks, i, src, "Instant", "now")
                || is_path_call(&toks, i, src, "SystemTime", "now"))
        {
            push(Rule::WallClock, format!("{word}::now"), &toks[i]);
        }

        // Any mention — call, `use` import, or re-export — claims the
        // ability to swallow panics, so all of them are boundary breaches.
        if unwind_boundary && word == "catch_unwind" {
            push(Rule::CatchUnwindBoundary, word.to_string(), &toks[i]);
        }

        // Hot code must emit spans through pre-registered kinds: the
        // dynamically-labelled API copies its label into the tracer.
        if trace_prereg && hot[i] && word == "begin_named" && is_method_call(&toks, i) {
            push(Rule::TracePreregistered, word.to_string(), &toks[i]);
        }

        // exec-static: `static mut`, `thread_local!`, and statics whose
        // type embeds an interior-mut primitive. (`&'static` lexes as a
        // lifetime, so the `static` ident here is always the item keyword.)
        if exec_static {
            if word == "thread_local" && is_punct(&toks, i + 1, b'!') {
                push(Rule::ExecStatic, "thread_local!".to_string(), &toks[i]);
            } else if word == "static" {
                if ident_at(&toks, i + 1, src) == Some("mut") {
                    let name = ident_at(&toks, i + 2, src).unwrap_or("_");
                    push(Rule::ExecStatic, format!("static mut {name}"), &toks[i]);
                } else if let Some(name) = ident_at(&toks, i + 1, src) {
                    if is_punct(&toks, i + 2, b':') && !is_punct(&toks, i + 3, b':') {
                        // Scan the type (between `:` and the `=`/`;` at
                        // bracket depth 0) for interior-mut type names.
                        let mut j = i + 3;
                        let mut depth = 0i32;
                        while let Some(t) = toks.get(j) {
                            match t.kind {
                                TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
                                TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
                                TokKind::Punct(b'=') | TokKind::Punct(b';') if depth == 0 => break,
                                TokKind::Ident => {
                                    let ty = t.text(src);
                                    if config.interior_mut_types.contains(&ty) {
                                        push(
                                            Rule::ExecStatic,
                                            format!("static {name}: {ty}"),
                                            &toks[i],
                                        );
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                    }
                }
            }
        }

        // exec-interior-mut: single-threaded shared-mutability primitives
        // in code a DSPE stage task can reach.
        if exec_interior && task[i] && config.interior_mut_types.contains(&word) {
            push(Rule::ExecInteriorMut, word.to_string(), &toks[i]);
        }
    }
    out.sort_by(|a, b| (a.line, a.rule.name(), a.symbol.as_str()).cmp(&(
        b.line,
        b.rule.name(),
        b.symbol.as_str(),
    )));
    out
}
