//! Workspace symbol table: every `fn` item and impl method, with its file,
//! enclosing impl type, body token range, and test-region flag.
//!
//! This is the foundation the interprocedural passes (call graph, hot-path
//! propagation, determinism taint) stand on. It is built from the same
//! hand-rolled token stream as the lexical rules — no `syn`, no rustc
//! invocation, fully offline — so it is *approximate by design*: names are
//! resolved textually, generics are skipped, and macros are opaque. Every
//! downstream consumer treats ambiguity conservatively (an ambiguous name
//! produces edges to all candidates; see `callgraph`).

use crate::lexer::{lex, Tok, TokKind};
use crate::scan::{ident_at, is_punct, maybe_matching, mark_test_regions};
use std::collections::BTreeMap;

/// One function item or impl method.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// The function's name.
    pub name: String,
    /// The `Self` type name when the fn is an impl method (`impl Foo` or
    /// `impl Trait for Foo` both record `Foo`), `None` for free functions.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body `{ ... }`, braces inclusive. Bodiless
    /// declarations (trait methods) get an empty range.
    pub body: (usize, usize),
    /// Whether the fn sits inside a `#[cfg(test)]`/`#[test]` region.
    pub in_test: bool,
}

/// The symbol table for one analyzed workspace.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// All discovered functions, in (file, token-position) order.
    pub fns: Vec<FnSym>,
    /// Function ids grouped by name (the call graph's resolution index).
    pub by_name: BTreeMap<String, Vec<usize>>,
}

impl SymbolTable {
    /// Ids of every function named `name`.
    pub fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The id of the function at `(file, name)` (first match), if any.
    pub fn lookup(&self, file: &str, name: &str) -> Option<usize> {
        self.named(name).iter().copied().find(|&id| self.fns[id].file == file)
    }

    /// Add every fn item in `src` to the table. Returns the lexed token
    /// stream so callers can reuse it for call extraction.
    pub fn add_file(&mut self, file: &str, src: &str) -> Vec<Tok> {
        let toks = lex(src);
        let in_test = mark_test_regions(&toks, src);
        let impl_types = mark_impl_types(&toks, src);
        let mut i = 0usize;
        while i < toks.len() {
            if ident_at(&toks, i, src) != Some("fn") {
                i += 1;
                continue;
            }
            let Some(name) = ident_at(&toks, i + 1, src) else {
                i += 1;
                continue;
            };
            // Scan the signature for the body `{` (or a `;` for bodiless
            // trait declarations), tracking (), [], <> nesting so `where`
            // bounds and default generic args cannot fool the search.
            let mut j = i + 2;
            let mut depth = 0i32;
            let body = loop {
                let Some(t) = toks.get(j) else { break None };
                match t.kind {
                    TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
                    TokKind::Punct(b')') | TokKind::Punct(b']') => depth -= 1,
                    TokKind::Punct(b';') if depth == 0 => break None,
                    TokKind::Punct(b'{') if depth == 0 => {
                        break maybe_matching(&toks, j, b'{', b'}').map(|end| (j, end));
                    }
                    _ => {}
                }
                j += 1;
            };
            let sym = FnSym {
                file: file.to_string(),
                name: name.to_string(),
                impl_type: impl_types[i].clone(),
                line: toks[i].line,
                body: body.unwrap_or((j.min(toks.len()), j.min(toks.len()))),
                in_test: in_test[i],
            };
            let id = self.fns.len();
            self.by_name.entry(sym.name.clone()).or_default().push(id);
            self.fns.push(sym);
            // Continue scanning *inside* the body too: nested fns become
            // their own symbols (attribution of their tokens to the inner
            // fn happens in call extraction via innermost-wins).
            i += 2;
        }
        toks
    }
}

/// For each token, the name of the enclosing `impl` block's `Self` type
/// (`None` outside impls). `impl Foo`, `impl<T> Foo<T>`, and
/// `impl Trait for Foo` all record `Foo`.
fn mark_impl_types(toks: &[Tok], src: &str) -> Vec<Option<String>> {
    let mut out = vec![None; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if ident_at(toks, i, src) != Some("impl") {
            i += 1;
            continue;
        }
        // Collect idents between `impl` and the block `{`, at angle-bracket
        // depth zero. The Self type is the first path ident after `for`
        // when present, else the first path ident (skipping the leading
        // generic parameter list).
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut first: Option<&str> = None;
        let mut after_for: Option<&str> = None;
        let mut saw_for = false;
        let open = loop {
            let Some(t) = toks.get(j) else { break None };
            match t.kind {
                TokKind::Punct(b'<') => angle += 1,
                TokKind::Punct(b'>') => angle = (angle - 1).max(0),
                TokKind::Punct(b'{') if angle == 0 => break Some(j),
                TokKind::Punct(b';') if angle == 0 => break None, // `impl Trait for X;` never occurs, safety stop
                TokKind::Ident if angle == 0 => {
                    let w = t.text(src);
                    if w == "for" {
                        saw_for = true;
                    } else if w == "where" {
                        // Bounds follow; the Self type is already known.
                    } else if saw_for {
                        // First ident after `for` begins the Self path; for
                        // `a::b::Type` keep updating until a non-path token —
                        // taking the *last* path ident yields the type name.
                        after_for = Some(w);
                        // Walk the rest of this path (`::`-joined idents).
                        let mut k = j + 1;
                        while is_punct(toks, k, b':') && is_punct(toks, k + 1, b':') {
                            if let Some(next) = ident_at(toks, k + 2, src) {
                                after_for = Some(next);
                                k += 3;
                            } else {
                                break;
                            }
                        }
                        j = k;
                        continue;
                    } else if first.is_none() {
                        let mut last = w;
                        let mut k = j + 1;
                        while is_punct(toks, k, b':') && is_punct(toks, k + 1, b':') {
                            if let Some(next) = ident_at(toks, k + 2, src) {
                                last = next;
                                k += 3;
                            } else {
                                break;
                            }
                        }
                        first = Some(last);
                        j = k;
                        continue;
                    }
                }
                _ => {}
            }
            j += 1;
        };
        let Some(open) = open else {
            i = j.max(i + 1);
            continue;
        };
        let close = maybe_matching(toks, open, b'{', b'}').unwrap_or(toks.len() - 1);
        let ty = after_for.or(first).map(str::to_string);
        if let Some(ty) = ty {
            for slot in out.iter_mut().take(close + 1).skip(open) {
                // Nested impls (impl blocks inside fn bodies) win: only
                // fill slots not already claimed by an inner impl... outer
                // fills first in this left-to-right scan, so inner
                // overwrites below.
                *slot = Some(ty.clone());
            }
        }
        i = open + 1; // descend: nested impls re-mark their own range
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(src: &str) -> SymbolTable {
        let mut t = SymbolTable::default();
        t.add_file("crates/x/src/lib.rs", src);
        t
    }

    #[test]
    fn finds_free_fns_and_methods() {
        let t = table(
            r#"
            pub fn free(a: u32) -> u32 { a }
            struct Foo;
            impl Foo {
                pub fn method(&self) -> u32 { free(1) }
            }
            impl Clone for Foo {
                fn clone(&self) -> Foo { Foo }
            }
            "#,
        );
        assert_eq!(t.fns.len(), 3);
        assert_eq!(t.fns[0].name, "free");
        assert_eq!(t.fns[0].impl_type, None);
        assert_eq!(t.fns[1].name, "method");
        assert_eq!(t.fns[1].impl_type.as_deref(), Some("Foo"));
        assert_eq!(t.fns[2].name, "clone");
        assert_eq!(t.fns[2].impl_type.as_deref(), Some("Foo"));
    }

    #[test]
    fn generic_impls_and_paths_resolve_the_self_type() {
        let t = table(
            r#"
            impl<'a, T: Clone> Wrapper<'a, T> {
                fn get(&self) -> &T { &self.0 }
            }
            impl std::fmt::Display for Wrapper<'_, u32> {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
            }
            "#,
        );
        assert_eq!(t.fns[0].impl_type.as_deref(), Some("Wrapper"));
        assert_eq!(t.fns[1].impl_type.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn trait_declarations_are_bodiless() {
        let t = table(
            r#"
            pub trait Model {
                fn observe(&mut self, x: f64);
                fn ready(&self) -> bool { true }
            }
            "#,
        );
        assert_eq!(t.fns.len(), 2);
        let observe = &t.fns[0];
        assert_eq!(observe.body.0, observe.body.1, "declaration has no body");
        let ready = &t.fns[1];
        assert!(ready.body.1 > ready.body.0);
    }

    #[test]
    fn test_region_fns_are_marked() {
        let t = table(
            r#"
            pub fn prod() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn check() { super::prod() }
            }
            "#,
        );
        assert!(!t.fns[0].in_test);
        assert!(t.fns[1].in_test);
    }

    #[test]
    fn nested_fns_are_their_own_symbols() {
        let t = table("fn outer() { fn inner() {} inner() }");
        let names: Vec<&str> = t.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
    }

    #[test]
    fn lookup_by_name_and_file() {
        let mut t = SymbolTable::default();
        t.add_file("crates/a/src/lib.rs", "pub fn f() {}");
        t.add_file("crates/b/src/lib.rs", "pub fn f() {}");
        assert_eq!(t.named("f").len(), 2);
        assert_eq!(t.lookup("crates/b/src/lib.rs", "f"), Some(1));
        assert_eq!(t.lookup("crates/c/src/lib.rs", "f"), None);
    }
}
