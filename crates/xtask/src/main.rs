//! `cargo run -p xtask -- <subcommand>` — the workspace gate CLI.
//!
//! Subcommands:
//!
//! * `lint` — run the analyzer, reconcile against `lint/baseline.toml`,
//!   write `results/LINT_report.json`, exit non-zero on any new violation
//!   or stale baseline entry.
//! * `lint --update-baseline` — rewrite the baseline to match the current
//!   tree (for recording genuinely unpayable debt; shrinking is automatic
//!   because stale entries fail the gate until regenerated).
//! * `bench-gate` — compare `results/BENCH_pipeline.json` /
//!   `BENCH_recovery.json` against the committed `bench/baseline.json`
//!   tolerance band, append to `results/BENCH_trajectory.jsonl`, exit
//!   non-zero on a regression.
//! * `bench-gate --update-baseline` — record the current results as the
//!   new baseline (for intentional perf-profile changes).
//!
//! Flags: `--root <dir>` (default: the workspace containing this crate),
//! `--json <path>` (lint only; default `results/LINT_report.json` under
//! the root), `--quiet` (suppress the summary on success).

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::{config::LintConfig, report, Baseline, BASELINE_PATH, REPORT_PATH};

const USAGE: &str = "usage: cargo run -p xtask -- <lint|bench-gate> [--update-baseline] \
     [--root DIR] [--json PATH] [--quiet] [--explain RULE] [--why FN]";

enum Cmd {
    Lint,
    BenchGate,
}

struct Args {
    cmd: Cmd,
    update_baseline: bool,
    root: PathBuf,
    json: Option<PathBuf>,
    quiet: bool,
    explain: Option<String>,
    why: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return Err(USAGE.into());
    };
    let cmd = match cmd.as_str() {
        "lint" => Cmd::Lint,
        "bench-gate" => Cmd::BenchGate,
        other => return Err(format!("unknown subcommand `{other}` ({USAGE})")),
    };
    let default_root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let mut parsed = Args {
        cmd,
        update_baseline: false,
        root: default_root,
        json: None,
        quiet: false,
        explain: None,
        why: None,
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--update-baseline" => parsed.update_baseline = true,
            "--quiet" => parsed.quiet = true,
            "--root" => {
                parsed.root = PathBuf::from(
                    args.next().ok_or_else(|| "--root needs a directory".to_string())?,
                );
            }
            "--json" => {
                parsed.json =
                    Some(PathBuf::from(args.next().ok_or_else(|| "--json needs a path".to_string())?));
            }
            "--explain" => {
                parsed.explain =
                    Some(args.next().ok_or_else(|| "--explain needs a rule name".to_string())?);
            }
            "--why" => {
                parsed.why = Some(
                    args.next().ok_or_else(|| "--why needs a function name".to_string())?,
                );
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(parsed)
}

/// `lint --explain <rule>`: print the rule's long-form documentation.
fn explain_rule(name: &str) -> Result<bool, String> {
    let Some(rule) = xtask::Rule::from_name(name) else {
        let all: Vec<&str> = xtask::Rule::ALL.iter().map(|r| r.name()).collect();
        return Err(format!("unknown rule `{name}`; rules: {}", all.join(", ")));
    };
    println!("{}\n", rule.name());
    println!("{}", rule.explain());
    Ok(true)
}

/// `lint --why <fn>`: print a root-to-fn witness path for each matching
/// symbol (accepts `name` or a `path-substring::name` filter).
fn why_fn(args: &Args, target: &str) -> Result<bool, String> {
    let config = LintConfig::default();
    let analysis = xtask::analyze_root(&config, &args.root)?;
    let lines = xtask::why_hot(&analysis, target);
    if lines.is_empty() {
        println!("no function named `{target}` in the workspace");
    }
    for line in lines {
        println!("{line}");
    }
    Ok(true)
}

fn run_lint_cmd(args: &Args) -> Result<bool, String> {
    if let Some(rule) = &args.explain {
        return explain_rule(rule);
    }
    if let Some(target) = &args.why {
        return why_fn(args, target);
    }
    let config = LintConfig::default();

    if args.update_baseline {
        let counts = xtask::current_counts(&args.root, &config)?;
        let path = args.root.join(BASELINE_PATH);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        }
        std::fs::write(&path, Baseline::render(&counts))
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        println!(
            "baseline regenerated: {} entries, {} accepted violations -> {}",
            counts.len(),
            counts.values().sum::<usize>(),
            path.display()
        );
    }

    let outcome = xtask::run_lint(&args.root, &config)?;

    let json_path = args.json.clone().unwrap_or_else(|| args.root.join(REPORT_PATH));
    if let Some(dir) = json_path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    }
    std::fs::write(&json_path, report::render(&outcome))
        .map_err(|e| format!("write {}: {e}", json_path.display()))?;

    for w in &outcome.warnings {
        eprintln!("warning: {}", w.render());
    }
    if !outcome.is_clean() {
        eprint!("{}", outcome.render_failures());
        return Ok(false);
    }
    if !args.quiet {
        println!(
            "redhanded-lint: clean ({} files, {} baselined violation(s) remaining; report: {})",
            outcome.files_scanned,
            outcome.baselined.values().sum::<usize>(),
            json_path.display()
        );
    }
    Ok(true)
}

fn run_bench_gate_cmd(args: &Args) -> Result<bool, String> {
    if args.update_baseline {
        println!("{}", xtask::bench_gate::update_baseline(&args.root)?);
        return Ok(true);
    }
    let outcome = xtask::bench_gate::run_bench_gate(&args.root)?;
    if !outcome.is_clean() {
        eprint!("{}", outcome.render());
        eprintln!(
            "bench gate FAILED. If the perf profile changed intentionally, record it with \
             `cargo run -p xtask -- bench-gate --update-baseline`."
        );
        return Ok(false);
    }
    if !args.quiet {
        print!("{}", outcome.render());
        println!(
            "bench-gate: clean (history: {} line {})",
            xtask::bench_gate::TRAJECTORY_PATH,
            outcome.trajectory_seq
        );
    }
    Ok(true)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    match args.cmd {
        Cmd::Lint => run_lint_cmd(&args),
        Cmd::BenchGate => run_bench_gate_cmd(&args),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
