//! `cargo run -p xtask -- bench-gate` — the performance-regression gate.
//!
//! The paper's sustained-throughput claim (Section VI-C) is only as good
//! as the repo's ability to notice when a PR erodes it. The gate compares
//! the freshly measured `results/BENCH_pipeline.json` (written by
//! `perf_smoke`) and `results/BENCH_recovery.json` (written by
//! `perf_recovery`) against the committed `bench/baseline.json`:
//!
//! * throughput may not drop below a fraction of the baseline (generous,
//!   because wall-clock numbers vary across machines and CI load);
//! * cumulative F1 must stay within a tight band of the baseline when the
//!   run used the baseline's tweet count (the pipeline is deterministic,
//!   so any drift is a behaviour change, not noise);
//! * the recovery bench must report checkpointing within its overhead
//!   budget.
//!
//! Every run appends one line to `results/BENCH_trajectory.jsonl`, the
//! perf history the ROADMAP asks for. Lines carry a monotonically
//! increasing `seq` rather than a timestamp: this crate is subject to its
//! own `wall-clock` lint rule, and sequence numbers keep the history
//! deterministic and mergeable.
//!
//! `--update-baseline` rewrites `bench/baseline.json` from the current
//! results (for intentional perf-profile changes; the diff shows up in
//! review like any other ratchet move).

use std::fmt::Write as _;
use std::path::Path;

/// Committed baseline, relative to the workspace root.
pub const BENCH_BASELINE_PATH: &str = "bench/baseline.json";

/// Fresh pipeline measurement (written by `perf_smoke`).
pub const PIPELINE_RESULTS_PATH: &str = "results/BENCH_pipeline.json";

/// Fresh recovery measurement (written by `perf_recovery`).
pub const RECOVERY_RESULTS_PATH: &str = "results/BENCH_recovery.json";

/// Append-only perf history.
pub const TRAJECTORY_PATH: &str = "results/BENCH_trajectory.jsonl";

// ---------------------------------------------------------------------------
// Minimal JSON reader
// ---------------------------------------------------------------------------

/// A parsed JSON value. The bench files are machine-written, so this
/// hand-rolled reader covers exactly the JSON grammar (objects, arrays,
/// strings with escapes, numbers, booleans, null) without pulling a
/// dependency into the lint/gate toolchain.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn boolean(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Dotted-path numeric lookup: `v.num_at("pipeline.tweets_per_second")`.
    pub fn num_at(&self, path: &str) -> Option<f64> {
        let mut v = self;
        for key in path.split('.') {
            v = v.get(key)?;
        }
        v.num()
    }
}

/// Parse a JSON document. Errors carry the byte offset for diagnostics.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes.get(*pos).is_some_and(|b| b.is_ascii_whitespace()) {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", want as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while bytes
        .get(*pos)
        .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| format!("invalid number at byte {start}"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?} at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a valid &str).
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest)
                    .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                if let Some(c) = s.chars().next() {
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect_byte(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect_byte(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect_byte(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

// ---------------------------------------------------------------------------
// The gate
// ---------------------------------------------------------------------------

/// The facts the gate reads from the fresh bench results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchFacts {
    /// `tweets` from `BENCH_pipeline.json`.
    pub pipeline_tweets: f64,
    /// `tweets_per_second` from `BENCH_pipeline.json`.
    pub pipeline_tps: f64,
    /// `cumulative_f1` from `BENCH_pipeline.json`.
    pub pipeline_f1: f64,
    /// `baseline_tweets_per_second` from `BENCH_recovery.json`.
    pub recovery_tps: f64,
    /// `within_budget` from `BENCH_recovery.json`.
    pub recovery_within_budget: bool,
}

/// One tolerance-band comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// Stable check name.
    pub name: &'static str,
    /// Whether the check passed (skipped checks are passes with a note).
    pub passed: bool,
    /// Human-readable numbers behind the verdict.
    pub detail: String,
}

/// The gate's verdict: the checks plus the trajectory entry appended.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// All comparisons, in fixed order.
    pub checks: Vec<Check>,
    /// `seq` of the trajectory line this run appended (0 = not appended).
    pub trajectory_seq: u64,
}

impl GateOutcome {
    /// Whether every check passed.
    pub fn is_clean(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// One line per check, `ok`/`FAIL` prefixed.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.checks {
            let verdict = if c.passed { "ok  " } else { "FAIL" };
            let _ = writeln!(out, "{verdict} {:<22} {}", c.name, c.detail);
        }
        out
    }
}

fn field(doc: &Json, path: &str, file: &str) -> Result<f64, String> {
    doc.num_at(path).ok_or_else(|| format!("{file}: missing numeric field `{path}`"))
}

/// Read the fresh bench results under `root`.
pub fn read_facts(root: &Path) -> Result<BenchFacts, String> {
    let read = |rel: &str, producer: &str| -> Result<Json, String> {
        let path = root.join(rel);
        let text = std::fs::read_to_string(&path).map_err(|e| {
            format!("cannot read {rel}: {e} (run `cargo run --release -p redhanded-bench --bin {producer}` first)")
        })?;
        parse_json(&text).map_err(|e| format!("{rel}: {e}"))
    };
    let pipeline = read(PIPELINE_RESULTS_PATH, "perf_smoke")?;
    let recovery = read(RECOVERY_RESULTS_PATH, "perf_recovery")?;
    Ok(BenchFacts {
        pipeline_tweets: field(&pipeline, "tweets", PIPELINE_RESULTS_PATH)?,
        pipeline_tps: field(&pipeline, "tweets_per_second", PIPELINE_RESULTS_PATH)?,
        pipeline_f1: field(&pipeline, "cumulative_f1", PIPELINE_RESULTS_PATH)?,
        recovery_tps: field(&recovery, "baseline_tweets_per_second", RECOVERY_RESULTS_PATH)?,
        recovery_within_budget: recovery
            .get("within_budget")
            .and_then(Json::boolean)
            .ok_or_else(|| format!("{RECOVERY_RESULTS_PATH}: missing `within_budget`"))?,
    })
}

/// Render a baseline document recording `facts` (used by
/// `--update-baseline`; the tolerance block carries the default band).
pub fn render_baseline(facts: &BenchFacts) -> String {
    format!(
        "{{\n  \"pipeline\": {{\n    \"tweets\": {},\n    \"tweets_per_second\": {:.1},\n    \
         \"cumulative_f1\": {:.4}\n  }},\n  \"recovery\": {{\n    \"tweets_per_second\": {:.1}\n  }},\n  \
         \"tolerance\": {{\n    \"min_throughput_fraction\": 0.5,\n    \"max_f1_delta\": 0.005\n  }}\n}}\n",
        facts.pipeline_tweets, facts.pipeline_tps, facts.pipeline_f1, facts.recovery_tps
    )
}

/// Compare `facts` against the parsed baseline. Pure (no IO) so tests can
/// drive the tolerance bands directly.
pub fn evaluate(facts: &BenchFacts, baseline: &Json) -> Result<Vec<Check>, String> {
    let base = BENCH_BASELINE_PATH;
    let base_tweets = field(baseline, "pipeline.tweets", base)?;
    let base_tps = field(baseline, "pipeline.tweets_per_second", base)?;
    let base_f1 = field(baseline, "pipeline.cumulative_f1", base)?;
    let base_rec_tps = field(baseline, "recovery.tweets_per_second", base)?;
    let min_fraction = field(baseline, "tolerance.min_throughput_fraction", base)?;
    let max_f1_delta = field(baseline, "tolerance.max_f1_delta", base)?;

    let mut checks = Vec::new();

    let floor = base_tps * min_fraction;
    checks.push(Check {
        name: "pipeline-throughput",
        passed: facts.pipeline_tps >= floor,
        detail: format!(
            "{:.0} tweets/s vs baseline {:.0} (floor {:.0} at fraction {min_fraction})",
            facts.pipeline_tps, base_tps, floor
        ),
    });

    // F1 is deterministic for a fixed tweet count, so the band is tight —
    // but a `--scale` run measures a different stream, so only compare
    // like with like.
    if facts.pipeline_tweets == base_tweets {
        let delta = (facts.pipeline_f1 - base_f1).abs();
        checks.push(Check {
            name: "pipeline-f1",
            passed: delta <= max_f1_delta,
            detail: format!(
                "F1 {:.4} vs baseline {:.4} (|Δ| {:.4} ≤ {max_f1_delta})",
                facts.pipeline_f1, base_f1, delta
            ),
        });
    } else {
        checks.push(Check {
            name: "pipeline-f1",
            passed: true,
            detail: format!(
                "skipped: run measured {} tweets, baseline {} (re-run at baseline scale to compare)",
                facts.pipeline_tweets, base_tweets
            ),
        });
    }

    let rec_floor = base_rec_tps * min_fraction;
    checks.push(Check {
        name: "recovery-throughput",
        passed: facts.recovery_tps >= rec_floor,
        detail: format!(
            "{:.0} tweets/s vs baseline {:.0} (floor {:.0})",
            facts.recovery_tps, base_rec_tps, rec_floor
        ),
    });

    checks.push(Check {
        name: "recovery-budget",
        passed: facts.recovery_within_budget,
        detail: format!("within_budget = {}", facts.recovery_within_budget),
    });

    Ok(checks)
}

/// Append one history line and return its `seq` (1-based; prior lines are
/// counted, not parsed, so a corrupt line never wedges the gate).
pub fn append_trajectory(root: &Path, facts: &BenchFacts, clean: bool) -> Result<u64, String> {
    let path = root.join(TRAJECTORY_PATH);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    }
    let existing = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(format!("read {}: {e}", path.display())),
    };
    let seq = existing.lines().filter(|l| !l.trim().is_empty()).count() as u64 + 1;
    let line = format!(
        "{{\"seq\": {seq}, \"pipeline_tweets\": {}, \"pipeline_tweets_per_second\": {:.1}, \
         \"cumulative_f1\": {:.4}, \"recovery_tweets_per_second\": {:.1}, \
         \"recovery_within_budget\": {}, \"gate\": \"{}\"}}\n",
        facts.pipeline_tweets,
        facts.pipeline_tps,
        facts.pipeline_f1,
        facts.recovery_tps,
        facts.recovery_within_budget,
        if clean { "pass" } else { "fail" }
    );
    std::fs::write(&path, existing + &line).map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(seq)
}

/// Run the full gate under `root`: read results, compare against the
/// committed baseline, append the trajectory line.
pub fn run_bench_gate(root: &Path) -> Result<GateOutcome, String> {
    let facts = read_facts(root)?;
    let baseline_path = root.join(BENCH_BASELINE_PATH);
    let text = std::fs::read_to_string(&baseline_path).map_err(|e| {
        format!(
            "cannot read {BENCH_BASELINE_PATH}: {e} (record one with \
             `cargo run -p xtask -- bench-gate --update-baseline`)"
        )
    })?;
    let baseline = parse_json(&text).map_err(|e| format!("{BENCH_BASELINE_PATH}: {e}"))?;
    let checks = evaluate(&facts, &baseline)?;
    let clean = checks.iter().all(|c| c.passed);
    let trajectory_seq = append_trajectory(root, &facts, clean)?;
    Ok(GateOutcome { checks, trajectory_seq })
}

/// Rewrite the committed baseline from the current results.
pub fn update_baseline(root: &Path) -> Result<String, String> {
    let facts = read_facts(root)?;
    let path = root.join(BENCH_BASELINE_PATH);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    }
    std::fs::write(&path, render_baseline(&facts))
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(format!(
        "bench baseline recorded: {:.0} tweets/s (F1 {:.4}), recovery {:.0} tweets/s -> {}",
        facts.pipeline_tps,
        facts.pipeline_f1,
        facts.recovery_tps,
        path.display()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts() -> BenchFacts {
        BenchFacts {
            pipeline_tweets: 50_000.0,
            pipeline_tps: 80_000.0,
            pipeline_f1: 0.9078,
            recovery_tps: 79_000.0,
            recovery_within_budget: true,
        }
    }

    fn baseline() -> Json {
        parse_json(&render_baseline(&facts())).unwrap()
    }

    #[test]
    fn parser_handles_the_bench_document_shapes() {
        let doc = parse_json(
            r#"{ "a": 1.5, "b": [true, null, "x\nA"], "c": { "d": -2e3 } }"#,
        )
        .unwrap();
        assert_eq!(doc.num_at("a"), Some(1.5));
        assert_eq!(doc.num_at("c.d"), Some(-2000.0));
        match doc.get("b") {
            Some(Json::Arr(items)) => {
                assert_eq!(items[0], Json::Bool(true));
                assert_eq!(items[1], Json::Null);
                assert_eq!(items[2], Json::Str("x\nA".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_json("{ 1 }").is_err());
        assert!(parse_json(r#"{"a": 1} trailing"#).is_err());
    }

    #[test]
    fn identical_results_pass_every_check() {
        let checks = evaluate(&facts(), &baseline()).unwrap();
        assert_eq!(checks.len(), 4);
        assert!(checks.iter().all(|c| c.passed), "{checks:#?}");
    }

    #[test]
    fn throughput_floor_is_generous_but_real() {
        let mut f = facts();
        f.pipeline_tps = 41_000.0; // above 0.5 × 80k
        assert!(evaluate(&f, &baseline()).unwrap().iter().all(|c| c.passed));
        f.pipeline_tps = 39_000.0; // below the floor
        let checks = evaluate(&f, &baseline()).unwrap();
        let tp = checks.iter().find(|c| c.name == "pipeline-throughput").unwrap();
        assert!(!tp.passed, "{}", tp.detail);
    }

    #[test]
    fn f1_band_is_tight_and_scale_aware() {
        let mut f = facts();
        f.pipeline_f1 = 0.92; // |Δ| > 0.005 at the baseline scale
        let checks = evaluate(&f, &baseline()).unwrap();
        assert!(!checks.iter().find(|c| c.name == "pipeline-f1").unwrap().passed);

        // A different tweet count skips the F1 comparison entirely.
        f.pipeline_tweets = 5_000.0;
        let checks = evaluate(&f, &baseline()).unwrap();
        let f1 = checks.iter().find(|c| c.name == "pipeline-f1").unwrap();
        assert!(f1.passed);
        assert!(f1.detail.contains("skipped"));
    }

    #[test]
    fn recovery_budget_violation_fails_the_gate() {
        let mut f = facts();
        f.recovery_within_budget = false;
        let checks = evaluate(&f, &baseline()).unwrap();
        assert!(!checks.iter().find(|c| c.name == "recovery-budget").unwrap().passed);
        let outcome = GateOutcome { checks, trajectory_seq: 1 };
        assert!(!outcome.is_clean());
        assert!(outcome.render().contains("FAIL recovery-budget"));
    }

    #[test]
    fn trajectory_appends_with_monotonic_seq() {
        let dir = std::env::temp_dir().join(format!(
            "redhanded-bench-gate-{}-trajectory",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(append_trajectory(&dir, &facts(), true).unwrap(), 1);
        assert_eq!(append_trajectory(&dir, &facts(), false).unwrap(), 2);
        let text = std::fs::read_to_string(dir.join(TRAJECTORY_PATH)).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"seq\": 1") && lines[0].contains("\"gate\": \"pass\""));
        assert!(lines[1].contains("\"seq\": 2") && lines[1].contains("\"gate\": \"fail\""));
        // Every line is itself valid JSON.
        for line in lines {
            assert!(parse_json(line).is_ok(), "{line}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
