//! Rule definitions and scoping policy.
//!
//! Scoping encodes the operational model of the pipeline (DESIGN.md
//! "Machine-checked invariants"):
//!
//! * library code must not panic — but benchmark harnesses and CLI entry
//!   points (`crates/bench`, any `src/bin/`) may, and test code always may;
//! * `partial_cmp(..).unwrap()` is banned *everywhere* non-test (a NaN
//!   feature value must degrade a score, never abort the stream);
//! * the per-tweet hot path (a per-file allowlist of functions) must not
//!   allocate;
//! * hot crates must not touch SipHash tables (`FxHashMap`/`FxHashSet`
//!   from `redhanded-nlp` instead);
//! * wall-clock reads live only in the DSPE timing layer and benches, so
//!   everything else stays deterministic and replayable;
//! * `catch_unwind` lives only at the DSPE task boundary
//!   (`crates/dspe/src/fault.rs`), so a panic is either an injected fault
//!   handled by the retry machinery or a real abort — never swallowed
//!   elsewhere;
//! * span emission in hot-path functions must go through pre-registered
//!   `SpanKind`s (`Tracer::begin`), never the label-allocating
//!   `begin_named`.

/// The seven invariant rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `unwrap`/`expect`/`panic!`/`todo!`/`unreachable!`/`unimplemented!`
    /// in non-test library code.
    NoPanic,
    /// `partial_cmp(..).unwrap()`/`.expect(..)` — NaN-unsafe comparison.
    NanUnsafeCmp,
    /// Allocating calls inside a designated hot-path function.
    HotPathAlloc,
    /// `std::collections::HashMap`/`HashSet` in a hot crate.
    SipHash,
    /// `Instant::now`/`SystemTime::now` outside the DSPE timing layer.
    WallClock,
    /// `catch_unwind` outside the DSPE fault boundary.
    CatchUnwindBoundary,
    /// Dynamically-labelled span emission (`begin_named`) inside a
    /// designated hot-path function: span labels allocate, so hot code
    /// must emit spans through pre-registered `SpanKind`s only.
    TracePreregistered,
}

/// What a rule's violations do to the exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Non-baselined violations fail the lint gate.
    Deny,
    /// Reported but never fails the gate.
    Warn,
}

impl Rule {
    /// All rules, in report order.
    pub const ALL: [Rule; 7] = [
        Rule::NoPanic,
        Rule::NanUnsafeCmp,
        Rule::HotPathAlloc,
        Rule::SipHash,
        Rule::WallClock,
        Rule::CatchUnwindBoundary,
        Rule::TracePreregistered,
    ];

    /// Stable kebab-case name (used in diagnostics, the baseline file, and
    /// the JSON report).
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::NanUnsafeCmp => "nan-unsafe-cmp",
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::SipHash => "sip-hash",
            Rule::WallClock => "wall-clock",
            Rule::CatchUnwindBoundary => "catch-unwind-boundary",
            Rule::TracePreregistered => "trace-preregistered",
        }
    }

    /// Parse a rule from its stable name.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }

    /// One-line explanation appended to diagnostics.
    pub fn message(self) -> &'static str {
        match self {
            Rule::NoPanic => {
                "panicking call in library code: a 24/7 stream must degrade, not abort \
                 (return a typed `redhanded_types::Result` instead)"
            }
            Rule::NanUnsafeCmp => {
                "NaN-unsafe comparison: use `f64::total_cmp` (or handle NaN explicitly) \
                 so a NaN feature value cannot panic the pipeline"
            }
            Rule::HotPathAlloc => {
                "allocation in a designated per-tweet hot function: reuse scratch \
                 buffers (see `ExtractScratch`) instead"
            }
            Rule::SipHash => {
                "SipHash table in a hot crate: use `redhanded_nlp::{FxHashMap, FxHashSet}`"
            }
            Rule::WallClock => {
                "wall-clock read outside the DSPE timing layer breaks deterministic replay"
            }
            Rule::CatchUnwindBoundary => {
                "`catch_unwind` outside the DSPE fault boundary: tasks may only unwind \
                 into `dspe::fault::call_guarded`, which converts the panic into a \
                 retryable task failure"
            }
            Rule::TracePreregistered => {
                "dynamically-labelled span in a hot function: `begin_named` copies its \
                 label into the tracer (allocates); use `Tracer::begin` with a \
                 pre-registered `SpanKind` instead"
            }
        }
    }

    /// The rule's severity.
    pub fn severity(self) -> Severity {
        Severity::Deny
    }
}

/// Scoping + token tables for one lint run. [`LintConfig::default`] is the
/// production policy; tests build custom configs to exercise the engine.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Path substrings exempt from `no-panic` (bench harness, CLI bins).
    pub no_panic_exempt: &'static [&'static str],
    /// Crates whose code must use FxHash tables.
    pub sip_hash_crates: &'static [&'static str],
    /// Path substrings exempt from `sip-hash` (the FxHash shim itself,
    /// CLI flag parsing).
    pub sip_hash_exempt: &'static [&'static str],
    /// Path substrings exempt from `wall-clock` (DSPE timing, benches).
    pub wall_clock_exempt: &'static [&'static str],
    /// Path substrings exempt from `catch-unwind-boundary` (the fault
    /// boundary itself).
    pub catch_unwind_exempt: &'static [&'static str],
    /// Per-file designated hot-path functions for `hot-path-alloc`.
    pub hot_path_functions: &'static [(&'static str, &'static [&'static str])],
    /// Method names that allocate (flagged as `.name(` calls in hot code).
    pub alloc_methods: &'static [&'static str],
    /// `Type::method` pairs that allocate.
    pub alloc_paths: &'static [(&'static str, &'static str)],
    /// Macros that allocate (`format!`, `vec!`).
    pub alloc_macros: &'static [&'static str],
}

/// The designated per-tweet hot path, as established by PR 1: tokenizer →
/// preprocessing → POS/sentiment → interner/BoW → `extract_into`, plus the
/// DSPE map task that drives it per partition.
const HOT_PATH_FUNCTIONS: &[(&str, &[&str])] = &[
    ("crates/features/src/extract.rs", &["extract_into"]),
    (
        "crates/features/src/adaptive_bow.rs",
        &[
            "contains",
            "score",
            "swear_and_bow_counts",
            "observe",
            "observe_only",
            "record",
            "snapshot_into",
        ],
    ),
    ("crates/nlp/src/tokenizer.rs", &["tokenize_into", "next"]),
    ("crates/nlp/src/sentiment.rs", &["score_tokens_with", "score_spans", "score_core"]),
    ("crates/nlp/src/pos.rs", &["tag_word", "tag_lower", "count_pos"]),
    ("crates/nlp/src/intern.rs", &["get", "push_lowercase"]),
    ("crates/core/src/spark.rs", &["process_batch"]),
    ("crates/dspe/src/engine.rs", &["execute_with_retries"]),
    // Observability recording: pre-registered metrics, ring-buffer events,
    // span emission (pre-allocated span buffer, pre-registered kinds).
    ("crates/obs/src/metrics.rs", &["inc", "add", "set", "set_max", "record"]),
    ("crates/obs/src/events.rs", &["push"]),
    ("crates/obs/src/trace.rs", &["begin", "end", "record", "annotate_task", "sample"]),
];

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            no_panic_exempt: &["crates/bench/", "/src/bin/"],
            sip_hash_crates: &["nlp", "features", "streamml", "dspe", "core", "obs"],
            sip_hash_exempt: &["crates/nlp/src/fxhash.rs", "/src/bin/"],
            wall_clock_exempt: &[
                "crates/bench/",
                "crates/dspe/src/engine.rs",
                "crates/dspe/src/executor.rs",
                "crates/obs/src/time.rs",
                "/src/bin/",
            ],
            catch_unwind_exempt: &["crates/dspe/src/fault.rs"],
            hot_path_functions: HOT_PATH_FUNCTIONS,
            alloc_methods: &[
                "to_string",
                "to_owned",
                "to_vec",
                "to_lowercase",
                "to_uppercase",
                "collect",
                "clone",
            ],
            alloc_paths: &[
                ("Vec", "new"),
                ("Vec", "with_capacity"),
                ("Box", "new"),
                ("String", "new"),
                ("String", "from"),
                ("String", "with_capacity"),
            ],
            alloc_macros: &["format", "vec"],
        }
    }
}

impl LintConfig {
    /// The crate name a `crates/<name>/...` path belongs to.
    fn crate_of(file: &str) -> &str {
        file.strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or("")
    }

    /// Whether `rule` applies at all to `file` (test regions are excluded
    /// separately, token by token).
    pub fn applies(&self, rule: Rule, file: &str) -> bool {
        match rule {
            Rule::NoPanic => !self.no_panic_exempt.iter().any(|e| file.contains(e)),
            Rule::NanUnsafeCmp => true,
            Rule::HotPathAlloc => !self.hot_functions(file).is_empty(),
            Rule::SipHash => {
                self.sip_hash_crates.contains(&Self::crate_of(file))
                    && !self.sip_hash_exempt.iter().any(|e| file.contains(e))
            }
            Rule::WallClock => !self.wall_clock_exempt.iter().any(|e| file.contains(e)),
            Rule::CatchUnwindBoundary => {
                !self.catch_unwind_exempt.iter().any(|e| file.contains(e))
            }
            Rule::TracePreregistered => !self.hot_functions(file).is_empty(),
        }
    }

    /// The designated hot functions for `file` (empty for most files).
    pub fn hot_functions(&self, file: &str) -> Vec<&'static str> {
        self.hot_path_functions
            .iter()
            .filter(|(f, _)| *f == file)
            .flat_map(|(_, fns)| fns.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_round_trip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
        }
        assert_eq!(Rule::from_name("nonsense"), None);
    }

    #[test]
    fn scoping_matches_policy() {
        let c = LintConfig::default();
        assert!(c.applies(Rule::NoPanic, "crates/streamml/src/arf.rs"));
        assert!(!c.applies(Rule::NoPanic, "crates/bench/src/lib.rs"));
        assert!(!c.applies(Rule::NoPanic, "crates/core/src/bin/redhanded.rs"));
        assert!(c.applies(Rule::SipHash, "crates/core/src/alert.rs"));
        assert!(!c.applies(Rule::SipHash, "crates/nlp/src/fxhash.rs"));
        assert!(!c.applies(Rule::SipHash, "crates/batchml/src/cv.rs"));
        assert!(c.applies(Rule::WallClock, "crates/core/src/deploy.rs"));
        assert!(!c.applies(Rule::WallClock, "crates/dspe/src/engine.rs"));
        assert!(
            !c.applies(Rule::WallClock, "crates/obs/src/time.rs"),
            "SpanClock is the obs crate's sole wall-clock touchpoint"
        );
        assert!(c.applies(Rule::WallClock, "crates/obs/src/metrics.rs"));
        assert!(c.applies(Rule::SipHash, "crates/obs/src/metrics.rs"));
        assert!(c.applies(Rule::HotPathAlloc, "crates/features/src/extract.rs"));
        assert!(c.applies(Rule::HotPathAlloc, "crates/dspe/src/engine.rs"));
        assert!(c.applies(Rule::HotPathAlloc, "crates/obs/src/metrics.rs"));
        assert!(c.applies(Rule::HotPathAlloc, "crates/obs/src/events.rs"));
        assert!(c.applies(Rule::HotPathAlloc, "crates/obs/src/trace.rs"));
        assert!(!c.applies(Rule::HotPathAlloc, "crates/features/src/stats.rs"));
        assert!(c.applies(Rule::TracePreregistered, "crates/core/src/spark.rs"));
        assert!(c.applies(Rule::TracePreregistered, "crates/dspe/src/engine.rs"));
        assert!(
            !c.applies(Rule::TracePreregistered, "crates/core/src/deploy.rs"),
            "cold code may open custom-labelled spans"
        );
        assert!(c.applies(Rule::CatchUnwindBoundary, "crates/dspe/src/executor.rs"));
        assert!(c.applies(Rule::CatchUnwindBoundary, "crates/core/src/spark.rs"));
        assert!(!c.applies(Rule::CatchUnwindBoundary, "crates/dspe/src/fault.rs"));
    }
}
