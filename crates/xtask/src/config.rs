//! Rule definitions and scoping policy.
//!
//! Scoping encodes the operational model of the pipeline (DESIGN.md
//! "Machine-checked invariants"):
//!
//! * library code must not panic — but benchmark harnesses and CLI entry
//!   points (`crates/bench`, any `src/bin/`) may, and test code always may;
//! * `partial_cmp(..).unwrap()` is banned *everywhere* non-test (a NaN
//!   feature value must degrade a score, never abort the stream);
//! * the per-tweet hot path must not allocate — since lint v2 the hot set
//!   is **computed**: a small list of designated roots ([`HOT_ROOTS`]) is
//!   closed under call-graph reachability, so a hot function growing a
//!   helper automatically drags the helper into scope;
//! * hot crates must not touch SipHash tables (`FxHashMap`/`FxHashSet`
//!   from `redhanded-nlp` instead);
//! * wall-clock reads live only in the DSPE timing layer and benches, so
//!   everything else stays deterministic and replayable;
//! * `catch_unwind` lives only at the DSPE task boundary
//!   (`crates/dspe/src/fault.rs`), so a panic is either an injected fault
//!   handled by the retry machinery or a real abort — never swallowed
//!   elsewhere;
//! * span emission in hot-path functions must go through pre-registered
//!   `SpanKind`s (`Tracer::begin`), never the label-allocating
//!   `begin_named`;
//! * code reachable from a DSPE stage task ([`TASK_ROOTS`]) must be ready
//!   for the real multi-core executor (ROADMAP item 1): no mutable or
//!   lazily-initialized non-`Sync` statics, no `RefCell`/`Cell`/`Rc`
//!   interior mutability, and every `unsafe` block carries a `// SAFETY:`
//!   comment;
//! * wall-clock and RNG reads must not flow along call edges into the
//!   deterministic digest functions ([`DET_SINKS`]) that feed chaos parity
//!   checks and trace digests.

use std::collections::BTreeMap;

/// The eleven invariant rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `unwrap`/`expect`/`panic!`/`todo!`/`unreachable!`/`unimplemented!`
    /// in non-test library code.
    NoPanic,
    /// `partial_cmp(..).unwrap()`/`.expect(..)` — NaN-unsafe comparison.
    NanUnsafeCmp,
    /// Allocating calls inside a hot-path function (root-designated or
    /// reachable from one).
    HotPathAlloc,
    /// `std::collections::HashMap`/`HashSet` in a hot crate.
    SipHash,
    /// `Instant::now`/`SystemTime::now` outside the DSPE timing layer.
    WallClock,
    /// `catch_unwind` outside the DSPE fault boundary.
    CatchUnwindBoundary,
    /// Dynamically-labelled span emission (`begin_named`) inside a
    /// hot-path function: span labels allocate, so hot code must emit
    /// spans through pre-registered `SpanKind`s only.
    TracePreregistered,
    /// `static mut`, `thread_local!`, or a static holding an interior-mut
    /// type: none of these are safe to share across executor workers.
    ExecStatic,
    /// `RefCell`/`Cell`/`Rc`/`UnsafeCell`/`OnceCell` in a function
    /// reachable from a DSPE stage task.
    ExecInteriorMut,
    /// An `unsafe` site without a `// SAFETY:` comment.
    UnsafeSafety,
    /// A wall-clock or RNG source reachable (via call edges) from a
    /// deterministic digest function.
    DetTaint,
}

/// What a rule's violations do to the exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Non-baselined violations fail the lint gate.
    Deny,
    /// Reported but never fails the gate.
    Warn,
}

impl Rule {
    /// All rules, in report order.
    pub const ALL: [Rule; 11] = [
        Rule::NoPanic,
        Rule::NanUnsafeCmp,
        Rule::HotPathAlloc,
        Rule::SipHash,
        Rule::WallClock,
        Rule::CatchUnwindBoundary,
        Rule::TracePreregistered,
        Rule::ExecStatic,
        Rule::ExecInteriorMut,
        Rule::UnsafeSafety,
        Rule::DetTaint,
    ];

    /// Stable kebab-case name (used in diagnostics, the baseline file, and
    /// the JSON report).
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::NanUnsafeCmp => "nan-unsafe-cmp",
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::SipHash => "sip-hash",
            Rule::WallClock => "wall-clock",
            Rule::CatchUnwindBoundary => "catch-unwind-boundary",
            Rule::TracePreregistered => "trace-preregistered",
            Rule::ExecStatic => "exec-static",
            Rule::ExecInteriorMut => "exec-interior-mut",
            Rule::UnsafeSafety => "unsafe-safety",
            Rule::DetTaint => "det-taint",
        }
    }

    /// Parse a rule from its stable name.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }

    /// One-line explanation appended to diagnostics.
    pub fn message(self) -> &'static str {
        match self {
            Rule::NoPanic => {
                "panicking call in library code: a 24/7 stream must degrade, not abort \
                 (return a typed `redhanded_types::Result` instead)"
            }
            Rule::NanUnsafeCmp => {
                "NaN-unsafe comparison: use `f64::total_cmp` (or handle NaN explicitly) \
                 so a NaN feature value cannot panic the pipeline"
            }
            Rule::HotPathAlloc => {
                "allocation in a per-tweet hot function (root-designated or reachable \
                 from one): reuse scratch buffers (see `ExtractScratch`) instead"
            }
            Rule::SipHash => {
                "SipHash table in a hot crate: use `redhanded_nlp::{FxHashMap, FxHashSet}`"
            }
            Rule::WallClock => {
                "wall-clock read outside the DSPE timing layer breaks deterministic replay"
            }
            Rule::CatchUnwindBoundary => {
                "`catch_unwind` outside the DSPE fault boundary: tasks may only unwind \
                 into `dspe::fault::call_guarded`, which converts the panic into a \
                 retryable task failure"
            }
            Rule::TracePreregistered => {
                "dynamically-labelled span in a hot function: `begin_named` copies its \
                 label into the tracer (allocates); use `Tracer::begin` with a \
                 pre-registered `SpanKind` instead"
            }
            Rule::ExecStatic => {
                "mutable or interior-mut static: not shareable across executor worker \
                 threads; use `OnceLock` for lazy globals or pass state through the task"
            }
            Rule::ExecInteriorMut => {
                "single-threaded interior mutability in task-reachable code: the real \
                 executor runs tasks on worker threads, so use `&mut` plumbing or \
                 `Sync` primitives instead"
            }
            Rule::UnsafeSafety => {
                "`unsafe` site without a `// SAFETY:` comment: every unsafe block must \
                 state the invariant that makes it sound"
            }
            Rule::DetTaint => {
                "wall-clock/RNG source flows into a deterministic digest: the chaos \
                 parity checks and trace digests must be pure functions of the data"
            }
        }
    }

    /// A paragraph-length explanation for `lint --explain <rule>`: what
    /// the rule checks, why the invariant matters for the paper's
    /// real-time claims, and how to fix a violation.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::NoPanic => {
                "Flags `unwrap`, `expect`, `panic!`, `todo!`, `unreachable!`, and \
                 `unimplemented!` in non-test library code. The pipeline's headline \
                 claim is sustained 24/7 operation; a panic on one malformed tweet is \
                 an outage. Return `redhanded_types::Result` and let the DSPE retry \
                 machinery handle the failure. Bench harnesses and `src/bin/` CLIs are \
                 exempt."
            }
            Rule::NanUnsafeCmp => {
                "Flags `partial_cmp(..).unwrap()` / `.expect(..)` chains anywhere in \
                 non-test code. Feature extraction produces `f64`s; a NaN must degrade \
                 a score, never abort the stream. Use `f64::total_cmp` or handle the \
                 `None` explicitly."
            }
            Rule::HotPathAlloc => {
                "Flags allocating calls (`Vec::new`, `collect`, `clone`, `format!`, \
                 ...) inside the per-tweet hot path. Since lint v2 the hot set is \
                 computed: designated roots (`extract_into`, the observability \
                 recorders, the DSPE task bodies) are closed under conservative \
                 call-graph reachability, minus named amortization boundaries such as \
                 the classifier's `predict_proba`. Fix by reusing scratch buffers; see \
                 `ExtractScratch`."
            }
            Rule::SipHash => {
                "Flags `std::collections::HashMap`/`HashSet` in the hot crates (nlp, \
                 features, streamml, dspe, core, obs). SipHash costs ~2x FxHash on \
                 short token keys; use `redhanded_nlp::{FxHashMap, FxHashSet}`."
            }
            Rule::WallClock => {
                "Flags `Instant::now`/`SystemTime::now` outside the DSPE timing layer \
                 (`dspe::engine`, `dspe::executor`, `obs::time`) and benches. \
                 Deterministic replay — the recovery property the chaos suite checks — \
                 requires that library code never branches on wall time. Route timing \
                 through `obs::SpanClock`."
            }
            Rule::CatchUnwindBoundary => {
                "Flags any mention of `catch_unwind` outside `dspe::fault`. Panics \
                 must surface at exactly one boundary, where they become retryable \
                 task failures with bounded retries; a second catch site would \
                 silently swallow faults the chaos suite needs to observe."
            }
            Rule::TracePreregistered => {
                "Flags `begin_named` span emission inside hot-path functions. \
                 `begin_named` copies its label into the tracer (allocates); hot code \
                 must use `Tracer::begin` with a `SpanKind` pre-registered at startup."
            }
            Rule::ExecStatic => {
                "Flags `static mut`, `thread_local!`, and statics holding interior-mut \
                 types (`RefCell`, `Cell`, `Rc`, `UnsafeCell`, `OnceCell`). ROADMAP \
                 item 1 moves DSPE tasks onto real OS threads; any such global is \
                 either a data race or a per-thread value that breaks partition \
                 determinism. Lazy globals must use `OnceLock` (Sync, init-once); \
                 mutable state must be owned by the task."
            }
            Rule::ExecInteriorMut => {
                "Flags `RefCell`/`Cell`/`Rc`/`UnsafeCell`/`OnceCell` tokens inside \
                 functions reachable from a DSPE stage task (computed from the call \
                 graph, roots = the task bodies). These are single-threaded \
                 primitives; under the real executor a task must own its state \
                 (`&mut`) or use `Sync` primitives. The repo is clean today — this \
                 rule keeps it that way."
            }
            Rule::UnsafeSafety => {
                "Maintains a registry of every `unsafe` site in the workspace \
                 (including test code, where the only current sites live) and requires \
                 a `// SAFETY:` comment on the line(s) immediately above each. The \
                 registry is enumerated in results/LINT_report.json so a reviewer can \
                 audit the full unsafe surface at a glance."
            }
            Rule::DetTaint => {
                "Taint analysis over the call graph: a function is clock-tainted if \
                 its body reads a wall-clock or RNG source (`Instant::now`, \
                 `SpanClock::wall`, `now_us`, `thread_rng`, `from_entropy`, ...) or \
                 calls a tainted function. The designated deterministic sinks — the \
                 `deterministic_digest` functions in `obs` that feed chaos parity and \
                 trace digests — must not be tainted. Seeded generators \
                 (`seed_from_u64`, the xorshift samplers) are deterministic and not \
                 sources. Diagnostics carry a witness call path."
            }
        }
    }

    /// The rule's severity.
    pub fn severity(self) -> Severity {
        Severity::Deny
    }
}

/// Scoping + token tables for one lint run. [`LintConfig::default`] is the
/// production policy; tests build custom configs to exercise the engine.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Path substrings exempt from `no-panic` (bench harness, CLI bins).
    pub no_panic_exempt: &'static [&'static str],
    /// Crates whose code must use FxHash tables.
    pub sip_hash_crates: &'static [&'static str],
    /// Path substrings exempt from `sip-hash` (the FxHash shim itself,
    /// CLI flag parsing).
    pub sip_hash_exempt: &'static [&'static str],
    /// Path substrings exempt from `wall-clock` (DSPE timing, benches).
    pub wall_clock_exempt: &'static [&'static str],
    /// Path substrings exempt from `catch-unwind-boundary` (the fault
    /// boundary itself).
    pub catch_unwind_exempt: &'static [&'static str],
    /// Root designations for the hot path: reachability from these closes
    /// the hot set. Keys are workspace-relative files, values fn names.
    pub hot_roots: &'static [(&'static str, &'static [&'static str])],
    /// `(file, fn)` designations hot-path propagation never descends
    /// *into*: documented amortization boundaries whose cost is accepted
    /// by API contract (e.g. `predict_proba` returns an owned posterior).
    /// Each entry carries its justification for the report.
    pub hot_boundaries: &'static [(&'static str, &'static str, &'static str)],
    /// Root designations for exec-ready: the DSPE stage-task bodies.
    /// Everything reachable is "task-reachable" (no boundaries).
    pub task_roots: &'static [(&'static str, &'static [&'static str])],
    /// Deterministic sinks for the taint pass: these fns must never be
    /// clock/RNG-tainted.
    pub det_sinks: &'static [(&'static str, &'static [&'static str])],
    /// `Type::method` path calls that read a clock or entropy source.
    pub taint_paths: &'static [(&'static str, &'static str)],
    /// Bare call names that read a clock or entropy source.
    pub taint_calls: &'static [&'static str],
    /// Type names whose appearance in task-reachable code (or in a
    /// static's type) violates exec-ready. `OnceLock` is deliberately
    /// absent: it is `Sync` and the sanctioned lazy-global primitive.
    pub interior_mut_types: &'static [&'static str],
    /// Method names that allocate (flagged as `.name(` calls in hot code).
    pub alloc_methods: &'static [&'static str],
    /// `Type::method` pairs that allocate.
    pub alloc_paths: &'static [(&'static str, &'static str)],
    /// Macros that allocate (`format!`, `vec!`).
    pub alloc_macros: &'static [&'static str],
    /// The *computed* hot set, per file → fn names. Defaults to the roots
    /// alone; `analyze_workspace` replaces it with the reachability
    /// closure before the per-file rule pass runs.
    pub hot_overlay: BTreeMap<String, Vec<String>>,
    /// The computed task-reachable set, per file → fn names. Same
    /// lifecycle as `hot_overlay`.
    pub task_overlay: BTreeMap<String, Vec<String>>,
}

/// Hot-path roots: the per-tweet entry point, the DSPE task bodies that
/// drive it, and the observability recorders that run inside the span of
/// every task. Everything else hot is *computed* by reachability.
///
/// `Tokenizer::next` is a root (not just reachable) because `for`-loop
/// iteration desugars to `Iterator::next` calls the lexer cannot see.
const HOT_ROOTS: &[(&str, &[&str])] = &[
    ("crates/features/src/extract.rs", &["extract_into"]),
    ("crates/core/src/spark.rs", &["process_batch"]),
    ("crates/dspe/src/engine.rs", &["execute_with_retries"]),
    ("crates/nlp/src/tokenizer.rs", &["next"]),
    // Public per-tweet entry points not reached from the roots above (the
    // retired hand list named them; callers outside the workspace exist).
    ("crates/features/src/adaptive_bow.rs", &["score", "snapshot_into"]),
    ("crates/nlp/src/sentiment.rs", &["score_tokens_with"]),
    // Observability recording: pre-registered metrics, ring-buffer events,
    // span emission (pre-allocated span buffer, pre-registered kinds).
    ("crates/obs/src/metrics.rs", &["inc", "add", "set", "set_max", "record"]),
    ("crates/obs/src/events.rs", &["push"]),
    ("crates/obs/src/trace.rs", &["begin", "end", "record", "annotate_task", "sample"]),
];

/// Amortization boundaries: hot-path propagation stops at (does not
/// descend into) these `(file, fn)` designations, with the justification
/// recorded alongside. A boundary's *call site* in hot code is still
/// checked; only the boundary's own body (and its callees) leaves scope.
const HOT_BOUNDARIES: &[(&str, &str, &str)] = &[
    // --- DSPE: per-batch / per-stage orchestration -----------------------
    // `process_batch` and `execute_with_retries` themselves stay hot (their
    // bodies are alloc-free); the orchestration they call allocates once
    // per stage or per batch, amortized over every tweet in the batch.
    ("crates/dspe/src/engine.rs", "map", "lazy RDD construction: builds the stage graph, not per-record work"),
    ("crates/dspe/src/engine.rs", "filter", "lazy RDD construction: builds the stage graph, not per-record work"),
    ("crates/dspe/src/engine.rs", "map_partitions", "lazy RDD construction: builds the stage graph, not per-record work"),
    ("crates/dspe/src/engine.rs", "parallelize", "per-batch input distribution; allocates partition buffers once per batch"),
    ("crates/dspe/src/engine.rs", "collect", "per-batch result materialization; allocates once per batch"),
    ("crates/dspe/src/engine.rs", "tree_reduce", "per-batch reduction; partial buffers allocated once per batch"),
    ("crates/dspe/src/engine.rs", "run_stage", "per-stage task orchestration; allocation amortized over the batch"),
    ("crates/dspe/src/engine.rs", "broadcast", "per-batch model broadcast; one buffer per batch"),
    ("crates/dspe/src/executor.rs", "run_selected", "per-batch task dispatch; result buffers allocated once per batch"),
    ("crates/dspe/src/operator.rs", "map", "operator-chain construction at stage setup, not per-record work"),
    ("crates/dspe/src/operator.rs", "filter", "operator-chain construction at stage setup, not per-record work"),
    ("crates/dspe/src/operator.rs", "flatten_options", "operator-chain construction at stage setup, not per-record work"),
    ("crates/dspe/src/checkpoint.rs", "seqs", "recovery-path checkpoint decode; runs on failure recovery, not steady state"),
    ("crates/dspe/src/schedule.rs", "stage_makespan", "scheduler cost model, evaluated once per stage"),
    // --- streamml: model management at batch/drift boundaries ------------
    ("crates/streamml/src/arf.rs", "fork", "background-learner construction at warning events, rare by design"),
    ("crates/streamml/src/arf.rs", "finalize", "deferred structural updates once per member per batch"),
    ("crates/streamml/src/arf.rs", "finalize_batch", "deferred structural updates once per batch"),
    ("crates/streamml/src/arf.rs", "clone_box", "deep model clone, construction/merge time only"),
    ("crates/streamml/src/arf.rs", "local_copy", "per-task local model construction, once per task per batch"),
    ("crates/streamml/src/arf.rs", "merge_locals", "per-batch merge of task-local models"),
    ("crates/streamml/src/arf.rs", "predict_proba", "returns an owned posterior by Classifier API contract (one small Vec per call)"),
    ("crates/streamml/src/bagging.rs", "clone", "explicit deep clone, construction time only"),
    ("crates/streamml/src/bagging.rs", "clone_box", "deep model clone, construction/merge time only"),
    ("crates/streamml/src/bagging.rs", "local_copy", "per-task local model construction, once per task per batch"),
    ("crates/streamml/src/bagging.rs", "predict_proba", "returns an owned posterior by Classifier API contract (one small Vec per call)"),
    ("crates/streamml/src/hoeffding.rs", "new", "model construction, setup or drift-replacement time"),
    ("crates/streamml/src/hoeffding.rs", "with_counts", "leaf promotion at split time, amortized over the grace period"),
    ("crates/streamml/src/hoeffding.rs", "validate", "config validation at construction time"),
    ("crates/streamml/src/hoeffding.rs", "fork", "subtree clone at split/background-creation time"),
    ("crates/streamml/src/hoeffding.rs", "merge", "per-batch merge of task-local trees"),
    ("crates/streamml/src/hoeffding.rs", "attempt_splits", "split attempt, amortized over grace-period instances"),
    ("crates/streamml/src/hoeffding.rs", "clone_box", "deep model clone, construction/merge time only"),
    ("crates/streamml/src/hoeffding.rs", "local_copy", "per-task local model construction, once per task per batch"),
    ("crates/streamml/src/hoeffding.rs", "predict_proba", "returns an owned posterior by Classifier API contract (one small Vec per call)"),
    ("crates/streamml/src/hoeffding.rs", "majority_proba", "posterior constructed by value at prediction/split time (API contract)"),
    ("crates/streamml/src/hoeffding.rs", "naive_bayes_proba", "posterior constructed by value at prediction/split time (API contract)"),
    ("crates/streamml/src/nb.rs", "new", "model construction, setup time"),
    ("crates/streamml/src/nb.rs", "clone_box", "deep model clone, construction/merge time only"),
    ("crates/streamml/src/nb.rs", "local_copy", "per-task local model construction, once per task per batch"),
    ("crates/streamml/src/nb.rs", "predict_proba", "returns an owned posterior by Classifier API contract (one small Vec per call)"),
    ("crates/streamml/src/slr.rs", "validate", "config validation at construction time"),
    ("crates/streamml/src/slr.rs", "clone_box", "deep model clone, construction/merge time only"),
    ("crates/streamml/src/slr.rs", "merge_locals", "per-batch merge of task-local models"),
    ("crates/streamml/src/slr.rs", "predict_proba", "returns an owned posterior by Classifier API contract (one small Vec per call)"),
    ("crates/streamml/src/slr.rs", "softmax", "per-class score vector built by value; same small-Vec cost as the bounded predict path"),
    ("crates/streamml/src/adwin.rs", "new", "detector construction at setup/drift events"),
    ("crates/streamml/src/drift.rs", "build", "detector construction at setup/drift events"),
    ("crates/streamml/src/drift.rs", "clone_box", "detector clone at construction time"),
    ("crates/streamml/src/eval.rs", "new", "evaluator construction, setup time"),
    ("crates/streamml/src/gaussian.rs", "new", "estimator construction at leaf-promotion time"),
    ("crates/streamml/src/gaussian.rs", "merge", "per-batch merge of partition summaries"),
    ("crates/streamml/src/gaussian.rs", "best_split", "split search, amortized over grace-period instances"),
    ("crates/streamml/src/gaussian.rs", "project_split", "split search, amortized over grace-period instances"),
    // --- batchml: offline API reached only via method-name ambiguity -----
    ("crates/batchml/src/forest.rs", "predict_proba", "offline batch API; an edge exists only through method-name ambiguity with streamml"),
    ("crates/batchml/src/logistic.rs", "predict_proba", "offline batch API; an edge exists only through method-name ambiguity with streamml"),
    ("crates/batchml/src/tree.rs", "predict_proba", "offline batch API; an edge exists only through method-name ambiguity with streamml"),
    // --- features / nlp ---------------------------------------------------
    ("crates/features/src/adaptive_bow.rs", "fork", "vocabulary fork at window-maintenance boundaries, amortized"),
    ("crates/features/src/extract.rs", "instance_into", "builds the owned per-instance feature vector the Instance API requires"),
    ("crates/features/src/extract.rs", "labeled_instance_into", "builds the owned per-instance feature vector the Instance API requires"),
    ("crates/features/src/normalize.rs", "new", "scaler construction, once per batch"),
    ("crates/features/src/stats.rs", "merge", "per-batch merge of partition summaries"),
    ("crates/nlp/src/lexicons/mod.rs", "sentiment_map", "OnceLock lazy init; steady state is a cached read"),
    ("crates/nlp/src/lexicons/mod.rs", "booster_map", "OnceLock lazy init; steady state is a cached read"),
];

/// Stage-task roots for exec-ready: the closures the engine hands to the
/// executor run these bodies, so everything reachable from them executes
/// on a worker thread once ROADMAP item 1 lands.
const TASK_ROOTS: &[(&str, &[&str])] = &[
    ("crates/core/src/spark.rs", &["process_batch"]),
    ("crates/dspe/src/engine.rs", &["execute_with_retries"]),
    ("crates/dspe/src/fault.rs", &["call_guarded"]),
];

/// The deterministic sinks: digest functions feeding chaos parity checks
/// and trace digests. Convention until now; machine-checked from this PR.
const DET_SINKS: &[(&str, &[&str])] = &[
    ("crates/obs/src/metrics.rs", &["deterministic_digest"]),
    ("crates/obs/src/events.rs", &["deterministic_digest"]),
    ("crates/obs/src/trace.rs", &["deterministic_digest"]),
];

impl Default for LintConfig {
    fn default() -> Self {
        let as_overlay = |roots: &'static [(&'static str, &'static [&'static str])]| {
            roots
                .iter()
                .map(|&(f, fns)| (f.to_string(), fns.iter().map(|s| s.to_string()).collect()))
                .collect::<BTreeMap<String, Vec<String>>>()
        };
        LintConfig {
            no_panic_exempt: &["crates/bench/", "/src/bin/"],
            sip_hash_crates: &["nlp", "features", "streamml", "dspe", "core", "obs"],
            sip_hash_exempt: &["crates/nlp/src/fxhash.rs", "/src/bin/"],
            wall_clock_exempt: &[
                "crates/bench/",
                "crates/dspe/src/engine.rs",
                "crates/dspe/src/executor.rs",
                "crates/obs/src/time.rs",
                "/src/bin/",
            ],
            catch_unwind_exempt: &["crates/dspe/src/fault.rs"],
            hot_roots: HOT_ROOTS,
            hot_boundaries: HOT_BOUNDARIES,
            task_roots: TASK_ROOTS,
            det_sinks: DET_SINKS,
            taint_paths: &[
                ("Instant", "now"),
                ("SystemTime", "now"),
                ("SpanClock", "wall"),
            ],
            taint_calls: &["now_us", "thread_rng", "from_entropy", "getrandom"],
            interior_mut_types: &["RefCell", "Cell", "Rc", "UnsafeCell", "OnceCell"],
            alloc_methods: &[
                "to_string",
                "to_owned",
                "to_vec",
                "to_lowercase",
                "to_uppercase",
                "collect",
                "clone",
            ],
            alloc_paths: &[
                ("Vec", "new"),
                ("Vec", "with_capacity"),
                ("Box", "new"),
                ("String", "new"),
                ("String", "from"),
                ("String", "with_capacity"),
            ],
            alloc_macros: &["format", "vec"],
            hot_overlay: as_overlay(HOT_ROOTS),
            task_overlay: as_overlay(TASK_ROOTS),
        }
    }
}

impl LintConfig {
    /// The crate name a `crates/<name>/...` path belongs to.
    fn crate_of(file: &str) -> &str {
        file.strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or("")
    }

    /// Whether `rule` applies at all to `file` (test regions are excluded
    /// separately, token by token). `UnsafeSafety` and `DetTaint` are
    /// workspace passes, not per-file token rules, and return `false`
    /// here; they run in `analyze_workspace`.
    pub fn applies(&self, rule: Rule, file: &str) -> bool {
        match rule {
            Rule::NoPanic => !self.no_panic_exempt.iter().any(|e| file.contains(e)),
            Rule::NanUnsafeCmp => true,
            Rule::HotPathAlloc => !self.hot_functions(file).is_empty(),
            Rule::SipHash => {
                self.sip_hash_crates.contains(&Self::crate_of(file))
                    && !self.sip_hash_exempt.iter().any(|e| file.contains(e))
            }
            Rule::WallClock => !self.wall_clock_exempt.iter().any(|e| file.contains(e)),
            Rule::CatchUnwindBoundary => {
                !self.catch_unwind_exempt.iter().any(|e| file.contains(e))
            }
            Rule::TracePreregistered => !self.hot_functions(file).is_empty(),
            Rule::ExecStatic => true,
            Rule::ExecInteriorMut => !self.task_functions(file).is_empty(),
            Rule::UnsafeSafety | Rule::DetTaint => false,
        }
    }

    /// The hot functions for `file` from the computed overlay (the root
    /// designations alone until `analyze_workspace` widens it).
    pub fn hot_functions(&self, file: &str) -> Vec<&str> {
        self.hot_overlay
            .get(file)
            .map(|fns| fns.iter().map(String::as_str).collect())
            .unwrap_or_default()
    }

    /// The task-reachable functions for `file` (same overlay mechanics).
    pub fn task_functions(&self, file: &str) -> Vec<&str> {
        self.task_overlay
            .get(file)
            .map(|fns| fns.iter().map(String::as_str).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_round_trip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
            assert!(!rule.explain().is_empty());
        }
        assert_eq!(Rule::from_name("nonsense"), None);
    }

    #[test]
    fn scoping_matches_policy() {
        let c = LintConfig::default();
        assert!(c.applies(Rule::NoPanic, "crates/streamml/src/arf.rs"));
        assert!(!c.applies(Rule::NoPanic, "crates/bench/src/lib.rs"));
        assert!(!c.applies(Rule::NoPanic, "crates/core/src/bin/redhanded.rs"));
        assert!(c.applies(Rule::SipHash, "crates/core/src/alert.rs"));
        assert!(!c.applies(Rule::SipHash, "crates/nlp/src/fxhash.rs"));
        assert!(!c.applies(Rule::SipHash, "crates/batchml/src/cv.rs"));
        assert!(c.applies(Rule::WallClock, "crates/core/src/deploy.rs"));
        assert!(!c.applies(Rule::WallClock, "crates/dspe/src/engine.rs"));
        assert!(
            !c.applies(Rule::WallClock, "crates/obs/src/time.rs"),
            "SpanClock is the obs crate's sole wall-clock touchpoint"
        );
        assert!(c.applies(Rule::WallClock, "crates/obs/src/metrics.rs"));
        assert!(c.applies(Rule::SipHash, "crates/obs/src/metrics.rs"));
        assert!(c.applies(Rule::HotPathAlloc, "crates/features/src/extract.rs"));
        assert!(c.applies(Rule::HotPathAlloc, "crates/dspe/src/engine.rs"));
        assert!(c.applies(Rule::HotPathAlloc, "crates/obs/src/metrics.rs"));
        assert!(c.applies(Rule::HotPathAlloc, "crates/obs/src/events.rs"));
        assert!(c.applies(Rule::HotPathAlloc, "crates/obs/src/trace.rs"));
        assert!(!c.applies(Rule::HotPathAlloc, "crates/features/src/stats.rs"));
        assert!(c.applies(Rule::TracePreregistered, "crates/core/src/spark.rs"));
        assert!(c.applies(Rule::TracePreregistered, "crates/dspe/src/engine.rs"));
        assert!(
            !c.applies(Rule::TracePreregistered, "crates/core/src/deploy.rs"),
            "cold code may open custom-labelled spans"
        );
        assert!(c.applies(Rule::CatchUnwindBoundary, "crates/dspe/src/executor.rs"));
        assert!(c.applies(Rule::CatchUnwindBoundary, "crates/core/src/spark.rs"));
        assert!(!c.applies(Rule::CatchUnwindBoundary, "crates/dspe/src/fault.rs"));
        assert!(c.applies(Rule::ExecStatic, "crates/nlp/src/pos.rs"));
        assert!(c.applies(Rule::ExecInteriorMut, "crates/core/src/spark.rs"));
        assert!(
            !c.applies(Rule::ExecInteriorMut, "crates/core/src/deploy.rs"),
            "deploy driver code is not task-reachable by default overlay"
        );
        assert!(
            !c.applies(Rule::UnsafeSafety, "crates/obs/src/trace.rs"),
            "unsafe-safety is a workspace pass, not a per-file token rule"
        );
        assert!(!c.applies(Rule::DetTaint, "crates/obs/src/trace.rs"));
    }

    #[test]
    fn overlay_defaults_to_roots_and_widens() {
        let mut c = LintConfig::default();
        assert_eq!(c.hot_functions("crates/features/src/extract.rs"), ["extract_into"]);
        assert!(c.hot_functions("crates/nlp/src/pos.rs").is_empty());
        c.hot_overlay
            .entry("crates/nlp/src/pos.rs".to_string())
            .or_default()
            .push("tag_word".to_string());
        assert_eq!(c.hot_functions("crates/nlp/src/pos.rs"), ["tag_word"]);
        assert!(c.applies(Rule::HotPathAlloc, "crates/nlp/src/pos.rs"));
    }
}
