//! `redhanded-lint` — in-repo static analysis for the pipeline's
//! operational invariants.
//!
//! The paper's headline claim is *sustained* real-time operation: 24/7
//! classification at Firehose rates. In that regime a single `unwrap()` on
//! a NaN score or a stray allocation in the per-tweet path is an outage,
//! not a bug report. PR 1 established the hot-path invariants (zero
//! allocation in `extract_into`/`observe`, FxHash everywhere, no
//! wall-clock reads in deterministic code); this crate turns them into
//! machine-checked rules that gate every future PR.
//!
//! Run as `cargo run -p xtask -- lint`; the fixed tier-1 command
//! (`cargo test -q`) enforces the same gate through `tests/lint_gate.rs`,
//! which calls [`run_lint`] in-process.

pub mod baseline;
pub mod bench_gate;
pub mod config;
pub mod lexer;
pub mod report;
pub mod scan;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

pub use baseline::Baseline;
pub use config::{LintConfig, Rule, Severity};
pub use scan::{analyze_source, Violation};

/// Where the committed baseline lives, relative to the workspace root.
pub const BASELINE_PATH: &str = "lint/baseline.toml";

/// Where the machine-readable report is written, relative to the root.
pub const REPORT_PATH: &str = "results/LINT_report.json";

/// A baseline entry that no longer matches reality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleEntry {
    /// The entry's `(file, rule, symbol)` key.
    pub key: baseline::Key,
    /// Count recorded in the baseline.
    pub recorded: usize,
    /// Violations actually found (strictly less than `recorded`).
    pub actual: usize,
}

/// The result of one lint run over the workspace.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Deny-severity violations not covered by the baseline. Non-empty
    /// fails the gate.
    pub new_violations: Vec<Violation>,
    /// Warn-severity violations not covered by the baseline (reported,
    /// never fatal).
    pub warnings: Vec<Violation>,
    /// Baseline entries whose debt has shrunk — the baseline must be
    /// regenerated (the ratchet only turns one way). Non-empty fails.
    pub stale_entries: Vec<StaleEntry>,
    /// Violations suppressed by the baseline, grouped per key.
    pub baselined: BTreeMap<baseline::Key, usize>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintOutcome {
    /// Whether the gate passes.
    pub fn is_clean(&self) -> bool {
        self.new_violations.is_empty() && self.stale_entries.is_empty()
    }

    /// Human-readable diagnostics for everything that fails the gate.
    pub fn render_failures(&self) -> String {
        let mut out = String::new();
        for v in &self.new_violations {
            let _ = writeln!(out, "error: {}", v.render());
        }
        for s in &self.stale_entries {
            let (file, rule, symbol) = &s.key;
            let _ = writeln!(
                out,
                "stale baseline entry: {file} / {rule} / `{symbol}`: recorded {}, found {} — \
                 debt was paid down; regenerate with `cargo run -p xtask -- lint --update-baseline`",
                s.recorded, s.actual
            );
        }
        if !self.new_violations.is_empty() {
            let _ = writeln!(
                out,
                "{} new violation(s). Fix them (preferred), or — only for debt that \
                 genuinely cannot be paid now — record them with \
                 `cargo run -p xtask -- lint --update-baseline`.",
                self.new_violations.len()
            );
        }
        out
    }
}

/// Collect every `crates/*/src/**/*.rs` file under `root`, sorted, as
/// `(workspace-relative path with forward slashes, absolute path)`.
fn collect_sources(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            walk(&src, &mut files)?;
        }
    }
    let mut out: Vec<(String, PathBuf)> = files
        .into_iter()
        .filter_map(|abs| {
            let rel = abs.strip_prefix(root).ok()?;
            let rel = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            Some((rel, abs))
        })
        .collect();
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Run every rule over the workspace at `root` and reconcile against the
/// committed baseline. Pure analysis: writes nothing (the CLI layers
/// report/baseline writing on top), so the test gate can call it from
/// parallel test processes.
pub fn run_lint(root: &Path, config: &LintConfig) -> Result<LintOutcome, String> {
    let sources = collect_sources(root)
        .map_err(|e| format!("cannot walk {}/crates: {e}", root.display()))?;
    if sources.is_empty() {
        return Err(format!("no sources found under {}/crates/*/src", root.display()));
    }

    let mut all: Vec<Violation> = Vec::new();
    for (rel, abs) in &sources {
        let src = std::fs::read_to_string(abs)
            .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        all.extend(analyze_source(config, rel, &src));
    }

    let baseline_file = root.join(BASELINE_PATH);
    let baseline = if baseline_file.exists() {
        let text = std::fs::read_to_string(&baseline_file)
            .map_err(|e| format!("cannot read {}: {e}", baseline_file.display()))?;
        Baseline::parse(&text).map_err(|e| e.to_string())?
    } else {
        Baseline::default()
    };

    Ok(reconcile(all, &baseline, sources.len()))
}

/// Group violations by `(file, rule, symbol)` and apply the baseline
/// ratchet. Within a group with a recorded count `n`, the first `n`
/// violations (in line order) are suppressed; any beyond that are new.
pub fn reconcile(violations: Vec<Violation>, baseline: &Baseline, files_scanned: usize) -> LintOutcome {
    let mut groups: BTreeMap<baseline::Key, Vec<Violation>> = BTreeMap::new();
    for v in violations {
        let key = (v.file.clone(), v.rule.name().to_string(), v.symbol.clone());
        groups.entry(key).or_default().push(v);
    }

    let mut outcome = LintOutcome { files_scanned, ..LintOutcome::default() };
    for (key, group) in &groups {
        let recorded = baseline.entries.get(key).copied().unwrap_or(0);
        let actual = group.len();
        if actual < recorded {
            outcome.stale_entries.push(StaleEntry { key: key.clone(), recorded, actual });
        }
        let suppressed = actual.min(recorded);
        if suppressed > 0 {
            outcome.baselined.insert(key.clone(), suppressed);
        }
        for v in group.iter().skip(suppressed) {
            match v.severity {
                Severity::Deny => outcome.new_violations.push(v.clone()),
                Severity::Warn => outcome.warnings.push(v.clone()),
            }
        }
    }
    // Baseline entries with no remaining violations at all are stale too.
    for (key, &recorded) in &baseline.entries {
        if !groups.contains_key(key) {
            outcome.stale_entries.push(StaleEntry { key: key.clone(), recorded, actual: 0 });
        }
    }
    outcome.stale_entries.sort_by(|a, b| a.key.cmp(&b.key));
    outcome
        .new_violations
        .sort_by(|a, b| (&a.file, a.line, a.rule.name()).cmp(&(&b.file, b.line, b.rule.name())));
    outcome
}

/// Compute the exact baseline that would make the current tree clean
/// (used by `--update-baseline`).
pub fn current_counts(root: &Path, config: &LintConfig) -> Result<BTreeMap<baseline::Key, usize>, String> {
    let sources = collect_sources(root)
        .map_err(|e| format!("cannot walk {}/crates: {e}", root.display()))?;
    let mut counts: BTreeMap<baseline::Key, usize> = BTreeMap::new();
    for (rel, abs) in &sources {
        let src = std::fs::read_to_string(abs)
            .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        for v in analyze_source(config, rel, &src) {
            *counts
                .entry((v.file.clone(), v.rule.name().to_string(), v.symbol.clone()))
                .or_insert(0) += 1;
        }
    }
    Ok(counts)
}
