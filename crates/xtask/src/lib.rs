//! `redhanded-lint` — in-repo static analysis for the pipeline's
//! operational invariants.
//!
//! The paper's headline claim is *sustained* real-time operation: 24/7
//! classification at Firehose rates. In that regime a single `unwrap()` on
//! a NaN score or a stray allocation in the per-tweet path is an outage,
//! not a bug report. PR 1 established the hot-path invariants (zero
//! allocation in `extract_into`/`observe`, FxHash everywhere, no
//! wall-clock reads in deterministic code); this crate turns them into
//! machine-checked rules that gate every future PR.
//!
//! Since lint v2 the analysis is **interprocedural**: a workspace symbol
//! table ([`symbols`]) feeds a conservative call graph ([`callgraph`]),
//! the hot set is computed by reachability from a small list of root
//! designations instead of a hand-maintained function list, the
//! `exec-ready` family gates the upcoming multi-core executor, and a
//! taint pass ([`taint`]) proves the deterministic digests never observe
//! a clock or RNG.
//!
//! Run as `cargo run -p xtask -- lint`; the fixed tier-1 command
//! (`cargo test -q`) enforces the same gate through `tests/lint_gate.rs`,
//! which calls [`run_lint`] in-process.

pub mod baseline;
pub mod bench_gate;
pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod report;
pub mod scan;
pub mod symbols;
pub mod taint;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

pub use baseline::Baseline;
pub use callgraph::CallGraph;
pub use config::{LintConfig, Rule, Severity};
pub use scan::{analyze_source, scan_unsafe, UnsafeSite, Violation};
pub use symbols::SymbolTable;

use lexer::Tok;

/// Where the committed baseline lives, relative to the workspace root.
pub const BASELINE_PATH: &str = "lint/baseline.toml";

/// Where the machine-readable report is written, relative to the root.
pub const REPORT_PATH: &str = "results/LINT_report.json";

/// A baseline entry that no longer matches reality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleEntry {
    /// The entry's `(file, rule, symbol)` key.
    pub key: baseline::Key,
    /// Count recorded in the baseline.
    pub recorded: usize,
    /// Violations actually found (strictly less than `recorded`).
    pub actual: usize,
}

/// Call-graph statistics surfaced in the JSON report.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct GraphStats {
    /// Functions in the symbol table (including test fns).
    pub nodes: usize,
    /// Directed call edges (deduplicated, non-test callers only).
    pub edges: usize,
    /// Size of the propagated hot set.
    pub hot_fns: usize,
    /// Size of the task-reachable (exec-ready) set.
    pub task_fns: usize,
    /// Functions that can observe a wall-clock/RNG source.
    pub clock_tainted: usize,
}

/// The result of one lint run over the workspace.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Deny-severity violations not covered by the baseline. Non-empty
    /// fails the gate.
    pub new_violations: Vec<Violation>,
    /// Warn-severity violations not covered by the baseline (reported,
    /// never fatal).
    pub warnings: Vec<Violation>,
    /// Baseline entries whose debt has shrunk — the baseline must be
    /// regenerated (the ratchet only turns one way). Non-empty fails.
    pub stale_entries: Vec<StaleEntry>,
    /// Violations suppressed by the baseline, grouped per key.
    pub baselined: BTreeMap<baseline::Key, usize>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Call-graph statistics from the interprocedural passes.
    pub stats: GraphStats,
    /// Every `unsafe` site in the workspace (src + tests), with its
    /// `// SAFETY:` audit bit.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// The propagated hot set, file → fn names (sorted).
    pub hot_overlay: BTreeMap<String, Vec<String>>,
}

impl LintOutcome {
    /// Whether the gate passes.
    pub fn is_clean(&self) -> bool {
        self.new_violations.is_empty() && self.stale_entries.is_empty()
    }

    /// Human-readable diagnostics for everything that fails the gate.
    pub fn render_failures(&self) -> String {
        let mut out = String::new();
        for v in &self.new_violations {
            let _ = writeln!(out, "error: {}", v.render());
        }
        for s in &self.stale_entries {
            let (file, rule, symbol) = &s.key;
            let _ = writeln!(
                out,
                "stale baseline entry: {file} / {rule} / `{symbol}`: recorded {}, found {} — \
                 debt was paid down; regenerate with `cargo run -p xtask -- lint --update-baseline`",
                s.recorded, s.actual
            );
        }
        if !self.new_violations.is_empty() {
            let _ = writeln!(
                out,
                "{} new violation(s). Fix them (preferred), or — only for debt that \
                 genuinely cannot be paid now — record them with \
                 `cargo run -p xtask -- lint --update-baseline`.",
                self.new_violations.len()
            );
        }
        out
    }
}

/// The full result of the interprocedural analysis, before baseline
/// reconciliation.
#[derive(Debug, Default)]
pub struct WorkspaceAnalysis {
    /// All violations, unreconciled.
    pub violations: Vec<Violation>,
    /// Call-graph statistics.
    pub stats: GraphStats,
    /// The unsafe registry.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// The propagated hot set, file → fn names.
    pub hot_overlay: BTreeMap<String, Vec<String>>,
    /// The symbol table (for `--why` diagnostics and tests).
    pub table: SymbolTable,
    /// The call graph.
    pub graph: CallGraph,
    /// Resolved hot-root fn ids.
    pub hot_root_ids: Vec<usize>,
    /// The propagated hot set as fn ids.
    pub hot_ids: BTreeSet<usize>,
}

/// Run every pass over in-memory sources. `srcs` are library sources
/// (symbol table + all rules); `test_srcs` are integration-test files,
/// scanned by `unsafe-safety` only (test code may unwrap, allocate, and
/// read clocks — but unsound `unsafe` is unsound anywhere).
pub fn analyze_workspace(
    config: &LintConfig,
    srcs: &[(String, String)],
    test_srcs: &[(String, String)],
    deps: &BTreeMap<String, BTreeSet<String>>,
) -> WorkspaceAnalysis {
    let mut table = SymbolTable::default();
    let mut files: BTreeMap<String, (String, Vec<Tok>)> = BTreeMap::new();
    for (rel, src) in srcs {
        let toks = table.add_file(rel, src);
        files.insert(rel.clone(), (src.clone(), toks));
    }
    let graph = CallGraph::build(&table, &files, deps);

    let root_ids = |roots: &[(&str, &[&str])]| -> Vec<usize> {
        let mut ids = Vec::new();
        for &(file, names) in roots {
            for name in names {
                for &id in table.named(name) {
                    if table.fns[id].file == file && !table.fns[id].in_test {
                        ids.push(id);
                    }
                }
            }
        }
        ids
    };
    let boundaries: BTreeSet<usize> = config
        .hot_boundaries
        .iter()
        .flat_map(|&(file, name, _why)| {
            table
                .named(name)
                .iter()
                .copied()
                .filter(|&id| table.fns[id].file == file)
                .collect::<Vec<usize>>()
        })
        .collect();
    let hot_root_ids = root_ids(config.hot_roots);
    let hot_ids = graph.reach(&hot_root_ids, &boundaries);
    let task_ids = graph.reach(&root_ids(config.task_roots), &BTreeSet::new());

    let overlay_of = |ids: &BTreeSet<usize>| -> BTreeMap<String, Vec<String>> {
        let mut m: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for &id in ids {
            let f = &table.fns[id];
            let names = m.entry(f.file.clone()).or_default();
            if !names.contains(&f.name) {
                names.push(f.name.clone());
            }
        }
        for names in m.values_mut() {
            names.sort();
        }
        m
    };
    let mut scoped = config.clone();
    scoped.hot_overlay = overlay_of(&hot_ids);
    scoped.task_overlay = overlay_of(&task_ids);

    let mut violations = Vec::new();
    for (rel, src) in srcs {
        violations.extend(analyze_source(&scoped, rel, src));
    }
    violations.extend(taint::det_taint_violations(&scoped, &table, &graph, &files));

    let mut unsafe_sites = Vec::new();
    for (rel, src) in srcs.iter().chain(test_srcs) {
        let (sites, v) = scan_unsafe(rel, src);
        unsafe_sites.extend(sites);
        violations.extend(v);
    }
    unsafe_sites.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    let seed_ids: BTreeSet<usize> =
        taint::direct_sources(&scoped, &table, &files).keys().copied().collect();
    let stats = GraphStats {
        nodes: table.fns.len(),
        edges: graph.num_edges,
        hot_fns: hot_ids.len(),
        task_fns: task_ids.len(),
        clock_tainted: graph.reach_rev(&seed_ids).len(),
    };
    WorkspaceAnalysis {
        violations,
        stats,
        unsafe_sites,
        hot_overlay: scoped.hot_overlay,
        table,
        graph,
        hot_root_ids,
        hot_ids,
    }
}

/// Explain *why* a function is in the propagated hot set: a shortest
/// root-to-function witness path, rendered as `root -> ... -> target`.
/// Returns one line per matching `(file, fn)` symbol (a name alone
/// matches across files). Used by `lint --why <fn>`.
pub fn why_hot(analysis: &WorkspaceAnalysis, target: &str) -> Vec<String> {
    let mut out = Vec::new();
    let (want_file, want_name) = match target.rsplit_once("::") {
        Some((f, n)) => (Some(f), n),
        None => (None, target),
    };
    for &id in analysis.table.named(want_name) {
        let f = &analysis.table.fns[id];
        if let Some(wf) = want_file {
            if !f.file.contains(wf) {
                continue;
            }
        }
        if !analysis.hot_ids.contains(&id) {
            if !f.in_test {
                out.push(format!("{}:{} `{}` is NOT hot", f.file, f.line, f.name));
            }
            continue;
        }
        let targets: BTreeSet<usize> = [id].into_iter().collect();
        let mut best: Option<Vec<usize>> = None;
        for &root in &analysis.hot_root_ids {
            if let Some(path) = analysis.graph.path_to(root, &targets) {
                if best.as_ref().is_none_or(|b| path.len() < b.len()) {
                    best = Some(path);
                }
            }
        }
        match best {
            Some(path) => {
                let rendered: Vec<String> = path
                    .iter()
                    .map(|&p| analysis.table.fns[p].name.clone())
                    .collect();
                out.push(format!(
                    "{}:{} `{}` is hot: {}",
                    f.file,
                    f.line,
                    f.name,
                    rendered.join(" -> ")
                ));
            }
            None => out.push(format!(
                "{}:{} `{}` is hot (designated root)",
                f.file, f.line, f.name
            )),
        }
    }
    out
}

/// Parse each `crates/*/Cargo.toml` `[dependencies]` section and return
/// the *transitive* dependency closure per crate directory, including the
/// crate itself. Workspace crates are recognized by the `redhanded-`
/// package-name prefix (plus `xtask` itself); external deps are ignored.
/// The call graph uses this to drop impossible cross-crate edges.
pub fn crate_dep_closure(root: &Path) -> std::io::Result<BTreeMap<String, BTreeSet<String>>> {
    let crates_dir = root.join("crates");
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut dirs: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(&crates_dir)? {
        let entry = entry?;
        if entry.path().is_dir() {
            dirs.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    dirs.sort();
    for dir in &dirs {
        let manifest = crates_dir.join(dir).join("Cargo.toml");
        let Ok(text) = std::fs::read_to_string(&manifest) else { continue };
        let mut in_deps = false;
        let mut deps: BTreeSet<String> = BTreeSet::new();
        deps.insert(dir.clone());
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                in_deps = line == "[dependencies]";
                continue;
            }
            if !in_deps {
                continue;
            }
            let Some(name) = line.split(['=', ' ']).next() else { continue };
            let dep_dir = name.strip_prefix("redhanded-").unwrap_or(name);
            if dirs.iter().any(|d| d == dep_dir) {
                deps.insert(dep_dir.to_string());
            }
        }
        direct.insert(dir.clone(), deps);
    }
    // Transitive closure (the graph is a small DAG; iterate to fixpoint).
    let mut closure = direct.clone();
    loop {
        let mut changed = false;
        for dir in &dirs {
            let current: Vec<String> =
                closure.get(dir).map(|s| s.iter().cloned().collect()).unwrap_or_default();
            let mut grown: BTreeSet<String> = current.iter().cloned().collect();
            for dep in &current {
                if let Some(trans) = closure.get(dep) {
                    grown.extend(trans.iter().cloned());
                }
            }
            if closure.get(dir).is_some_and(|s| s.len() != grown.len()) {
                closure.insert(dir.clone(), grown);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Ok(closure)
}

/// Collect every `crates/*/src/**/*.rs` file under `root`, sorted, as
/// `(workspace-relative path with forward slashes, absolute path)`.
fn collect_sources(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            walk(&src, &mut files)?;
        }
    }
    relativize(root, files)
}

/// Collect the integration-test files scanned by `unsafe-safety`:
/// `crates/*/tests/**/*.rs` plus the workspace-level `tests/*.rs`.
fn collect_test_sources(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let tests = dir.join("tests");
        if tests.is_dir() {
            walk(&tests, &mut files)?;
        }
    }
    let root_tests = root.join("tests");
    if root_tests.is_dir() {
        walk(&root_tests, &mut files)?;
    }
    relativize(root, files)
}

fn relativize(root: &Path, files: Vec<PathBuf>) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut out: Vec<(String, PathBuf)> = files
        .into_iter()
        .filter_map(|abs| {
            let rel = abs.strip_prefix(root).ok()?;
            let rel = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            Some((rel, abs))
        })
        .collect();
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
    Ok(())
}

fn read_all(files: Vec<(String, PathBuf)>) -> Result<Vec<(String, String)>, String> {
    files
        .into_iter()
        .map(|(rel, abs)| {
            std::fs::read_to_string(&abs)
                .map(|src| (rel, src))
                .map_err(|e| format!("cannot read {}: {e}", abs.display()))
        })
        .collect()
}

/// Walk the workspace at `root` and run [`analyze_workspace`] over it.
pub fn analyze_root(config: &LintConfig, root: &Path) -> Result<WorkspaceAnalysis, String> {
    let sources = collect_sources(root)
        .map_err(|e| format!("cannot walk {}/crates: {e}", root.display()))?;
    if sources.is_empty() {
        return Err(format!("no sources found under {}/crates/*/src", root.display()));
    }
    let tests = collect_test_sources(root)
        .map_err(|e| format!("cannot walk {} test dirs: {e}", root.display()))?;
    let srcs = read_all(sources)?;
    let test_srcs = read_all(tests)?;
    let deps = crate_dep_closure(root)
        .map_err(|e| format!("cannot read crate manifests under {}: {e}", root.display()))?;
    Ok(analyze_workspace(config, &srcs, &test_srcs, &deps))
}

/// Run every rule over the workspace at `root` and reconcile against the
/// committed baseline. Pure analysis: writes nothing (the CLI layers
/// report/baseline writing on top), so the test gate can call it from
/// parallel test processes.
pub fn run_lint(root: &Path, config: &LintConfig) -> Result<LintOutcome, String> {
    let sources = collect_sources(root)
        .map_err(|e| format!("cannot walk {}/crates: {e}", root.display()))?;
    if sources.is_empty() {
        return Err(format!("no sources found under {}/crates/*/src", root.display()));
    }
    let tests = collect_test_sources(root)
        .map_err(|e| format!("cannot walk {} test dirs: {e}", root.display()))?;
    let srcs = read_all(sources)?;
    let test_srcs = read_all(tests)?;
    let files_scanned = srcs.len() + test_srcs.len();
    let deps = crate_dep_closure(root)
        .map_err(|e| format!("cannot read crate manifests under {}: {e}", root.display()))?;
    let analysis = analyze_workspace(config, &srcs, &test_srcs, &deps);

    let baseline_file = root.join(BASELINE_PATH);
    let baseline = if baseline_file.exists() {
        let text = std::fs::read_to_string(&baseline_file)
            .map_err(|e| format!("cannot read {}: {e}", baseline_file.display()))?;
        Baseline::parse(&text).map_err(|e| e.to_string())?
    } else {
        Baseline::default()
    };

    let mut outcome = reconcile(analysis.violations, &baseline, files_scanned);
    outcome.stats = analysis.stats;
    outcome.unsafe_sites = analysis.unsafe_sites;
    outcome.hot_overlay = analysis.hot_overlay;
    Ok(outcome)
}

/// Group violations by `(file, rule, symbol)` and apply the baseline
/// ratchet. Within a group with a recorded count `n`, the first `n`
/// violations (in line order) are suppressed; any beyond that are new.
pub fn reconcile(violations: Vec<Violation>, baseline: &Baseline, files_scanned: usize) -> LintOutcome {
    let mut groups: BTreeMap<baseline::Key, Vec<Violation>> = BTreeMap::new();
    for v in violations {
        let key = (v.file.clone(), v.rule.name().to_string(), v.symbol.clone());
        groups.entry(key).or_default().push(v);
    }

    let mut outcome = LintOutcome { files_scanned, ..LintOutcome::default() };
    for (key, group) in &groups {
        let recorded = baseline.entries.get(key).copied().unwrap_or(0);
        let actual = group.len();
        if actual < recorded {
            outcome.stale_entries.push(StaleEntry { key: key.clone(), recorded, actual });
        }
        let suppressed = actual.min(recorded);
        if suppressed > 0 {
            outcome.baselined.insert(key.clone(), suppressed);
        }
        for v in group.iter().skip(suppressed) {
            match v.severity {
                Severity::Deny => outcome.new_violations.push(v.clone()),
                Severity::Warn => outcome.warnings.push(v.clone()),
            }
        }
    }
    // Baseline entries with no remaining violations at all are stale too.
    for (key, &recorded) in &baseline.entries {
        if !groups.contains_key(key) {
            outcome.stale_entries.push(StaleEntry { key: key.clone(), recorded, actual: 0 });
        }
    }
    outcome.stale_entries.sort_by(|a, b| a.key.cmp(&b.key));
    outcome
        .new_violations
        .sort_by(|a, b| (&a.file, a.line, a.rule.name()).cmp(&(&b.file, b.line, b.rule.name())));
    outcome
}

/// Compute the exact baseline that would make the current tree clean
/// (used by `--update-baseline`). Runs the same interprocedural flow as
/// [`run_lint`] so the two can never disagree.
pub fn current_counts(root: &Path, config: &LintConfig) -> Result<BTreeMap<baseline::Key, usize>, String> {
    let sources = collect_sources(root)
        .map_err(|e| format!("cannot walk {}/crates: {e}", root.display()))?;
    let tests = collect_test_sources(root)
        .map_err(|e| format!("cannot walk {} test dirs: {e}", root.display()))?;
    let srcs = read_all(sources)?;
    let test_srcs = read_all(tests)?;
    let deps = crate_dep_closure(root)
        .map_err(|e| format!("cannot read crate manifests under {}: {e}", root.display()))?;
    let analysis = analyze_workspace(config, &srcs, &test_srcs, &deps);
    let mut counts: BTreeMap<baseline::Key, usize> = BTreeMap::new();
    for v in analysis.violations {
        *counts
            .entry((v.file.clone(), v.rule.name().to_string(), v.symbol.clone()))
            .or_insert(0) += 1;
    }
    Ok(counts)
}
