//! Conservative workspace call graph + reachability propagation.
//!
//! Edges come from three call shapes in each function body:
//!
//! * `name(...)` — a free call, resolved to every free fn named `name`;
//! * `.name(...)` — a method call, resolved to every impl method named
//!   `name` on *any* type (receiver types are unknown to a lexer);
//! * `Qual::name(...)` — a qualified call: when `Qual` names a known impl
//!   type the candidates are that type's methods; `Self::name` resolves
//!   within the caller's impl; an unknown qualifier is either a module
//!   path or an external type, so it resolves to free fns named `name`
//!   (external methods are not in the table at all).
//!
//! Ambiguity therefore *adds* edges, never removes them — the documented
//! contract (ISSUE 7, DESIGN.md §12) is that the computed hot set may only
//! over-approximate the true one. Calls the lexer cannot see (trait-object
//! dispatch through closures, `for`-loop desugared `next`, macro bodies)
//! are the reason roots stay explicit designations in
//! [`crate::config::LintConfig`] rather than a single seed.

use crate::lexer::Tok;
use crate::scan::{ident_at, is_punct};
use crate::symbols::SymbolTable;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Keywords that can directly precede a `(` without being calls.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "move", "fn", "as", "in", "where",
    "let", "unsafe", "break", "continue", "yield", "dyn", "impl", "ref", "mut", "pub", "crate",
    "super", "use", "mod", "static", "const", "struct", "enum", "trait", "type", "box", "await",
];

/// The adjacency-list call graph over a [`SymbolTable`].
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `edges[caller] = sorted, deduplicated callee ids`.
    pub edges: Vec<Vec<usize>>,
    /// Total directed edge count.
    pub num_edges: usize,
}

/// One extracted call site, before resolution (exposed for tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallSite {
    /// `name(...)`.
    Free(String),
    /// `.name(...)` or `self.name(...)`.
    Method(String),
    /// `Qual::name(...)`.
    Qualified(String, String),
}

/// Extract the call sites in `toks[range]` (one fn body), excluding tokens
/// owned by nested fn items (`owner` maps token index → owning fn id).
pub fn extract_calls(
    toks: &[Tok],
    src: &str,
    range: (usize, usize),
    owner: &[Option<usize>],
    self_id: usize,
) -> Vec<CallSite> {
    let mut out = Vec::new();
    for i in range.0..=range.1.min(toks.len().saturating_sub(1)) {
        if owner.get(i).copied().flatten() != Some(self_id) {
            continue; // nested fn item: its calls are its own
        }
        let Some(name) = ident_at(toks, i, src) else { continue };
        if KEYWORDS.contains(&name) {
            continue;
        }
        // A call must be followed by `(` or a turbofish `::<...>(`.
        let called = is_punct(toks, i + 1, b'(')
            || (is_punct(toks, i + 1, b':')
                && is_punct(toks, i + 2, b':')
                && is_punct(toks, i + 3, b'<'));
        if !called || is_punct(toks, i + 1, b'!') {
            continue;
        }
        if is_punct(toks, i.wrapping_sub(1), b'.') {
            out.push(CallSite::Method(name.to_string()));
            continue;
        }
        // `Qual::name(` — the two preceding tokens are `::` with an ident
        // before them.
        if is_punct(toks, i.wrapping_sub(1), b':') && is_punct(toks, i.wrapping_sub(2), b':') {
            if let Some(q) = ident_at(toks, i.wrapping_sub(3), src) {
                out.push(CallSite::Qualified(q.to_string(), name.to_string()));
            }
            // Deeper paths (`a::b::c::name`) resolve on the last qualifier
            // only; a literal-prefixed path cannot be a fn call.
            continue;
        }
        // Definition sites (`fn name(`) are not calls.
        if ident_at(toks, i.wrapping_sub(1), src) == Some("fn") {
            continue;
        }
        out.push(CallSite::Free(name.to_string()));
    }
    out
}

/// Resolve one call site to candidate callee ids. Conservative: method
/// calls match every impl method with the name; unknown qualifiers fall
/// back to every same-named free fn (module-path calls). Test fns are
/// never candidates (production code cannot call them).
pub fn resolve(table: &SymbolTable, caller: usize, site: &CallSite) -> Vec<usize> {
    let not_test = |id: &&usize| !table.fns[**id].in_test;
    match site {
        CallSite::Free(name) => table
            .named(name)
            .iter()
            .filter(not_test)
            .filter(|&&id| table.fns[id].impl_type.is_none())
            .copied()
            .collect(),
        CallSite::Method(name) => table
            .named(name)
            .iter()
            .filter(not_test)
            .filter(|&&id| table.fns[id].impl_type.is_some())
            .copied()
            .collect(),
        CallSite::Qualified(q, name) => {
            let qualifier = if q == "Self" || q == "self" {
                table.fns[caller].impl_type.clone()
            } else {
                Some(q.clone())
            };
            let Some(qualifier) = qualifier else {
                return Vec::new(); // Self:: outside an impl — nothing to match
            };
            let type_known =
                table.fns.iter().any(|f| f.impl_type.as_deref() == Some(qualifier.as_str()));
            if type_known {
                table
                    .named(name)
                    .iter()
                    .filter(not_test)
                    .filter(|&&id| table.fns[id].impl_type.as_deref() == Some(qualifier.as_str()))
                    .copied()
                    .collect()
            } else {
                // Unknown qualifier: either a module path (whose items are
                // free fns — resolve to those) or an external/std type
                // (whose methods are not in the table at all). Resolving
                // to *methods* here would turn every `Vec::new` into an
                // edge to every workspace constructor.
                table
                    .named(name)
                    .iter()
                    .filter(not_test)
                    .filter(|&&id| table.fns[id].impl_type.is_none())
                    .copied()
                    .collect()
            }
        }
    }
}

/// The crate directory a `crates/<dir>/...` path belongs to (empty for
/// paths outside `crates/`).
pub fn crate_dir_of(file: &str) -> &str {
    file.strip_prefix("crates/").and_then(|rest| rest.split('/').next()).unwrap_or("")
}

impl CallGraph {
    /// Build the graph for `table`, where `files` maps each file to its
    /// token stream + source (as produced by `SymbolTable::add_file`).
    ///
    /// `deps` is the transitive dependency closure per crate directory
    /// (including the crate itself): an edge is only kept when the
    /// callee's crate is in the caller's closure — a crate cannot call
    /// into code it does not depend on, so same-named methods in
    /// unrelated crates stop aliasing each other. A caller crate absent
    /// from the map is unrestricted (the permissive default keeps
    /// in-memory fixtures simple).
    pub fn build(
        table: &SymbolTable,
        files: &BTreeMap<String, (String, Vec<Tok>)>,
        deps: &BTreeMap<String, BTreeSet<String>>,
    ) -> CallGraph {
        // Token-index → innermost owning fn, per file.
        let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); table.fns.len()];
        for (file, (src, toks)) in files {
            let ids: Vec<usize> = (0..table.fns.len())
                .filter(|&id| table.fns[id].file == *file)
                .collect();
            let mut owner: Vec<Option<usize>> = vec![None; toks.len()];
            // Symbols appear in token order, so later (nested) fns
            // overwrite their subrange of the enclosing fn.
            for &id in &ids {
                let (a, b) = table.fns[id].body;
                for slot in owner.iter_mut().take((b + 1).min(toks.len())).skip(a) {
                    *slot = Some(id);
                }
            }
            let caller_allowed = deps.get(crate_dir_of(file));
            for &id in &ids {
                if table.fns[id].in_test {
                    continue; // edges from test code never drive propagation
                }
                for site in extract_calls(toks, src, table.fns[id].body, &owner, id) {
                    for callee in resolve(table, id, &site) {
                        if let Some(allowed) = caller_allowed {
                            if !allowed.contains(crate_dir_of(&table.fns[callee].file)) {
                                continue;
                            }
                        }
                        if callee != id {
                            edges[id].insert(callee);
                        }
                    }
                }
            }
        }
        let edges: Vec<Vec<usize>> = edges.into_iter().map(|s| s.into_iter().collect()).collect();
        let num_edges = edges.iter().map(Vec::len).sum();
        CallGraph { edges, num_edges }
    }

    /// Forward reachability from `roots`, never descending *into* a
    /// boundary function (the root set itself is always included, even
    /// when a root is also listed as a boundary). Monotone in the edge
    /// set: adding an edge can only grow the result (property-tested in
    /// `tests/propagation.rs`).
    pub fn reach(&self, roots: &[usize], boundaries: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = roots.iter().copied().collect();
        let mut queue: VecDeque<usize> = roots.iter().copied().collect();
        while let Some(f) = queue.pop_front() {
            for &c in self.edges.get(f).map(Vec::as_slice).unwrap_or(&[]) {
                if boundaries.contains(&c) {
                    continue;
                }
                if seen.insert(c) {
                    queue.push_back(c);
                }
            }
        }
        seen
    }

    /// Backward reachability: every function from which some seed is
    /// reachable (used by the determinism-taint pass: seeds are the
    /// clock/RNG-reading fns, the result is every fn whose execution may
    /// observe one).
    pub fn reach_rev(&self, seeds: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); self.edges.len()];
        for (caller, callees) in self.edges.iter().enumerate() {
            for &c in callees {
                rev[c].push(caller);
            }
        }
        let mut seen: BTreeSet<usize> = seeds.clone();
        let mut queue: VecDeque<usize> = seeds.iter().copied().collect();
        while let Some(f) = queue.pop_front() {
            for &caller in rev.get(f).map(Vec::as_slice).unwrap_or(&[]) {
                if seen.insert(caller) {
                    queue.push_back(caller);
                }
            }
        }
        seen
    }

    /// One witness call path from `from` to some member of `targets`
    /// (BFS, so a shortest path), as fn ids. Used to render actionable
    /// taint diagnostics. `None` when unreachable.
    pub fn path_to(&self, from: usize, targets: &BTreeSet<usize>) -> Option<Vec<usize>> {
        if targets.contains(&from) {
            return Some(vec![from]);
        }
        let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue = VecDeque::from([from]);
        while let Some(f) = queue.pop_front() {
            for &c in self.edges.get(f).map(Vec::as_slice).unwrap_or(&[]) {
                if c != from && !prev.contains_key(&c) {
                    prev.insert(c, f);
                    if targets.contains(&c) {
                        let mut path = vec![c];
                        let mut cur = c;
                        while let Some(&p) = prev.get(&cur) {
                            path.push(p);
                            if p == from {
                                break;
                            }
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(c);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace(files: &[(&str, &str)]) -> (SymbolTable, CallGraph) {
        let mut table = SymbolTable::default();
        let mut map = BTreeMap::new();
        for (file, src) in files {
            let toks = table.add_file(file, src);
            map.insert(file.to_string(), (src.to_string(), toks));
        }
        let graph = CallGraph::build(&table, &map, &BTreeMap::new());
        (table, graph)
    }

    fn names(table: &SymbolTable, ids: &BTreeSet<usize>) -> Vec<String> {
        ids.iter().map(|&i| table.fns[i].name.clone()).collect()
    }

    #[test]
    fn free_calls_connect() {
        let (t, g) = workspace(&[(
            "crates/a/src/lib.rs",
            "pub fn root() { helper(1); } pub fn helper(x: u32) -> u32 { x } pub fn cold() {}",
        )]);
        let hot = g.reach(&[0], &BTreeSet::new());
        assert_eq!(names(&t, &hot), ["root", "helper"]);
    }

    #[test]
    fn method_calls_are_ambiguous_across_types() {
        let (_t, g) = workspace(&[(
            "crates/a/src/lib.rs",
            r#"
            pub fn root(a: &A) { a.observe(); }
            struct A; impl A { pub fn observe(&self) {} }
            struct B; impl B { pub fn observe(&self) {} }
            "#,
        )]);
        let hot = g.reach(&[0], &BTreeSet::new());
        // Both `observe` impls are candidates: ambiguity is an edge.
        assert_eq!(hot.len(), 3);
    }

    #[test]
    fn qualified_calls_narrow_to_the_named_type() {
        let (t, g) = workspace(&[(
            "crates/a/src/lib.rs",
            r#"
            pub fn root() { A::observe(); }
            struct A; impl A { pub fn observe() { Self::helper(); } pub fn helper() {} }
            struct B; impl B { pub fn observe() {} pub fn helper() {} }
            "#,
        )]);
        let hot = g.reach(&[0], &BTreeSet::new());
        let got = names(&t, &hot);
        assert!(got.contains(&"root".into()));
        assert_eq!(got.iter().filter(|n| *n == "observe").count(), 1, "{got:?}");
        assert_eq!(got.iter().filter(|n| *n == "helper").count(), 1, "Self:: stays in impl");
    }

    #[test]
    fn boundaries_stop_propagation_but_roots_ignore_them() {
        let (t, g) = workspace(&[(
            "crates/a/src/lib.rs",
            "pub fn root() { amortized(); } pub fn amortized() { deep(); } pub fn deep() {}",
        )]);
        let b: BTreeSet<usize> = [1].into_iter().collect(); // amortized
        let hot = g.reach(&[0], &b);
        assert_eq!(names(&t, &hot), ["root"], "boundary cuts amortized AND deep");
        let hot2 = g.reach(&[1], &b);
        assert_eq!(names(&t, &hot2), ["amortized", "deep"], "a boundary used as root still propagates");
    }

    #[test]
    fn test_code_neither_calls_nor_is_called() {
        let (t, g) = workspace(&[(
            "crates/a/src/lib.rs",
            r#"
            pub fn root() {}
            #[cfg(test)]
            mod tests {
                fn helper() { super::root(); }
            }
            "#,
        )]);
        assert_eq!(g.num_edges, 0);
        let hot = g.reach(&[0], &BTreeSet::new());
        assert_eq!(hot.len(), 1);
        assert!(t.fns[1].in_test);
    }

    #[test]
    fn reverse_reachability_finds_all_callers() {
        let (t, g) = workspace(&[(
            "crates/a/src/lib.rs",
            r#"
            pub fn clock() {}
            pub fn mid() { clock(); }
            pub fn top() { mid(); }
            pub fn unrelated() {}
            "#,
        )]);
        let seeds: BTreeSet<usize> = [0].into_iter().collect();
        let touched = g.reach_rev(&seeds);
        assert_eq!(names(&t, &touched), ["clock", "mid", "top"]);
    }

    #[test]
    fn witness_paths_are_connected() {
        let (_t, g) = workspace(&[(
            "crates/a/src/lib.rs",
            "pub fn a() { b(); } pub fn b() { c(); } pub fn c() {}",
        )]);
        let targets: BTreeSet<usize> = [2].into_iter().collect();
        let path = g.path_to(0, &targets);
        assert_eq!(path, Some(vec![0, 1, 2]));
        assert_eq!(g.path_to(2, &[0].into_iter().collect()), None);
    }

    #[test]
    fn turbofish_and_nested_fn_attribution() {
        let (t, g) = workspace(&[(
            "crates/a/src/lib.rs",
            r#"
            pub fn root() { helper::<u32>(); fn inner() { other(); } }
            pub fn helper<T>() {}
            pub fn other() {}
            "#,
        )]);
        let hot = g.reach(&[0], &BTreeSet::new());
        let got = names(&t, &hot);
        assert!(got.contains(&"helper".into()), "turbofish call seen: {got:?}");
        assert!(!got.contains(&"other".into()), "inner fn's calls are not root's");
    }
}
