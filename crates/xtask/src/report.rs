//! Machine-readable lint report: `results/LINT_report.json`.
//!
//! One JSON object per run with per-rule active/baselined counts, so
//! future PRs can track the baseline burning down without parsing human
//! diagnostics. Hand-serialized (offline workspace, no serde); every key
//! is emitted in deterministic order.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::config::Rule;
use crate::LintOutcome;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the report JSON for one lint outcome.
pub fn render(outcome: &LintOutcome) -> String {
    // Per-rule totals.
    let mut active: BTreeMap<&str, usize> = BTreeMap::new();
    let mut baselined: BTreeMap<&str, usize> = BTreeMap::new();
    for rule in Rule::ALL {
        active.insert(rule.name(), 0);
        baselined.insert(rule.name(), 0);
    }
    for v in outcome.new_violations.iter().chain(&outcome.warnings) {
        *active.entry(v.rule.name()).or_insert(0) += 1;
    }
    for ((_, rule, _), n) in &outcome.baselined {
        *baselined.entry(Rule::from_name(rule).map(Rule::name).unwrap_or("unknown")).or_insert(0) +=
            n;
    }

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"tool\": \"redhanded-lint\",");
    let _ = writeln!(out, "  \"files_scanned\": {},", outcome.files_scanned);
    let _ = writeln!(out, "  \"clean\": {},", outcome.is_clean());
    let _ = writeln!(
        out,
        "  \"callgraph\": {{ \"nodes\": {}, \"edges\": {}, \"hot_fns\": {}, \"task_fns\": {}, \"clock_tainted\": {} }},",
        outcome.stats.nodes,
        outcome.stats.edges,
        outcome.stats.hot_fns,
        outcome.stats.task_fns,
        outcome.stats.clock_tainted
    );
    let _ = writeln!(out, "  \"hot_set\": {{");
    for (i, (file, fns)) in outcome.hot_overlay.iter().enumerate() {
        let comma = if i + 1 == outcome.hot_overlay.len() { "" } else { "," };
        let names: Vec<String> = fns.iter().map(|f| format!("\"{}\"", escape(f))).collect();
        let _ = writeln!(out, "    \"{}\": [{}]{comma}", escape(file), names.join(", "));
    }
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"unsafe_registry\": [");
    for (i, site) in outcome.unsafe_sites.iter().enumerate() {
        let comma = if i + 1 == outcome.unsafe_sites.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{ \"file\": \"{}\", \"line\": {}, \"context\": \"{}\", \"safety_comment\": {} }}{comma}",
            escape(&site.file),
            site.line,
            escape(&site.context),
            site.has_safety
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"rules\": {{");
    let names: Vec<&str> = Rule::ALL.iter().map(|r| r.name()).collect();
    for (i, name) in names.iter().enumerate() {
        let comma = if i + 1 == names.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    \"{}\": {{ \"active\": {}, \"baselined\": {} }}{comma}",
            name,
            active.get(name).copied().unwrap_or(0),
            baselined.get(name).copied().unwrap_or(0)
        );
    }
    let _ = writeln!(out, "  }},");
    let _ = writeln!(
        out,
        "  \"total_baselined\": {},",
        outcome.baselined.values().sum::<usize>()
    );
    let _ = writeln!(out, "  \"stale_baseline_entries\": {},", outcome.stale_entries.len());
    let _ = writeln!(out, "  \"new_violations\": [");
    for (i, v) in outcome.new_violations.iter().enumerate() {
        let comma = if i + 1 == outcome.new_violations.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{ \"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"symbol\": \"{}\" }}{comma}",
            escape(&v.file),
            v.line,
            v.rule.name(),
            escape(&v.symbol)
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Severity;
    use crate::scan::Violation;

    #[test]
    fn report_counts_rules() {
        let mut outcome = LintOutcome { files_scanned: 3, ..LintOutcome::default() };
        outcome.new_violations.push(Violation {
            rule: Rule::NoPanic,
            symbol: "unwrap".into(),
            file: "crates/a/src/lib.rs".into(),
            line: 7,
            severity: Severity::Deny,
        });
        outcome
            .baselined
            .insert(("crates/b/src/lib.rs".into(), "wall-clock".into(), "Instant::now".into()), 2);
        let json = render(&outcome);
        assert!(json.contains("\"no-panic\": { \"active\": 1, \"baselined\": 0 }"));
        assert!(json.contains("\"wall-clock\": { \"active\": 0, \"baselined\": 2 }"));
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"total_baselined\": 2"));
        assert!(json.contains("\"line\": 7"));
    }

    #[test]
    fn escapes_json_strings() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    }
}
