//! The committed violation baseline: `lint/baseline.toml`.
//!
//! Pre-existing violations are recorded as `(file, rule, symbol) → count`
//! entries. The gate then enforces a ratchet:
//!
//! * actual count **above** the recorded count → new violations, **fail**;
//! * actual count **below** the recorded count (or the group gone) → the
//!   entry is **stale**, fail until the baseline is regenerated — so debt
//!   paid down can never silently come back;
//! * equal → suppressed, but still surfaced in `results/LINT_report.json`
//!   so the burn-down is trackable.
//!
//! The file is a restricted TOML subset (`[[entry]]` tables with string /
//! integer keys and `#` comments) parsed by hand — the workspace builds
//! offline, so no `toml` crate.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Grouping key for baseline accounting.
pub type Key = (String, String, String); // (file, rule, symbol)

/// One baseline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Workspace-relative file path.
    pub file: String,
    /// Rule name (kebab-case).
    pub rule: String,
    /// Offending symbol (`unwrap`, `Vec::new`, ...).
    pub symbol: String,
    /// Number of accepted pre-existing violations.
    pub count: usize,
}

/// The parsed baseline.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Entries keyed by `(file, rule, symbol)`.
    pub entries: BTreeMap<Key, usize>,
}

/// A baseline parse failure, with the offending line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line in `baseline.toml`.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "baseline.toml:{}: {}", self.line, self.message)
    }
}

fn unquote(value: &str, line: usize) -> Result<String, ParseError> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(ParseError { line, message: format!("expected a quoted string, got `{v}`") })
    }
}

impl Baseline {
    /// Parse the baseline file contents.
    pub fn parse(text: &str) -> Result<Baseline, ParseError> {
        let mut entries = BTreeMap::new();
        let mut current: Option<Entry> = None;
        let mut flush = |e: Option<Entry>, line: usize| -> Result<(), ParseError> {
            let Some(e) = e else { return Ok(()) };
            if e.file.is_empty() || e.rule.is_empty() || e.symbol.is_empty() || e.count == 0 {
                return Err(ParseError {
                    line,
                    message: "entry needs non-empty file, rule, symbol and count > 0".into(),
                });
            }
            if entries.insert((e.file.clone(), e.rule.clone(), e.symbol.clone()), e.count).is_some()
            {
                return Err(ParseError {
                    line,
                    message: format!(
                        "duplicate entry for {} / {} / {}",
                        e.file, e.rule, e.symbol
                    ),
                });
            }
            Ok(())
        };
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[entry]]" {
                flush(current.take(), lineno)?;
                current = Some(Entry {
                    file: String::new(),
                    rule: String::new(),
                    symbol: String::new(),
                    count: 0,
                });
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ParseError {
                    line: lineno,
                    message: format!("expected `key = value` or `[[entry]]`, got `{line}`"),
                });
            };
            let Some(entry) = current.as_mut() else {
                return Err(ParseError {
                    line: lineno,
                    message: "key outside of an [[entry]] table".into(),
                });
            };
            match key.trim() {
                "file" => entry.file = unquote(value, lineno)?,
                "rule" => entry.rule = unquote(value, lineno)?,
                "symbol" => entry.symbol = unquote(value, lineno)?,
                "count" => {
                    entry.count = value.trim().parse().map_err(|_| ParseError {
                        line: lineno,
                        message: format!("count must be a positive integer, got `{}`", value.trim()),
                    })?;
                }
                other => {
                    return Err(ParseError {
                        line: lineno,
                        message: format!("unknown key `{other}`"),
                    });
                }
            }
        }
        let last = text.lines().count();
        flush(current.take(), last)?;
        Ok(Baseline { entries })
    }

    /// Serialize counts into the committed file format (deterministic
    /// order: file, then rule, then symbol).
    pub fn render(counts: &BTreeMap<Key, usize>) -> String {
        let mut out = String::from(
            "# Pre-existing lint violations accepted as baseline debt.\n\
             # Regenerate with: cargo run -p xtask -- lint --update-baseline\n\
             # The gate fails on any NEW violation and on any STALE entry here,\n\
             # so this file can only ever shrink. See DESIGN.md \"Machine-checked\n\
             # invariants\".\n",
        );
        for ((file, rule, symbol), count) in counts {
            let _ = write!(
                out,
                "\n[[entry]]\nfile = \"{file}\"\nrule = \"{rule}\"\nsymbol = \"{symbol}\"\ncount = {count}\n"
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut counts = BTreeMap::new();
        counts.insert(("a.rs".into(), "no-panic".into(), "unwrap".into()), 3);
        counts.insert(("b.rs".into(), "wall-clock".into(), "Instant::now".into()), 1);
        let text = Baseline::render(&counts);
        let parsed = Baseline::parse(&text).expect("round trip");
        assert_eq!(parsed.entries, counts);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Baseline::parse("file = \"a.rs\"").is_err(), "key outside entry");
        assert!(Baseline::parse("[[entry]]\nfile = \"a.rs\"").is_err(), "incomplete entry");
        assert!(Baseline::parse("[[entry]]\nwat = 3").is_err(), "unknown key");
        let dup = "[[entry]]\nfile = \"a\"\nrule = \"r\"\nsymbol = \"s\"\ncount = 1\n\
                   [[entry]]\nfile = \"a\"\nrule = \"r\"\nsymbol = \"s\"\ncount = 2\n";
        assert!(Baseline::parse(dup).is_err(), "duplicate key");
        assert!(
            Baseline::parse("[[entry]]\nfile = \"a\"\nrule = \"r\"\nsymbol = \"s\"\ncount = 0\n")
                .is_err(),
            "zero count is meaningless"
        );
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\n[[entry]] # trailing\nfile = \"a\" # c\nrule = \"r\"\nsymbol = \"s\"\ncount = 2\n";
        let parsed = Baseline::parse(text).expect("parses");
        assert_eq!(parsed.entries.get(&("a".into(), "r".into(), "s".into())), Some(&2));
    }

    #[test]
    fn empty_is_valid() {
        assert!(Baseline::parse("# nothing\n").expect("ok").entries.is_empty());
        assert!(Baseline::parse("").expect("ok").entries.is_empty());
    }
}
