//! A lightweight Rust lexer for the lint pass.
//!
//! The linter only needs a token stream — identifiers, punctuation, and
//! literal boundaries with line numbers — not a syntax tree, so this is a
//! few hundred lines of hand-rolled scanning rather than a `syn`
//! dependency (the workspace builds offline; see DESIGN.md §7). The
//! important property is that comments, strings (including raw and byte
//! strings), char literals, and lifetimes are classified correctly:
//! `"unwrap"` inside a string or a doc comment must never look like a
//! method call.

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unwrap`, `fn`, `HashMap`, ...).
    Ident,
    /// A single punctuation byte (`.`, `:`, `{`, `!`, ...).
    Punct(u8),
    /// A string, char, byte, or numeric literal (contents opaque).
    Literal,
    /// A lifetime such as `'a` (distinct from a char literal).
    Lifetime,
}

/// One token: classification plus source span and 1-based line number.
#[derive(Debug, Clone, Copy)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// Byte offset of the token's first byte.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
}

impl Tok {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Count newlines in `src[start..end]` (to keep line numbers exact across
/// multi-line literals and comments).
fn newlines(b: &[u8], start: usize, end: usize) -> u32 {
    b[start..end.min(b.len())].iter().filter(|&&c| c == b'\n').count() as u32
}

/// Skip a normal (escaping) string starting at the opening quote `i`.
/// Returns the index one past the closing quote.
fn skip_escaped_string(b: &[u8], mut i: usize, quote: u8) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            c if c == quote => return i + 1,
            _ => i += 1,
        }
    }
    b.len()
}

/// Skip a raw string `r##"..."##` whose opening quote is at `quote_idx`
/// with `hashes` leading `#`s. Returns the index one past the final `#`.
fn skip_raw_string(b: &[u8], quote_idx: usize, hashes: usize) -> usize {
    let mut i = quote_idx + 1;
    while i < b.len() {
        if b[i] == b'"' {
            let mut ok = true;
            for k in 0..hashes {
                if b.get(i + 1 + k) != Some(&b'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    b.len()
}

/// If `i` starts a string-literal prefix (`"`, `b"`, `c"`, `r"`, `r#"`,
/// `br##"`, ...), return `(index_of_quote, raw_hash_count, is_raw)`.
fn string_prefix(b: &[u8], i: usize) -> Option<(usize, usize, bool)> {
    let mut j = i;
    // Optional byte/C-string marker.
    if matches!(b.get(j), Some(b'b') | Some(b'c')) {
        j += 1;
    }
    let raw = b.get(j) == Some(&b'r');
    if raw {
        j += 1;
        let mut hashes = 0;
        while b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if b.get(j) == Some(&b'"') {
            return Some((j, hashes, true));
        }
        return None; // `r#ident` raw identifier or plain ident starting with r
    }
    if b.get(j) == Some(&b'"') && j > i {
        return Some((j, 0, false)); // b"..." / c"..."
    }
    if j == i && b.get(j) == Some(&b'"') {
        return Some((j, 0, false));
    }
    None
}

/// Lex `src` into a token stream. Comments and whitespace are dropped;
/// literals are emitted as opaque [`TokKind::Literal`] tokens.
pub fn lex(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        // Whitespace.
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let start = i;
            let mut depth = 1usize;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            line += newlines(b, start, i);
            continue;
        }
        // String-ish literals (plain, byte, C, raw — with prefix handling).
        if c == b'"' || ((c == b'b' || c == b'c' || c == b'r') && string_prefix(b, i).is_some()) {
            if let Some((quote_idx, hashes, raw)) = string_prefix(b, i) {
                let start = i;
                let end = if raw {
                    skip_raw_string(b, quote_idx, hashes)
                } else {
                    skip_escaped_string(b, quote_idx, b'"')
                };
                toks.push(Tok { kind: TokKind::Literal, line, start, end });
                line += newlines(b, start, end);
                i = end;
                continue;
            }
        }
        // Raw identifier `r#ident`.
        if c == b'r'
            && b.get(i + 1) == Some(&b'#')
            && b.get(i + 2).copied().is_some_and(is_ident_start)
        {
            let start = i + 2;
            let mut j = start;
            while j < b.len() && is_ident_continue(b[j]) {
                j += 1;
            }
            toks.push(Tok { kind: TokKind::Ident, line, start, end: j });
            i = j;
            continue;
        }
        // Lifetime vs char literal.
        if c == b'\'' {
            let next = b.get(i + 1).copied().unwrap_or(0);
            let after = b.get(i + 2).copied().unwrap_or(0);
            if is_ident_start(next) && after != b'\'' {
                // Lifetime: consume the identifier.
                let mut j = i + 1;
                while j < b.len() && is_ident_continue(b[j]) {
                    j += 1;
                }
                toks.push(Tok { kind: TokKind::Lifetime, line, start: i, end: j });
                i = j;
                continue;
            }
            let start = i;
            let end = skip_escaped_string(b, i, b'\'');
            toks.push(Tok { kind: TokKind::Literal, line, start, end });
            line += newlines(b, start, end);
            i = end;
            continue;
        }
        // Identifiers and keywords.
        if is_ident_start(c) {
            let start = i;
            let mut j = i;
            while j < b.len() && is_ident_continue(b[j]) {
                j += 1;
            }
            toks.push(Tok { kind: TokKind::Ident, line, start, end: j });
            i = j;
            continue;
        }
        // Numeric literals (consume `1_000`, `0xFF`, `1.5e3`; a trailing
        // `.` is only eaten when followed by a digit, so `0..n` and tuple
        // indexing stay punctuated).
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i + 1;
            while j < b.len() {
                let d = b[j];
                if is_ident_continue(d) {
                    j += 1;
                } else if d == b'.'
                    && b.get(j + 1).copied().is_some_and(|n| n.is_ascii_digit())
                {
                    j += 1;
                } else {
                    break;
                }
            }
            toks.push(Tok { kind: TokKind::Literal, line, start, end: j });
            i = j;
            continue;
        }
        // Everything else: single punctuation byte.
        toks.push(Tok { kind: TokKind::Punct(c), line, start: i, end: i + 1 });
        i += 1;
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r###"
            // x.unwrap() in a comment
            /* and /* nested */ x.expect("no") */
            let s = "calls .unwrap() inside";
            let r = r#"raw .expect("x")"#;
            let b = b"bytes .unwrap()";
            real.unwrap();
        "###;
        let ids = idents(src);
        assert_eq!(
            ids.iter().filter(|w| w.as_str() == "unwrap").count(),
            1,
            "only the real call site should produce an `unwrap` ident: {ids:?}"
        );
        assert!(!ids.iter().any(|w| w == "expect"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'a' }";
        let toks = lex(src);
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal && t.text(src).starts_with('\''))
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn escaped_quote_char_literal() {
        let src = r"let q = '\''; x.unwrap();";
        assert_eq!(idents(src), vec!["let", "q", "x", "unwrap"]);
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let src = "let s = \"a\nb\nc\";\nx.unwrap();";
        let toks = lex(src);
        let unwrap = toks
            .iter()
            .find(|t| t.kind == TokKind::Ident && t.text(src) == "unwrap")
            .map(|t| t.line);
        assert_eq!(unwrap, Some(4));
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("let r#fn = 3;"), vec!["let", "fn"]);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let src = "for i in 0..n { a.0 = 1.5e3; }";
        let ids = idents(src);
        assert!(ids.contains(&"n".to_string()));
        let dots = lex(src)
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Punct(b'.')))
            .count();
        assert_eq!(dots, 3, "two range dots and one field access");
    }
}
