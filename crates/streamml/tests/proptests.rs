//! Property-based tests for the streaming ML crate (see DESIGN.md §5).

use proptest::prelude::*;
use redhanded_streamml::classifier::normalize_proba;
use redhanded_streamml::{
    hoeffding_bound, Adwin, AdaptiveRandomForest, ConfusionMatrix, HoeffdingTree,
    SplitCriterion, StreamingClassifier, StreamingLogisticRegression,
};
use redhanded_types::Instance;

fn arb_counts() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1e4, 2..6)
}

proptest! {
    /// Impurity is non-negative, zero on pure nodes, and bounded by the
    /// criterion's declared range.
    #[test]
    fn impurity_bounds(counts in arb_counts()) {
        for criterion in [SplitCriterion::Gini, SplitCriterion::InfoGain] {
            let imp = criterion.impurity(&counts);
            prop_assert!(imp >= 0.0);
            prop_assert!(imp <= criterion.range(counts.len()) + 1e-9);
        }
    }

    /// The Hoeffding bound is monotone: shrinking in n, growing in range,
    /// shrinking in delta.
    #[test]
    fn hoeffding_bound_monotone(
        n in 1.0f64..1e6,
        extra in 1.0f64..1e6,
        range in 0.1f64..8.0,
        delta in 1e-6f64..0.5,
    ) {
        let base = hoeffding_bound(range, delta, n);
        prop_assert!(hoeffding_bound(range, delta, n + extra) <= base);
        prop_assert!(hoeffding_bound(range * 2.0, delta, n) >= base);
        prop_assert!(hoeffding_bound(range, delta / 2.0, n) >= base);
        prop_assert!(base >= 0.0);
    }

    /// Confusion-matrix metrics are bounded and weighted recall equals
    /// accuracy for any prediction pattern.
    #[test]
    fn metrics_invariants(outcomes in prop::collection::vec((0usize..3, 0usize..3), 1..300)) {
        let mut m = ConfusionMatrix::new(3);
        for (actual, predicted) in &outcomes {
            m.add(*actual, *predicted, 1.0);
        }
        let metrics = m.metrics();
        for v in [metrics.accuracy, metrics.precision, metrics.recall, metrics.f1, metrics.macro_f1] {
            prop_assert!((0.0..=1.0).contains(&v), "{v}");
        }
        prop_assert!((metrics.recall - metrics.accuracy).abs() < 1e-12);
        // Per-class F1 is the harmonic mean of precision and recall.
        for c in 0..3 {
            let (p, r, f1) = (m.precision(c), m.recall(c), m.f1(c));
            if p + r > 0.0 {
                prop_assert!((f1 - 2.0 * p * r / (p + r)).abs() < 1e-12);
            } else {
                prop_assert_eq!(f1, 0.0);
            }
        }
    }

    /// Matrix merging is equivalent to recording everything in one matrix.
    #[test]
    fn matrix_merge_equivalence(
        a in prop::collection::vec((0usize..3, 0usize..3), 0..100),
        b in prop::collection::vec((0usize..3, 0usize..3), 0..100),
    ) {
        let mut ma = ConfusionMatrix::new(3);
        let mut mb = ConfusionMatrix::new(3);
        let mut all = ConfusionMatrix::new(3);
        for (x, y) in &a { ma.add(*x, *y, 1.0); all.add(*x, *y, 1.0); }
        for (x, y) in &b { mb.add(*x, *y, 1.0); all.add(*x, *y, 1.0); }
        ma.merge(&mb);
        prop_assert_eq!(ma.total(), all.total());
        for x in 0..3 {
            for y in 0..3 {
                prop_assert_eq!(ma.count(x, y), all.count(x, y));
            }
        }
    }

    /// Model predictions are always valid probability distributions, no
    /// matter what (labeled) data the models were fed.
    #[test]
    fn predictions_are_distributions(
        data in prop::collection::vec(
            (prop::collection::vec(-100.0f64..100.0, 3), 0usize..2),
            1..80,
        ),
        query in prop::collection::vec(-100.0f64..100.0, 3),
    ) {
        let mut models: Vec<Box<dyn StreamingClassifier>> = vec![
            Box::new(HoeffdingTree::with_paper_defaults(2, 3).unwrap()),
            Box::new(StreamingLogisticRegression::with_paper_defaults(2, 3).unwrap()),
        ];
        for model in &mut models {
            for (features, label) in &data {
                model.train(&Instance::labeled(features.clone(), *label)).unwrap();
            }
            let p = model.predict_proba(&query).unwrap();
            prop_assert_eq!(p.len(), 2);
            let sum: f64 = p.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "{}: {p:?}", model.name());
            prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    /// normalize_proba output always sums to one for non-empty input.
    #[test]
    fn normalize_proba_invariant(mut v in prop::collection::vec(0.0f64..1e9, 1..10)) {
        normalize_proba(&mut v);
        let sum: f64 = v.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    /// ADWIN width never exceeds the number of insertions and the mean
    /// stays within the observed value range.
    #[test]
    fn adwin_window_sane(values in prop::collection::vec(0.0f64..1.0, 1..500)) {
        let mut adwin = Adwin::with_default_delta();
        for (i, &v) in values.iter().enumerate() {
            adwin.update(v);
            prop_assert!(adwin.width() <= (i + 1) as u64);
        }
        prop_assert!((0.0..=1.0).contains(&adwin.mean()));
    }

    /// Online bagging: ARF training with arbitrary instance weights never
    /// produces invalid ensembles.
    #[test]
    fn arf_weighted_training_stable(
        weights in prop::collection::vec(0.1f64..5.0, 1..30),
    ) {
        let mut arf = AdaptiveRandomForest::with_paper_defaults(2, 2).unwrap();
        for (i, &w) in weights.iter().enumerate() {
            let inst = Instance::labeled(vec![(i % 7) as f64, 1.0], i % 2)
                .with_weight(w);
            arf.train(&inst).unwrap();
        }
        let p = arf.predict_proba(&[3.0, 1.0]).unwrap();
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    /// SLR merge (parameter averaging) is order-insensitive.
    #[test]
    fn slr_merge_commutative(
        a in prop::collection::vec((0.0f64..1.0, 0usize..2), 1..40),
        b in prop::collection::vec((0.0f64..1.0, 0usize..2), 1..40),
    ) {
        let train = |data: &[(f64, usize)]| {
            let mut m = StreamingLogisticRegression::with_paper_defaults(2, 1).unwrap();
            for (x, y) in data {
                m.train(&Instance::labeled(vec![*x], *y)).unwrap();
            }
            m
        };
        let (ma, mb) = (train(&a), train(&b));
        let mut ab = ma.clone();
        StreamingClassifier::merge(&mut ab, &mb as &dyn StreamingClassifier).unwrap();
        let mut ba = mb.clone();
        StreamingClassifier::merge(&mut ba, &ma as &dyn StreamingClassifier).unwrap();
        for (wa, wb) in ab.weights().iter().flatten().zip(ba.weights().iter().flatten()) {
            prop_assert!((wa - wb).abs() < 1e-9);
        }
    }
}
