//! Prequential evaluation (Section V-A of the paper).
//!
//! The paper uses the popular *prequential* scheme for the streaming
//! setting: each labeled instance is first used to **test** the model, then
//! to **train** it. The evaluation step accumulates the confusion matrix
//! and derives accuracy, precision, recall, and F1 (the paper reports the
//! weighted averages, WEKA-style — note that in Table II recall equals
//! accuracy, which is the weighted-average identity).
//!
//! [`PrequentialEvaluator`] supports both cumulative metrics and a sliding
//! window (the fluctuating curves of Figures 6–12 reflect recent
//! performance), and records an F1-over-instances series for the figures.

use crate::classifier::StreamingClassifier;
use redhanded_types::snapshot::{Checkpoint, SnapshotReader, SnapshotWriter};
use redhanded_types::{Error, Instance, Result};
use std::collections::VecDeque;

/// A `c × c` confusion matrix over weighted predictions.
#[derive(Debug, Clone)]
pub struct ConfusionMatrix {
    num_classes: usize,
    /// `counts[actual][predicted]`.
    counts: Vec<Vec<f64>>,
    total: f64,
}

impl ConfusionMatrix {
    /// An empty matrix over `num_classes` classes.
    pub fn new(num_classes: usize) -> Self {
        ConfusionMatrix { num_classes, counts: vec![vec![0.0; num_classes]; num_classes], total: 0.0 }
    }

    /// Record one prediction with weight `w`.
    pub fn add(&mut self, actual: usize, predicted: usize, w: f64) {
        self.counts[actual][predicted] += w;
        self.total += w;
    }

    /// Remove one previously recorded prediction (sliding windows).
    pub fn remove(&mut self, actual: usize, predicted: usize, w: f64) {
        self.counts[actual][predicted] -= w;
        self.total -= w;
    }

    /// Merge another matrix (distributed metric aggregation — Figure 2,
    /// op #6).
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        debug_assert_eq!(self.num_classes, other.num_classes);
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
        self.total += other.total;
    }

    /// Total recorded weight.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Raw cell `counts[actual][predicted]`.
    pub fn count(&self, actual: usize, predicted: usize) -> f64 {
        self.counts[actual][predicted]
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        let correct: f64 = (0..self.num_classes).map(|c| self.counts[c][c]).sum();
        correct / self.total
    }

    /// Precision of class `c`: TP / (TP + FP). Zero when nothing was
    /// predicted as `c`.
    pub fn precision(&self, c: usize) -> f64 {
        let predicted: f64 = (0..self.num_classes).map(|a| self.counts[a][c]).sum();
        if predicted <= 0.0 {
            0.0
        } else {
            self.counts[c][c] / predicted
        }
    }

    /// Recall of class `c`: TP / (TP + FN). Zero when class `c` never
    /// occurred.
    pub fn recall(&self, c: usize) -> f64 {
        let actual: f64 = self.counts[c].iter().sum();
        if actual <= 0.0 {
            0.0
        } else {
            self.counts[c][c] / actual
        }
    }

    /// F1 of class `c`: harmonic mean of precision and recall.
    pub fn f1(&self, c: usize) -> f64 {
        let p = self.precision(c);
        let r = self.recall(c);
        if p + r <= 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Class support (weighted count of actual instances of class `c`).
    pub fn support(&self, c: usize) -> f64 {
        self.counts[c].iter().sum()
    }

    fn weighted_avg(&self, per_class: impl Fn(usize) -> f64) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        (0..self.num_classes).map(|c| self.support(c) * per_class(c)).sum::<f64>() / self.total
    }

    fn macro_avg(&self, per_class: impl Fn(usize) -> f64) -> f64 {
        if self.num_classes == 0 {
            return 0.0;
        }
        (0..self.num_classes).map(per_class).sum::<f64>() / self.num_classes as f64
    }

    /// Cohen's kappa: agreement beyond chance, MOA's standard streaming
    /// metric for imbalanced problems. Zero when the classifier does no
    /// better than the chance agreement implied by its own prediction
    /// marginals.
    pub fn kappa(&self) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        let po = self.accuracy();
        let pe: f64 = (0..self.num_classes)
            .map(|c| {
                let actual: f64 = self.counts[c].iter().sum::<f64>() / self.total;
                let predicted: f64 =
                    (0..self.num_classes).map(|a| self.counts[a][c]).sum::<f64>() / self.total;
                actual * predicted
            })
            .sum();
        if (1.0 - pe).abs() < 1e-12 {
            0.0
        } else {
            (po - pe) / (1.0 - pe)
        }
    }

    /// Summary metrics (the paper's Table II row set).
    pub fn metrics(&self) -> Metrics {
        Metrics {
            accuracy: self.accuracy(),
            precision: self.weighted_avg(|c| self.precision(c)),
            recall: self.weighted_avg(|c| self.recall(c)),
            f1: self.weighted_avg(|c| self.f1(c)),
            macro_f1: self.macro_avg(|c| self.f1(c)),
            kappa: self.kappa(),
            total: self.total,
        }
    }
}

/// Summary classification metrics. `precision`, `recall`, and `f1` are
/// support-weighted averages (WEKA's "weighted avg" row).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Metrics {
    /// Overall accuracy.
    pub accuracy: f64,
    /// Weighted-average precision.
    pub precision: f64,
    /// Weighted-average recall (equals accuracy by construction).
    pub recall: f64,
    /// Weighted-average F1.
    pub f1: f64,
    /// Unweighted macro F1.
    pub macro_f1: f64,
    /// Cohen's kappa (agreement beyond chance).
    pub kappa: f64,
    /// Total weight evaluated.
    pub total: f64,
}

/// A point on a metric-over-stream curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Number of instances processed when the point was recorded.
    pub instances: u64,
    /// Metrics at that point (cumulative or windowed, per configuration).
    pub metrics: Metrics,
}

/// Prequential (test-then-train) evaluator.
#[derive(Debug, Clone)]
pub struct PrequentialEvaluator {
    cumulative: ConfusionMatrix,
    windowed: ConfusionMatrix,
    window: Option<usize>,
    recent: VecDeque<(usize, usize, f64)>,
    instances: u64,
    record_every: u64,
    series: Vec<SeriesPoint>,
}

impl PrequentialEvaluator {
    /// Create an evaluator.
    ///
    /// * `window` — when `Some(w)`, the recorded series reflects the last
    ///   `w` instances (the figures' fluctuating curves); cumulative
    ///   metrics are always maintained too.
    /// * `record_every` — series granularity in instances (0 = no series).
    pub fn new(num_classes: usize, window: Option<usize>, record_every: u64) -> Self {
        PrequentialEvaluator {
            cumulative: ConfusionMatrix::new(num_classes),
            windowed: ConfusionMatrix::new(num_classes),
            window,
            recent: VecDeque::new(),
            instances: 0,
            record_every,
            series: Vec::new(),
        }
    }

    /// Record a prediction outcome directly (when the caller has already
    /// run the model).
    pub fn record(&mut self, actual: usize, predicted: usize, weight: f64) {
        self.cumulative.add(actual, predicted, weight);
        self.windowed.add(actual, predicted, weight);
        if let Some(w) = self.window {
            self.recent.push_back((actual, predicted, weight));
            while self.recent.len() > w {
                let Some((a, p, wt)) = self.recent.pop_front() else { break };
                self.windowed.remove(a, p, wt);
            }
        }
        self.instances += 1;
        if self.record_every > 0 && self.instances % self.record_every == 0 {
            self.series.push(SeriesPoint {
                instances: self.instances,
                metrics: self.current_metrics(),
            });
        }
    }

    /// Test-then-train: predict the instance, record the outcome, then
    /// update the model. Unlabeled instances are ignored.
    pub fn step(
        &mut self,
        model: &mut dyn StreamingClassifier,
        instance: &Instance,
    ) -> Result<()> {
        let Some(actual) = instance.label else { return Ok(()) };
        let predicted = model.predict(&instance.features)?;
        self.record(actual, predicted, instance.weight);
        model.train(instance)
    }

    /// Metrics of the configured flavor (windowed when a window is set).
    pub fn current_metrics(&self) -> Metrics {
        if self.window.is_some() {
            self.windowed.metrics()
        } else {
            self.cumulative.metrics()
        }
    }

    /// Cumulative metrics over the whole stream.
    pub fn cumulative_metrics(&self) -> Metrics {
        self.cumulative.metrics()
    }

    /// The cumulative confusion matrix.
    pub fn confusion(&self) -> &ConfusionMatrix {
        &self.cumulative
    }

    /// The recorded series.
    pub fn series(&self) -> &[SeriesPoint] {
        &self.series
    }

    /// Number of labeled instances evaluated.
    pub fn instances(&self) -> u64 {
        self.instances
    }
}

impl Checkpoint for ConfusionMatrix {
    fn snapshot_into(&self, w: &mut SnapshotWriter) {
        // `num_classes` is construction-time shape.
        for row in &self.counts {
            w.write_f64s(row);
        }
        w.write_f64(self.total);
    }

    fn restore_from(&mut self, r: &mut SnapshotReader) -> Result<()> {
        for row in &mut self.counts {
            let restored = r.read_f64s()?;
            if restored.len() != self.num_classes {
                return Err(Error::Snapshot(format!(
                    "confusion-matrix snapshot row has {} classes, matrix built for {}",
                    restored.len(),
                    self.num_classes
                )));
            }
            *row = restored;
        }
        self.total = r.read_f64()?;
        Ok(())
    }
}

/// Serialize a metric-over-stream series into a snapshot. Shared by
/// [`PrequentialEvaluator`] and the distributed detector's checkpoint so
/// both sides use one wire format.
pub fn snapshot_series(series: &[SeriesPoint], w: &mut SnapshotWriter) {
    w.write_usize(series.len());
    for point in series {
        w.write_u64(point.instances);
        let m = point.metrics;
        w.write_f64(m.accuracy);
        w.write_f64(m.precision);
        w.write_f64(m.recall);
        w.write_f64(m.f1);
        w.write_f64(m.macro_f1);
        w.write_f64(m.kappa);
        w.write_f64(m.total);
    }
}

/// Deserialize a series written by [`snapshot_series`].
pub fn restore_series(r: &mut SnapshotReader) -> Result<Vec<SeriesPoint>> {
    let len = r.read_usize()?;
    // Cap pre-allocation by what the buffer could actually hold (8 u64s
    // per point), so a corrupt length prefix cannot trigger a huge alloc.
    let mut series = Vec::with_capacity(len.min(r.remaining() / 64 + 1));
    for _ in 0..len {
        let instances = r.read_u64()?;
        let metrics = Metrics {
            accuracy: r.read_f64()?,
            precision: r.read_f64()?,
            recall: r.read_f64()?,
            f1: r.read_f64()?,
            macro_f1: r.read_f64()?,
            kappa: r.read_f64()?,
            total: r.read_f64()?,
        };
        series.push(SeriesPoint { instances, metrics });
    }
    Ok(series)
}

impl Checkpoint for PrequentialEvaluator {
    fn snapshot_into(&self, w: &mut SnapshotWriter) {
        // `window` and `record_every` are construction-time configuration.
        self.cumulative.snapshot_into(w);
        self.windowed.snapshot_into(w);
        w.write_usize(self.recent.len());
        for &(actual, predicted, weight) in &self.recent {
            w.write_usize(actual);
            w.write_usize(predicted);
            w.write_f64(weight);
        }
        w.write_u64(self.instances);
        snapshot_series(&self.series, w);
    }

    fn restore_from(&mut self, r: &mut SnapshotReader) -> Result<()> {
        self.cumulative.restore_from(r)?;
        self.windowed.restore_from(r)?;
        let recent_len = r.read_usize()?;
        self.recent.clear();
        for _ in 0..recent_len {
            let actual = r.read_usize()?;
            let predicted = r.read_usize()?;
            let weight = r.read_f64()?;
            self.recent.push_back((actual, predicted, weight));
        }
        self.instances = r.read_u64()?;
        self.series = restore_series(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hoeffding::HoeffdingTree;

    #[test]
    fn perfect_predictions() {
        let mut m = ConfusionMatrix::new(2);
        for _ in 0..10 {
            m.add(0, 0, 1.0);
            m.add(1, 1, 1.0);
        }
        let metrics = m.metrics();
        assert_eq!(metrics.accuracy, 1.0);
        assert_eq!(metrics.precision, 1.0);
        assert_eq!(metrics.recall, 1.0);
        assert_eq!(metrics.f1, 1.0);
        assert_eq!(metrics.macro_f1, 1.0);
    }

    #[test]
    fn known_matrix_values() {
        // actual 0: 8 correct, 2 predicted as 1
        // actual 1: 3 predicted as 0, 7 correct
        let mut m = ConfusionMatrix::new(2);
        m.add(0, 0, 8.0);
        m.add(0, 1, 2.0);
        m.add(1, 0, 3.0);
        m.add(1, 1, 7.0);
        assert!((m.accuracy() - 0.75).abs() < 1e-12);
        assert!((m.precision(0) - 8.0 / 11.0).abs() < 1e-12);
        assert!((m.recall(0) - 0.8).abs() < 1e-12);
        assert!((m.precision(1) - 7.0 / 9.0).abs() < 1e-12);
        assert!((m.recall(1) - 0.7).abs() < 1e-12);
        let f1_0 = 2.0 * (8.0 / 11.0) * 0.8 / (8.0 / 11.0 + 0.8);
        assert!((m.f1(0) - f1_0).abs() < 1e-12);
    }

    #[test]
    fn weighted_recall_equals_accuracy() {
        // The identity the paper's Table II exhibits.
        let mut m = ConfusionMatrix::new(3);
        let mut x: u64 = 3;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let actual = (x >> 33) as usize % 3;
            let predicted = (x >> 13) as usize % 3;
            m.add(actual, predicted, 1.0);
        }
        let metrics = m.metrics();
        assert!((metrics.recall - metrics.accuracy).abs() < 1e-12);
    }

    #[test]
    fn metrics_are_bounded() {
        let mut m = ConfusionMatrix::new(3);
        m.add(0, 1, 5.0);
        m.add(2, 2, 1.0);
        m.add(1, 0, 2.0);
        let metrics = m.metrics();
        for v in [metrics.accuracy, metrics.precision, metrics.recall, metrics.f1, metrics.macro_f1] {
            assert!((0.0..=1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn empty_matrix_is_zero() {
        let m = ConfusionMatrix::new(2);
        let metrics = m.metrics();
        assert_eq!(metrics.accuracy, 0.0);
        assert_eq!(metrics.f1, 0.0);
        assert_eq!(m.precision(0), 0.0);
        assert_eq!(m.recall(1), 0.0);
        assert_eq!(m.f1(0), 0.0);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = ConfusionMatrix::new(2);
        let mut b = ConfusionMatrix::new(2);
        a.add(0, 0, 5.0);
        b.add(1, 1, 5.0);
        b.add(0, 1, 2.0);
        a.merge(&b);
        assert_eq!(a.total(), 12.0);
        assert_eq!(a.count(0, 0), 5.0);
        assert_eq!(a.count(1, 1), 5.0);
        assert_eq!(a.count(0, 1), 2.0);
    }

    #[test]
    fn kappa_reference_values() {
        // Perfect agreement → kappa 1.
        let mut m = ConfusionMatrix::new(2);
        m.add(0, 0, 50.0);
        m.add(1, 1, 50.0);
        assert!((m.kappa() - 1.0).abs() < 1e-12);
        // Majority-class guessing on imbalanced data → kappa 0 despite high
        // accuracy (the reason MOA reports kappa).
        let mut m = ConfusionMatrix::new(2);
        m.add(0, 0, 90.0);
        m.add(1, 0, 10.0);
        assert!(m.accuracy() > 0.89);
        assert!(m.kappa().abs() < 1e-12, "kappa {}", m.kappa());
        // Systematic disagreement → negative kappa.
        let mut m = ConfusionMatrix::new(2);
        m.add(0, 1, 50.0);
        m.add(1, 0, 50.0);
        assert!(m.kappa() < 0.0);
    }

    #[test]
    fn kappa_in_metrics_struct() {
        let mut m = ConfusionMatrix::new(3);
        m.add(0, 0, 10.0);
        m.add(1, 1, 10.0);
        m.add(2, 0, 5.0);
        let metrics = m.metrics();
        assert!((metrics.kappa - m.kappa()).abs() < 1e-12);
        assert!(metrics.kappa > 0.0 && metrics.kappa < 1.0);
    }

    #[test]
    fn prequential_series_is_recorded() {
        let mut eval = PrequentialEvaluator::new(2, None, 10);
        for i in 0..100u64 {
            eval.record(0, (i % 2) as usize, 1.0);
        }
        assert_eq!(eval.series().len(), 10);
        assert_eq!(eval.series()[0].instances, 10);
        assert_eq!(eval.instances(), 100);
        assert!((eval.cumulative_metrics().accuracy - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sliding_window_forgets_old_mistakes() {
        let mut eval = PrequentialEvaluator::new(2, Some(50), 0);
        // 100 wrong predictions, then 100 correct.
        for _ in 0..100 {
            eval.record(0, 1, 1.0);
        }
        for _ in 0..100 {
            eval.record(0, 0, 1.0);
        }
        assert_eq!(eval.current_metrics().accuracy, 1.0, "window holds only correct");
        assert!((eval.cumulative_metrics().accuracy - 0.5).abs() < 1e-12);
    }

    #[test]
    fn step_tests_before_training() {
        // First instance must be scored by the *untrained* model.
        let mut ht = HoeffdingTree::with_paper_defaults(2, 1).unwrap();
        let mut eval = PrequentialEvaluator::new(2, None, 0);
        eval.step(&mut ht, &Instance::labeled(vec![0.0], 1)).unwrap();
        assert_eq!(eval.instances(), 1);
        // Untrained uniform prediction → argmax picks class 0 → a miss was
        // recorded for actual class 1.
        assert_eq!(eval.confusion().count(1, 0), 1.0);
    }

    #[test]
    fn step_skips_unlabeled() {
        let mut ht = HoeffdingTree::with_paper_defaults(2, 1).unwrap();
        let mut eval = PrequentialEvaluator::new(2, None, 0);
        eval.step(&mut ht, &Instance::unlabeled(vec![0.0])).unwrap();
        assert_eq!(eval.instances(), 0);
    }

    #[test]
    fn prequential_on_learnable_stream_improves() {
        let mut ht = HoeffdingTree::with_paper_defaults(2, 2).unwrap();
        let mut eval = PrequentialEvaluator::new(2, Some(500), 500);
        for i in 0..5000u64 {
            let x0 = (i % 11) as f64;
            let inst =
                Instance::labeled(vec![x0, (i % 3) as f64], usize::from(x0 > 5.0));
            eval.step(&mut ht, &inst).unwrap();
        }
        let series = eval.series();
        let first = series.first().unwrap().metrics.f1;
        let last = series.last().unwrap().metrics.f1;
        assert!(last > first, "F1 should improve: {first} → {last}");
        assert!(last > 0.9, "final windowed F1 {last}");
    }
}
