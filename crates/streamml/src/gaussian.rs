//! Per-class Gaussian attribute observers for numeric features.
//!
//! The Hoeffding Tree needs, at every leaf and for every feature, an
//! estimate of the class-conditional distribution of that feature so it can
//! evaluate candidate binary splits without buffering instances. Following
//! MOA's `GaussianNumericAttributeClassObserver`, each (feature, class) pair
//! keeps a weighted Gaussian summary (Welford mean/variance) plus the exact
//! min/max, and candidate thresholds are taken at equally spaced points
//! between the observed bounds.

use crate::criterion::SplitCriterion;
use redhanded_types::snapshot::{Checkpoint, SnapshotReader, SnapshotWriter};
use redhanded_types::{Error, Result};

/// Weighted running Gaussian summary of one feature under one class.
#[derive(Debug, Clone, Default)]
pub struct GaussianEstimator {
    weight: f64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl GaussianEstimator {
    /// An empty estimator.
    pub fn new() -> Self {
        GaussianEstimator { weight: 0.0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Observe `x` with weight `w`.
    pub fn update(&mut self, x: f64, w: f64) {
        if w <= 0.0 {
            return;
        }
        self.weight += w;
        let delta = x - self.mean;
        self.mean += delta * w / self.weight;
        self.m2 += w * delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Total observed weight.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Running mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.weight > 0.0 {
            (self.m2 / self.weight).max(0.0)
        } else {
            0.0
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observed value (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observed value (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge `other` into `self` (Chan et al. parallel update).
    pub fn merge(&mut self, other: &GaussianEstimator) {
        if other.weight <= 0.0 {
            return;
        }
        if self.weight <= 0.0 {
            *self = other.clone();
            return;
        }
        let w1 = self.weight;
        let w2 = other.weight;
        let delta = other.mean - self.mean;
        let total = w1 + w2;
        self.mean += delta * w2 / total;
        self.m2 += other.m2 + delta * delta * w1 * w2 / total;
        self.weight = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Estimated probability mass strictly below `t`, clamped by the
    /// observed bounds so degenerate distributions behave sensibly.
    pub fn mass_below(&self, t: f64) -> f64 {
        if self.weight <= 0.0 {
            return 0.0;
        }
        if t <= self.min {
            return 0.0;
        }
        if t > self.max {
            return 1.0;
        }
        let sd = self.std_dev();
        if sd <= f64::EPSILON {
            return if t > self.mean { 1.0 } else { 0.0 };
        }
        normal_cdf((t - self.mean) / sd)
    }

    /// Gaussian density at `x`, with a variance floor so zero-variance
    /// summaries still yield finite likelihoods for naive Bayes.
    pub fn log_density(&self, x: f64) -> f64 {
        if self.weight <= 0.0 {
            return 0.0;
        }
        let sd = self.std_dev().max(1e-3);
        let z = (x - self.mean) / sd;
        -0.5 * z * z - sd.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
    }
}

impl Checkpoint for GaussianEstimator {
    fn snapshot_into(&self, w: &mut SnapshotWriter) {
        w.write_f64(self.weight);
        w.write_f64(self.mean);
        w.write_f64(self.m2);
        w.write_f64(self.min);
        w.write_f64(self.max);
    }

    fn restore_from(&mut self, r: &mut SnapshotReader) -> Result<()> {
        self.weight = r.read_f64()?;
        self.mean = r.read_f64()?;
        self.m2 = r.read_f64()?;
        self.min = r.read_f64()?;
        self.max = r.read_f64()?;
        Ok(())
    }
}

/// Standard normal CDF via the Abramowitz & Stegun 7.1.26 erf approximation
/// (|error| < 1.5e-7).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Per-class Gaussian summaries of one feature at one leaf.
#[derive(Debug, Clone)]
pub struct AttributeObserver {
    per_class: Vec<GaussianEstimator>,
}

impl AttributeObserver {
    /// An observer over `num_classes` classes.
    pub fn new(num_classes: usize) -> Self {
        AttributeObserver { per_class: (0..num_classes).map(|_| GaussianEstimator::new()).collect() }
    }

    /// Observe feature value `x` for class `class` with weight `w`.
    pub fn update(&mut self, x: f64, class: usize, w: f64) {
        self.per_class[class].update(x, w);
    }

    /// The per-class estimators.
    pub fn estimators(&self) -> &[GaussianEstimator] {
        &self.per_class
    }

    /// Merge another observer (same feature, same classes).
    pub fn merge(&mut self, other: &AttributeObserver) {
        debug_assert_eq!(self.per_class.len(), other.per_class.len());
        for (a, b) in self.per_class.iter_mut().zip(&other.per_class) {
            a.merge(b);
        }
    }

    /// Evaluate the best binary split of this feature.
    ///
    /// Candidate thresholds are `num_candidates` equally spaced points
    /// strictly between the overall observed min and max. Returns the
    /// `(threshold, merit)` pair with the highest impurity-reduction merit
    /// under `criterion`, or `None` when the feature has no usable range.
    /// Splits sending less than `min_branch_frac` of the total weight to
    /// either side are rejected.
    pub fn best_split(
        &self,
        criterion: SplitCriterion,
        num_candidates: usize,
        min_branch_frac: f64,
    ) -> Option<(f64, f64)> {
        let lo = self.per_class.iter().map(|e| e.min()).fold(f64::INFINITY, f64::min);
        let hi = self.per_class.iter().map(|e| e.max()).fold(f64::NEG_INFINITY, f64::max);
        if !lo.is_finite() || !hi.is_finite() || hi <= lo {
            return None;
        }
        let parent: Vec<f64> = self.per_class.iter().map(|e| e.weight()).collect();
        let total: f64 = parent.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let parent_impurity = criterion.impurity(&parent);
        let mut best: Option<(f64, f64)> = None;
        for i in 1..=num_candidates {
            let t = lo + (hi - lo) * i as f64 / (num_candidates + 1) as f64;
            let mut left = vec![0.0; self.per_class.len()];
            let mut right = vec![0.0; self.per_class.len()];
            for (c, est) in self.per_class.iter().enumerate() {
                let below = est.mass_below(t) * est.weight();
                left[c] = below;
                right[c] = est.weight() - below;
            }
            let wl: f64 = left.iter().sum();
            let wr: f64 = right.iter().sum();
            if wl < min_branch_frac * total || wr < min_branch_frac * total {
                continue;
            }
            let child_impurity =
                (wl * criterion.impurity(&left) + wr * criterion.impurity(&right)) / total;
            let merit = parent_impurity - child_impurity;
            if best.map_or(true, |(_, m)| merit > m) {
                best = Some((t, merit));
            }
        }
        best
    }

    /// Projected class distributions of the two children of a split at `t`
    /// (used to prime fresh leaves after a split).
    pub fn project_split(&self, t: f64) -> (Vec<f64>, Vec<f64>) {
        let mut left = vec![0.0; self.per_class.len()];
        let mut right = vec![0.0; self.per_class.len()];
        for (c, est) in self.per_class.iter().enumerate() {
            let below = est.mass_below(t) * est.weight();
            left[c] = below;
            right[c] = est.weight() - below;
        }
        (left, right)
    }
}

impl Checkpoint for AttributeObserver {
    fn snapshot_into(&self, w: &mut SnapshotWriter) {
        w.write_usize(self.per_class.len());
        for est in &self.per_class {
            est.snapshot_into(w);
        }
    }

    fn restore_from(&mut self, r: &mut SnapshotReader) -> Result<()> {
        let n = r.read_usize()?;
        if n != self.per_class.len() {
            return Err(Error::Snapshot(format!(
                "attribute observer class count {} != snapshot {n}",
                self.per_class.len()
            )));
        }
        for est in &mut self.per_class {
            est.restore_from(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_matches_closed_form() {
        let mut e = GaussianEstimator::new();
        for x in [2.0, 4.0, 6.0, 8.0] {
            e.update(x, 1.0);
        }
        assert_eq!(e.weight(), 4.0);
        assert!((e.mean() - 5.0).abs() < 1e-12);
        assert!((e.variance() - 5.0).abs() < 1e-12);
        assert_eq!(e.min(), 2.0);
        assert_eq!(e.max(), 8.0);
    }

    #[test]
    fn weighted_updates() {
        let mut a = GaussianEstimator::new();
        a.update(1.0, 3.0);
        a.update(5.0, 1.0);
        // Weighted mean = (3*1 + 1*5)/4 = 2.0
        assert!((a.mean() - 2.0).abs() < 1e-12);
        assert_eq!(a.weight(), 4.0);
        // Zero/negative weights are ignored.
        a.update(100.0, 0.0);
        assert_eq!(a.weight(), 4.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let mut a = GaussianEstimator::new();
        let mut b = GaussianEstimator::new();
        let mut all = GaussianEstimator::new();
        for x in [1.0, 2.0, 3.0] {
            a.update(x, 1.0);
            all.update(x, 1.0);
        }
        for x in [10.0, 20.0] {
            b.update(x, 2.0);
            all.update(x, 2.0);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(8.0) > 0.999999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn mass_below_respects_bounds() {
        let mut e = GaussianEstimator::new();
        for x in [0.0, 1.0, 2.0, 3.0, 4.0] {
            e.update(x, 1.0);
        }
        assert_eq!(e.mass_below(-1.0), 0.0);
        assert_eq!(e.mass_below(0.0), 0.0, "at-or-below min is zero");
        assert_eq!(e.mass_below(5.0), 1.0);
        let mid = e.mass_below(2.0);
        assert!((mid - 0.5).abs() < 0.1, "mass below mean ≈ 0.5, got {mid}");
    }

    #[test]
    fn mass_below_degenerate_distribution() {
        let mut e = GaussianEstimator::new();
        e.update(3.0, 10.0);
        assert_eq!(e.mass_below(2.9), 0.0);
        assert_eq!(e.mass_below(3.1), 1.0);
    }

    #[test]
    fn observer_finds_separating_threshold() {
        // Class 0 clustered near 0, class 1 near 10: the best split must
        // fall between them with near-total impurity reduction.
        let mut obs = AttributeObserver::new(2);
        let mut x: u64 = 5;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let noise = ((x >> 33) % 100) as f64 / 100.0;
            obs.update(noise, 0, 1.0);
            obs.update(10.0 + noise, 1, 1.0);
        }
        let (t, merit) = obs.best_split(SplitCriterion::InfoGain, 10, 0.01).unwrap();
        assert!(t > 0.95 && t < 10.0, "threshold {t}");
        assert!(merit > 0.9, "merit {merit} (max 1.0 for 2 classes)");
        let (t_g, merit_g) = obs.best_split(SplitCriterion::Gini, 10, 0.01).unwrap();
        assert!(t_g > 0.95 && t_g < 10.0);
        assert!(merit_g > 0.4, "gini merit {merit_g} (max 0.5)");
    }

    #[test]
    fn observer_rejects_constant_feature() {
        let mut obs = AttributeObserver::new(2);
        for _ in 0..100 {
            obs.update(1.0, 0, 1.0);
            obs.update(1.0, 1, 1.0);
        }
        assert!(obs.best_split(SplitCriterion::InfoGain, 10, 0.01).is_none());
    }

    #[test]
    fn observer_empty() {
        let obs = AttributeObserver::new(3);
        assert!(obs.best_split(SplitCriterion::InfoGain, 10, 0.01).is_none());
    }

    #[test]
    fn uninformative_feature_has_low_merit() {
        // Same distribution for both classes → merit near zero.
        let mut obs = AttributeObserver::new(2);
        let mut x: u64 = 77;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = ((x >> 33) % 100) as f64;
            obs.update(v, (x % 2) as usize, 1.0);
        }
        if let Some((_, merit)) = obs.best_split(SplitCriterion::InfoGain, 10, 0.01) {
            assert!(merit < 0.05, "merit {merit} should be near zero");
        }
    }

    #[test]
    fn project_split_partitions_weight() {
        let mut obs = AttributeObserver::new(2);
        for i in 0..100 {
            obs.update(i as f64, (i % 2) as usize, 1.0);
        }
        let (l, r) = obs.project_split(50.0);
        let total: f64 = l.iter().sum::<f64>() + r.iter().sum::<f64>();
        assert!((total - 100.0).abs() < 1e-9);
        assert!(l.iter().sum::<f64>() > 30.0 && r.iter().sum::<f64>() > 30.0);
    }

    #[test]
    fn log_density_is_finite_and_peaked_at_mean() {
        let mut e = GaussianEstimator::new();
        for x in [1.0, 2.0, 3.0] {
            e.update(x, 1.0);
        }
        let at_mean = e.log_density(2.0);
        let far = e.log_density(50.0);
        assert!(at_mean.is_finite() && far.is_finite());
        assert!(at_mean > far);
        // Degenerate estimator still yields finite densities.
        let mut d = GaussianEstimator::new();
        d.update(5.0, 3.0);
        assert!(d.log_density(5.0).is_finite());
        assert!(d.log_density(6.0).is_finite());
    }
}
