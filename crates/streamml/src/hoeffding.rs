//! Hoeffding Tree — incremental decision-tree learner for data streams
//! (Domingos & Hulten, "Mining High-Speed Data Streams", KDD 2000).
//!
//! A tree node is expanded as soon as there is sufficient statistical
//! evidence, based on the distribution-independent Hoeffding bound, that an
//! optimal splitting feature exists (Section III-C of the paper). The model
//! learned is asymptotically nearly identical to that of a batch learner
//! given enough data.
//!
//! Implemented options mirror Table I of the paper: split criterion
//! (Gini / InfoGain), split confidence, tie threshold, grace period, and
//! maximum tree depth. Leaves predict with majority class, naive Bayes, or
//! the *adaptive* strategy that tracks which of the two performs better at
//! each leaf (MOA's default, used here).
//!
//! ## Distributed training protocol
//!
//! Parallel tasks in the stream engine call [`HoeffdingTree::accumulate`],
//! which updates leaf statistics but never restructures the tree. Local
//! models are then folded together with `merge` (statistics are summed
//! leaf-by-leaf — structures are identical because they all started from
//! the same broadcast global model), and the driver finally calls
//! [`HoeffdingTree::attempt_splits`] to grow the merged tree. Sequential
//! callers just use `train`, which does both per instance.

use crate::classifier::{argmax, normalize_proba, StreamingClassifier};
use crate::criterion::{hoeffding_bound, SplitCriterion};
use crate::gaussian::AttributeObserver;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use redhanded_types::snapshot::{Checkpoint, SnapshotReader, SnapshotWriter};
use redhanded_types::{Error, Instance, Result};

/// How a leaf turns its statistics into a prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LeafPrediction {
    /// Normalized class counts.
    MajorityClass,
    /// Gaussian naive Bayes over the leaf's attribute observers.
    NaiveBayes,
    /// Whichever of the two has been more accurate at this leaf so far.
    #[default]
    NBAdaptive,
}

/// Hoeffding Tree hyperparameters (Table I of the paper).
#[derive(Debug, Clone)]
pub struct HoeffdingTreeConfig {
    /// Number of classes.
    pub num_classes: usize,
    /// Number of features.
    pub num_features: usize,
    /// Split criterion (paper selects InfoGain).
    pub split_criterion: SplitCriterion,
    /// Split confidence δ (paper selects 0.01).
    pub split_confidence: f64,
    /// Tie threshold τ (paper selects 0.05).
    pub tie_threshold: f64,
    /// Grace period: weight a leaf must accumulate between split attempts
    /// (paper selects 200).
    pub grace_period: f64,
    /// Maximum tree depth (paper selects 20). Leaves at this depth stop
    /// splitting but keep learning their class distribution.
    pub max_depth: usize,
    /// Leaf prediction strategy.
    pub leaf_prediction: LeafPrediction,
    /// Number of candidate thresholds evaluated per numeric feature.
    pub num_candidates: usize,
    /// Minimum fraction of a leaf's weight each split branch must receive.
    pub min_branch_frac: f64,
    /// When `Some(k)`, each new leaf observes only `k` randomly chosen
    /// features — the per-node feature subsetting of the Adaptive Random
    /// Forest. `None` observes all features.
    pub subspace: Option<usize>,
    /// Seed for subspace sampling.
    pub seed: u64,
}

impl HoeffdingTreeConfig {
    /// The paper's selected hyperparameters (Table I) for a problem shape.
    pub fn paper_defaults(num_classes: usize, num_features: usize) -> Self {
        HoeffdingTreeConfig {
            num_classes,
            num_features,
            split_criterion: SplitCriterion::InfoGain,
            split_confidence: 0.01,
            tie_threshold: 0.05,
            grace_period: 200.0,
            max_depth: 20,
            leaf_prediction: LeafPrediction::NBAdaptive,
            num_candidates: 10,
            min_branch_frac: 0.01,
            subspace: None,
            seed: 0xC0FFEE,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.num_classes < 2 {
            return Err(Error::InvalidConfig("need at least 2 classes".into()));
        }
        if self.num_features == 0 {
            return Err(Error::InvalidConfig("need at least 1 feature".into()));
        }
        if !(0.0..1.0).contains(&self.split_confidence) || self.split_confidence <= 0.0 {
            return Err(Error::InvalidConfig("split_confidence must be in (0,1)".into()));
        }
        if let Some(k) = self.subspace {
            if k == 0 || k > self.num_features {
                return Err(Error::InvalidConfig(format!(
                    "subspace size {k} out of range 1..={}",
                    self.num_features
                )));
            }
        }
        Ok(())
    }
}

/// A leaf: class counts, per-feature observers, and NB-adaptive bookkeeping.
#[derive(Debug, Clone)]
struct LeafNode {
    class_counts: Vec<f64>,
    /// `None` for features outside this leaf's random subspace.
    observers: Vec<Option<AttributeObserver>>,
    /// Weight accumulated since the last split attempt.
    weight_since_attempt: f64,
    /// Weighted count of correct majority-class predictions at this leaf.
    mc_correct: f64,
    /// Weighted count of correct naive-Bayes predictions at this leaf.
    nb_correct: f64,
    depth: usize,
}

impl LeafNode {
    fn new(config: &HoeffdingTreeConfig, depth: usize, rng: &mut SmallRng) -> Self {
        Self::with_counts(config, depth, rng, vec![0.0; config.num_classes])
    }

    fn with_counts(
        config: &HoeffdingTreeConfig,
        depth: usize,
        rng: &mut SmallRng,
        class_counts: Vec<f64>,
    ) -> Self {
        let observers = match config.subspace {
            None => (0..config.num_features)
                .map(|_| Some(AttributeObserver::new(config.num_classes)))
                .collect(),
            Some(k) => {
                // Sample k distinct feature indices (Floyd's algorithm keeps
                // this O(k) regardless of num_features).
                let mut chosen = vec![false; config.num_features];
                for j in (config.num_features - k)..config.num_features {
                    let t = rng.gen_range(0..=j);
                    if chosen[t] {
                        chosen[j] = true;
                    } else {
                        chosen[t] = true;
                    }
                }
                chosen
                    .into_iter()
                    .map(|c| c.then(|| AttributeObserver::new(config.num_classes)))
                    .collect()
            }
        };
        LeafNode {
            class_counts,
            observers,
            weight_since_attempt: 0.0,
            mc_correct: 0.0,
            nb_correct: 0.0,
            depth,
        }
    }

    fn total_weight(&self) -> f64 {
        self.class_counts.iter().sum()
    }

    fn majority_proba(&self) -> Vec<f64> {
        let mut p = self.class_counts.clone();
        normalize_proba(&mut p);
        p
    }

    fn naive_bayes_proba(&self, features: &[f64]) -> Vec<f64> {
        let total = self.total_weight();
        if total <= 0.0 {
            return self.majority_proba();
        }
        let mut log_scores: Vec<f64> = self
            .class_counts
            .iter()
            .map(|&c| ((c + 1.0) / (total + self.class_counts.len() as f64)).ln())
            .collect();
        for (f, obs) in self.observers.iter().enumerate() {
            let Some(obs) = obs else { continue };
            for (c, est) in obs.estimators().iter().enumerate() {
                if est.weight() > 0.0 {
                    log_scores[c] += est.log_density(features[f]);
                }
            }
        }
        // Softmax over log scores.
        let max = log_scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut p: Vec<f64> = log_scores.iter().map(|&s| (s - max).exp()).collect();
        normalize_proba(&mut p);
        p
    }

    fn predict_proba(&self, features: &[f64], strategy: LeafPrediction) -> Vec<f64> {
        match strategy {
            LeafPrediction::MajorityClass => self.majority_proba(),
            LeafPrediction::NaiveBayes => self.naive_bayes_proba(features),
            LeafPrediction::NBAdaptive => {
                if self.nb_correct > self.mc_correct {
                    self.naive_bayes_proba(features)
                } else {
                    self.majority_proba()
                }
            }
        }
    }

    fn accumulate(&mut self, features: &[f64], class: usize, weight: f64) {
        // NB-adaptive bookkeeping: score both strategies on this instance
        // *before* learning from it (test-then-train at leaf granularity).
        if argmax(&self.class_counts) == class {
            self.mc_correct += weight;
        }
        if self.total_weight() > 0.0 && argmax(&self.naive_bayes_proba(features)) == class {
            self.nb_correct += weight;
        }
        self.class_counts[class] += weight;
        self.weight_since_attempt += weight;
        for (f, obs) in self.observers.iter_mut().enumerate() {
            if let Some(obs) = obs {
                obs.update(features[f], class, weight);
            }
        }
    }

    fn is_pure(&self) -> bool {
        self.class_counts.iter().filter(|&&c| c > 0.0).count() <= 1
    }

    /// A zero-statistics copy preserving the observer subspace pattern and
    /// depth, so partition deltas accumulate into mergeable shape.
    fn fork(&self, num_classes: usize) -> LeafNode {
        LeafNode {
            class_counts: vec![0.0; self.class_counts.len()],
            observers: self
                .observers
                .iter()
                .map(|o| o.as_ref().map(|_| AttributeObserver::new(num_classes)))
                .collect(),
            weight_since_attempt: 0.0,
            mc_correct: 0.0,
            nb_correct: 0.0,
            depth: self.depth,
        }
    }

    fn merge(&mut self, other: &LeafNode) {
        for (a, b) in self.class_counts.iter_mut().zip(&other.class_counts) {
            *a += b;
        }
        for (a, b) in self.observers.iter_mut().zip(&other.observers) {
            match (a, b) {
                (Some(a), Some(b)) => a.merge(b),
                (a @ None, Some(b)) => *a = Some(b.clone()),
                _ => {}
            }
        }
        self.weight_since_attempt += other.weight_since_attempt;
        self.mc_correct += other.mc_correct;
        self.nb_correct += other.nb_correct;
    }
}

/// An internal binary split on `feature <= threshold`.
#[derive(Debug, Clone)]
struct SplitNode {
    feature: usize,
    threshold: f64,
    /// Impurity reduction × leaf weight at split time — summed per feature
    /// for streaming split-gain importances.
    weighted_gain: f64,
    left: Box<Node>,
    right: Box<Node>,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf(LeafNode),
    Split(SplitNode),
}

impl Node {
    fn accumulate(&mut self, features: &[f64], class: usize, weight: f64) {
        match self {
            Node::Leaf(leaf) => leaf.accumulate(features, class, weight),
            Node::Split(split) => {
                let child = if features[split.feature] <= split.threshold {
                    &mut split.left
                } else {
                    &mut split.right
                };
                child.accumulate(features, class, weight);
            }
        }
    }

    /// Sequential training: route the instance to its leaf, update it, and
    /// attempt a split **at that leaf only** once its grace period has
    /// elapsed (Domingos & Hulten's algorithm — unlike the batch-boundary
    /// [`Node::attempt_splits`] sweep, no other leaf is visited). Returns
    /// the number of splits performed (0 or 1).
    fn train(
        &mut self,
        features: &[f64],
        class: usize,
        weight: f64,
        config: &HoeffdingTreeConfig,
        rng: &mut SmallRng,
    ) -> u64 {
        match self {
            Node::Leaf(leaf) => {
                leaf.accumulate(features, class, weight);
                if leaf.weight_since_attempt >= config.grace_period {
                    // attempt_splits on a leaf node evaluates just this leaf.
                    self.attempt_splits(config, rng)
                } else {
                    0
                }
            }
            Node::Split(split) => {
                let child = if features[split.feature] <= split.threshold {
                    &mut split.left
                } else {
                    &mut split.right
                };
                child.train(features, class, weight, config, rng)
            }
        }
    }

    fn predict_proba(&self, features: &[f64], strategy: LeafPrediction) -> Vec<f64> {
        match self {
            Node::Leaf(leaf) => leaf.predict_proba(features, strategy),
            Node::Split(split) => {
                let child = if features[split.feature] <= split.threshold {
                    &split.left
                } else {
                    &split.right
                };
                child.predict_proba(features, strategy)
            }
        }
    }

    /// Attempt splits at every eligible leaf of this subtree. Returns the
    /// number of splits performed.
    fn attempt_splits(&mut self, config: &HoeffdingTreeConfig, rng: &mut SmallRng) -> u64 {
        match self {
            Node::Split(split) => {
                split.left.attempt_splits(config, rng) + split.right.attempt_splits(config, rng)
            }
            Node::Leaf(leaf) => {
                if leaf.weight_since_attempt < config.grace_period
                    || leaf.depth >= config.max_depth
                {
                    return 0;
                }
                leaf.weight_since_attempt = 0.0;
                if leaf.is_pure() {
                    return 0;
                }
                let mut candidates: Vec<(usize, f64, f64)> = Vec::new();
                for (f, obs) in leaf.observers.iter().enumerate() {
                    let Some(obs) = obs else { continue };
                    if let Some((t, merit)) = obs.best_split(
                        config.split_criterion,
                        config.num_candidates,
                        config.min_branch_frac,
                    ) {
                        candidates.push((f, t, merit));
                    }
                }
                let Some(&(best_f, best_t, best_merit)) = candidates
                    .iter()
                    .max_by(|a, b| a.2.total_cmp(&b.2))
                else {
                    return 0;
                };
                if best_merit <= 0.0 {
                    return 0;
                }
                let second_merit = candidates
                    .iter()
                    .filter(|&&(f, _, _)| f != best_f)
                    .map(|&(_, _, m)| m)
                    .fold(0.0_f64, f64::max);
                let n = leaf.total_weight();
                let eps = hoeffding_bound(
                    config.split_criterion.range(config.num_classes),
                    config.split_confidence,
                    n,
                );
                if best_merit - second_merit > eps || eps < config.tie_threshold {
                    // The candidate came from this observer slot; a missing
                    // observer means no split rather than a panic.
                    let Some(obs) = leaf.observers[best_f].as_ref() else { return 0 };
                    let (left_counts, right_counts) = obs.project_split(best_t);
                    let depth = leaf.depth + 1;
                    let left =
                        Node::Leaf(LeafNode::with_counts(config, depth, rng, left_counts));
                    let right =
                        Node::Leaf(LeafNode::with_counts(config, depth, rng, right_counts));
                    *self = Node::Split(SplitNode {
                        feature: best_f,
                        threshold: best_t,
                        weighted_gain: best_merit * n,
                        left: Box::new(left),
                        right: Box::new(right),
                    });
                    1
                } else {
                    0
                }
            }
        }
    }

    fn merge(&mut self, other: &Node) -> Result<()> {
        match (self, other) {
            (Node::Leaf(a), Node::Leaf(b)) => {
                a.merge(b);
                Ok(())
            }
            (Node::Split(a), Node::Split(b))
                if a.feature == b.feature && a.threshold == b.threshold =>
            {
                a.left.merge(&b.left)?;
                a.right.merge(&b.right)
            }
            _ => Err(Error::InvalidConfig(
                "cannot merge Hoeffding trees with diverged structure; use the \
                 accumulate/merge/attempt_splits protocol"
                    .into(),
            )),
        }
    }

    fn fork(&self, num_classes: usize) -> Node {
        match self {
            Node::Leaf(leaf) => Node::Leaf(leaf.fork(num_classes)),
            Node::Split(s) => Node::Split(SplitNode {
                feature: s.feature,
                threshold: s.threshold,
                weighted_gain: s.weighted_gain,
                left: Box::new(s.left.fork(num_classes)),
                right: Box::new(s.right.fork(num_classes)),
            }),
        }
    }

    fn accumulate_importances(&self, out: &mut [f64]) {
        if let Node::Split(s) = self {
            out[s.feature] += s.weighted_gain;
            s.left.accumulate_importances(out);
            s.right.accumulate_importances(out);
        }
    }

    fn count_nodes(&self) -> (usize, usize) {
        match self {
            Node::Leaf(_) => (1, 0),
            Node::Split(s) => {
                let (l1, s1) = s.left.count_nodes();
                let (l2, s2) = s.right.count_nodes();
                (l1 + l2, s1 + s2 + 1)
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf(l) => l.depth,
            Node::Split(s) => s.left.depth().max(s.right.depth()),
        }
    }

    /// Serialize the subtree (pre-order, tagged: 0 = leaf, 1 = split).
    fn snapshot_into(&self, w: &mut SnapshotWriter) {
        match self {
            Node::Leaf(leaf) => {
                w.write_u8(0);
                w.write_f64s(&leaf.class_counts);
                w.write_usize(leaf.observers.len());
                for obs in &leaf.observers {
                    match obs {
                        Some(o) => {
                            w.write_bool(true);
                            o.snapshot_into(w);
                        }
                        None => w.write_bool(false),
                    }
                }
                w.write_f64(leaf.weight_since_attempt);
                w.write_f64(leaf.mc_correct);
                w.write_f64(leaf.nb_correct);
                w.write_usize(leaf.depth);
            }
            Node::Split(s) => {
                w.write_u8(1);
                w.write_usize(s.feature);
                w.write_f64(s.threshold);
                w.write_f64(s.weighted_gain);
                s.left.snapshot_into(w);
                s.right.snapshot_into(w);
            }
        }
    }

    /// Rebuild a subtree from its snapshot. Leaves carry their observer
    /// subspace pattern in the snapshot, so no config or RNG is consulted.
    fn restore(r: &mut SnapshotReader) -> Result<Node> {
        match r.read_u8()? {
            0 => {
                let class_counts = r.read_f64s()?;
                let num_classes = class_counts.len();
                let num_observers = r.read_usize()?;
                let mut observers = Vec::with_capacity(num_observers.min(4096));
                for _ in 0..num_observers {
                    if r.read_bool()? {
                        let mut obs = AttributeObserver::new(num_classes);
                        obs.restore_from(r)?;
                        observers.push(Some(obs));
                    } else {
                        observers.push(None);
                    }
                }
                Ok(Node::Leaf(LeafNode {
                    class_counts,
                    observers,
                    weight_since_attempt: r.read_f64()?,
                    mc_correct: r.read_f64()?,
                    nb_correct: r.read_f64()?,
                    depth: r.read_usize()?,
                }))
            }
            1 => {
                let feature = r.read_usize()?;
                let threshold = r.read_f64()?;
                let weighted_gain = r.read_f64()?;
                let left = Box::new(Node::restore(r)?);
                let right = Box::new(Node::restore(r)?);
                Ok(Node::Split(SplitNode { feature, threshold, weighted_gain, left, right }))
            }
            t => Err(Error::Snapshot(format!("invalid node tag {t}"))),
        }
    }
}

impl Checkpoint for HoeffdingTree {
    fn snapshot_into(&self, w: &mut SnapshotWriter) {
        self.root.snapshot_into(w);
        for word in self.rng.state() {
            w.write_u64(word);
        }
        w.write_f64(self.weight_seen);
        w.write_u64(self.splits_performed);
    }

    fn restore_from(&mut self, r: &mut SnapshotReader) -> Result<()> {
        self.root = Node::restore(r)?;
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.read_u64()?;
        }
        self.rng = SmallRng::from_state(state);
        self.weight_seen = r.read_f64()?;
        self.splits_performed = r.read_u64()?;
        Ok(())
    }
}

/// The Hoeffding Tree streaming classifier.
#[derive(Debug, Clone)]
pub struct HoeffdingTree {
    config: HoeffdingTreeConfig,
    root: Node,
    rng: SmallRng,
    weight_seen: f64,
    splits_performed: u64,
}

impl HoeffdingTree {
    /// Create a tree with the given configuration.
    pub fn new(config: HoeffdingTreeConfig) -> Result<Self> {
        config.validate()?;
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let root = Node::Leaf(LeafNode::new(&config, 0, &mut rng));
        Ok(HoeffdingTree { config, root, rng, weight_seen: 0.0, splits_performed: 0 })
    }

    /// Tree with the paper's Table I hyperparameters.
    pub fn with_paper_defaults(num_classes: usize, num_features: usize) -> Result<Self> {
        Self::new(HoeffdingTreeConfig::paper_defaults(num_classes, num_features))
    }

    /// The configuration in use.
    pub fn config(&self) -> &HoeffdingTreeConfig {
        &self.config
    }

    /// Update leaf statistics without attempting any split — the
    /// distributed-task half of the training protocol.
    pub fn accumulate(&mut self, instance: &Instance) -> Result<()> {
        self.accumulate_scaled(instance, 1.0)
    }

    /// [`HoeffdingTree::accumulate`] with the instance's weight scaled by
    /// `scale`, avoiding the instance clone the Poisson resamplers would
    /// otherwise pay per member per instance.
    pub fn accumulate_scaled(&mut self, instance: &Instance, scale: f64) -> Result<()> {
        let Some(class) = instance.label else { return Ok(()) };
        if instance.features.len() != self.config.num_features {
            return Err(Error::DimensionMismatch {
                expected: self.config.num_features,
                actual: instance.features.len(),
            });
        }
        if class >= self.config.num_classes {
            return Err(Error::InvalidClass {
                class,
                num_classes: self.config.num_classes,
            });
        }
        let weight = instance.weight * scale;
        self.weight_seen += weight;
        self.root.accumulate(&instance.features, class, weight);
        Ok(())
    }

    /// Attempt splits at all leaves whose grace period has elapsed — the
    /// driver half of the training protocol. Returns how many splits were
    /// performed.
    pub fn attempt_splits(&mut self) -> u64 {
        let n = self.root.attempt_splits(&self.config, &mut self.rng);
        self.splits_performed += n;
        n
    }

    /// `(num_leaves, num_split_nodes)` of the current tree.
    pub fn node_counts(&self) -> (usize, usize) {
        self.root.count_nodes()
    }

    /// Current tree depth (0 = single leaf).
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// Total weight of training instances observed.
    pub fn weight_seen(&self) -> f64 {
        self.weight_seen
    }

    /// Total number of splits performed over the tree's lifetime.
    pub fn splits_performed(&self) -> u64 {
        self.splits_performed
    }

    /// Normalized split-gain feature importances of the tree grown so far:
    /// each feature's total (weight × impurity-reduction) across all split
    /// nodes, scaled to sum to 1. The streaming counterpart of Figure 5's
    /// batch Gini importances; all zeros before the first split.
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut imp = vec![0.0; self.config.num_features];
        self.root.accumulate_importances(&mut imp);
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in imp.iter_mut() {
                *v /= total;
            }
        }
        imp
    }

    /// A zero-statistics fork sharing this tree's structure — the
    /// per-partition local model of the distributed protocol. Accumulating
    /// into a fork yields exactly the partition's statistics *delta*, which
    /// `merge` then sums into the global tree without double-counting.
    pub fn fork(&self) -> HoeffdingTree {
        HoeffdingTree {
            config: self.config.clone(),
            root: self.root.fork(self.config.num_classes),
            rng: self.rng.clone(),
            weight_seen: 0.0,
            splits_performed: 0,
        }
    }
}

impl StreamingClassifier for HoeffdingTree {
    fn num_classes(&self) -> usize {
        self.config.num_classes
    }

    fn train(&mut self, instance: &Instance) -> Result<()> {
        let Some(class) = instance.label else { return Ok(()) };
        if instance.features.len() != self.config.num_features {
            return Err(Error::DimensionMismatch {
                expected: self.config.num_features,
                actual: instance.features.len(),
            });
        }
        if class >= self.config.num_classes {
            return Err(Error::InvalidClass { class, num_classes: self.config.num_classes });
        }
        self.weight_seen += instance.weight;
        // Sequential semantics: update the reached leaf and attempt a split
        // there (and only there) once its grace period elapses.
        self.splits_performed +=
            self.root.train(&instance.features, class, instance.weight, &self.config, &mut self.rng);
        Ok(())
    }

    fn accumulate(&mut self, instance: &Instance) -> Result<()> {
        HoeffdingTree::accumulate(self, instance)
    }

    fn accumulate_scaled(&mut self, instance: &Instance, scale: f64) -> Result<()> {
        HoeffdingTree::accumulate_scaled(self, instance, scale)
    }

    fn finalize_batch(&mut self) -> Result<()> {
        self.attempt_splits();
        Ok(())
    }

    fn predict_proba(&self, features: &[f64]) -> Result<Vec<f64>> {
        if features.len() != self.config.num_features {
            return Err(Error::DimensionMismatch {
                expected: self.config.num_features,
                actual: features.len(),
            });
        }
        Ok(self.root.predict_proba(features, self.config.leaf_prediction))
    }

    fn merge(&mut self, other: &dyn StreamingClassifier) -> Result<()> {
        let other = other
            .as_any()
            .downcast_ref::<HoeffdingTree>()
            .ok_or_else(|| Error::InvalidConfig("cannot merge HT with non-HT".into()))?;
        self.root.merge(&other.root)?;
        self.weight_seen += other.weight_seen;
        Ok(())
    }

    fn clone_box(&self) -> Box<dyn StreamingClassifier> {
        Box::new(self.clone())
    }

    fn local_copy(&self) -> Box<dyn StreamingClassifier> {
        Box::new(self.fork())
    }

    fn snapshot_into(&self, w: &mut SnapshotWriter) {
        Checkpoint::snapshot_into(self, w);
    }

    fn restore_from(&mut self, r: &mut SnapshotReader) -> Result<()> {
        Checkpoint::restore_from(self, r)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "HT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic linearly separable 2-class stream: class = x0 > 5.
    fn separable_instance(i: u64) -> Instance {
        let x0 = (i % 11) as f64; // 0..=10
        let x1 = ((i * 7) % 13) as f64; // noise
        let label = usize::from(x0 > 5.0);
        Instance::labeled(vec![x0, x1], label)
    }

    fn train_tree(n: u64) -> HoeffdingTree {
        let mut ht = HoeffdingTree::with_paper_defaults(2, 2).unwrap();
        for i in 0..n {
            ht.train(&separable_instance(i)).unwrap();
        }
        ht
    }

    #[test]
    fn learns_separable_concept() {
        let ht = train_tree(3000);
        assert!(ht.splits_performed() >= 1, "tree should have split");
        let mut correct = 0;
        for i in 0..1000 {
            let inst = separable_instance(i + 9999);
            if ht.predict(&inst.features).unwrap() == inst.label.unwrap() {
                correct += 1;
            }
        }
        assert!(correct > 950, "accuracy {correct}/1000");
    }

    #[test]
    fn split_uses_the_informative_feature() {
        let ht = train_tree(3000);
        match &ht.root {
            Node::Split(s) => {
                assert_eq!(s.feature, 0, "split on the signal feature");
                assert!(s.threshold > 4.0 && s.threshold < 7.0, "threshold {}", s.threshold);
            }
            Node::Leaf(_) => panic!("root should have split"),
        }
    }

    #[test]
    fn untrained_tree_predicts_uniform() {
        let ht = HoeffdingTree::with_paper_defaults(3, 2).unwrap();
        let p = ht.predict_proba(&[1.0, 2.0]).unwrap();
        assert_eq!(p.len(), 3);
        for x in p {
            assert!((x - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn grace_period_delays_splitting() {
        let mut ht = HoeffdingTree::with_paper_defaults(2, 2).unwrap();
        for i in 0..150 {
            ht.train(&separable_instance(i)).unwrap();
        }
        assert_eq!(ht.splits_performed(), 0, "below grace period");
        assert_eq!(ht.node_counts(), (1, 0));
    }

    #[test]
    fn pure_stream_never_splits() {
        let mut ht = HoeffdingTree::with_paper_defaults(2, 2).unwrap();
        for i in 0..2000 {
            ht.train(&Instance::labeled(vec![(i % 10) as f64, 0.0], 0)).unwrap();
        }
        assert_eq!(ht.splits_performed(), 0);
    }

    #[test]
    fn max_depth_is_respected() {
        let mut cfg = HoeffdingTreeConfig::paper_defaults(2, 2);
        cfg.max_depth = 1;
        cfg.grace_period = 50.0;
        let mut ht = HoeffdingTree::new(cfg).unwrap();
        // A concept needing depth 2: xor-ish on two features.
        for i in 0..20_000u64 {
            let x0 = (i % 10) as f64;
            let x1 = ((i / 10) % 10) as f64;
            let label = usize::from((x0 > 5.0) ^ (x1 > 5.0));
            ht.train(&Instance::labeled(vec![x0, x1], label)).unwrap();
        }
        assert!(ht.depth() <= 1, "depth {} exceeds max", ht.depth());
    }

    #[test]
    fn dimension_and_class_errors() {
        let mut ht = HoeffdingTree::with_paper_defaults(2, 3).unwrap();
        let bad_dim = Instance::labeled(vec![1.0], 0);
        assert!(matches!(ht.train(&bad_dim), Err(Error::DimensionMismatch { .. })));
        let bad_class = Instance::labeled(vec![1.0, 2.0, 3.0], 7);
        assert!(matches!(ht.train(&bad_class), Err(Error::InvalidClass { .. })));
        assert!(ht.predict_proba(&[1.0]).is_err());
    }

    #[test]
    fn unlabeled_instances_are_ignored_by_train() {
        let mut ht = HoeffdingTree::with_paper_defaults(2, 2).unwrap();
        for _ in 0..500 {
            ht.train(&Instance::unlabeled(vec![1.0, 2.0])).unwrap();
        }
        assert_eq!(ht.weight_seen(), 0.0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = HoeffdingTreeConfig::paper_defaults(2, 2);
        cfg.num_classes = 1;
        assert!(HoeffdingTree::new(cfg).is_err());
        let mut cfg = HoeffdingTreeConfig::paper_defaults(2, 2);
        cfg.subspace = Some(5);
        assert!(HoeffdingTree::new(cfg).is_err());
        let mut cfg = HoeffdingTreeConfig::paper_defaults(2, 2);
        cfg.split_confidence = 0.0;
        assert!(HoeffdingTree::new(cfg).is_err());
    }

    #[test]
    fn fork_has_zero_statistics_and_same_structure() {
        let ht = train_tree(3000);
        let fork = ht.fork();
        assert_eq!(fork.weight_seen(), 0.0);
        assert_eq!(fork.node_counts(), ht.node_counts());
        assert_eq!(fork.depth(), ht.depth());
        // A fork predicts uniformly (no statistics).
        let p = fork.predict_proba(&[3.0, 1.0]).unwrap();
        assert!((p[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distributed_protocol_learns_like_sequential() {
        // The engine's protocol: per micro-batch, each task accumulates
        // into a zero-statistics fork of the broadcast global tree; the
        // driver sums the deltas and attempts splits.
        let mut global: Box<dyn StreamingClassifier> =
            Box::new(HoeffdingTree::with_paper_defaults(2, 2).unwrap());
        let stream: Vec<Instance> = (0..4000).map(separable_instance).collect();
        for batch in stream.chunks(500) {
            let mut local_a = global.local_copy();
            let mut local_b = global.local_copy();
            for (i, inst) in batch.iter().enumerate() {
                if i % 2 == 0 {
                    local_a.accumulate(inst).unwrap();
                } else {
                    local_b.accumulate(inst).unwrap();
                }
            }
            global.merge_locals(vec![local_a, local_b]).unwrap();
        }
        let mut correct = 0;
        for i in 0..1000 {
            let inst = separable_instance(i + 5555);
            if global.predict(&inst.features).unwrap() == inst.label.unwrap() {
                correct += 1;
            }
        }
        assert!(correct > 930, "distributed protocol accuracy {correct}/1000");
        // The merged totals match the stream size exactly (no
        // double-counting of the broadcast global statistics).
        let ht = global.as_any().downcast_ref::<HoeffdingTree>().unwrap();
        assert_eq!(ht.weight_seen(), 4000.0);
    }

    #[test]
    fn merge_rejects_diverged_structure() {
        let mut a = train_tree(3000);
        let b = HoeffdingTree::with_paper_defaults(2, 2).unwrap();
        // a has split, b has not: structures differ.
        let err = StreamingClassifier::merge(&mut a, &b as &dyn StreamingClassifier);
        assert!(err.is_err());
    }

    #[test]
    fn subspace_restricts_observed_features() {
        let mut cfg = HoeffdingTreeConfig::paper_defaults(2, 10);
        cfg.subspace = Some(3);
        let ht = HoeffdingTree::new(cfg).unwrap();
        match &ht.root {
            Node::Leaf(leaf) => {
                let active = leaf.observers.iter().filter(|o| o.is_some()).count();
                assert_eq!(active, 3);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn nb_adaptive_beats_majority_on_conditional_structure() {
        // Two features jointly informative within one leaf: NB leaves can
        // exploit them before any split happens.
        let mut cfg = HoeffdingTreeConfig::paper_defaults(2, 2);
        cfg.grace_period = 1e12; // never split: isolate leaf prediction
        cfg.leaf_prediction = LeafPrediction::NBAdaptive;
        let mut nb_tree = HoeffdingTree::new(cfg.clone()).unwrap();
        cfg.leaf_prediction = LeafPrediction::MajorityClass;
        let mut mc_tree = HoeffdingTree::new(cfg).unwrap();
        let gen = |i: u64| {
            let x0 = ((i * 31) % 17) as f64;
            let label = usize::from(x0 > 8.0);
            Instance::labeled(vec![x0, 1.0], label)
        };
        for i in 0..2000 {
            let inst = gen(i);
            nb_tree.train(&inst).unwrap();
            mc_tree.train(&inst).unwrap();
        }
        let acc = |t: &HoeffdingTree| {
            (0..500)
                .filter(|&i| {
                    let inst = gen(i + 7777);
                    t.predict(&inst.features).unwrap() == inst.label.unwrap()
                })
                .count()
        };
        let nb_acc = acc(&nb_tree);
        let mc_acc = acc(&mc_tree);
        assert!(nb_acc > mc_acc, "NB-adaptive {nb_acc} vs majority {mc_acc}");
        assert!(nb_acc > 450);
    }

    #[test]
    fn feature_importances_credit_the_signal_feature() {
        let ht = train_tree(3000);
        let imp = ht.feature_importances();
        assert_eq!(imp.len(), 2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > imp[1], "signal feature dominates: {imp:?}");
        // Untrained tree: all zeros.
        let fresh = HoeffdingTree::with_paper_defaults(2, 2).unwrap();
        assert!(fresh.feature_importances().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn clone_box_is_independent() {
        let ht = train_tree(1000);
        let mut boxed = ht.clone_box();
        boxed.train(&separable_instance(1)).unwrap();
        assert_eq!(ht.name(), "HT");
        assert!(boxed.as_any().downcast_ref::<HoeffdingTree>().is_some());
    }
}
