//! OzaBag — online bagging of an arbitrary base learner (Oza & Russell,
//! "Online Bagging and Boosting", AISTATS 2001).
//!
//! The batch bootstrap draws each instance `Binomial(n, 1/n)` times, which
//! converges to `Poisson(1)` as the stream grows; OzaBag therefore trains
//! each ensemble member on every instance with an independent Poisson(1)
//! replicate weight. This is the resampling core the Adaptive Random
//! Forest builds on (with λ = 6 and drift detection); exposed standalone
//! it turns *any* [`StreamingClassifier`] into a variance-reduced
//! ensemble — a useful middle ground between a single Hoeffding Tree and
//! the full ARF.

use crate::classifier::{normalize_proba, StreamingClassifier};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use redhanded_types::snapshot::{SnapshotReader, SnapshotWriter};
use redhanded_types::{Error, Instance, Result};

/// Online bagging ensemble over clones of a base learner.
pub struct OzaBag {
    members: Vec<Box<dyn StreamingClassifier>>,
    lambda: f64,
    rng: SmallRng,
}

impl OzaBag {
    /// Create an ensemble of `size` clones of `base` with Poisson(λ)
    /// online bootstrap weights (classic OzaBag uses λ = 1).
    pub fn new(
        base: &dyn StreamingClassifier,
        size: usize,
        lambda: f64,
        seed: u64,
    ) -> Result<Self> {
        if size == 0 {
            return Err(Error::InvalidConfig("ensemble size must be positive".into()));
        }
        if lambda <= 0.0 {
            return Err(Error::InvalidConfig("lambda must be positive".into()));
        }
        Ok(OzaBag {
            members: (0..size).map(|_| base.clone_box()).collect(),
            lambda,
            rng: SmallRng::seed_from_u64(seed),
        })
    }

    /// Classic OzaBag: Poisson(1) weights.
    pub fn classic(base: &dyn StreamingClassifier, size: usize, seed: u64) -> Result<Self> {
        Self::new(base, size, 1.0, seed)
    }

    /// Number of ensemble members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    fn poisson(rng: &mut SmallRng, lambda: f64) -> u32 {
        let limit = (-lambda).exp();
        let mut product: f64 = rng.gen();
        let mut k = 0u32;
        while product > limit {
            product *= rng.gen::<f64>();
            k += 1;
        }
        k
    }
}

impl Clone for OzaBag {
    fn clone(&self) -> Self {
        OzaBag {
            members: self.members.iter().map(|m| m.clone_box()).collect(),
            lambda: self.lambda,
            rng: self.rng.clone(),
        }
    }
}

impl std::fmt::Debug for OzaBag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OzaBag")
            .field("size", &self.members.len())
            .field("lambda", &self.lambda)
            .field("base", &self.members.first().map(|m| m.name()))
            .finish()
    }
}

impl StreamingClassifier for OzaBag {
    fn num_classes(&self) -> usize {
        self.members[0].num_classes()
    }

    fn train(&mut self, instance: &Instance) -> Result<()> {
        if instance.label.is_none() {
            return Ok(());
        }
        for member in &mut self.members {
            let k = Self::poisson(&mut self.rng, self.lambda);
            if k > 0 {
                let weighted =
                    instance.clone().with_weight(instance.weight * f64::from(k));
                member.train(&weighted)?;
            }
        }
        Ok(())
    }

    fn accumulate(&mut self, instance: &Instance) -> Result<()> {
        self.accumulate_scaled(instance, 1.0)
    }

    fn accumulate_scaled(&mut self, instance: &Instance, scale: f64) -> Result<()> {
        if instance.label.is_none() {
            return Ok(());
        }
        for member in &mut self.members {
            let k = Self::poisson(&mut self.rng, self.lambda);
            if k > 0 {
                member.accumulate_scaled(instance, f64::from(k) * scale)?;
            }
        }
        Ok(())
    }

    fn finalize_batch(&mut self) -> Result<()> {
        for member in &mut self.members {
            member.finalize_batch()?;
        }
        Ok(())
    }

    fn predict_proba(&self, features: &[f64]) -> Result<Vec<f64>> {
        let mut combined = vec![0.0; self.num_classes()];
        for member in &self.members {
            let p = member.predict_proba(features)?;
            for (acc, v) in combined.iter_mut().zip(&p) {
                *acc += v;
            }
        }
        normalize_proba(&mut combined);
        Ok(combined)
    }

    fn merge(&mut self, other: &dyn StreamingClassifier) -> Result<()> {
        let other = other
            .as_any()
            .downcast_ref::<OzaBag>()
            .ok_or_else(|| Error::InvalidConfig("cannot merge OzaBag with non-OzaBag".into()))?;
        if other.members.len() != self.members.len() {
            return Err(Error::InvalidConfig("ensemble sizes differ".into()));
        }
        for (a, b) in self.members.iter_mut().zip(&other.members) {
            a.merge(b.as_ref())?;
        }
        Ok(())
    }

    fn local_copy(&self) -> Box<dyn StreamingClassifier> {
        Box::new(OzaBag {
            members: self.members.iter().map(|m| m.local_copy()).collect(),
            lambda: self.lambda,
            rng: self.rng.clone(),
        })
    }

    fn clone_box(&self) -> Box<dyn StreamingClassifier> {
        Box::new(self.clone())
    }

    fn snapshot_into(&self, w: &mut SnapshotWriter) {
        // `lambda` is construction-time configuration; member count is
        // recorded so restore can reject a differently sized ensemble.
        w.write_usize(self.members.len());
        for member in &self.members {
            member.snapshot_into(w);
        }
        for word in self.rng.state() {
            w.write_u64(word);
        }
    }

    fn restore_from(&mut self, r: &mut SnapshotReader) -> Result<()> {
        let n = r.read_usize()?;
        if n != self.members.len() {
            return Err(Error::Snapshot(format!(
                "OzaBag snapshot has {n} members, ensemble built with {}",
                self.members.len()
            )));
        }
        for member in &mut self.members {
            member.restore_from(r)?;
        }
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.read_u64()?;
        }
        self.rng = SmallRng::from_state(state);
        Ok(())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "OzaBag"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hoeffding::HoeffdingTree;
    use crate::nb::StreamingNaiveBayes;

    fn inst(i: u64) -> Instance {
        let x0 = (i % 11) as f64;
        let x1 = ((i * 7) % 13) as f64;
        Instance::labeled(vec![x0, x1], usize::from(x0 > 5.0))
    }

    fn accuracy(model: &dyn StreamingClassifier, offset: u64) -> f64 {
        let correct = (0..500)
            .filter(|&i| {
                let t = inst(i + offset);
                model.predict(&t.features).unwrap() == t.label.unwrap()
            })
            .count();
        correct as f64 / 500.0
    }

    #[test]
    fn bagged_trees_learn() {
        let base = HoeffdingTree::with_paper_defaults(2, 2).unwrap();
        let mut bag = OzaBag::classic(&base, 8, 7).unwrap();
        assert_eq!(bag.size(), 8);
        assert_eq!(bag.num_classes(), 2);
        for i in 0..4000 {
            bag.train(&inst(i)).unwrap();
        }
        assert!(accuracy(&bag, 9999) > 0.93, "accuracy {}", accuracy(&bag, 9999));
    }

    #[test]
    fn bagging_any_base_learner() {
        let base = StreamingNaiveBayes::new(2, 2).unwrap();
        let mut bag = OzaBag::classic(&base, 5, 3).unwrap();
        for i in 0..2000 {
            bag.train(&inst(i)).unwrap();
        }
        assert!(accuracy(&bag, 777) > 0.85);
        let p = bag.predict_proba(&[3.0, 1.0]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn members_diverge_through_resampling() {
        let base = HoeffdingTree::with_paper_defaults(2, 2).unwrap();
        let mut bag = OzaBag::classic(&base, 4, 11).unwrap();
        for i in 0..3000 {
            bag.train(&inst(i)).unwrap();
        }
        let weights: Vec<f64> = bag
            .members
            .iter()
            .map(|m| {
                m.as_any().downcast_ref::<HoeffdingTree>().unwrap().weight_seen()
            })
            .collect();
        let first = weights[0];
        assert!(weights.iter().any(|w| (w - first).abs() > 1.0), "{weights:?}");
    }

    #[test]
    fn distributed_protocol_works() {
        let base = HoeffdingTree::with_paper_defaults(2, 2).unwrap();
        let mut global: Box<dyn StreamingClassifier> =
            Box::new(OzaBag::classic(&base, 4, 5).unwrap());
        let stream: Vec<Instance> = (0..3000).map(inst).collect();
        for batch in stream.chunks(500) {
            let mut a = global.local_copy();
            let mut b = global.local_copy();
            for (i, x) in batch.iter().enumerate() {
                if i % 2 == 0 {
                    a.accumulate(x).unwrap();
                } else {
                    b.accumulate(x).unwrap();
                }
            }
            global.merge_locals(vec![a, b]).unwrap();
        }
        assert!(accuracy(global.as_ref(), 5555) > 0.9);
    }

    #[test]
    fn invalid_configs() {
        let base = HoeffdingTree::with_paper_defaults(2, 2).unwrap();
        assert!(OzaBag::classic(&base, 0, 1).is_err());
        assert!(OzaBag::new(&base, 3, 0.0, 1).is_err());
    }

    #[test]
    fn unlabeled_is_noop() {
        let base = HoeffdingTree::with_paper_defaults(2, 2).unwrap();
        let mut bag = OzaBag::classic(&base, 3, 1).unwrap();
        bag.train(&Instance::unlabeled(vec![1.0, 2.0])).unwrap();
        let p = bag.predict_proba(&[1.0, 2.0]).unwrap();
        assert!((p[0] - 0.5).abs() < 1e-12, "still uniform");
    }
}
