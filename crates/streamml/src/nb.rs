//! Streaming Gaussian naive Bayes — the classic lightweight baseline every
//! streaming-ML toolkit (MOA, streamDM, SAMOA) ships alongside the
//! Hoeffding Tree. Not part of the paper's headline comparison, but
//! useful as a floor baseline and as the leaf model the HT's NB-adaptive
//! leaves are built from.
//!
//! Per class, each feature keeps a running Gaussian summary; prediction is
//! `argmax_c log P(c) + Σ_f log N(x_f; μ_{c,f}, σ_{c,f})`. Training is
//! O(features) per instance and trivially mergeable — the distributed
//! protocol sums the per-class summaries.

use crate::classifier::{normalize_proba, StreamingClassifier};
use crate::gaussian::GaussianEstimator;
use redhanded_types::snapshot::{Checkpoint, SnapshotReader, SnapshotWriter};
use redhanded_types::{Error, Instance, Result};

/// The streaming Gaussian naive Bayes classifier.
#[derive(Debug, Clone)]
pub struct StreamingNaiveBayes {
    num_classes: usize,
    num_features: usize,
    /// Weighted class priors.
    class_weights: Vec<f64>,
    /// `[class][feature]` Gaussian summaries.
    summaries: Vec<Vec<GaussianEstimator>>,
}

impl StreamingNaiveBayes {
    /// Create a model for a problem shape.
    pub fn new(num_classes: usize, num_features: usize) -> Result<Self> {
        if num_classes < 2 {
            return Err(Error::InvalidConfig("need at least 2 classes".into()));
        }
        if num_features == 0 {
            return Err(Error::InvalidConfig("need at least 1 feature".into()));
        }
        Ok(StreamingNaiveBayes {
            num_classes,
            num_features,
            class_weights: vec![0.0; num_classes],
            summaries: (0..num_classes)
                .map(|_| (0..num_features).map(|_| GaussianEstimator::new()).collect())
                .collect(),
        })
    }

    /// Total weight of training instances observed.
    pub fn weight_seen(&self) -> f64 {
        self.class_weights.iter().sum()
    }
}

impl StreamingClassifier for StreamingNaiveBayes {
    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn train(&mut self, instance: &Instance) -> Result<()> {
        self.accumulate_scaled(instance, 1.0)
    }

    fn accumulate_scaled(&mut self, instance: &Instance, scale: f64) -> Result<()> {
        let Some(class) = instance.label else { return Ok(()) };
        if instance.features.len() != self.num_features {
            return Err(Error::DimensionMismatch {
                expected: self.num_features,
                actual: instance.features.len(),
            });
        }
        if class >= self.num_classes {
            return Err(Error::InvalidClass { class, num_classes: self.num_classes });
        }
        let weight = instance.weight * scale;
        self.class_weights[class] += weight;
        for (est, &x) in self.summaries[class].iter_mut().zip(&instance.features) {
            est.update(x, weight);
        }
        Ok(())
    }

    fn predict_proba(&self, features: &[f64]) -> Result<Vec<f64>> {
        if features.len() != self.num_features {
            return Err(Error::DimensionMismatch {
                expected: self.num_features,
                actual: features.len(),
            });
        }
        let total = self.weight_seen();
        if total <= 0.0 {
            return Ok(vec![1.0 / self.num_classes as f64; self.num_classes]);
        }
        let mut log_scores: Vec<f64> = self
            .class_weights
            .iter()
            .map(|&w| ((w + 1.0) / (total + self.num_classes as f64)).ln())
            .collect();
        for (c, score) in log_scores.iter_mut().enumerate() {
            for (est, &x) in self.summaries[c].iter().zip(features) {
                if est.weight() > 0.0 {
                    *score += est.log_density(x);
                }
            }
        }
        let max = log_scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut p: Vec<f64> = log_scores.iter().map(|&s| (s - max).exp()).collect();
        normalize_proba(&mut p);
        Ok(p)
    }

    fn merge(&mut self, other: &dyn StreamingClassifier) -> Result<()> {
        let other = other
            .as_any()
            .downcast_ref::<StreamingNaiveBayes>()
            .ok_or_else(|| Error::InvalidConfig("cannot merge NB with non-NB".into()))?;
        for (a, b) in self.class_weights.iter_mut().zip(&other.class_weights) {
            *a += b;
        }
        for (row_a, row_b) in self.summaries.iter_mut().zip(&other.summaries) {
            for (a, b) in row_a.iter_mut().zip(row_b) {
                a.merge(b);
            }
        }
        Ok(())
    }

    fn local_copy(&self) -> Box<dyn StreamingClassifier> {
        // Zero-statistics fork: NB statistics sum, so deltas merge exactly.
        // The shape was validated at construction; if re-validation fails
        // anyway, fall back to a full clone (correct, merely non-zeroed)
        // rather than panicking the engine.
        match StreamingNaiveBayes::new(self.num_classes, self.num_features) {
            Ok(fork) => Box::new(fork),
            Err(_) => self.clone_box(),
        }
    }

    fn clone_box(&self) -> Box<dyn StreamingClassifier> {
        Box::new(self.clone())
    }

    fn snapshot_into(&self, w: &mut SnapshotWriter) {
        Checkpoint::snapshot_into(self, w);
    }

    fn restore_from(&mut self, r: &mut SnapshotReader) -> Result<()> {
        Checkpoint::restore_from(self, r)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "NB"
    }
}

impl Checkpoint for StreamingNaiveBayes {
    fn snapshot_into(&self, w: &mut SnapshotWriter) {
        // `num_classes` / `num_features` are construction-time shape; the
        // restore target must be built for the same problem shape.
        w.write_f64s(&self.class_weights);
        for row in &self.summaries {
            for est in row {
                est.snapshot_into(w);
            }
        }
    }

    fn restore_from(&mut self, r: &mut SnapshotReader) -> Result<()> {
        let class_weights = r.read_f64s()?;
        if class_weights.len() != self.num_classes {
            return Err(Error::Snapshot(format!(
                "NB snapshot has {} classes, model built for {}",
                class_weights.len(),
                self.num_classes
            )));
        }
        self.class_weights = class_weights;
        for row in &mut self.summaries {
            for est in row {
                est.restore_from(r)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(i: u64) -> Instance {
        // Class 0 near 0, class 1 near 10 on feature 0; feature 1 is noise.
        let label = (i % 2) as usize;
        let x0 = label as f64 * 10.0 + ((i * 13) % 30) as f64 / 10.0;
        let x1 = ((i * 7) % 50) as f64;
        Instance::labeled(vec![x0, x1], label)
    }

    #[test]
    fn learns_gaussian_classes() {
        let mut nb = StreamingNaiveBayes::new(2, 2).unwrap();
        for i in 0..2000 {
            nb.train(&inst(i)).unwrap();
        }
        let correct = (0..500)
            .filter(|&i| {
                let t = inst(i + 9999);
                nb.predict(&t.features).unwrap() == t.label.unwrap()
            })
            .count();
        assert!(correct > 480, "accuracy {correct}/500");
        assert_eq!(nb.weight_seen(), 2000.0);
    }

    #[test]
    fn untrained_is_uniform() {
        let nb = StreamingNaiveBayes::new(3, 2).unwrap();
        let p = nb.predict_proba(&[1.0, 2.0]).unwrap();
        for x in p {
            assert!((x - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn priors_matter_for_imbalanced_data() {
        let mut nb = StreamingNaiveBayes::new(2, 1).unwrap();
        // 95% class 0, same feature distribution for both classes.
        for i in 0..1000u64 {
            let label = usize::from(i % 20 == 0);
            nb.train(&Instance::labeled(vec![(i % 10) as f64], label)).unwrap();
        }
        let p = nb.predict_proba(&[5.0]).unwrap();
        assert!(p[0] > 0.8, "majority prior dominates: {p:?}");
    }

    #[test]
    fn distributed_protocol_exact() {
        // NB deltas merge exactly: distributed == sequential.
        let mut sequential = StreamingNaiveBayes::new(2, 2).unwrap();
        let mut global: Box<dyn StreamingClassifier> =
            Box::new(StreamingNaiveBayes::new(2, 2).unwrap());
        let stream: Vec<Instance> = (0..1000).map(inst).collect();
        for batch in stream.chunks(200) {
            let mut a = global.local_copy();
            let mut b = global.local_copy();
            for (i, x) in batch.iter().enumerate() {
                sequential.train(x).unwrap();
                if i % 2 == 0 {
                    a.accumulate(x).unwrap();
                } else {
                    b.accumulate(x).unwrap();
                }
            }
            global.merge_locals(vec![a, b]).unwrap();
        }
        for i in 0..100 {
            let q = inst(i + 5000);
            let ps = sequential.predict_proba(&q.features).unwrap();
            let pg = global.predict_proba(&q.features).unwrap();
            for (x, y) in ps.iter().zip(&pg) {
                assert!((x - y).abs() < 1e-9, "{ps:?} vs {pg:?}");
            }
        }
    }

    #[test]
    fn errors() {
        assert!(StreamingNaiveBayes::new(1, 2).is_err());
        assert!(StreamingNaiveBayes::new(2, 0).is_err());
        let mut nb = StreamingNaiveBayes::new(2, 2).unwrap();
        assert!(nb.train(&Instance::labeled(vec![1.0], 0)).is_err());
        assert!(nb.train(&Instance::labeled(vec![1.0, 2.0], 5)).is_err());
        assert!(nb.predict_proba(&[1.0]).is_err());
        nb.train(&Instance::unlabeled(vec![1.0, 2.0])).unwrap();
        assert_eq!(nb.weight_seen(), 0.0);
    }
}
