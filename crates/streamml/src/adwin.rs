//! ADWIN — ADaptive WINdowing drift detector (Bifet & Gavaldà, 2007).
//!
//! The Adaptive Random Forest (Section III-C of the paper; Gomes et al.,
//! 2017) attaches one ADWIN *warning* detector and one *drift* detector to
//! each ensemble member's error stream. ADWIN maintains a variable-length
//! window of recent values using an exponential histogram of buckets and
//! cuts the window whenever two sub-windows have means that differ by more
//! than a Hoeffding-style bound — evidence the underlying distribution
//! changed.
//!
//! This is the standard bucket-compressed implementation: memory is
//! O(M · log(W/M)) for window length `W` with `M` buckets per row.

use redhanded_types::snapshot::{Checkpoint, SnapshotReader, SnapshotWriter};
use redhanded_types::Result;

/// Maximum number of buckets per exponential-histogram row.
const MAX_BUCKETS: usize = 5;

/// One row of the exponential histogram: up to [`MAX_BUCKETS`] buckets, each
/// summarizing `2^row` values by their sum (and implicit count).
#[derive(Debug, Clone, Default)]
struct BucketRow {
    /// Sums of each bucket in insertion order (oldest first).
    sums: Vec<f64>,
    /// Sums of squares, for the variance bookkeeping.
    sq_sums: Vec<f64>,
}

/// ADWIN change detector over a stream of bounded values (typically 0/1
/// error indicators).
#[derive(Debug, Clone)]
pub struct Adwin {
    delta: f64,
    rows: Vec<BucketRow>,
    /// Total number of values in the window.
    width: u64,
    /// Sum of values in the window.
    total: f64,
    /// Sum of squares in the window.
    sq_total: f64,
    /// Detections so far.
    num_detections: u64,
    /// Check for cuts only every `clock` insertions (MOA default 32).
    clock: u64,
    ticks: u64,
}

impl Adwin {
    /// Create a detector with confidence parameter `delta` (smaller =
    /// fewer false alarms; MOA's default is 0.002).
    pub fn new(delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        Adwin {
            delta,
            rows: vec![BucketRow::default()],
            width: 0,
            total: 0.0,
            sq_total: 0.0,
            num_detections: 0,
            clock: 32,
            ticks: 0,
        }
    }

    /// Detector with MOA's default confidence (0.002).
    pub fn with_default_delta() -> Self {
        Self::new(0.002)
    }

    /// Number of values currently in the adaptive window.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Mean of the values currently in the window.
    pub fn mean(&self) -> f64 {
        if self.width == 0 {
            0.0
        } else {
            self.total / self.width as f64
        }
    }

    /// Total number of cuts (drift detections) so far.
    pub fn num_detections(&self) -> u64 {
        self.num_detections
    }

    /// Add a value; returns `true` when a change was detected (the window
    /// was cut).
    pub fn update(&mut self, value: f64) -> bool {
        self.insert(value);
        self.ticks += 1;
        if self.ticks % self.clock == 0 && self.width > 10 {
            self.detect_and_cut()
        } else {
            false
        }
    }

    fn insert(&mut self, value: f64) {
        self.rows[0].sums.insert(0, value);
        self.rows[0].sq_sums.insert(0, value * value);
        self.width += 1;
        self.total += value;
        self.sq_total += value * value;
        self.compress();
    }

    /// Merge the two oldest buckets of any overfull row into the next row.
    fn compress(&mut self) {
        let mut row = 0;
        while row < self.rows.len() {
            if self.rows[row].sums.len() > MAX_BUCKETS {
                if row + 1 == self.rows.len() {
                    self.rows.push(BucketRow::default());
                }
                // Oldest two buckets are at the tail.
                let n = self.rows[row].sums.len();
                let s1 = self.rows[row].sums.remove(n - 1);
                let s2 = self.rows[row].sums.remove(n - 2);
                let q1 = self.rows[row].sq_sums.remove(n - 1);
                let q2 = self.rows[row].sq_sums.remove(n - 2);
                self.rows[row + 1].sums.insert(0, s1 + s2);
                self.rows[row + 1].sq_sums.insert(0, q1 + q2);
            }
            row += 1;
        }
    }

    /// Scan all bucket boundaries oldest-first; cut if any split point shows
    /// a significant difference in means.
    fn detect_and_cut(&mut self) -> bool {
        let mut detected = false;
        // Repeat until no cut is found (MOA loops too).
        loop {
            let mut cut = false;
            // Running totals of the *older* sub-window (suffix), scanned from
            // the oldest bucket toward the newest.
            let mut w0: f64 = 0.0;
            let mut s0: f64 = 0.0;
            let total_w = self.width as f64;
            'scan: for row in (0..self.rows.len()).rev() {
                let count_per_bucket = (1u64 << row) as f64;
                for b in (0..self.rows[row].sums.len()).rev() {
                    w0 += count_per_bucket;
                    s0 += self.rows[row].sums[b];
                    let w1 = total_w - w0;
                    if w1 < 1.0 || w0 < 1.0 {
                        continue;
                    }
                    let mean0 = s0 / w0;
                    let mean1 = (self.total - s0) / w1;
                    if self.significant(w0, w1, (mean0 - mean1).abs()) {
                        cut = true;
                        detected = true;
                        self.drop_oldest_bucket();
                        break 'scan;
                    }
                }
            }
            if !cut {
                break;
            }
        }
        if detected {
            self.num_detections += 1;
        }
        detected
    }

    /// The ADWIN significance test with variance-aware bound.
    fn significant(&self, w0: f64, w1: f64, mean_diff: f64) -> bool {
        let n = self.width as f64;
        let variance = (self.sq_total / n) - (self.total / n).powi(2);
        let variance = variance.max(0.0);
        let m = 1.0 / (1.0 / w0 + 1.0 / w1);
        let delta_prime = self.delta / n.ln().max(1.0);
        let ln_term = (2.0 / delta_prime).ln();
        let eps = (2.0 / m * variance * ln_term).sqrt() + 2.0 / (3.0 * m) * ln_term;
        mean_diff > eps
    }

    /// Remove the oldest bucket from the histogram (the cut).
    fn drop_oldest_bucket(&mut self) {
        for row in (0..self.rows.len()).rev() {
            if let Some(s) = self.rows[row].sums.pop() {
                // The vectors grow in lockstep; an empty sq_sums here would
                // mean corrupted state — drop a zero contribution rather
                // than panic the detector.
                let q = self.rows[row].sq_sums.pop().unwrap_or(0.0);
                let count = 1u64 << row;
                self.width -= count.min(self.width);
                self.total -= s;
                self.sq_total -= q;
                return;
            }
        }
    }
}

impl Checkpoint for Adwin {
    fn snapshot_into(&self, w: &mut SnapshotWriter) {
        // `delta` and `clock` are construction-time configuration; only the
        // window contents and counters are mutable state.
        w.write_usize(self.rows.len());
        for row in &self.rows {
            w.write_f64s(&row.sums);
            w.write_f64s(&row.sq_sums);
        }
        w.write_u64(self.width);
        w.write_f64(self.total);
        w.write_f64(self.sq_total);
        w.write_u64(self.num_detections);
        w.write_u64(self.ticks);
    }

    fn restore_from(&mut self, r: &mut SnapshotReader) -> Result<()> {
        let num_rows = r.read_usize()?;
        let mut rows = Vec::with_capacity(num_rows.min(64));
        for _ in 0..num_rows {
            rows.push(BucketRow { sums: r.read_f64s()?, sq_sums: r.read_f64s()? });
        }
        self.rows = rows;
        self.width = r.read_u64()?;
        self.total = r.read_f64()?;
        self.sq_total = r.read_f64()?;
        self.num_detections = r.read_u64()?;
        self.ticks = r.read_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift PRNG for test streams.
    struct Rng(u64);
    impl Rng {
        fn next_f64(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }
        fn bernoulli(&mut self, p: f64) -> f64 {
            if self.next_f64() < p {
                1.0
            } else {
                0.0
            }
        }
    }

    #[test]
    fn no_detection_on_stationary_stream() {
        let mut adwin = Adwin::with_default_delta();
        let mut rng = Rng(42);
        let mut detections = 0;
        for _ in 0..10_000 {
            if adwin.update(rng.bernoulli(0.2)) {
                detections += 1;
            }
        }
        assert!(detections <= 1, "stationary stream produced {detections} detections");
        assert!((adwin.mean() - 0.2).abs() < 0.05);
    }

    #[test]
    fn detects_abrupt_shift() {
        let mut adwin = Adwin::with_default_delta();
        let mut rng = Rng(7);
        for _ in 0..3000 {
            adwin.update(rng.bernoulli(0.1));
        }
        let before = adwin.num_detections();
        let mut detected_at = None;
        for i in 0..3000 {
            if adwin.update(rng.bernoulli(0.7)) && detected_at.is_none() {
                detected_at = Some(i);
            }
        }
        assert!(adwin.num_detections() > before, "shift not detected");
        let lag = detected_at.expect("detected");
        assert!(lag < 1000, "detection lag {lag} too large");
        // After the cut the window mean should track the new regime.
        assert!(adwin.mean() > 0.4, "post-cut mean {}", adwin.mean());
    }

    #[test]
    fn window_shrinks_after_detection() {
        let mut adwin = Adwin::with_default_delta();
        let mut rng = Rng(99);
        for _ in 0..4000 {
            adwin.update(rng.bernoulli(0.05));
        }
        let w_before = adwin.width();
        for _ in 0..2000 {
            adwin.update(rng.bernoulli(0.9));
        }
        assert!(adwin.width() < w_before + 2000, "window was cut");
    }

    #[test]
    fn width_tracks_insertions_without_drift() {
        let mut adwin = Adwin::new(1e-9); // essentially never cut
        for i in 0..500 {
            adwin.update(if i % 2 == 0 { 1.0 } else { 0.0 });
        }
        assert_eq!(adwin.width(), 500);
        assert!((adwin.mean() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_detector() {
        let adwin = Adwin::with_default_delta();
        assert_eq!(adwin.width(), 0);
        assert_eq!(adwin.mean(), 0.0);
        assert_eq!(adwin.num_detections(), 0);
    }

    #[test]
    #[should_panic(expected = "delta must be in (0,1)")]
    fn rejects_bad_delta() {
        let _ = Adwin::new(0.0);
    }

    #[test]
    fn memory_is_logarithmic() {
        let mut adwin = Adwin::new(1e-9);
        for _ in 0..100_000 {
            adwin.update(0.5);
        }
        // 100k values compress into O(log) rows of ≤ MAX_BUCKETS+1 buckets.
        assert!(adwin.rows.len() < 25, "{} rows", adwin.rows.len());
        for row in &adwin.rows {
            assert!(row.sums.len() <= MAX_BUCKETS + 1);
        }
    }
}
