//! Change-detector abstraction and the DDM detector.
//!
//! The Adaptive Random Forest pairs each member with drift detectors on
//! its prequential error stream. ADWIN ([`crate::adwin`]) is the paper's
//! (and ARF's) default; this module adds the other classic, **DDM** (Gama
//! et al., "Learning with Drift Detection", SBIA 2004), behind a common
//! [`ChangeDetector`] trait so the choice is an ablation knob
//! (`ArfConfig::detector`).
//!
//! DDM models the error count as a Bernoulli process: with `p̂` the running
//! error rate after `n` observations and `s = sqrt(p̂(1-p̂)/n)`, it tracks
//! the minimum of `p̂ + s` and signals *warning* at `p̂ + s ≥ p_min + 2
//! s_min` and *drift* at `p̂ + s ≥ p_min + 3 s_min`, resetting afterwards.

use crate::adwin::Adwin;
use redhanded_types::snapshot::{Checkpoint, SnapshotReader, SnapshotWriter};
use redhanded_types::{Error, Result};

/// A detector over a bounded error stream.
pub trait ChangeDetector: Send + Sync + std::fmt::Debug {
    /// Feed one value (typically a 0/1 error indicator or a batch error
    /// rate); returns `true` when a change is signalled.
    fn update(&mut self, value: f64) -> bool;

    /// Estimated mean of the current (post-change) regime.
    fn mean(&self) -> f64;

    /// Number of changes signalled so far.
    fn num_detections(&self) -> u64;

    /// Clone into a boxed trait object.
    fn clone_box(&self) -> Box<dyn ChangeDetector>;

    /// Stable one-byte tag identifying the implementation in snapshots
    /// (0 = ADWIN, 1 = DDM).
    fn kind_tag(&self) -> u8;

    /// Serialize mutable detector state ([`Checkpoint`] by another name,
    /// object-safe on the trait object).
    fn snapshot_state(&self, w: &mut SnapshotWriter);

    /// Restore mutable detector state captured by
    /// [`ChangeDetector::snapshot_state`].
    fn restore_state(&mut self, r: &mut SnapshotReader) -> Result<()>;
}

/// Snapshot a boxed detector with its kind tag prepended.
pub fn snapshot_detector(d: &dyn ChangeDetector, w: &mut SnapshotWriter) {
    w.write_u8(d.kind_tag());
    d.snapshot_state(w);
}

/// Restore a boxed detector, verifying the recorded kind matches the one
/// the caller rebuilt from configuration.
pub fn restore_detector(d: &mut dyn ChangeDetector, r: &mut SnapshotReader) -> Result<()> {
    let tag = r.read_u8()?;
    if tag != d.kind_tag() {
        return Err(Error::Snapshot(format!(
            "detector kind mismatch: snapshot has tag {tag}, configuration built {}",
            d.kind_tag()
        )));
    }
    d.restore_state(r)
}

impl Clone for Box<dyn ChangeDetector> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl ChangeDetector for Adwin {
    fn update(&mut self, value: f64) -> bool {
        Adwin::update(self, value)
    }

    fn mean(&self) -> f64 {
        Adwin::mean(self)
    }

    fn num_detections(&self) -> u64 {
        Adwin::num_detections(self)
    }

    fn clone_box(&self) -> Box<dyn ChangeDetector> {
        Box::new(self.clone())
    }

    fn kind_tag(&self) -> u8 {
        0
    }

    fn snapshot_state(&self, w: &mut SnapshotWriter) {
        Checkpoint::snapshot_into(self, w);
    }

    fn restore_state(&mut self, r: &mut SnapshotReader) -> Result<()> {
        Checkpoint::restore_from(self, r)
    }
}

/// The DDM drift detector.
#[derive(Debug, Clone)]
pub struct Ddm {
    /// Observations since the last reset.
    n: f64,
    /// Running error-probability estimate.
    p: f64,
    /// `min(p + s)` seen since the last reset.
    p_min: f64,
    /// `s` at the minimum.
    s_min: f64,
    /// Warning threshold in `s_min` units (Gama et al.: 2).
    warning_sigmas: f64,
    /// Drift threshold in `s_min` units (Gama et al.: 3).
    drift_sigmas: f64,
    /// Minimum observations before thresholds apply.
    min_observations: f64,
    in_warning: bool,
    detections: u64,
}

impl Ddm {
    /// A detector with Gama et al.'s 2σ/3σ thresholds.
    pub fn new() -> Self {
        Ddm {
            n: 0.0,
            p: 0.0,
            p_min: f64::INFINITY,
            s_min: f64::INFINITY,
            warning_sigmas: 2.0,
            drift_sigmas: 3.0,
            min_observations: 30.0,
            in_warning: false,
            detections: 0,
        }
    }

    /// Whether the detector is currently between the warning and drift
    /// levels.
    pub fn in_warning_zone(&self) -> bool {
        self.in_warning
    }

    fn reset(&mut self) {
        self.n = 0.0;
        self.p = 0.0;
        self.p_min = f64::INFINITY;
        self.s_min = f64::INFINITY;
        self.in_warning = false;
    }
}

impl Default for Ddm {
    fn default() -> Self {
        Self::new()
    }
}

impl ChangeDetector for Ddm {
    fn update(&mut self, value: f64) -> bool {
        let value = value.clamp(0.0, 1.0);
        self.n += 1.0;
        // Incremental mean of the Bernoulli error stream.
        self.p += (value - self.p) / self.n;
        if self.n < self.min_observations {
            return false;
        }
        let s = (self.p * (1.0 - self.p) / self.n).sqrt();
        if self.p + s < self.p_min + self.s_min {
            // (p + s) is at a new minimum: the learner is improving.
            if self.p + s < self.p_min {
                self.p_min = self.p;
                self.s_min = s;
            }
        }
        let level = self.p + s;
        if level >= self.p_min + self.drift_sigmas * self.s_min {
            self.detections += 1;
            self.reset();
            return true;
        }
        self.in_warning = level >= self.p_min + self.warning_sigmas * self.s_min;
        false
    }

    fn mean(&self) -> f64 {
        self.p
    }

    fn num_detections(&self) -> u64 {
        self.detections
    }

    fn clone_box(&self) -> Box<dyn ChangeDetector> {
        Box::new(self.clone())
    }

    fn kind_tag(&self) -> u8 {
        1
    }

    fn snapshot_state(&self, w: &mut SnapshotWriter) {
        Checkpoint::snapshot_into(self, w);
    }

    fn restore_state(&mut self, r: &mut SnapshotReader) -> Result<()> {
        Checkpoint::restore_from(self, r)
    }
}

impl Checkpoint for Ddm {
    fn snapshot_into(&self, w: &mut SnapshotWriter) {
        // Thresholds (`warning_sigmas`, `drift_sigmas`, `min_observations`)
        // are construction-time configuration.
        w.write_f64(self.n);
        w.write_f64(self.p);
        w.write_f64(self.p_min);
        w.write_f64(self.s_min);
        w.write_bool(self.in_warning);
        w.write_u64(self.detections);
    }

    fn restore_from(&mut self, r: &mut SnapshotReader) -> Result<()> {
        self.n = r.read_f64()?;
        self.p = r.read_f64()?;
        self.p_min = r.read_f64()?;
        self.s_min = r.read_f64()?;
        self.in_warning = r.read_bool()?;
        self.detections = r.read_u64()?;
        Ok(())
    }
}

/// Which change detector an ensemble uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DetectorKind {
    /// ADWIN with the given confidence δ (the paper's / ARF's default).
    Adwin {
        /// Confidence parameter (smaller = fewer false alarms).
        delta: f64,
    },
    /// DDM with the standard 2σ/3σ levels.
    Ddm,
}

impl DetectorKind {
    /// Instantiate the detector.
    pub fn build(&self) -> Box<dyn ChangeDetector> {
        match self {
            DetectorKind::Adwin { delta } => Box::new(Adwin::new(*delta)),
            DetectorKind::Ddm => Box::new(Ddm::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Rng(u64);
    impl Rng {
        fn bernoulli(&mut self, p: f64) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            if ((self.0 >> 11) as f64 / (1u64 << 53) as f64) < p {
                1.0
            } else {
                0.0
            }
        }
    }

    #[test]
    fn ddm_quiet_on_stationary_stream() {
        let mut ddm = Ddm::new();
        let mut rng = Rng(5);
        let mut detections = 0;
        for _ in 0..20_000 {
            if ddm.update(rng.bernoulli(0.15)) {
                detections += 1;
            }
        }
        assert!(detections <= 2, "{detections} false alarms");
        assert!((ChangeDetector::mean(&ddm) - 0.15).abs() < 0.05);
    }

    #[test]
    fn ddm_detects_error_increase() {
        let mut ddm = Ddm::new();
        let mut rng = Rng(9);
        for _ in 0..3000 {
            ddm.update(rng.bernoulli(0.05));
        }
        let mut detected_at = None;
        for i in 0..3000 {
            if ddm.update(rng.bernoulli(0.5)) {
                detected_at = Some(i);
                break;
            }
        }
        let lag = detected_at.expect("drift detected");
        assert!(lag < 500, "detection lag {lag}");
    }

    #[test]
    fn ddm_warning_precedes_drift() {
        let mut ddm = Ddm::new();
        let mut rng = Rng(13);
        for _ in 0..3000 {
            ddm.update(rng.bernoulli(0.05));
        }
        let mut warned_before_drift = false;
        for _ in 0..3000 {
            if ddm.update(rng.bernoulli(0.4)) {
                break;
            }
            if ddm.in_warning_zone() {
                warned_before_drift = true;
            }
        }
        assert!(warned_before_drift);
    }

    #[test]
    fn ddm_resets_after_detection() {
        let mut ddm = Ddm::new();
        let mut rng = Rng(21);
        for _ in 0..2000 {
            ddm.update(rng.bernoulli(0.05));
        }
        for _ in 0..2000 {
            if ddm.update(rng.bernoulli(0.6)) {
                break;
            }
        }
        assert_eq!(ChangeDetector::num_detections(&ddm), 1);
        // After reset the estimator re-learns the new regime quietly.
        let mut post = 0;
        for _ in 0..2000 {
            if ddm.update(rng.bernoulli(0.6)) {
                post += 1;
            }
        }
        assert!(post <= 1, "{post} repeat detections on the new stationary regime");
    }

    #[test]
    fn detector_kind_builds_both() {
        let mut adwin = DetectorKind::Adwin { delta: 0.002 }.build();
        let mut ddm = DetectorKind::Ddm.build();
        for i in 0..200 {
            adwin.update(f64::from(i % 3 == 0));
            ddm.update(f64::from(i % 3 == 0));
        }
        assert!(adwin.mean() > 0.2 && adwin.mean() < 0.5);
        assert!(ddm.mean() > 0.2 && ddm.mean() < 0.5);
        // Boxed clone works.
        let _ = adwin.clone();
    }

    #[test]
    fn adwin_satisfies_the_trait() {
        let mut d: Box<dyn ChangeDetector> = Box::new(Adwin::with_default_delta());
        let mut rng = Rng(33);
        for _ in 0..2000 {
            d.update(rng.bernoulli(0.1));
        }
        for _ in 0..2000 {
            d.update(rng.bernoulli(0.8));
        }
        assert!(d.num_detections() > 0);
    }
}
