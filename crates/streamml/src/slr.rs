//! Streaming Logistic Regression with stochastic gradient descent
//! (Section III-C of the paper).
//!
//! A multinomial (softmax) logistic model whose parameters are updated
//! online as new data arrives; SGD optimizes the cross-entropy objective
//! with an optional L1 or L2 penalty. The hyperparameters mirror Table I:
//! λ (the SGD step size, selected 0.1), the regularizer (selected L2), and
//! the regularization strength (selected 0.01).
//!
//! Distributed training merges local models by *parameter averaging*
//! weighted by the number of instances each local model consumed — the
//! standard mini-batch SGD model-averaging scheme used by Spark MLlib's
//! streaming linear models.

use crate::classifier::{normalize_proba, StreamingClassifier};
use redhanded_types::snapshot::{Checkpoint, SnapshotReader, SnapshotWriter};
use redhanded_types::{Error, Instance, Result};

/// Penalty applied to the weights at each SGD step (Table I options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Regularizer {
    /// No penalty.
    Zero,
    /// Lasso penalty (subgradient `sign(w)`).
    L1,
    /// Ridge penalty (gradient `w`) — the paper's selected option.
    #[default]
    L2,
}

/// Streaming Logistic Regression hyperparameters.
#[derive(Debug, Clone)]
pub struct SlrConfig {
    /// Number of classes.
    pub num_classes: usize,
    /// Number of features.
    pub num_features: usize,
    /// SGD step size λ (paper selects 0.1).
    pub learning_rate: f64,
    /// Penalty type (paper selects L2).
    pub regularizer: Regularizer,
    /// Penalty strength (paper selects 0.01).
    pub reg_param: f64,
}

impl SlrConfig {
    /// The paper's selected hyperparameters (Table I) for a problem shape.
    pub fn paper_defaults(num_classes: usize, num_features: usize) -> Self {
        SlrConfig {
            num_classes,
            num_features,
            learning_rate: 0.1,
            regularizer: Regularizer::L2,
            reg_param: 0.01,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.num_classes < 2 {
            return Err(Error::InvalidConfig("need at least 2 classes".into()));
        }
        if self.num_features == 0 {
            return Err(Error::InvalidConfig("need at least 1 feature".into()));
        }
        if self.learning_rate <= 0.0 {
            return Err(Error::InvalidConfig("learning_rate must be positive".into()));
        }
        if self.reg_param < 0.0 {
            return Err(Error::InvalidConfig("reg_param must be non-negative".into()));
        }
        Ok(())
    }
}

/// The streaming multinomial logistic regression model.
#[derive(Debug, Clone)]
pub struct StreamingLogisticRegression {
    config: SlrConfig,
    /// Row-major `[class][feature]` weight matrix.
    weights: Vec<Vec<f64>>,
    /// Per-class bias terms (never regularized).
    bias: Vec<f64>,
    /// Weighted count of training instances consumed.
    instances_seen: f64,
}

impl StreamingLogisticRegression {
    /// Create a model with the given configuration.
    pub fn new(config: SlrConfig) -> Result<Self> {
        config.validate()?;
        Ok(StreamingLogisticRegression {
            weights: vec![vec![0.0; config.num_features]; config.num_classes],
            bias: vec![0.0; config.num_classes],
            instances_seen: 0.0,
            config,
        })
    }

    /// Model with the paper's Table I hyperparameters.
    pub fn with_paper_defaults(num_classes: usize, num_features: usize) -> Result<Self> {
        Self::new(SlrConfig::paper_defaults(num_classes, num_features))
    }

    /// The configuration in use.
    pub fn config(&self) -> &SlrConfig {
        &self.config
    }

    /// Weighted count of training instances consumed.
    pub fn instances_seen(&self) -> f64 {
        self.instances_seen
    }

    /// Read access to the weight matrix (`[class][feature]`).
    pub fn weights(&self) -> &[Vec<f64>] {
        &self.weights
    }

    fn softmax(&self, features: &[f64]) -> Vec<f64> {
        let mut scores: Vec<f64> = self
            .weights
            .iter()
            .zip(&self.bias)
            .map(|(w, b)| b + w.iter().zip(features).map(|(wi, xi)| wi * xi).sum::<f64>())
            .collect();
        let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for s in scores.iter_mut() {
            *s = (*s - max).exp();
        }
        normalize_proba(&mut scores);
        scores
    }
}

impl Checkpoint for StreamingLogisticRegression {
    fn snapshot_into(&self, w: &mut SnapshotWriter) {
        w.write_usize(self.weights.len());
        for row in &self.weights {
            w.write_f64s(row);
        }
        w.write_f64s(&self.bias);
        w.write_f64(self.instances_seen);
    }

    fn restore_from(&mut self, r: &mut SnapshotReader) -> Result<()> {
        let rows = r.read_usize()?;
        if rows != self.weights.len() {
            return Err(Error::Snapshot(format!(
                "weight rows {} != snapshot {rows}",
                self.weights.len()
            )));
        }
        for row in &mut self.weights {
            let restored = r.read_f64s()?;
            if restored.len() != row.len() {
                return Err(Error::Snapshot(format!(
                    "weight row length {} != snapshot {}",
                    row.len(),
                    restored.len()
                )));
            }
            *row = restored;
        }
        let bias = r.read_f64s()?;
        if bias.len() != self.bias.len() {
            return Err(Error::Snapshot(format!(
                "bias length {} != snapshot {}",
                self.bias.len(),
                bias.len()
            )));
        }
        self.bias = bias;
        self.instances_seen = r.read_f64()?;
        Ok(())
    }
}

impl StreamingClassifier for StreamingLogisticRegression {
    fn num_classes(&self) -> usize {
        self.config.num_classes
    }

    fn train(&mut self, instance: &Instance) -> Result<()> {
        self.accumulate_scaled(instance, 1.0)
    }

    fn accumulate_scaled(&mut self, instance: &Instance, scale: f64) -> Result<()> {
        let Some(class) = instance.label else { return Ok(()) };
        if instance.features.len() != self.config.num_features {
            return Err(Error::DimensionMismatch {
                expected: self.config.num_features,
                actual: instance.features.len(),
            });
        }
        if class >= self.config.num_classes {
            return Err(Error::InvalidClass { class, num_classes: self.config.num_classes });
        }
        let proba = self.softmax(&instance.features);
        let lr = self.config.learning_rate * instance.weight * scale;
        let reg = self.config.reg_param;
        for (c, &p_c) in proba.iter().enumerate() {
            // Cross-entropy gradient: (p_c - 1{c == y}) * x.
            let err = p_c - if c == class { 1.0 } else { 0.0 };
            let w = &mut self.weights[c];
            for (wi, &xi) in w.iter_mut().zip(&instance.features) {
                let penalty = match self.config.regularizer {
                    Regularizer::Zero => 0.0,
                    Regularizer::L1 => reg * wi.signum(),
                    Regularizer::L2 => reg * *wi,
                };
                *wi -= lr * (err * xi + penalty);
            }
            self.bias[c] -= lr * err;
        }
        self.instances_seen += instance.weight * scale;
        Ok(())
    }

    fn predict_proba(&self, features: &[f64]) -> Result<Vec<f64>> {
        if features.len() != self.config.num_features {
            return Err(Error::DimensionMismatch {
                expected: self.config.num_features,
                actual: features.len(),
            });
        }
        Ok(self.softmax(features))
    }

    /// Parameter averaging weighted by instances seen.
    fn merge(&mut self, other: &dyn StreamingClassifier) -> Result<()> {
        let other = other
            .as_any()
            .downcast_ref::<StreamingLogisticRegression>()
            .ok_or_else(|| Error::InvalidConfig("cannot merge SLR with non-SLR".into()))?;
        let w1 = self.instances_seen;
        let w2 = other.instances_seen;
        let total = w1 + w2;
        if total <= 0.0 {
            return Ok(());
        }
        let (a, b) = (w1 / total, w2 / total);
        for (wc, oc) in self.weights.iter_mut().zip(&other.weights) {
            for (wi, oi) in wc.iter_mut().zip(oc) {
                *wi = a * *wi + b * *oi;
            }
        }
        for (bi, oi) in self.bias.iter_mut().zip(&other.bias) {
            *bi = a * *bi + b * *oi;
        }
        self.instances_seen = total;
        Ok(())
    }

    /// Parameter averaging across full local clones (each local diverged
    /// from the same broadcast global model by SGD on its partition): the
    /// global parameters become the instance-weighted average of the
    /// locals — Spark MLlib's streaming linear-model scheme.
    fn merge_locals(&mut self, locals: Vec<Box<dyn StreamingClassifier>>) -> Result<()> {
        let mut refs: Vec<&StreamingLogisticRegression> = Vec::with_capacity(locals.len());
        for l in &locals {
            refs.push(l.as_any().downcast_ref::<StreamingLogisticRegression>().ok_or_else(
                || Error::InvalidConfig("cannot merge SLR with non-SLR".into()),
            )?);
        }
        let total: f64 = refs.iter().map(|r| r.instances_seen).sum();
        if total <= 0.0 {
            return Ok(());
        }
        let base = self.instances_seen;
        let mut weights = vec![vec![0.0; self.config.num_features]; self.config.num_classes];
        let mut bias = vec![0.0; self.config.num_classes];
        for r in &refs {
            let share = r.instances_seen / total;
            for (wc, oc) in weights.iter_mut().zip(&r.weights) {
                for (wi, oi) in wc.iter_mut().zip(oc) {
                    *wi += share * oi;
                }
            }
            for (bi, oi) in bias.iter_mut().zip(&r.bias) {
                *bi += share * oi;
            }
        }
        self.weights = weights;
        self.bias = bias;
        // Each local's count includes the inherited global count; the new
        // global count is the base plus the genuinely new instances.
        let new_instances: f64 =
            refs.iter().map(|r| (r.instances_seen - base).max(0.0)).sum();
        self.instances_seen = base + new_instances;
        Ok(())
    }

    fn clone_box(&self) -> Box<dyn StreamingClassifier> {
        Box::new(self.clone())
    }

    fn snapshot_into(&self, w: &mut SnapshotWriter) {
        Checkpoint::snapshot_into(self, w);
    }

    fn restore_from(&mut self, r: &mut SnapshotReader) -> Result<()> {
        Checkpoint::restore_from(self, r)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "SLR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable normalized stream with a margin: class 0 has
    /// x0 ∈ [0, 0.4), class 1 has x0 ∈ [0.6, 1.0).
    fn inst(i: u64) -> Instance {
        let label = (i % 2) as usize;
        let x0 = label as f64 * 0.6 + ((i * 13) % 40) as f64 / 100.0;
        let x1 = ((i * 29) % 100) as f64 / 100.0;
        Instance::labeled(vec![x0, x1], label)
    }

    fn accuracy(model: &StreamingLogisticRegression, n: u64, offset: u64) -> f64 {
        let correct = (0..n)
            .filter(|&i| {
                let t = inst(i + offset);
                model.predict(&t.features).unwrap() == t.label.unwrap()
            })
            .count();
        correct as f64 / n as f64
    }

    #[test]
    fn learns_linear_concept() {
        let mut slr = StreamingLogisticRegression::with_paper_defaults(2, 2).unwrap();
        for i in 0..20_000 {
            slr.train(&inst(i)).unwrap();
        }
        let acc = accuracy(&slr, 1000, 77);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn untrained_predicts_uniform() {
        let slr = StreamingLogisticRegression::with_paper_defaults(4, 3).unwrap();
        let p = slr.predict_proba(&[1.0, 2.0, 3.0]).unwrap();
        for x in &p {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn three_class_concept() {
        // Three margin-separated bands on one feature.
        let mut slr = StreamingLogisticRegression::with_paper_defaults(3, 1).unwrap();
        let gen = |i: u64| {
            let label = (i % 3) as usize;
            // Bands: [0, 0.2), [0.4, 0.6), [0.8, 1.0).
            let x = label as f64 * 0.4 + ((i * 13) % 20) as f64 / 100.0;
            Instance::labeled(vec![x], label)
        };
        for i in 0..60_000 {
            slr.train(&gen(i)).unwrap();
        }
        let correct = (0..300)
            .filter(|&i| {
                let t = gen(i);
                slr.predict(&t.features).unwrap() == t.label.unwrap()
            })
            .count();
        assert!(correct > 240, "3-class accuracy {correct}/300");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut slr = StreamingLogisticRegression::with_paper_defaults(3, 2).unwrap();
        for i in 0..500 {
            slr.train(&Instance::labeled(vec![(i % 7) as f64, 1.0], (i % 3) as usize))
                .unwrap();
        }
        let p = slr.predict_proba(&[3.0, 1.0]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn l2_shrinks_weights_vs_zero() {
        let mut cfg = SlrConfig::paper_defaults(2, 2);
        cfg.regularizer = Regularizer::Zero;
        let mut plain = StreamingLogisticRegression::new(cfg.clone()).unwrap();
        cfg.regularizer = Regularizer::L2;
        cfg.reg_param = 0.1;
        let mut ridge = StreamingLogisticRegression::new(cfg).unwrap();
        for i in 0..5000 {
            plain.train(&inst(i)).unwrap();
            ridge.train(&inst(i)).unwrap();
        }
        let norm = |m: &StreamingLogisticRegression| -> f64 {
            m.weights().iter().flatten().map(|w| w * w).sum::<f64>().sqrt()
        };
        assert!(norm(&ridge) < norm(&plain), "{} !< {}", norm(&ridge), norm(&plain));
    }

    #[test]
    fn l1_drives_uninformative_weights_toward_zero() {
        let mut cfg = SlrConfig::paper_defaults(2, 2);
        cfg.regularizer = Regularizer::L1;
        cfg.reg_param = 0.05;
        let mut lasso = StreamingLogisticRegression::new(cfg).unwrap();
        for i in 0..20_000 {
            lasso.train(&inst(i)).unwrap();
        }
        // Feature 1 is noise: its weight magnitude should be small relative
        // to the informative feature 0.
        let w0 = lasso.weights()[1][0].abs();
        let w1 = lasso.weights()[1][1].abs();
        assert!(w1 < w0 / 2.0, "noise weight {w1} vs signal weight {w0}");
    }

    #[test]
    fn instance_weight_scales_updates() {
        let mut a = StreamingLogisticRegression::with_paper_defaults(2, 1).unwrap();
        let mut b = StreamingLogisticRegression::with_paper_defaults(2, 1).unwrap();
        a.train(&Instance::labeled(vec![1.0], 1).with_weight(2.0)).unwrap();
        b.train(&Instance::labeled(vec![1.0], 1)).unwrap();
        assert!(a.weights()[1][0] > b.weights()[1][0]);
        assert_eq!(a.instances_seen(), 2.0);
    }

    #[test]
    fn merge_averages_parameters() {
        let mut a = StreamingLogisticRegression::with_paper_defaults(2, 2).unwrap();
        let mut b = StreamingLogisticRegression::with_paper_defaults(2, 2).unwrap();
        for i in 0..10_000 {
            // Alternate pairs so both halves see both classes.
            if (i / 2) % 2 == 0 {
                a.train(&inst(i)).unwrap();
            } else {
                b.train(&inst(i)).unwrap();
            }
        }
        let wa = a.weights()[1][0];
        let wb = b.weights()[1][0];
        StreamingClassifier::merge(&mut a, &b as &dyn StreamingClassifier).unwrap();
        let merged = a.weights()[1][0];
        assert!(
            (merged - (wa + wb) / 2.0).abs() < 1e-9,
            "equal-weight average: {merged} vs {}",
            (wa + wb) / 2.0
        );
        assert_eq!(a.instances_seen(), 10_000.0);
        // The merged model still classifies well.
        assert!(accuracy(&a, 500, 3) > 0.9);
    }

    #[test]
    fn merge_with_untrained_is_identity_scaled() {
        let mut a = StreamingLogisticRegression::with_paper_defaults(2, 2).unwrap();
        for i in 0..1000 {
            a.train(&inst(i)).unwrap();
        }
        let before = a.weights()[1][0];
        let b = StreamingLogisticRegression::with_paper_defaults(2, 2).unwrap();
        StreamingClassifier::merge(&mut a, &b as &dyn StreamingClassifier).unwrap();
        assert!((a.weights()[1][0] - before).abs() < 1e-12);
    }

    #[test]
    fn merge_locals_parameter_averaging() {
        let mut global: Box<dyn StreamingClassifier> =
            Box::new(StreamingLogisticRegression::with_paper_defaults(2, 2).unwrap());
        let stream: Vec<Instance> = (0..8000).map(inst).collect();
        for batch in stream.chunks(1000) {
            let mut local_a = global.local_copy();
            let mut local_b = global.local_copy();
            for (i, inst) in batch.iter().enumerate() {
                // Alternate pairs so both locals see both classes.
                if (i / 2) % 2 == 0 {
                    local_a.accumulate(inst).unwrap();
                } else {
                    local_b.accumulate(inst).unwrap();
                }
            }
            global.merge_locals(vec![local_a, local_b]).unwrap();
        }
        let slr = global.as_any().downcast_ref::<StreamingLogisticRegression>().unwrap();
        assert_eq!(slr.instances_seen(), 8000.0, "no double counting");
        let correct = (0..500)
            .filter(|&i| {
                let t = inst(i + 31);
                global.predict(&t.features).unwrap() == t.label.unwrap()
            })
            .count();
        assert!(correct > 470, "distributed SLR accuracy {correct}/500");
    }

    #[test]
    fn errors() {
        let mut slr = StreamingLogisticRegression::with_paper_defaults(2, 2).unwrap();
        assert!(slr.train(&Instance::labeled(vec![1.0], 0)).is_err());
        assert!(slr.train(&Instance::labeled(vec![1.0, 2.0], 9)).is_err());
        assert!(slr.predict_proba(&[1.0]).is_err());
        let mut cfg = SlrConfig::paper_defaults(2, 2);
        cfg.learning_rate = 0.0;
        assert!(StreamingLogisticRegression::new(cfg).is_err());
        let mut cfg = SlrConfig::paper_defaults(2, 2);
        cfg.num_classes = 1;
        assert!(StreamingLogisticRegression::new(cfg).is_err());
    }

    #[test]
    fn unlabeled_is_noop() {
        let mut slr = StreamingLogisticRegression::with_paper_defaults(2, 2).unwrap();
        slr.train(&Instance::unlabeled(vec![1.0, 1.0])).unwrap();
        assert_eq!(slr.instances_seen(), 0.0);
    }
}
