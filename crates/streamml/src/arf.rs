//! Adaptive Random Forest of Hoeffding Trees (Gomes et al., Machine
//! Learning 2017; Section III-C of the paper).
//!
//! ARF adapts the classical Random Forest to evolving streams:
//!
//! * **online bagging** — each ensemble member trains on each instance with
//!   a Poisson(λ = 6) replicate weight (Oza & Russell's online bootstrap);
//! * **random feature subsets** — each member's tree considers only a
//!   random subset of features per leaf (default ⌈√M⌉ + 1);
//! * **drift adaptation** — each member carries an ADWIN *warning* detector
//!   (sensitive) and a *drift* detector (conservative) on its prequential
//!   error. A warning starts a background tree trained in parallel; a drift
//!   replaces the member with its background tree (or a fresh one).
//!
//! Votes are weighted by each member's running accuracy.

use crate::classifier::{argmax, normalize_proba, StreamingClassifier};
use crate::drift::{restore_detector, snapshot_detector, ChangeDetector, DetectorKind};
use crate::hoeffding::{HoeffdingTree, HoeffdingTreeConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use redhanded_types::snapshot::{Checkpoint, SnapshotReader, SnapshotWriter};
use redhanded_types::{Error, Instance, Result};

/// Adaptive Random Forest hyperparameters (Table I of the paper).
#[derive(Debug, Clone)]
pub struct ArfConfig {
    /// Number of ensemble members (paper selects 10).
    pub ensemble_size: usize,
    /// Configuration of the member Hoeffding Trees (subspace is filled in
    /// with ⌈√M⌉ + 1 when unset).
    pub tree_config: HoeffdingTreeConfig,
    /// Poisson parameter for online bagging (ARF uses 6).
    pub lambda: f64,
    /// The (sensitive) warning detector.
    pub warning_detector: DetectorKind,
    /// The (conservative) drift detector.
    pub drift_detector: DetectorKind,
    /// Disable to ablate drift adaptation (the `arf_drift` bench).
    pub enable_drift_detection: bool,
    /// Seed for bagging and subspace sampling.
    pub seed: u64,
}

impl ArfConfig {
    /// The paper's selected hyperparameters for a problem shape.
    pub fn paper_defaults(num_classes: usize, num_features: usize) -> Self {
        let mut tree_config = HoeffdingTreeConfig::paper_defaults(num_classes, num_features);
        tree_config.subspace = Some(subspace_size(num_features));
        ArfConfig {
            ensemble_size: 10,
            tree_config,
            lambda: 6.0,
            warning_detector: DetectorKind::Adwin { delta: 0.01 },
            drift_detector: DetectorKind::Adwin { delta: 0.001 },
            enable_drift_detection: true,
            seed: 0xF0DE57,
        }
    }
}

/// ARF's default per-leaf feature-subset size: ⌈√M⌉ + 1, capped at M.
pub fn subspace_size(num_features: usize) -> usize {
    (((num_features as f64).sqrt().ceil() as usize) + 1).min(num_features)
}

/// One ensemble member: tree + detectors + optional background tree.
#[derive(Debug, Clone)]
struct ArfMember {
    tree: HoeffdingTree,
    background: Option<HoeffdingTree>,
    warning: Box<dyn ChangeDetector>,
    drift: Box<dyn ChangeDetector>,
    /// Running (weighted) correct prediction count, for vote weighting.
    correct: f64,
    /// Running (weighted) prediction count.
    total: f64,
    /// Set by `accumulate` when the drift detector fired; applied by
    /// `finalize_batch` so structure never changes mid-batch.
    pending_drift: bool,
    /// Set when the warning detector fired and no background tree exists.
    pending_warning: bool,
    /// Drift events applied over the member's lifetime.
    drifts_applied: u64,
    /// Warning detections that started a background tree, cumulative.
    warnings_seen: u64,
    /// In a distributed-protocol fork: a read-only copy of the global tree
    /// used for prequential scoring (the fork's own `tree` holds only the
    /// partition's statistics delta and cannot predict).
    reference: Option<Box<HoeffdingTree>>,
}

impl ArfMember {
    fn new(config: &ArfConfig, seed: u64) -> Result<Self> {
        let mut tree_config = config.tree_config.clone();
        tree_config.seed = seed;
        Ok(ArfMember {
            tree: HoeffdingTree::new(tree_config)?,
            background: None,
            warning: config.warning_detector.build(),
            drift: config.drift_detector.build(),
            correct: 0.0,
            total: 0.0,
            pending_drift: false,
            pending_warning: false,
            drifts_applied: 0,
            warnings_seen: 0,
            reference: None,
        })
    }

    /// Zero-statistics fork for per-partition delta accumulation.
    fn fork(&self, config: &ArfConfig) -> ArfMember {
        ArfMember {
            tree: self.tree.fork(),
            background: self.background.as_ref().map(HoeffdingTree::fork),
            warning: config.warning_detector.build(),
            drift: config.drift_detector.build(),
            correct: 0.0,
            total: 0.0,
            pending_drift: false,
            pending_warning: false,
            drifts_applied: 0,
            warnings_seen: 0,
            reference: Some(Box::new(self.tree.clone())),
        }
    }

    fn vote_weight(&self) -> f64 {
        if self.total < 1.0 {
            1.0
        } else {
            (self.correct / self.total).max(0.01)
        }
    }

    /// Test-then-train on one instance with bagging weight `k`.
    fn observe(
        &mut self,
        instance: &Instance,
        class: usize,
        k: f64,
        drift_detection: bool,
    ) -> Result<()> {
        // Prequential scoring before learning (in a distributed fork, the
        // broadcast global tree predicts; the fork only holds deltas).
        let scorer = self.reference.as_deref().unwrap_or(&self.tree);
        let pred = argmax(&scorer.predict_proba(&instance.features)?);
        let err = if pred == class { 0.0 } else { 1.0 };
        if err == 0.0 {
            self.correct += instance.weight;
        }
        self.total += instance.weight;
        if drift_detection {
            if self.warning.update(err) && self.background.is_none() {
                self.pending_warning = true;
            }
            if self.drift.update(err) {
                self.pending_drift = true;
            }
        }
        if k > 0.0 {
            HoeffdingTree::accumulate_scaled(&mut self.tree, instance, k)?;
            if let Some(bg) = &mut self.background {
                HoeffdingTree::accumulate_scaled(bg, instance, k)?;
            }
        }
        Ok(())
    }

    /// Apply deferred structural updates: splits, background creation, and
    /// drift replacement.
    fn finalize(&mut self, config: &ArfConfig, seed: u64) -> Result<()> {
        if self.pending_drift {
            self.pending_drift = false;
            self.pending_warning = false;
            self.drifts_applied += 1;
            let replacement = match self.background.take() {
                Some(bg) => bg,
                None => {
                    let mut tc = config.tree_config.clone();
                    tc.seed = seed;
                    HoeffdingTree::new(tc)?
                }
            };
            self.tree = replacement;
            self.warning = config.warning_detector.build();
            self.drift = config.drift_detector.build();
            self.correct = 0.0;
            self.total = 0.0;
        } else if self.pending_warning {
            self.pending_warning = false;
            self.warnings_seen += 1;
            let mut tc = config.tree_config.clone();
            tc.seed = seed ^ 0x9E3779B97F4A7C15;
            self.background = Some(HoeffdingTree::new(tc)?);
        }
        self.tree.attempt_splits();
        if let Some(bg) = &mut self.background {
            bg.attempt_splits();
        }
        Ok(())
    }
}

impl Checkpoint for ArfMember {
    fn snapshot_into(&self, w: &mut SnapshotWriter) {
        // `reference` is only set on per-partition forks, which are never
        // checkpointed — the master model is snapshotted at the driver.
        Checkpoint::snapshot_into(&self.tree, w);
        match &self.background {
            Some(bg) => {
                w.write_bool(true);
                Checkpoint::snapshot_into(bg, w);
            }
            None => w.write_bool(false),
        }
        snapshot_detector(self.warning.as_ref(), w);
        snapshot_detector(self.drift.as_ref(), w);
        w.write_f64(self.correct);
        w.write_f64(self.total);
        w.write_bool(self.pending_drift);
        w.write_bool(self.pending_warning);
        w.write_u64(self.drifts_applied);
        w.write_u64(self.warnings_seen);
    }

    fn restore_from(&mut self, r: &mut SnapshotReader) -> Result<()> {
        Checkpoint::restore_from(&mut self.tree, r)?;
        self.background = if r.read_bool()? {
            // Build a shape-correct tree from the member's config, then
            // overwrite its state (the seed is immediately replaced by the
            // snapshot's RNG state).
            let mut bg = HoeffdingTree::new(self.tree.config().clone())?;
            Checkpoint::restore_from(&mut bg, r)?;
            Some(bg)
        } else {
            None
        };
        restore_detector(self.warning.as_mut(), r)?;
        restore_detector(self.drift.as_mut(), r)?;
        self.correct = r.read_f64()?;
        self.total = r.read_f64()?;
        self.pending_drift = r.read_bool()?;
        self.pending_warning = r.read_bool()?;
        self.drifts_applied = r.read_u64()?;
        self.warnings_seen = r.read_u64()?;
        self.reference = None;
        Ok(())
    }
}

/// The Adaptive Random Forest streaming classifier.
#[derive(Debug, Clone)]
pub struct AdaptiveRandomForest {
    config: ArfConfig,
    members: Vec<ArfMember>,
    rng: SmallRng,
}

impl AdaptiveRandomForest {
    /// Create a forest with the given configuration.
    pub fn new(config: ArfConfig) -> Result<Self> {
        if config.ensemble_size == 0 {
            return Err(Error::InvalidConfig("ensemble_size must be positive".into()));
        }
        if config.lambda <= 0.0 {
            return Err(Error::InvalidConfig("lambda must be positive".into()));
        }
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let members = (0..config.ensemble_size)
            .map(|_| ArfMember::new(&config, rng.gen()))
            .collect::<Result<Vec<_>>>()?;
        Ok(AdaptiveRandomForest { config, members, rng })
    }

    /// Forest with the paper's Table I hyperparameters.
    pub fn with_paper_defaults(num_classes: usize, num_features: usize) -> Result<Self> {
        Self::new(ArfConfig::paper_defaults(num_classes, num_features))
    }

    /// The configuration in use.
    pub fn config(&self) -> &ArfConfig {
        &self.config
    }

    /// Number of ensemble members.
    pub fn ensemble_size(&self) -> usize {
        self.members.len()
    }

    /// Total drift replacements applied across all members.
    pub fn drifts_applied(&self) -> u64 {
        self.members.iter().map(|m| m.drifts_applied).sum()
    }

    /// Total warning detections that started background trees.
    pub fn warnings_seen(&self) -> u64 {
        self.members.iter().map(|m| m.warnings_seen).sum()
    }

    /// Number of members currently growing a background tree.
    pub fn background_trees(&self) -> usize {
        self.members.iter().filter(|m| m.background.is_some()).count()
    }

    /// Sample a Poisson(λ) replicate count (Knuth's algorithm; λ ≤ ~30 in
    /// practice here so the O(λ) loop is fine).
    fn poisson(rng: &mut SmallRng, lambda: f64) -> u32 {
        let limit = (-lambda).exp();
        let mut product: f64 = rng.gen();
        let mut k = 0u32;
        while product > limit {
            product *= rng.gen::<f64>();
            k += 1;
        }
        k
    }

    fn check_instance(&self, instance: &Instance) -> Result<Option<usize>> {
        let Some(class) = instance.label else { return Ok(None) };
        if instance.features.len() != self.config.tree_config.num_features {
            return Err(Error::DimensionMismatch {
                expected: self.config.tree_config.num_features,
                actual: instance.features.len(),
            });
        }
        if class >= self.config.tree_config.num_classes {
            return Err(Error::InvalidClass {
                class,
                num_classes: self.config.tree_config.num_classes,
            });
        }
        Ok(Some(class))
    }
}

impl Checkpoint for AdaptiveRandomForest {
    fn snapshot_into(&self, w: &mut SnapshotWriter) {
        w.write_usize(self.members.len());
        for member in &self.members {
            member.snapshot_into(w);
        }
        for word in self.rng.state() {
            w.write_u64(word);
        }
    }

    fn restore_from(&mut self, r: &mut SnapshotReader) -> Result<()> {
        let n = r.read_usize()?;
        if n != self.members.len() {
            return Err(Error::Snapshot(format!(
                "ensemble size {} != snapshot {n}",
                self.members.len()
            )));
        }
        for member in &mut self.members {
            member.restore_from(r)?;
        }
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.read_u64()?;
        }
        self.rng = SmallRng::from_state(state);
        Ok(())
    }
}

impl StreamingClassifier for AdaptiveRandomForest {
    fn num_classes(&self) -> usize {
        self.config.tree_config.num_classes
    }

    fn train(&mut self, instance: &Instance) -> Result<()> {
        self.accumulate(instance)?;
        self.finalize_batch()
    }

    fn accumulate(&mut self, instance: &Instance) -> Result<()> {
        self.accumulate_scaled(instance, 1.0)
    }

    fn accumulate_scaled(&mut self, instance: &Instance, scale: f64) -> Result<()> {
        let Some(class) = self.check_instance(instance)? else { return Ok(()) };
        let lambda = self.config.lambda;
        let drift_detection = self.config.enable_drift_detection;
        for member in &mut self.members {
            let k = Self::poisson(&mut self.rng, lambda) as f64 * scale;
            member.observe(instance, class, k, drift_detection)?;
        }
        Ok(())
    }

    fn finalize_batch(&mut self) -> Result<()> {
        let config = self.config.clone();
        for member in &mut self.members {
            let seed = self.rng.gen();
            member.finalize(&config, seed)?;
        }
        Ok(())
    }

    fn predict_proba(&self, features: &[f64]) -> Result<Vec<f64>> {
        let mut combined = vec![0.0; self.num_classes()];
        for member in &self.members {
            let proba = member.tree.predict_proba(features)?;
            let w = member.vote_weight();
            for (acc, p) in combined.iter_mut().zip(&proba) {
                *acc += w * p;
            }
        }
        normalize_proba(&mut combined);
        Ok(combined)
    }

    /// Member-wise statistics merge. Detector and vote-weight state keeps
    /// `self`'s view (ADWIN windows cannot be merged exactly); the engine
    /// re-estimates them from the merged error stream in subsequent batches.
    fn merge(&mut self, other: &dyn StreamingClassifier) -> Result<()> {
        let other = other
            .as_any()
            .downcast_ref::<AdaptiveRandomForest>()
            .ok_or_else(|| Error::InvalidConfig("cannot merge ARF with non-ARF".into()))?;
        if other.members.len() != self.members.len() {
            return Err(Error::InvalidConfig("ensemble sizes differ".into()));
        }
        for (a, b) in self.members.iter_mut().zip(&other.members) {
            StreamingClassifier::merge(&mut a.tree, &b.tree as &dyn StreamingClassifier)?;
            if let (Some(abg), Some(bbg)) = (&mut a.background, &b.background) {
                StreamingClassifier::merge(abg, bbg as &dyn StreamingClassifier)?;
            }
            a.correct += b.correct;
            a.total += b.total;
            a.pending_drift |= b.pending_drift;
            a.pending_warning |= b.pending_warning;
        }
        Ok(())
    }

    fn clone_box(&self) -> Box<dyn StreamingClassifier> {
        Box::new(self.clone())
    }

    fn drifts(&self) -> u64 {
        self.drifts_applied()
    }

    fn warnings(&self) -> u64 {
        self.warnings_seen()
    }

    fn local_copy(&self) -> Box<dyn StreamingClassifier> {
        let members = self.members.iter().map(|m| m.fork(&self.config)).collect();
        Box::new(AdaptiveRandomForest {
            config: self.config.clone(),
            members,
            rng: self.rng.clone(),
        })
    }

    /// Sum member-wise statistics deltas, feed each member's drift
    /// detectors one update at micro-batch granularity (the mean error
    /// rate over the batch — ADWIN operates on bounded reals), then apply
    /// deferred structural updates.
    fn merge_locals(&mut self, locals: Vec<Box<dyn StreamingClassifier>>) -> Result<()> {
        let mut batch_correct = vec![0.0; self.members.len()];
        let mut batch_total = vec![0.0; self.members.len()];
        for local in &locals {
            let local = local
                .as_any()
                .downcast_ref::<AdaptiveRandomForest>()
                .ok_or_else(|| Error::InvalidConfig("cannot merge ARF with non-ARF".into()))?;
            if local.members.len() != self.members.len() {
                return Err(Error::InvalidConfig("ensemble sizes differ".into()));
            }
            for (i, (a, b)) in self.members.iter_mut().zip(&local.members).enumerate() {
                StreamingClassifier::merge(&mut a.tree, &b.tree as &dyn StreamingClassifier)?;
                if let (Some(abg), Some(bbg)) = (&mut a.background, &b.background) {
                    StreamingClassifier::merge(abg, bbg as &dyn StreamingClassifier)?;
                }
                a.correct += b.correct;
                a.total += b.total;
                batch_correct[i] += b.correct;
                batch_total[i] += b.total;
            }
        }
        if self.config.enable_drift_detection {
            for (i, member) in self.members.iter_mut().enumerate() {
                if batch_total[i] > 0.0 {
                    let err_rate = 1.0 - batch_correct[i] / batch_total[i];
                    if member.warning.update(err_rate) && member.background.is_none() {
                        member.pending_warning = true;
                    }
                    if member.drift.update(err_rate) {
                        member.pending_drift = true;
                    }
                }
            }
        }
        self.finalize_batch()
    }

    fn snapshot_into(&self, w: &mut SnapshotWriter) {
        Checkpoint::snapshot_into(self, w);
    }

    fn restore_from(&mut self, r: &mut SnapshotReader) -> Result<()> {
        Checkpoint::restore_from(self, r)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "ARF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable(i: u64) -> Instance {
        let x0 = (i % 11) as f64;
        let x1 = ((i * 7) % 13) as f64;
        let x2 = ((i * 3) % 5) as f64;
        Instance::labeled(vec![x0, x1, x2], usize::from(x0 > 5.0))
    }

    #[test]
    fn subspace_size_formula() {
        assert_eq!(subspace_size(17), 6); // ceil(sqrt(17)) + 1 = 5 + 1
        assert_eq!(subspace_size(4), 3);
        assert_eq!(subspace_size(1), 1, "capped at M");
        assert_eq!(subspace_size(2), 2);
    }

    #[test]
    fn learns_separable_concept() {
        let mut arf = AdaptiveRandomForest::with_paper_defaults(2, 3).unwrap();
        for i in 0..4000 {
            arf.train(&separable(i)).unwrap();
        }
        let correct = (0..500)
            .filter(|&i| {
                let t = separable(i + 12345);
                arf.predict(&t.features).unwrap() == t.label.unwrap()
            })
            .count();
        assert!(correct > 460, "accuracy {correct}/500");
    }

    #[test]
    fn ensemble_has_configured_size() {
        let arf = AdaptiveRandomForest::with_paper_defaults(2, 3).unwrap();
        assert_eq!(arf.ensemble_size(), 10);
        assert_eq!(arf.num_classes(), 2);
        assert_eq!(arf.name(), "ARF");
    }

    #[test]
    fn poisson_mean_is_lambda() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 20_000;
        let sum: u64 = (0..n)
            .map(|_| AdaptiveRandomForest::poisson(&mut rng, 6.0) as u64)
            .sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 6.0).abs() < 0.1, "poisson mean {mean}");
    }

    #[test]
    fn adapts_to_abrupt_drift() {
        let mut arf = AdaptiveRandomForest::with_paper_defaults(2, 3).unwrap();
        // Phase 1: concept A.
        for i in 0..4000 {
            arf.train(&separable(i)).unwrap();
        }
        // Phase 2: inverted concept.
        let inverted = |i: u64| {
            let mut inst = separable(i);
            inst.label = Some(1 - inst.label.unwrap());
            inst
        };
        for i in 0..6000 {
            arf.train(&inverted(i)).unwrap();
        }
        assert!(arf.drifts_applied() > 0, "no drift replacements happened");
        let correct = (0..500)
            .filter(|&i| {
                let t = inverted(i + 999);
                arf.predict(&t.features).unwrap() == t.label.unwrap()
            })
            .count();
        assert!(correct > 420, "post-drift accuracy {correct}/500");
    }

    #[test]
    fn drift_detection_can_be_disabled() {
        let mut cfg = ArfConfig::paper_defaults(2, 3);
        cfg.enable_drift_detection = false;
        let mut arf = AdaptiveRandomForest::new(cfg).unwrap();
        for i in 0..2000 {
            arf.train(&separable(i)).unwrap();
        }
        let inverted = |i: u64| {
            let mut inst = separable(i);
            inst.label = Some(1 - inst.label.unwrap());
            inst
        };
        for i in 0..2000 {
            arf.train(&inverted(i)).unwrap();
        }
        assert_eq!(arf.drifts_applied(), 0);
        assert_eq!(arf.background_trees(), 0);
    }

    #[test]
    fn probabilities_are_valid() {
        let mut arf = AdaptiveRandomForest::with_paper_defaults(3, 3).unwrap();
        for i in 0..1000 {
            arf.train(&Instance::labeled(
                vec![(i % 9) as f64, 1.0, 2.0],
                (i % 3) as usize,
            ))
            .unwrap();
        }
        let p = arf.predict_proba(&[4.0, 1.0, 2.0]).unwrap();
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = ArfConfig::paper_defaults(2, 3);
        cfg.ensemble_size = 0;
        assert!(AdaptiveRandomForest::new(cfg).is_err());
        let mut cfg = ArfConfig::paper_defaults(2, 3);
        cfg.lambda = 0.0;
        assert!(AdaptiveRandomForest::new(cfg).is_err());
    }

    #[test]
    fn errors_on_bad_instances() {
        let mut arf = AdaptiveRandomForest::with_paper_defaults(2, 3).unwrap();
        assert!(arf.train(&Instance::labeled(vec![1.0], 0)).is_err());
        assert!(arf.train(&Instance::labeled(vec![1.0, 2.0, 3.0], 5)).is_err());
        // Unlabeled: no-op.
        arf.train(&Instance::unlabeled(vec![1.0, 2.0, 3.0])).unwrap();
    }

    #[test]
    fn members_are_diverse() {
        let mut arf = AdaptiveRandomForest::with_paper_defaults(2, 3).unwrap();
        for i in 0..3000 {
            arf.train(&separable(i)).unwrap();
        }
        // Different subspaces + bagging → members should have different
        // amounts of accumulated weight.
        let weights: Vec<f64> = arf.members.iter().map(|m| m.tree.weight_seen()).collect();
        let first = weights[0];
        assert!(
            weights.iter().any(|w| (w - first).abs() > 1.0),
            "bagging produced identical members: {weights:?}"
        );
    }

    #[test]
    fn distributed_protocol_learns() {
        let mut global: Box<dyn StreamingClassifier> =
            Box::new(AdaptiveRandomForest::with_paper_defaults(2, 3).unwrap());
        let stream: Vec<Instance> = (0..3000).map(separable).collect();
        for batch in stream.chunks(500) {
            let mut local_a = global.local_copy();
            let mut local_b = global.local_copy();
            for (i, inst) in batch.iter().enumerate() {
                if i % 2 == 0 {
                    local_a.accumulate(inst).unwrap();
                } else {
                    local_b.accumulate(inst).unwrap();
                }
            }
            global.merge_locals(vec![local_a, local_b]).unwrap();
        }
        let correct = (0..500)
            .filter(|&i| {
                let t = separable(i + 4242);
                global.predict(&t.features).unwrap() == t.label.unwrap()
            })
            .count();
        assert!(correct > 440, "distributed ARF accuracy {correct}/500");
    }

    #[test]
    fn fork_scores_with_the_global_reference() {
        let mut arf = AdaptiveRandomForest::with_paper_defaults(2, 3).unwrap();
        for i in 0..2000 {
            arf.train(&separable(i)).unwrap();
        }
        let mut fork = arf.local_copy();
        // Accumulating into the fork records prequential outcomes scored by
        // the (accurate) global reference, so per-member correct-counts
        // should be high.
        for i in 0..200 {
            fork.accumulate(&separable(i + 9000)).unwrap();
        }
        let fork = fork.as_any().downcast_ref::<AdaptiveRandomForest>().unwrap();
        for member in &fork.members {
            assert!(member.total >= 200.0 - 1e-9);
            assert!(
                member.correct / member.total > 0.7,
                "member scored {} / {}",
                member.correct,
                member.total
            );
        }
    }

    #[test]
    fn ddm_detectors_also_adapt_to_drift() {
        let mut cfg = ArfConfig::paper_defaults(2, 3);
        cfg.warning_detector = DetectorKind::Ddm;
        cfg.drift_detector = DetectorKind::Ddm;
        let mut arf = AdaptiveRandomForest::new(cfg).unwrap();
        for i in 0..3000 {
            arf.train(&separable(i)).unwrap();
        }
        let inverted = |i: u64| {
            let mut inst = separable(i);
            inst.label = Some(1 - inst.label.unwrap());
            inst
        };
        for i in 0..5000 {
            arf.train(&inverted(i)).unwrap();
        }
        assert!(arf.drifts_applied() > 0, "DDM triggered member replacement");
        let correct = (0..500)
            .filter(|&i| {
                let t = inverted(i + 999);
                arf.predict(&t.features).unwrap() == t.label.unwrap()
            })
            .count();
        assert!(correct > 400, "post-drift accuracy {correct}/500 with DDM");
    }

    #[test]
    fn merge_requires_same_ensemble_size() {
        let mut a = AdaptiveRandomForest::with_paper_defaults(2, 3).unwrap();
        let mut cfg = ArfConfig::paper_defaults(2, 3);
        cfg.ensemble_size = 5;
        let b = AdaptiveRandomForest::new(cfg).unwrap();
        assert!(StreamingClassifier::merge(&mut a, &b as &dyn StreamingClassifier).is_err());
    }
}
