//! Split criteria for decision-tree induction.
//!
//! Table I of the paper tunes the Hoeffding Tree's split criterion over
//! {Gini, InfoGain} and selects InfoGain. Both are expressed here as an
//! *impurity* function so split merit is uniformly "impurity reduction",
//! and each reports the range `R` of its merit, which the Hoeffding bound
//! needs (`R = log2(c)` for information gain, `R = 1` for Gini).

/// A split criterion: impurity measure + merit range for the Hoeffding bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitCriterion {
    /// Gini impurity, `1 - Σ p²`.
    Gini,
    /// Shannon entropy in bits, `-Σ p log2 p` (the paper's selected option).
    #[default]
    InfoGain,
}

impl SplitCriterion {
    /// Impurity of a (possibly unnormalized) class-count distribution.
    pub fn impurity(self, counts: &[f64]) -> f64 {
        let total: f64 = counts.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        match self {
            SplitCriterion::Gini => {
                1.0 - counts.iter().map(|&c| (c / total).powi(2)).sum::<f64>()
            }
            SplitCriterion::InfoGain => counts
                .iter()
                .filter(|&&c| c > 0.0)
                .map(|&c| {
                    let p = c / total;
                    -p * p.log2()
                })
                .sum(),
        }
    }

    /// Range of the merit (impurity reduction) for `num_classes` classes,
    /// as required by the Hoeffding bound.
    pub fn range(self, num_classes: usize) -> f64 {
        match self {
            SplitCriterion::Gini => 1.0,
            SplitCriterion::InfoGain => (num_classes.max(2) as f64).log2(),
        }
    }
}

/// The Hoeffding bound: with probability `1 - delta`, the true mean of a
/// random variable with range `r` is within `eps` of the sample mean of `n`
/// observations (Domingos & Hulten, 2000).
pub fn hoeffding_bound(range: f64, delta: f64, n: f64) -> f64 {
    ((range * range * (1.0 / delta).ln()) / (2.0 * n)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_reference_values() {
        let c = SplitCriterion::InfoGain;
        assert_eq!(c.impurity(&[10.0, 0.0]), 0.0, "pure node");
        assert!((c.impurity(&[5.0, 5.0]) - 1.0).abs() < 1e-12, "50/50 = 1 bit");
        assert!((c.impurity(&[1.0, 1.0, 1.0, 1.0]) - 2.0).abs() < 1e-12);
        assert_eq!(c.impurity(&[]), 0.0);
        assert_eq!(c.impurity(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn gini_reference_values() {
        let c = SplitCriterion::Gini;
        assert_eq!(c.impurity(&[10.0, 0.0]), 0.0);
        assert!((c.impurity(&[5.0, 5.0]) - 0.5).abs() < 1e-12);
        assert!((c.impurity(&[1.0, 1.0, 1.0]) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn impurity_is_maximal_at_uniform() {
        for criterion in [SplitCriterion::Gini, SplitCriterion::InfoGain] {
            let uniform = criterion.impurity(&[1.0, 1.0, 1.0]);
            let skewed = criterion.impurity(&[5.0, 1.0, 0.5]);
            assert!(uniform > skewed, "{criterion:?}");
        }
    }

    #[test]
    fn ranges() {
        assert_eq!(SplitCriterion::Gini.range(2), 1.0);
        assert_eq!(SplitCriterion::Gini.range(5), 1.0);
        assert_eq!(SplitCriterion::InfoGain.range(2), 1.0);
        assert_eq!(SplitCriterion::InfoGain.range(4), 2.0);
        assert_eq!(SplitCriterion::InfoGain.range(0), 1.0, "degenerate clamps to 2 classes");
    }

    #[test]
    fn hoeffding_bound_monotonicity() {
        // ε shrinks with more observations.
        let e100 = hoeffding_bound(1.0, 0.01, 100.0);
        let e1000 = hoeffding_bound(1.0, 0.01, 1000.0);
        assert!(e1000 < e100);
        // ε shrinks with higher confidence parameter (larger delta).
        let tight = hoeffding_bound(1.0, 0.001, 100.0);
        let loose = hoeffding_bound(1.0, 0.1, 100.0);
        assert!(tight > loose);
        // ε grows with range.
        assert!(hoeffding_bound(2.0, 0.01, 100.0) > e100);
    }

    #[test]
    fn hoeffding_bound_reference_value() {
        // ε = sqrt(R² ln(1/δ) / 2n): R=1, δ=0.05, n=1000 → ~0.0387
        let eps = hoeffding_bound(1.0, 0.05, 1000.0);
        assert!((eps - 0.03871).abs() < 1e-4, "{eps}");
    }
}
