//! Streaming machine learning for the `redhanded` framework.
//!
//! From-scratch implementations of the streaming classifiers the paper
//! evaluates (Section III-C) and their supporting machinery:
//!
//! * [`hoeffding`] — the Hoeffding Tree (Domingos & Hulten, 2000);
//! * [`arf`] — the Adaptive Random Forest (Gomes et al., 2017) with online
//!   bagging, per-leaf feature subsets, and ADWIN-driven drift adaptation;
//! * [`slr`] — Streaming Logistic Regression with SGD;
//! * [`adwin`] — the ADWIN change detector (Bifet & Gavaldà, 2007);
//! * [`gaussian`] — per-class Gaussian attribute observers for numeric
//!   split evaluation;
//! * [`criterion`] — Gini / information-gain split criteria and the
//!   Hoeffding bound;
//! * [`eval`] — prequential (test-then-train) evaluation, confusion
//!   matrices, and the metric series behind the paper's figures;
//! * [`classifier`] — the [`StreamingClassifier`] trait, including the
//!   accumulate / merge / finalize protocol used for distributed training
//!   (Figure 2 of the paper).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adwin;
pub mod arf;
pub mod bagging;
pub mod classifier;
pub mod criterion;
pub mod drift;
pub mod eval;
pub mod gaussian;
pub mod hoeffding;
pub mod nb;
pub mod slr;

pub use adwin::Adwin;
pub use arf::{AdaptiveRandomForest, ArfConfig};
pub use bagging::OzaBag;
pub use classifier::StreamingClassifier;
pub use criterion::{hoeffding_bound, SplitCriterion};
pub use drift::{ChangeDetector, Ddm, DetectorKind};
pub use eval::{
    restore_series, snapshot_series, ConfusionMatrix, Metrics, PrequentialEvaluator, SeriesPoint,
};
pub use hoeffding::{HoeffdingTree, HoeffdingTreeConfig, LeafPrediction};
pub use nb::StreamingNaiveBayes;
pub use slr::{Regularizer, SlrConfig, StreamingLogisticRegression};
