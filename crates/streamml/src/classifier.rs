//! The streaming-classifier abstraction.
//!
//! Streaming (online) learners process each labeled instance exactly once —
//! "the instance is used to update the model and then discarded" (Section
//! III-A of the paper) — and can predict at any point in the stream. The
//! distributed engine additionally needs to *merge* local models trained on
//! different partitions of a micro-batch back into the global model
//! (Figure 2, op #3), so merging is part of the contract.

use redhanded_types::snapshot::{SnapshotReader, SnapshotWriter};
use redhanded_types::{Instance, Result};

/// An incremental classifier over dense feature vectors.
pub trait StreamingClassifier: Send + Sync {
    /// Number of classes the model predicts.
    fn num_classes(&self) -> usize;

    /// Update the model with one labeled instance. Instances with
    /// `label == None` are ignored (training consumes the labeled stream
    /// only). The instance's `weight` scales its contribution.
    fn train(&mut self, instance: &Instance) -> Result<()>;

    /// Class-probability estimates for a feature vector. The returned vector
    /// has `num_classes()` entries summing to 1 (uniform before any
    /// training).
    fn predict_proba(&self, features: &[f64]) -> Result<Vec<f64>>;

    /// The most probable class for a feature vector.
    fn predict(&self, features: &[f64]) -> Result<usize> {
        let proba = self.predict_proba(features)?;
        Ok(argmax(&proba))
    }

    /// Update statistics from one labeled instance *without* any structural
    /// model change — the parallel-task half of the distributed training
    /// protocol (Figure 2, op #3, first part). Models whose training is
    /// purely statistical (e.g. SGD) may treat this the same as
    /// [`StreamingClassifier::train`], which is the default.
    fn accumulate(&mut self, instance: &Instance) -> Result<()> {
        self.train(instance)
    }

    /// [`StreamingClassifier::accumulate`] with the instance's weight
    /// multiplied by `scale`, without cloning the instance. The Poisson
    /// resamplers (ARF, OzaBag) call this once per member per instance,
    /// so it must not allocate.
    fn accumulate_scaled(&mut self, instance: &Instance, scale: f64) -> Result<()>;

    /// Apply deferred structural updates (tree splits, drift handling)
    /// after local models have been merged — the driver half of the
    /// distributed training protocol (Figure 2, op #3, second part).
    fn finalize_batch(&mut self) -> Result<()> {
        Ok(())
    }

    /// Fold another model of the same kind (trained on a different data
    /// partition) into this one. Implementations document their merge
    /// semantics; the distributed engine calls this to combine per-task
    /// local models into the global model at every micro-batch boundary.
    fn merge(&mut self, other: &dyn StreamingClassifier) -> Result<()>;

    /// Clone into a boxed trait object (models are replicated to every task
    /// at the start of a micro-batch).
    fn clone_box(&self) -> Box<dyn StreamingClassifier>;

    /// A per-partition local model for the distributed training protocol.
    ///
    /// Statistics-merged models (trees) return a **zero-statistics fork**
    /// sharing the global model's structure, so what the task accumulates
    /// is exactly the partition's *delta* and [`merge_locals`] can sum
    /// deltas without double-counting. Parameter-averaged models (SGD)
    /// return a full clone. The default is a full clone.
    ///
    /// [`merge_locals`]: StreamingClassifier::merge_locals
    fn local_copy(&self) -> Box<dyn StreamingClassifier> {
        self.clone_box()
    }

    /// Fold the per-partition local models of one micro-batch back into
    /// this global model, then apply deferred structural updates
    /// (Figure 2, op #3 second half). The default sums every local via
    /// [`merge`] and calls [`finalize_batch`] — correct for delta-forks.
    ///
    /// [`merge`]: StreamingClassifier::merge
    /// [`finalize_batch`]: StreamingClassifier::finalize_batch
    fn merge_locals(&mut self, locals: Vec<Box<dyn StreamingClassifier>>) -> Result<()> {
        for local in &locals {
            self.merge(local.as_ref())?;
        }
        self.finalize_batch()
    }

    /// Serialize all mutable model state for checkpointing — the
    /// object-safe face of [`redhanded_types::Checkpoint`], so the driver
    /// can snapshot a `Box<dyn StreamingClassifier>` without downcasting.
    /// Round-trip law: a model restored into a freshly configured instance
    /// must produce bit-identical predictions and training trajectories.
    fn snapshot_into(&self, w: &mut SnapshotWriter);

    /// Restore mutable model state captured by
    /// [`StreamingClassifier::snapshot_into`] into this (freshly
    /// configured) model.
    fn restore_from(&mut self, r: &mut SnapshotReader) -> Result<()>;

    /// Cumulative count of concept-drift adaptations the model has applied
    /// over its lifetime (e.g. ARF member replacements). Drift-free models
    /// report 0. Observability reads this to surface drift detections
    /// without downcasting.
    fn drifts(&self) -> u64 {
        0
    }

    /// Cumulative count of drift *warnings* the model has acted on (e.g.
    /// ARF background trees started by an ADWIN warning detector). Counted
    /// at the driver-side finalize step, so the value is deterministic
    /// under the distributed protocol and survives checkpoints. Models
    /// without warning detectors report 0.
    fn warnings(&self) -> u64 {
        0
    }

    /// Downcasting support for [`StreamingClassifier::merge`]
    /// implementations.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Short human-readable name (`HT`, `ARF`, `SLR`) used in reports.
    fn name(&self) -> &'static str;
}

impl Clone for Box<dyn StreamingClassifier> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Index of the largest value (first one on ties). Empty input returns 0.
pub fn argmax(values: &[f64]) -> usize {
    let mut best = 0;
    let mut best_v = f64::NEG_INFINITY;
    for (i, &v) in values.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Normalize `values` into a probability distribution in place. If the total
/// mass is not positive, fall back to the uniform distribution.
pub fn normalize_proba(values: &mut [f64]) {
    let sum: f64 = values.iter().sum();
    if sum > 0.0 && sum.is_finite() {
        for v in values.iter_mut() {
            *v /= sum;
        }
    } else if !values.is_empty() {
        let u = 1.0 / values.len() as f64;
        for v in values.iter_mut() {
            *v = u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_basic() {
        assert_eq!(argmax(&[0.1, 0.7, 0.2]), 1);
        assert_eq!(argmax(&[0.5, 0.5]), 0, "first wins ties");
        assert_eq!(argmax(&[]), 0);
    }

    #[test]
    fn normalize_proba_sums_to_one() {
        let mut v = vec![2.0, 6.0];
        normalize_proba(&mut v);
        assert!((v[0] - 0.25).abs() < 1e-12);
        assert!((v[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn normalize_proba_zero_mass_is_uniform() {
        let mut v = vec![0.0, 0.0, 0.0, 0.0];
        normalize_proba(&mut v);
        for x in v {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn normalize_proba_empty_is_noop() {
        let mut v: Vec<f64> = vec![];
        normalize_proba(&mut v);
        assert!(v.is_empty());
    }
}
