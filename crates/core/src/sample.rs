//! Boosted random sampling for downstream labeling (Section III-A,
//! "Sampling").
//!
//! Aggressive tweets are a minority, so uniform random sampling would
//! yield a labeling set almost devoid of positive examples. Following the
//! paper (and Founta et al.), the sampler boosts the inclusion probability
//! of tweets the model *predicts* to be aggressive while still sampling
//! every tweet with a non-zero base rate, so the resulting dataset covers
//! both classes without hard bias.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use redhanded_types::snapshot::{Checkpoint, SnapshotReader, SnapshotWriter};
use redhanded_types::{ClassScheme, Result};

/// A tweet selected for manual labeling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampledTweet {
    /// The tweet id.
    pub tweet_id: u64,
    /// Whether the boosted (predicted-aggressive) rate selected it.
    pub boosted: bool,
}

/// The boosted random sampler.
#[derive(Debug, Clone)]
pub struct BoostedSampler {
    scheme: ClassScheme,
    base_rate: f64,
    boost: f64,
    rng: SmallRng,
    sample: Vec<SampledTweet>,
    seen: u64,
}

impl BoostedSampler {
    /// Create a sampler: tweets are selected with probability `base_rate`,
    /// multiplied by `boost` (capped at 1.0) when predicted aggressive.
    pub fn new(scheme: ClassScheme, base_rate: f64, boost: f64, seed: u64) -> Self {
        BoostedSampler {
            scheme,
            base_rate: base_rate.clamp(0.0, 1.0),
            boost: boost.max(1.0),
            rng: SmallRng::seed_from_u64(seed),
            sample: Vec::new(),
            seen: 0,
        }
    }

    /// Consider one classified (unlabeled) tweet for the sample.
    pub fn observe(&mut self, tweet_id: u64, proba: &[f64]) -> Option<SampledTweet> {
        self.seen += 1;
        let aggressive_mass: f64 =
            self.scheme.positive_classes().map(|c| proba.get(c).copied().unwrap_or(0.0)).sum();
        let predicted_aggressive = aggressive_mass >= 0.5;
        let rate = if predicted_aggressive {
            (self.base_rate * self.boost).min(1.0)
        } else {
            self.base_rate
        };
        if self.rng.gen::<f64>() < rate {
            let s = SampledTweet { tweet_id, boosted: predicted_aggressive };
            self.sample.push(s);
            Some(s)
        } else {
            None
        }
    }

    /// The sample accumulated so far.
    pub fn sample(&self) -> &[SampledTweet] {
        &self.sample
    }

    /// Number of tweets considered.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Drain the accumulated sample (handing it to the labeling step).
    pub fn drain(&mut self) -> Vec<SampledTweet> {
        std::mem::take(&mut self.sample)
    }
}

impl Checkpoint for BoostedSampler {
    fn snapshot_into(&self, w: &mut SnapshotWriter) {
        // `scheme`, `base_rate`, and `boost` are construction-time
        // configuration. The RNG state is captured exactly so a restored
        // sampler makes the same inclusion decisions the original would
        // have — the chaos harness requires the replayed sample to be
        // bit-identical.
        for word in self.rng.state() {
            w.write_u64(word);
        }
        w.write_usize(self.sample.len());
        for s in &self.sample {
            w.write_u64(s.tweet_id);
            w.write_bool(s.boosted);
        }
        w.write_u64(self.seen);
    }

    fn restore_from(&mut self, r: &mut SnapshotReader) -> Result<()> {
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.read_u64()?;
        }
        self.rng = SmallRng::from_state(state);
        let sample_len = r.read_usize()?;
        self.sample.clear();
        for _ in 0..sample_len {
            let tweet_id = r.read_u64()?;
            let boosted = r.read_bool()?;
            self.sample.push(SampledTweet { tweet_id, boosted });
        }
        self.seen = r.read_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boosting_enriches_minority_class() {
        let mut sampler = BoostedSampler::new(ClassScheme::TwoClass, 0.02, 10.0, 1);
        // Stream: 95% predicted-normal, 5% predicted-aggressive.
        for i in 0..100_000u64 {
            let proba = if i % 20 == 0 { [0.2, 0.8] } else { [0.9, 0.1] };
            sampler.observe(i, &proba);
        }
        let sample = sampler.sample();
        let boosted = sample.iter().filter(|s| s.boosted).count();
        let plain = sample.len() - boosted;
        // Aggressive tweets are 5% of the stream but sampled at 10× rate:
        // expected ~5000×0.2=1000 boosted vs ~95000×0.02=1900 plain, i.e.
        // the sample is ~35% aggressive instead of 5%.
        let frac = boosted as f64 / sample.len() as f64;
        assert!(frac > 0.25, "boosted fraction {frac}");
        assert!(plain > 0, "base rate still samples normal tweets");
        assert_eq!(sampler.seen(), 100_000);
    }

    #[test]
    fn rates_are_capped() {
        let mut sampler = BoostedSampler::new(ClassScheme::TwoClass, 0.5, 100.0, 2);
        // boost × base > 1 → every predicted-aggressive tweet sampled.
        for i in 0..100u64 {
            let s = sampler.observe(i, &[0.0, 1.0]);
            assert!(s.is_some());
            assert!(s.unwrap().boosted);
        }
    }

    #[test]
    fn zero_base_rate_samples_nothing_normal() {
        let mut sampler = BoostedSampler::new(ClassScheme::TwoClass, 0.0, 10.0, 3);
        for i in 0..1000u64 {
            assert!(sampler.observe(i, &[1.0, 0.0]).is_none());
        }
        assert!(sampler.sample().is_empty());
    }

    #[test]
    fn drain_resets_sample() {
        let mut sampler = BoostedSampler::new(ClassScheme::TwoClass, 1.0, 1.0, 4);
        sampler.observe(1, &[1.0, 0.0]);
        assert_eq!(sampler.drain().len(), 1);
        assert!(sampler.sample().is_empty());
        assert_eq!(sampler.seen(), 1, "seen counter survives");
    }

    #[test]
    fn checkpoint_resumes_the_rng_stream_exactly() {
        let mut a = BoostedSampler::new(ClassScheme::TwoClass, 0.2, 3.0, 9);
        for i in 0..500u64 {
            a.observe(i, &[0.6, 0.4]);
        }
        let bytes = a.snapshot();
        let mut b = BoostedSampler::new(ClassScheme::TwoClass, 0.2, 3.0, 9);
        let mut r = redhanded_types::snapshot::SnapshotReader::new(&bytes);
        b.restore_from(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(b.snapshot(), bytes, "round trip is bit-identical");
        // The restored RNG continues the original's decision stream.
        for i in 500..1500u64 {
            let proba = if i % 7 == 0 { [0.2, 0.8] } else { [0.9, 0.1] };
            assert_eq!(a.observe(i, &proba), b.observe(i, &proba));
        }
        assert_eq!(a.sample(), b.sample());
        assert_eq!(a.seen(), b.seen());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut s = BoostedSampler::new(ClassScheme::TwoClass, 0.1, 5.0, seed);
            for i in 0..1000u64 {
                s.observe(i, &[0.6, 0.4]);
            }
            s.sample().to_vec()
        };
        assert_eq!(run(7), run(7));
    }
}
