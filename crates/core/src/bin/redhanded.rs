//! `redhanded` — command-line front end to the detection framework.
//!
//! ```text
//! redhanded generate --total 10000 [--dataset abusive|sarcasm|offensive]
//!                    [--seed N] [--unlabeled]        JSONL to stdout
//! redhanded detect   [--scheme 2|3] [--model ht|arf|slr|nb]
//!                    [--threshold 0.5]               JSONL in, alerts out
//! redhanded evaluate [--scheme 2|3] [--model ht|arf|slr|nb]
//!                    [--every N]                     JSONL in, metrics out
//! ```
//!
//! `detect` and `evaluate` read the Twitter-API-style JSON wire format
//! (one payload per line; labeled payloads carry a `label` attribute) from
//! stdin — pipe `generate` into them for a self-contained demo:
//!
//! ```text
//! redhanded generate --total 20000 | redhanded evaluate --scheme 2
//! ```

use redhanded_core::{DetectionPipeline, ModelKind, PipelineConfig, StreamItem};
use redhanded_datagen::{
    generate_abusive, generate_offensive, generate_sarcasm, AbusiveConfig, RelatedConfig,
};
use redhanded_types::ClassScheme;
use std::io::{BufRead, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("detect") => cmd_detect(&args[1..]),
        Some("evaluate") => cmd_evaluate(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            eprint!("{}", USAGE);
            0
        }
        Some(other) => {
            eprintln!("unknown command: {other}\n\n{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

const USAGE: &str = "\
redhanded — real-time aggression detection on social media streams

USAGE:
  redhanded generate --total N [--dataset abusive|sarcasm|offensive]
                     [--seed N] [--unlabeled]
      Emit a synthetic tweet stream as JSON lines on stdout.

  redhanded detect [--scheme 2|3] [--model ht|arf|slr|nb] [--threshold F]
      Read a mixed labeled/unlabeled JSONL stream on stdin; train on
      labeled payloads, emit an alert JSON line for every aggressive
      unlabeled tweet; print summary metrics on stderr at EOF.

  redhanded evaluate [--scheme 2|3] [--model ht|arf|slr|nb] [--every N]
      Read a labeled JSONL stream on stdin, run prequential evaluation,
      print a metric row every N labeled tweets (default 5000) and the
      final summary.
";

/// Minimal `--key value` / `--flag` argument map.
fn parse_flags(args: &[String]) -> Result<std::collections::HashMap<String, String>, String> {
    let mut map = std::collections::HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = &args[i];
        if !key.starts_with("--") {
            return Err(format!("unexpected argument: {key}"));
        }
        let key = key.trim_start_matches("--").to_string();
        if i + 1 < args.len() && !args[i + 1].starts_with("--") {
            map.insert(key, args[i + 1].clone());
            i += 2;
        } else {
            map.insert(key, String::from("true"));
            i += 1;
        }
    }
    Ok(map)
}

fn scheme_of(flags: &std::collections::HashMap<String, String>) -> Result<ClassScheme, String> {
    match flags.get("scheme").map(String::as_str) {
        None | Some("2") => Ok(ClassScheme::TwoClass),
        Some("3") => Ok(ClassScheme::ThreeClass),
        Some("sarcasm") => Ok(ClassScheme::Sarcasm),
        Some("offensive") => Ok(ClassScheme::Offensive),
        Some(other) => Err(format!("unknown scheme: {other}")),
    }
}

fn model_of(flags: &std::collections::HashMap<String, String>) -> Result<ModelKind, String> {
    match flags.get("model") {
        None => Ok(ModelKind::ht()),
        Some(name) => ModelKind::parse(name).ok_or_else(|| format!("unknown model: {name}")),
    }
}

fn cmd_generate(args: &[String]) -> i32 {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let total: usize =
        flags.get("total").and_then(|v| v.parse().ok()).unwrap_or(10_000);
    let seed: u64 = flags.get("seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    let unlabeled = flags.contains_key("unlabeled");
    let dataset = flags.get("dataset").map(String::as_str).unwrap_or("abusive");

    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let tweets = match dataset {
        "abusive" => generate_abusive(&AbusiveConfig::small(total, seed)),
        "sarcasm" => generate_sarcasm(&RelatedConfig {
            total,
            seed,
            ..RelatedConfig::sarcasm_paper_scale()
        }),
        "offensive" => generate_offensive(&RelatedConfig {
            total,
            seed,
            ..RelatedConfig::offensive_paper_scale()
        }),
        other => {
            eprintln!("unknown dataset: {other}");
            return 2;
        }
    };
    for lt in tweets {
        let line =
            if unlabeled { lt.tweet.to_json() } else { lt.to_json() };
        if writeln!(out, "{line}").is_err() {
            return 0; // downstream closed the pipe
        }
    }
    0
}

fn build_pipeline(
    flags: &std::collections::HashMap<String, String>,
) -> Result<DetectionPipeline, String> {
    let scheme = scheme_of(flags)?;
    let model = model_of(flags)?;
    let mut config = PipelineConfig::paper(scheme, model);
    if let Some(t) = flags.get("threshold") {
        config.alert_threshold =
            t.parse().map_err(|_| format!("bad threshold: {t}"))?;
    }
    if let Some(n) = flags.get("every") {
        config.record_every = n.parse().map_err(|_| format!("bad --every: {n}"))?;
    }
    DetectionPipeline::new(config).map_err(|e| e.to_string())
}

fn cmd_detect(args: &[String]) -> i32 {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let mut pipeline = match build_pipeline(&flags) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut alerts_emitted = 0usize;
    let mut bad_lines = 0usize;
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let Ok(item) = StreamItem::from_json(&line) else {
            bad_lines += 1;
            continue;
        };
        let before = pipeline.alerts().len();
        if let Err(e) = pipeline.process(&item) {
            eprintln!("pipeline error: {e}");
            return 1;
        }
        for alert in &pipeline.alerts()[before..] {
            let _ = writeln!(
                out,
                "{{\"tweet_id\":{},\"user_id\":{},\"class\":\"{}\",\"confidence\":{:.4},\"user_alert_count\":{}}}",
                alert.tweet_id,
                alert.user_id,
                alert.class_name,
                alert.confidence,
                alert.user_alert_count
            );
            alerts_emitted += 1;
        }
    }
    let _ = out.flush();
    let m = pipeline.cumulative_metrics();
    eprintln!(
        "processed: {} labeled (trained), {} alerts emitted, {} malformed lines",
        pipeline.labeled_seen(),
        alerts_emitted,
        bad_lines
    );
    eprintln!(
        "model quality (prequential on labeled traffic): accuracy {:.4}  F1 {:.4}  kappa {:.4}",
        m.accuracy, m.f1, m.kappa
    );
    eprintln!(
        "adaptive BoW: 347 -> {} words; {} users flagged for suspension",
        pipeline.bow_len(),
        pipeline.alerter().suspended_users().len()
    );
    0
}

fn cmd_evaluate(args: &[String]) -> i32 {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let every: u64 = flags.get("every").and_then(|v| v.parse().ok()).unwrap_or(5000);
    let mut pipeline = match build_pipeline(&flags) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let stdin = std::io::stdin();
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "tweets", "accuracy", "precision", "recall", "f1", "kappa"
    );
    let mut bad_lines = 0usize;
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let Ok(item) = StreamItem::from_json(&line) else {
            bad_lines += 1;
            continue;
        };
        if let Err(e) = pipeline.process(&item) {
            eprintln!("pipeline error: {e}");
            return 1;
        }
        if every > 0 && pipeline.labeled_seen() % every == 0 && pipeline.labeled_seen() > 0 {
            let m = pipeline.metrics();
            println!(
                "{:>10} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
                pipeline.labeled_seen(),
                m.accuracy,
                m.precision,
                m.recall,
                m.f1,
                m.kappa
            );
        }
    }
    let m = pipeline.cumulative_metrics();
    println!("---");
    println!(
        "{:>10} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4}   (cumulative)",
        pipeline.labeled_seen(),
        m.accuracy,
        m.precision,
        m.recall,
        m.f1,
        m.kappa
    );
    if bad_lines > 0 {
        eprintln!("skipped {bad_lines} malformed lines");
    }
    0
}
