//! Pipeline-level observability: the pre-registered metric/event set the
//! detection pipeline and the distributed detector record into.
//!
//! Metrics split into two determinism classes (DESIGN.md §10):
//!
//! * [`Determinism::Deterministic`] — semantic exactly-once state: record /
//!   labeled / classified / skipped counts, alert and suspension totals,
//!   the alert-confidence histogram, the BoW-size and model-drift gauges.
//!   These are part of the detector's [`Checkpoint`] state, so a run
//!   recovered from a driver kill reports bit-identical values to a
//!   fault-free run (`tests/obs_consistency.rs` asserts exactly that).
//! * [`Determinism::Runtime`] — operational measurements: stage spans
//!   (simulated clock in the distributed detector, optional wall clock in
//!   the sequential pipeline) and checkpointing costs. Excluded from
//!   snapshots and from chaos comparisons: a recovered run legitimately
//!   checkpoints and re-executes more than a fault-free one.
//!
//! The bounded [`EventLog`] records deterministic stream events (drift,
//! alerts, suspensions, drains) alongside operational ones (checkpoint
//! saves/restores, driver kills); its deterministic digest filters to the
//! former. Drains performed between batches are observed at the next
//! batch boundary.

use crate::alert::Alerter;
use redhanded_obs::{
    CounterId, Determinism, EventKind, EventLog, GaugeId, HistogramId, Registry, SpanClock,
    Tracer,
};
use redhanded_types::snapshot::{Checkpoint, SnapshotReader, SnapshotWriter};
use redhanded_types::Result;

/// Ring capacity of the pipeline event log. Sized so deterministic events
/// of the test-scale streams are never evicted by operational chatter.
pub const EVENT_LOG_CAPACITY: usize = 4096;

/// Pre-registered pipeline metrics + event log. Registration happens once
/// in [`PipelineObs::new`]; every recording call on the per-tweet and
/// per-batch paths is alloc-free.
#[derive(Debug, Clone)]
pub struct PipelineObs {
    pub(crate) registry: Registry,
    pub(crate) events: EventLog,
    pub(crate) clock: SpanClock,
    /// Causal span recorder (see `redhanded_obs::Tracer`). Not part of the
    /// checkpoint: its deterministic digest dedups replayed batches, so a
    /// recovered run converges on the fault-free tree without persisting
    /// spans.
    pub(crate) trace: Tracer,
    // Deterministic (checkpointed, chaos-compared).
    pub(crate) records: CounterId,
    pub(crate) labeled: CounterId,
    pub(crate) skipped: CounterId,
    pub(crate) classified: CounterId,
    pub(crate) alerts_raised: CounterId,
    pub(crate) alerts_drained: CounterId,
    pub(crate) users_suspended: CounterId,
    pub(crate) bow_size: GaugeId,
    pub(crate) model_drifts: GaugeId,
    pub(crate) model_warnings: GaugeId,
    pub(crate) prequential_f1: GaugeId,
    pub(crate) prequential_kappa: GaugeId,
    pub(crate) alerts_pending: GaugeId,
    pub(crate) bow_adds: CounterId,
    pub(crate) bow_evictions: CounterId,
    pub(crate) alert_confidence: HistogramId,
    // Runtime (operational, excluded from snapshots).
    pub(crate) span_extract_us: HistogramId,
    pub(crate) span_normalize_us: HistogramId,
    pub(crate) span_classify_us: HistogramId,
    pub(crate) span_train_us: HistogramId,
    pub(crate) span_broadcast_us: HistogramId,
    pub(crate) span_tasks_us: HistogramId,
    pub(crate) span_merge_us: HistogramId,
    pub(crate) span_driver_us: HistogramId,
    pub(crate) checkpoint_saves: CounterId,
    pub(crate) checkpoint_bytes: CounterId,
    pub(crate) checkpoint_duration_us: HistogramId,
}

impl Default for PipelineObs {
    fn default() -> Self {
        PipelineObs::new()
    }
}

impl PipelineObs {
    /// Register the pipeline metric set in a fresh registry. Span timing
    /// starts disabled (see [`PipelineObs::enable_wall_timing`]); the
    /// distributed detector records simulated-clock spans regardless.
    pub fn new() -> Self {
        let mut registry = Registry::new();
        let d = Determinism::Deterministic;
        let r = Determinism::Runtime;
        let records = registry.counter("pipeline_records_total", d);
        let labeled = registry.counter("pipeline_labeled_total", d);
        let skipped = registry.counter("pipeline_skipped_total", d);
        let classified = registry.counter("pipeline_classified_total", d);
        let alerts_raised = registry.counter("pipeline_alerts_raised_total", d);
        let alerts_drained = registry.counter("pipeline_alerts_drained_total", d);
        let users_suspended = registry.counter("pipeline_users_suspended_total", d);
        let bow_size = registry.gauge("pipeline_bow_size", d);
        let model_drifts = registry.gauge("pipeline_model_drifts", d);
        let model_warnings = registry.gauge("pipeline_model_warnings", d);
        let prequential_f1 = registry.gauge("pipeline_prequential_f1", d);
        let prequential_kappa = registry.gauge("pipeline_prequential_kappa", d);
        let alerts_pending = registry.gauge("pipeline_alerts_pending", d);
        let bow_adds = registry.counter("pipeline_bow_adds_total", d);
        let bow_evictions = registry.counter("pipeline_bow_evictions_total", d);
        let alert_confidence = registry.histogram("pipeline_alert_confidence_1e6", d);
        let span_extract_us = registry.histogram("pipeline_span_extract_us", r);
        let span_normalize_us = registry.histogram("pipeline_span_normalize_us", r);
        let span_classify_us = registry.histogram("pipeline_span_classify_us", r);
        let span_train_us = registry.histogram("pipeline_span_train_us", r);
        let span_broadcast_us = registry.histogram("pipeline_span_broadcast_us", r);
        let span_tasks_us = registry.histogram("pipeline_span_tasks_us", r);
        let span_merge_us = registry.histogram("pipeline_span_merge_us", r);
        let span_driver_us = registry.histogram("pipeline_span_driver_us", r);
        let checkpoint_saves = registry.counter("pipeline_checkpoint_saves_total", r);
        let checkpoint_bytes = registry.counter("pipeline_checkpoint_bytes_total", r);
        let checkpoint_duration_us = registry.histogram("pipeline_checkpoint_duration_us", r);
        PipelineObs {
            registry,
            events: EventLog::new(EVENT_LOG_CAPACITY),
            clock: SpanClock::off(),
            trace: Tracer::new(),
            records,
            labeled,
            skipped,
            classified,
            alerts_raised,
            alerts_drained,
            users_suspended,
            bow_size,
            model_drifts,
            model_warnings,
            prequential_f1,
            prequential_kappa,
            alerts_pending,
            bow_adds,
            bow_evictions,
            alert_confidence,
            span_extract_us,
            span_normalize_us,
            span_classify_us,
            span_train_us,
            span_broadcast_us,
            span_tasks_us,
            span_merge_us,
            span_driver_us,
            checkpoint_saves,
            checkpoint_bytes,
            checkpoint_duration_us,
        }
    }

    /// The recorded metrics.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The structured event log.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// The recorded span trace (driver → stage → task → operator phases).
    pub fn trace(&self) -> &Tracer {
        &self.trace
    }

    /// Switch the sequential pipeline's per-step spans to real wall-clock
    /// timing (benchmarks only — the default is off so the hot path stays
    /// free of syscalls and runs stay reproducible).
    pub fn enable_wall_timing(&mut self) {
        self.clock = SpanClock::wall();
    }

    /// Whether wall-clock span timing is on.
    pub fn wall_timing_enabled(&self) -> bool {
        self.clock.enabled()
    }

    /// Fold another registry (e.g. the engine's per-run metrics) into this
    /// one.
    pub fn merge_registry(&mut self, other: &Registry) {
        self.registry.merge_from(other);
    }

    /// Record `id` as the span from `start_us` to now and return now.
    /// No-op (returns 0) while wall timing is off.
    pub(crate) fn span(&mut self, id: HistogramId, start_us: u64) -> u64 {
        if !self.clock.enabled() {
            return 0;
        }
        let now = self.clock.now_us();
        self.registry.record(id, now.saturating_sub(start_us));
        now
    }

    /// Sync alert/suspension state after `alerter` observed a batch of
    /// classifications: count the new alerts and suspensions (raised since
    /// `raised_before` / `suspended_before`), record their confidences, and
    /// log the corresponding events stamped `stamp`. Also reconciles the
    /// drained-alerts counter with the alerter's own exactly-once total, so
    /// drains performed by the embedding application are observed at the
    /// next batch boundary.
    pub(crate) fn note_alerts(
        &mut self,
        stamp: u64,
        alerter: &Alerter,
        raised_before: u64,
        suspended_before: usize,
    ) {
        let raised_after = alerter.alerts_raised();
        let new = raised_after.saturating_sub(raised_before);
        if new > 0 {
            self.registry.add(self.alerts_raised, new);
            let pending = alerter.alerts();
            let start = pending.len().saturating_sub(new as usize);
            for alert in &pending[start..] {
                // Confidence lives in [0, 1]; scale to integer microunits
                // so it fits the log2-bucket histogram.
                let micros = (alert.confidence * 1e6) as u64;
                self.registry.record(self.alert_confidence, micros);
                self.events.push(stamp, EventKind::AlertRaised, alert.seq, alert.user_id);
            }
        }
        let suspended = alerter.suspended_users();
        if suspended.len() > suspended_before {
            self.registry.add(
                self.users_suspended,
                (suspended.len() - suspended_before) as u64,
            );
            for user in &suspended[suspended_before..] {
                self.events.push(stamp, EventKind::UserSuspended, *user, 0);
            }
        }
        let drained = alerter.alerts_drained();
        let seen = self.registry.counter_value(self.alerts_drained);
        if drained > seen {
            self.registry.add(self.alerts_drained, drained - seen);
            self.events.push(stamp, EventKind::AlertsDrained, drained - seen, drained);
        }
        self.registry.set(self.alerts_pending, alerter.alerts().len() as f64);
    }

    /// Set the prequential model-quality gauges (per-batch F1 and Cohen's
    /// kappa from the running confusion matrix).
    pub(crate) fn note_model_quality(&mut self, f1: f64, kappa: f64) {
        self.registry.set(self.prequential_f1, f1);
        self.registry.set(self.prequential_kappa, kappa);
    }

    /// Sync the BoW vocabulary-churn counters to the vocabulary's own
    /// cumulative totals (delta-sync, so replayed batches after a recovery
    /// do not double-count).
    pub(crate) fn note_bow_churn(&mut self, adds: u64, evictions: u64) {
        let seen_adds = self.registry.counter_value(self.bow_adds);
        if adds > seen_adds {
            self.registry.add(self.bow_adds, adds - seen_adds);
        }
        let seen_evictions = self.registry.counter_value(self.bow_evictions);
        if evictions > seen_evictions {
            self.registry.add(self.bow_evictions, evictions - seen_evictions);
        }
    }

    /// Sync the model drift/warning gauges to the model's cumulative
    /// counts, logging a [`EventKind::DriftDetected`] event when the drift
    /// count advanced.
    pub(crate) fn note_drifts(&mut self, stamp: u64, drifts: u64, warnings: u64) {
        let prev = self.registry.gauge_value(self.model_drifts) as u64;
        if drifts > prev {
            self.events.push(stamp, EventKind::DriftDetected, drifts - prev, drifts);
        }
        self.registry.set(self.model_drifts, drifts as f64);
        self.registry.set(self.model_warnings, warnings as f64);
    }
}

impl Checkpoint for PipelineObs {
    fn snapshot_into(&self, w: &mut SnapshotWriter) {
        // Deterministic metrics + the event log; runtime metrics and the
        // span clock are operational and intentionally not captured.
        self.registry.snapshot_into(w);
        self.events.snapshot_into(w);
    }

    fn restore_from(&mut self, r: &mut SnapshotReader) -> Result<()> {
        self.registry.restore_from(r)?;
        self.events.restore_from(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redhanded_types::ClassScheme;

    #[test]
    fn deterministic_and_runtime_metrics_are_partitioned() {
        let o = PipelineObs::new();
        let det = |n: &str| {
            o.registry
                .counters()
                .chain(o.registry.gauges().map(|(n, d, _)| (n, d, 0u64)))
                .find(|(name, _, _)| *name == n)
                .map(|(_, d, _)| d)
        };
        assert_eq!(det("pipeline_records_total"), Some(Determinism::Deterministic));
        assert_eq!(det("pipeline_checkpoint_saves_total"), Some(Determinism::Runtime));
        for (name, d, _) in o.registry.histograms() {
            let expect = if name == "pipeline_alert_confidence_1e6" {
                Determinism::Deterministic
            } else {
                Determinism::Runtime
            };
            assert_eq!(d, expect, "{name}");
        }
    }

    #[test]
    fn note_alerts_counts_exactly_once_across_drain() {
        let mut o = PipelineObs::new();
        let mut alerter = Alerter::new(ClassScheme::TwoClass, 0.0, 1000);
        let before = alerter.alerts_raised();
        alerter.observe(1, 10, &[0.1, 0.9]);
        alerter.observe(2, 11, &[0.2, 0.8]);
        o.note_alerts(0, &alerter, before, 0);
        assert_eq!(o.registry.counter_value(o.alerts_raised), 2);

        // Drain between batches: observed at the next note_alerts call.
        let drained = alerter.drain();
        assert_eq!(drained.len(), 2);
        let before = alerter.alerts_raised();
        alerter.observe(3, 12, &[0.3, 0.7]);
        o.note_alerts(1, &alerter, before, 0);
        assert_eq!(o.registry.counter_value(o.alerts_raised), 3);
        assert_eq!(o.registry.counter_value(o.alerts_drained), 2);
        assert_eq!(o.events.count(EventKind::AlertRaised), 3);
        assert_eq!(o.events.count(EventKind::AlertsDrained), 1);
        // Confidence histogram saw every alert exactly once.
        let h = o.registry.histogram_ref(o.alert_confidence).unwrap();
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn checkpoint_roundtrip_keeps_deterministic_state_only() {
        let mut o = PipelineObs::new();
        o.registry.add(o.records, 42);
        o.registry.set(o.bow_size, 347.0);
        o.registry.record(o.alert_confidence, 900_000);
        o.registry.inc(o.checkpoint_saves); // runtime: not captured
        o.events.push(3, EventKind::DriftDetected, 1, 1);
        let bytes = Checkpoint::snapshot(&o);

        let mut restored = PipelineObs::new();
        restored.registry.inc(restored.checkpoint_saves);
        restored.registry.inc(restored.checkpoint_saves);
        let mut r = SnapshotReader::new(&bytes);
        restored.restore_from(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.registry.counter_value(restored.records), 42);
        assert_eq!(restored.registry.gauge_value(restored.bow_size), 347.0);
        assert_eq!(restored.events.count(EventKind::DriftDetected), 1);
        // Runtime counters survive a restore untouched.
        assert_eq!(restored.registry.counter_value(restored.checkpoint_saves), 2);
        assert_eq!(
            restored.registry.deterministic_digest(),
            o.registry.deterministic_digest()
        );
    }

    #[test]
    fn drift_sync_logs_only_advances() {
        let mut o = PipelineObs::new();
        o.note_drifts(0, 0, 0);
        o.note_drifts(1, 2, 3);
        o.note_drifts(2, 2, 3);
        o.note_drifts(3, 5, 7);
        assert_eq!(o.events.count(EventKind::DriftDetected), 2);
        assert_eq!(o.registry.gauge_value(o.model_drifts), 5.0);
        assert_eq!(o.registry.gauge_value(o.model_warnings), 7.0);
    }
}
