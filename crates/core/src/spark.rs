//! Distributed deployment of the detection pipeline (Figure 2 of the
//! paper): the micro-batch dataflow on the `redhanded-dspe` engine.
//!
//! Per micro-batch, mirroring the paper's operator graph:
//!
//! 1. **map** — extract features and normalize (per-partition tasks;
//!    normalization statistics accumulate as per-task deltas);
//! 2. **filter** — keep labeled instances (fused with 3, as in the paper);
//! 3. **aggregate** — train per-task local models (zero-statistics forks
//!    of the broadcast global model) and adaptive-BoW deltas; the driver
//!    merges local models into the global model and re-broadcasts it for
//!    the *next* micro-batch;
//! 4. **map** — predict every instance with the batch-start global model;
//! 5. **map** — compute local statistics (per-partition confusion counts);
//! 6. **reduce** — merge into the global evaluation metrics.
//!
//! Alerting and sampling consume the classified instances (driver-side
//! here; their cost is charged to the simulated clock).

use crate::alert::Alerter;
use crate::config::PipelineConfig;
use crate::item::StreamItem;
use crate::observe::PipelineObs;
use crate::sample::BoostedSampler;
use redhanded_dspe::{
    CheckpointMeta, CheckpointStore, EngineConfig, EngineMetrics, MicroBatchEngine, StreamReport,
};
use redhanded_obs::{EventKind, HistogramId, SpanKind};
use redhanded_features::{AdaptiveBow, ExtractScratch, FeatureExtractor, Normalizer, NUM_FEATURES};
use redhanded_streamml::classifier::argmax;
use redhanded_streamml::{
    restore_series, snapshot_series, ConfusionMatrix, Metrics, SeriesPoint, StreamingClassifier,
};
use redhanded_types::snapshot::{Checkpoint, SnapshotReader, SnapshotWriter};
use redhanded_types::{Error, Result};

/// Configuration of a distributed deployment.
#[derive(Debug, Clone)]
pub struct SparkConfig {
    /// The detection-pipeline configuration.
    pub pipeline: PipelineConfig,
    /// The engine configuration (topology, cost model, micro-batch size).
    pub engine: EngineConfig,
    /// Serialized global-model size charged per broadcast (the paper
    /// observes < 1 MB).
    pub broadcast_bytes: usize,
}

impl SparkConfig {
    /// A deployment of `pipeline` on `engine` with the paper's model size.
    pub fn new(pipeline: PipelineConfig, engine: EngineConfig) -> Self {
        SparkConfig { pipeline, engine, broadcast_bytes: 256 * 1024 }
    }
}

/// Outcome of a distributed run.
#[derive(Debug, Clone)]
pub struct SparkRunReport {
    /// Engine-level timing (simulated execution time + throughput).
    pub stream: StreamReport,
    /// Cumulative classification metrics over the labeled instances.
    pub metrics: Metrics,
    /// Metric series, one point per micro-batch.
    pub series: Vec<SeriesPoint>,
    /// Alerts raised on unlabeled traffic.
    pub alerts: usize,
}

/// Everything one fused task produces for its partition.
struct TaskOutput {
    /// Local model delta (zero-statistics fork of the broadcast model).
    model: Box<dyn StreamingClassifier>,
    /// Local adaptive-BoW count delta.
    bow: AdaptiveBow,
    /// Local normalization-statistics delta.
    norm: Normalizer,
    /// Local confusion counts over the partition's labeled instances.
    matrix: ConfusionMatrix,
    /// Classified unlabeled tweets: `(tweet_id, user_id, proba)`.
    classified: Vec<(u64, u64, Vec<f64>)>,
}

/// The distributed detector: global state + per-batch dataflow.
pub struct SparkDetector {
    config: SparkConfig,
    extractor: FeatureExtractor,
    bow: AdaptiveBow,
    normalizer: Normalizer,
    model: Box<dyn StreamingClassifier>,
    matrix: ConfusionMatrix,
    series: Vec<SeriesPoint>,
    alerter: Alerter,
    sampler: BoostedSampler,
    labeled_seen: u64,
    pub(crate) obs: PipelineObs,
}

impl SparkDetector {
    /// Assemble a distributed detector.
    pub fn new(config: SparkConfig) -> Result<Self> {
        let p = &config.pipeline;
        Ok(SparkDetector {
            extractor: FeatureExtractor::new(p.extractor_config()),
            bow: AdaptiveBow::new(p.bow_config()),
            normalizer: Normalizer::new(p.normalization, NUM_FEATURES),
            model: p.model.build(p.scheme)?,
            matrix: ConfusionMatrix::new(p.scheme.num_classes()),
            series: Vec::new(),
            alerter: Alerter::new(p.scheme, p.alert_threshold, p.suspend_after),
            sampler: BoostedSampler::new(p.scheme, p.sample_rate, p.sample_boost, 0x5A11),
            labeled_seen: 0,
            obs: PipelineObs::new(),
            config,
        })
    }

    /// Run a stream through the distributed pipeline, returning timing and
    /// quality reports.
    pub fn run(&mut self, items: Vec<StreamItem>) -> Result<SparkRunReport> {
        self.run_segment(items, 0, 0, None)
    }

    /// Run one driver incarnation over `items`, numbering its micro-batches
    /// globally from `first_batch` (with `records_before` stream records
    /// already consumed by earlier incarnations).
    ///
    /// When `sink` is `Some((store, every))` with `every > 0`, all mutable
    /// detector state is checkpointed to `store` after every `every`-th
    /// completed batch; the snapshot cost is charged to the simulated clock
    /// as driver work. [`crate::recovery::run_with_recovery`] drives this
    /// across driver kills; a fault-free caller uses [`SparkDetector::run`].
    pub fn run_segment(
        &mut self,
        items: Vec<StreamItem>,
        first_batch: u64,
        records_before: u64,
        mut sink: Option<(&mut dyn CheckpointStore, u64)>,
    ) -> Result<SparkRunReport> {
        let engine = MicroBatchEngine::new(self.config.engine.clone());
        let mut engine_obs = EngineMetrics::new();
        // Hand the detector's tracer to the engine for this incarnation:
        // the engine records batch/stage/task spans, the handler below adds
        // driver-side phases through `ctx`. Taken (not borrowed) because the
        // closure captures `self` mutably.
        let mut tracer = std::mem::take(&mut self.obs.trace);
        let mut first_error: Option<Error> = None;
        let mut records_done = records_before;
        let stream = engine.run_stream_traced(
            first_batch,
            items,
            Some(&mut engine_obs),
            Some(&mut tracer),
            |ctx, batch| {
                if first_error.is_some() {
                    return;
                }
                let batch_records = batch.len() as u64;
                if let Err(e) = self.process_batch(ctx, batch) {
                    first_error = Some(e);
                    return;
                }
                records_done += batch_records;
                let completed = ctx.batch_index() + 1;
                if let Some((store, every)) = sink.as_mut() {
                    if *every > 0 && completed % *every == 0 {
                        let save_start = ctx.elapsed_us();
                        let ckpt_span = ctx.trace_begin(SpanKind::Checkpoint, completed, 0);
                        let payload = ctx.driver(|| Checkpoint::snapshot(&*self));
                        ctx.trace_end(ckpt_span);
                        let save_us = (ctx.elapsed_us() - save_start).max(0.0) as u64;
                        let o = &mut self.obs;
                        o.registry.inc(o.checkpoint_saves);
                        o.registry.add(o.checkpoint_bytes, payload.len() as u64);
                        o.registry.record(o.checkpoint_duration_us, save_us);
                        o.events.push(
                            ctx.batch_index(),
                            EventKind::CheckpointSaved,
                            completed,
                            payload.len() as u64,
                        );
                        let meta = CheckpointMeta {
                            seq: completed,
                            batches_done: completed,
                            records_done,
                        };
                        if let Err(e) = store.save(meta, &payload) {
                            first_error = Some(e);
                        }
                    }
                }
            },
        );
        self.obs.trace = tracer;
        // Engine-level metrics (task/stage timing, retries, stragglers) are
        // runtime-class: folded into the detector's registry for reporting,
        // never checkpointed.
        self.obs.merge_registry(engine_obs.registry());
        if let Some(e) = first_error {
            return Err(e);
        }
        Ok(SparkRunReport {
            stream,
            metrics: self.matrix.metrics(),
            series: self.series.clone(),
            alerts: self.alerter.alerts_raised() as usize,
        })
    }

    /// Record a simulated-clock span ending now and return now (for
    /// chaining into the next span's start).
    fn sim_span(
        &mut self,
        ctx: &redhanded_dspe::BatchContext<'_>,
        id: HistogramId,
        start_us: f64,
    ) -> f64 {
        let now = ctx.elapsed_us();
        self.obs.registry.record(id, (now - start_us).max(0.0) as u64);
        now
    }

    fn process_batch(
        &mut self,
        ctx: &mut redhanded_dspe::BatchContext<'_>,
        batch: Vec<StreamItem>,
    ) -> Result<()> {
        let scheme = self.config.pipeline.scheme;
        let num_classes = scheme.num_classes();
        let batch_idx = ctx.batch_index();
        let batch_records = batch.len() as u64;
        self.obs.registry.add(self.obs.records, batch_records);

        // Broadcast the batch-start global state (model "< 1 MB" + BoW +
        // normalization statistics). Clone cost is real driver work.
        let span_start = ctx.elapsed_us();
        let bc_span = ctx.trace_begin(SpanKind::Broadcast, self.config.broadcast_bytes as u64, 0);
        let (snapshot_model, snapshot_bow, snapshot_norm) = ctx.driver(|| {
            (self.model.clone_box(), self.bow.clone(), self.normalizer.clone())
        });
        ctx.broadcast(self.config.broadcast_bytes);
        ctx.trace_end(bc_span);
        let span_start = self.sim_span(ctx, self.obs.span_broadcast_us, span_start);

        // Ops #1–#5, fused into one task set per the paper ("the map,
        // filter, and the first part of aggregate are grouped together and
        // executed using a set of parallel tasks"): extract + normalize +
        // filter-labeled + local-model/BoW training + prediction (with the
        // batch-start snapshot) + local statistics, one pass per partition.
        let items_pd = ctx.parallelize(batch);
        let extractor = &self.extractor;
        let snapshot_model_ref = snapshot_model.as_ref();
        let task_outputs: Vec<Result<TaskOutput>> =
            ctx.map_partitions(&items_pd, |_, part| {
                // One scratch per partition task: buffers are reused across
                // every tweet the task processes (the words of the current
                // tweet stay readable until the next extraction, which is
                // exactly the lifetime the BoW-observe step needs).
                let mut scratch = ExtractScratch::new();
                let mut out = TaskOutput {
                    model: snapshot_model_ref.local_copy(),
                    bow: snapshot_bow.fork(),
                    norm: Normalizer::new(snapshot_norm.kind(), NUM_FEATURES),
                    matrix: ConfusionMatrix::new(num_classes),
                    classified: Vec::new(),
                };
                for item in part {
                    let day = item.day();
                    let entry = match item {
                        StreamItem::Labeled(lt) => extractor
                            .labeled_instance_into(lt, scheme, &snapshot_bow, day, &mut scratch)
                            .map(|inst| {
                                let aggressive =
                                    inst.label.map(|c| c > 0).unwrap_or(false);
                                (inst, aggressive)
                            }),
                        StreamItem::Unlabeled(t) => Some((
                            extractor.instance_into(t, &snapshot_bow, day, &mut scratch),
                            false,
                        )),
                    };
                    let Some((mut inst, aggressive)) = entry else {
                        continue; // out-of-scheme label (spam)
                    };
                    out.norm.observe(&inst.features)?;
                    snapshot_norm.transform(&mut inst.features)?;
                    let proba = snapshot_model_ref.predict_proba(&inst.features)?;
                    match inst.label {
                        Some(actual) => {
                            out.matrix.add(actual, argmax(&proba), inst.weight);
                            out.model.accumulate(&inst)?;
                            out.bow.observe_only(scratch.words(), aggressive);
                        }
                        None => out.classified.push((inst.tweet_id, inst.user_id, proba)),
                    }
                }
                Ok(out)
            })?;

        let span_start = self.sim_span(ctx, self.obs.span_tasks_us, span_start);

        // Split the per-task outputs.
        let mut models = Vec::with_capacity(task_outputs.len());
        let mut batch_labeled = 0u64;
        let mut batch_classified = 0u64;
        let mut rest = Vec::with_capacity(task_outputs.len());
        for r in task_outputs {
            let out = r?;
            models.push(out.model);
            batch_labeled += out.matrix.total() as u64;
            batch_classified += out.classified.len() as u64;
            rest.push((out.bow, out.norm, out.matrix, out.classified));
        }

        // Op #3 second half — combine the local model deltas with a
        // parallel tree reduction (Spark treeAggregate), then fold the
        // combined delta into the global model on the driver; the updated
        // model is broadcast at the next batch start.
        let mut merge_error: Option<Error> = None;
        let combined = ctx.tree_reduce(models, |mut a, b| {
            if merge_error.is_none() {
                if let Err(e) = a.merge(b.as_ref()) {
                    merge_error = Some(e);
                }
            }
            a
        });
        if let Some(e) = merge_error {
            return Err(e);
        }
        ctx.driver(|| -> Result<()> {
            if let Some(combined) = combined {
                self.model.merge_locals(vec![combined])?;
            }
            Ok(())
        })?;
        let span_start = self.sim_span(ctx, self.obs.span_merge_us, span_start);

        // Op #6 — driver: merge the lightweight per-task state (BoW,
        // normalization, confusion counts), then run alerting + sampling on
        // the classified instances under their own span.
        let raised_before = self.alerter.alerts_raised();
        let suspended_before = self.alerter.suspended_users().len();
        let drv_span = ctx.trace_begin(SpanKind::Driver, batch_labeled, 0);
        ctx.driver(|| {
            for (bow, norm, matrix, _) in &rest {
                self.bow.merge(bow);
                self.normalizer.merge(norm);
                self.matrix.merge(matrix);
            }
            self.bow.force_maintain();
        });
        ctx.trace_end(drv_span);
        let alert_span = ctx.trace_begin(SpanKind::Alert, batch_classified, 0);
        ctx.driver(|| {
            for (_, _, _, classified) in &rest {
                for (tweet_id, user_id, proba) in classified {
                    self.alerter.observe(*tweet_id, *user_id, proba);
                    self.sampler.observe(*tweet_id, proba);
                }
            }
        });
        ctx.trace_end(alert_span);
        self.sim_span(ctx, self.obs.span_driver_us, span_start);
        self.labeled_seen += batch_labeled;
        let metrics = self.matrix.metrics();
        let (f1, kappa) = (metrics.f1, metrics.kappa);
        self.series.push(SeriesPoint { instances: self.labeled_seen, metrics });
        let (bow_adds, bow_evictions) = self.bow.churn();
        let o = &mut self.obs;
        o.registry.add(o.labeled, batch_labeled);
        o.registry.add(o.classified, batch_classified);
        o.registry
            .add(o.skipped, batch_records.saturating_sub(batch_labeled + batch_classified));
        o.registry.set(o.bow_size, self.bow.len() as f64);
        o.note_model_quality(f1, kappa);
        o.note_bow_churn(bow_adds, bow_evictions);
        o.note_alerts(batch_idx, &self.alerter, raised_before, suspended_before);
        let drifts = self.model.drifts();
        let warnings = self.model.warnings();
        self.obs.note_drifts(batch_idx, drifts, warnings);
        Ok(())
    }

    /// Cumulative metrics so far.
    pub fn metrics(&self) -> Metrics {
        self.matrix.metrics()
    }

    /// The deployment configuration.
    pub fn config(&self) -> &SparkConfig {
        &self.config
    }

    /// Mutable access to the engine configuration. Driver recovery uses
    /// this to disarm a fired driver-kill fault between incarnations.
    pub fn engine_config_mut(&mut self) -> &mut EngineConfig {
        &mut self.config.engine
    }

    /// The per-batch metric series recorded so far.
    pub fn series(&self) -> &[SeriesPoint] {
        &self.series
    }

    /// Discard all mutable state, returning to a freshly-constructed
    /// detector. Driver recovery with no checkpoint available restarts
    /// the stream from the first record on this clean slate.
    pub fn reset(&mut self) -> Result<()> {
        *self = SparkDetector::new(self.config.clone())?;
        Ok(())
    }

    /// The alerting component.
    pub fn alerter(&self) -> &Alerter {
        &self.alerter
    }

    /// Mutable alerting component — the moderation-console path for
    /// draining pending alerts between micro-batches. See
    /// [`Alerter::drain`] for the delivery semantics under
    /// checkpoint/recovery.
    pub fn alerter_mut(&mut self) -> &mut Alerter {
        &mut self.alerter
    }

    /// The sampling component.
    pub fn sampler(&self) -> &BoostedSampler {
        &self.sampler
    }

    /// Current adaptive-BoW size.
    pub fn bow_len(&self) -> usize {
        self.bow.len()
    }

    /// The global model (for inspection).
    pub fn model(&self) -> &dyn StreamingClassifier {
        self.model.as_ref()
    }

    /// Recorded metrics and events: per-batch pipeline counters, stage
    /// spans charged to the simulated clock, merged engine metrics, and
    /// the structured event log.
    pub fn obs(&self) -> &PipelineObs {
        &self.obs
    }
}

impl Checkpoint for SparkDetector {
    fn snapshot_into(&self, w: &mut SnapshotWriter) {
        // `config` and `extractor` are construction-time; everything the
        // per-batch dataflow mutates is captured below — this is exactly
        // the state Spark Streaming would lose on a driver failure.
        self.model.snapshot_into(w);
        self.bow.snapshot_into(w);
        self.normalizer.snapshot_into(w);
        self.matrix.snapshot_into(w);
        snapshot_series(&self.series, w);
        self.alerter.snapshot_into(w);
        self.sampler.snapshot_into(w);
        w.write_u64(self.labeled_seen);
        // Deterministic observability state rides along so a recovered
        // run's counters/events are exactly-once (DESIGN.md §10).
        self.obs.snapshot_into(w);
    }

    fn restore_from(&mut self, r: &mut SnapshotReader) -> Result<()> {
        self.model.restore_from(r)?;
        self.bow.restore_from(r)?;
        self.normalizer.restore_from(r)?;
        self.matrix.restore_from(r)?;
        self.series = restore_series(r)?;
        self.alerter.restore_from(r)?;
        self.sampler.restore_from(r)?;
        self.labeled_seen = r.read_u64()?;
        self.obs.restore_from(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelKind;
    use crate::item::intermix;
    use redhanded_datagen::{generate_abusive, generate_unlabeled, AbusiveConfig};
    use redhanded_dspe::{CostModel, Topology};
    use redhanded_types::ClassScheme;

    fn engine_config(topology: Topology, batch: usize) -> EngineConfig {
        let mut cfg = EngineConfig::for_topology(topology);
        cfg.microbatch_size = batch;
        cfg.cost_model = CostModel::default();
        cfg
    }

    fn labeled_stream(n: usize, seed: u64) -> Vec<StreamItem> {
        generate_abusive(&AbusiveConfig::small(n, seed))
            .into_iter()
            .map(StreamItem::from)
            .collect()
    }

    #[test]
    fn distributed_pipeline_learns() {
        let pipeline = PipelineConfig::paper(ClassScheme::TwoClass, ModelKind::ht());
        let config =
            SparkConfig::new(pipeline, engine_config(Topology::local(4), 1000));
        let mut detector = SparkDetector::new(config).unwrap();
        let report = detector.run(labeled_stream(8000, 1)).unwrap();
        assert_eq!(report.stream.batches, 8);
        assert!(report.metrics.accuracy > 0.75, "accuracy {}", report.metrics.accuracy);
        assert!(report.metrics.f1 > 0.75, "f1 {}", report.metrics.f1);
        assert_eq!(report.series.len(), 8, "one series point per micro-batch");
        // Quality improves across batches.
        let first = report.series.first().unwrap().metrics.f1;
        let last = report.series.last().unwrap().metrics.f1;
        assert!(last > first, "F1 {first} → {last}");
    }

    #[test]
    fn distributed_matches_sequential_quality() {
        use crate::pipeline::DetectionPipeline;
        let items = labeled_stream(6000, 2);
        let pipeline_cfg = PipelineConfig::paper(ClassScheme::TwoClass, ModelKind::ht());
        let mut sequential = DetectionPipeline::new(pipeline_cfg.clone()).unwrap();
        sequential.run(&items).unwrap();
        let seq_f1 = sequential.cumulative_metrics().f1;

        // Micro-batches must be small relative to the stream for a fair
        // cumulative comparison: distributed predictions use the
        // batch-start model (the paper: the updated model "is available
        // for use by the tasks in the next micro-batch"), so the staleness
        // penalty is one batch's worth of instances.
        let config =
            SparkConfig::new(pipeline_cfg, engine_config(Topology::cluster(3, 8), 250));
        let mut detector = SparkDetector::new(config).unwrap();
        let dist_f1 = detector.run(items).unwrap().metrics.f1;
        assert!(
            (seq_f1 - dist_f1).abs() < 0.08,
            "sequential F1 {seq_f1} vs distributed {dist_f1}"
        );
    }

    #[test]
    fn unlabeled_traffic_drives_alerting_and_sampling() {
        let pipeline = PipelineConfig::paper(ClassScheme::TwoClass, ModelKind::ht());
        let config =
            SparkConfig::new(pipeline, engine_config(Topology::local(2), 2000));
        let mut detector = SparkDetector::new(config).unwrap();
        let items = intermix(
            generate_abusive(&AbusiveConfig::small(4000, 3)),
            generate_unlabeled(4000, 4),
        );
        let report = detector.run(items).unwrap();
        assert!(report.alerts > 0, "alerts on aggressive unlabeled tweets");
        assert_eq!(detector.sampler().seen(), 4000);
        assert_eq!(report.metrics.total, 4000.0, "only labeled items evaluated");
    }

    #[test]
    fn bow_adapts_in_distributed_mode() {
        let pipeline = PipelineConfig::paper(ClassScheme::TwoClass, ModelKind::ht());
        let config =
            SparkConfig::new(pipeline, engine_config(Topology::local(4), 1000));
        let mut detector = SparkDetector::new(config).unwrap();
        assert_eq!(detector.bow_len(), 347);
        detector.run(labeled_stream(8000, 5)).unwrap();
        assert!(detector.bow_len() > 347, "BoW grew: {}", detector.bow_len());
    }

    #[test]
    fn observability_records_the_distributed_run() {
        let pipeline = PipelineConfig::paper(ClassScheme::TwoClass, ModelKind::ht());
        let config =
            SparkConfig::new(pipeline, engine_config(Topology::local(2), 2000));
        let mut detector = SparkDetector::new(config).unwrap();
        let items = intermix(
            generate_abusive(&AbusiveConfig::small(3000, 9)),
            generate_unlabeled(3000, 10),
        );
        let report = detector.run(items).unwrap();
        let reg = detector.obs().registry();

        // Deterministic counters reconcile with the detector's own state.
        assert_eq!(reg.counter_by_name("pipeline_records_total"), Some(6000));
        assert_eq!(
            reg.counter_by_name("pipeline_labeled_total"),
            Some(detector.labeled_seen)
        );
        assert_eq!(reg.counter_by_name("pipeline_classified_total"), Some(3000));
        assert_eq!(
            reg.counter_by_name("pipeline_alerts_raised_total"),
            Some(report.alerts as u64)
        );
        assert_eq!(
            reg.gauge_by_name("pipeline_bow_size"),
            Some(detector.bow_len() as f64)
        );
        // Alert events carry the alert seqs; confidences hit the histogram.
        assert_eq!(
            detector.obs().events().count(EventKind::AlertRaised),
            report.alerts
        );
        let conf = reg.histogram_by_name("pipeline_alert_confidence_1e6").unwrap();
        assert_eq!(conf.count(), report.alerts as u64);
        assert!(conf.max() <= 1_000_000, "confidence stays in [0, 1]");

        // Simulated-clock spans fired once per batch; merged engine
        // metrics are present.
        for span in ["pipeline_span_broadcast_us", "pipeline_span_tasks_us",
                     "pipeline_span_merge_us", "pipeline_span_driver_us"] {
            let h = reg.histogram_by_name(span).unwrap();
            assert_eq!(h.count(), report.stream.batches as u64, "{span}");
            assert!(h.sum() > 0, "{span} saw simulated time");
        }
        assert_eq!(
            reg.counter_by_name("dspe_batches_total"),
            Some(report.stream.batches as u64)
        );
        assert!(reg.counter_by_name("dspe_task_attempts_total").unwrap() > 0);
    }

    #[test]
    fn trace_records_batch_tree_and_quality_telemetry() {
        let pipeline = PipelineConfig::paper(ClassScheme::TwoClass, ModelKind::ht());
        let config =
            SparkConfig::new(pipeline, engine_config(Topology::local(4), 1000));
        let mut detector = SparkDetector::new(config).unwrap();
        let report = detector.run(labeled_stream(8000, 5)).unwrap();
        let batches = report.stream.batches as u64;

        // The span tree: one Batch root per micro-batch, with the
        // driver-side phases recorded through the engine context.
        let trace = detector.obs().trace();
        let count = |k: redhanded_obs::SpanKind| {
            trace.spans().iter().filter(|s| s.kind == k).count() as u64
        };
        assert_eq!(count(SpanKind::Batch), batches);
        assert_eq!(count(SpanKind::Broadcast), batches);
        assert_eq!(count(SpanKind::Stage), batches);
        assert_eq!(count(SpanKind::Driver), batches);
        assert_eq!(count(SpanKind::Alert), batches);
        assert!(count(SpanKind::Task) >= 4 * batches, "one task per partition");
        let analysis = redhanded_obs::analyze(trace);
        assert_eq!(analysis.batches, batches);
        assert!(analysis.critical_path_us >= analysis.longest_span_us);
        assert!(analysis.critical_path_us <= analysis.total_us + 1e-9);

        // Critical-path stage totals agree with the simulated-clock span
        // histograms recorded independently per batch (within rounding:
        // histograms record integer µs).
        let reg = detector.obs().registry();
        let hist_us =
            |n: &str| reg.histogram_by_name(n).unwrap().sum() as f64;
        let close = |a: f64, b: f64| {
            (a - b).abs() <= 0.05 * b.max(1.0) + batches as f64
        };
        assert!(
            close(analysis.total_for(SpanKind::Broadcast), hist_us("pipeline_span_broadcast_us")),
            "broadcast {} vs {}",
            analysis.total_for(SpanKind::Broadcast),
            hist_us("pipeline_span_broadcast_us")
        );
        let driver_trace = analysis.total_for(SpanKind::Driver)
            + analysis.total_for(SpanKind::Alert);
        assert!(
            close(driver_trace, hist_us("pipeline_span_driver_us")),
            "driver {} vs {}",
            driver_trace,
            hist_us("pipeline_span_driver_us")
        );

        // Model-quality telemetry: the gauges hold the last batch's
        // prequential values; churn counters mirror the BoW.
        let f1 = reg.gauge_by_name("pipeline_prequential_f1").unwrap();
        assert!((f1 - report.metrics.f1).abs() < 1e-12, "{f1} vs {}", report.metrics.f1);
        assert!(reg.gauge_by_name("pipeline_prequential_kappa").unwrap().is_finite());
        let adds = reg.counter_by_name("pipeline_bow_adds_total").unwrap();
        assert!(adds > 0, "adaptive stream promotes words");
        assert_eq!(detector.bow.churn(), (
            adds,
            reg.counter_by_name("pipeline_bow_evictions_total").unwrap(),
        ));
        assert_eq!(
            reg.gauge_by_name("pipeline_alerts_pending"),
            Some(detector.alerter().alerts().len() as f64)
        );
    }

    #[test]
    fn all_three_models_run_distributed() {
        for model in [ModelKind::ht(), ModelKind::arf(), ModelKind::slr()] {
            let name = model.name();
            let pipeline = PipelineConfig::paper(ClassScheme::ThreeClass, model);
            let config =
                SparkConfig::new(pipeline, engine_config(Topology::local(2), 1000));
            let mut detector = SparkDetector::new(config).unwrap();
            let report = detector.run(labeled_stream(3000, 6)).unwrap();
            assert!(
                report.metrics.accuracy > 0.5,
                "{name} accuracy {}",
                report.metrics.accuracy
            );
        }
    }
}
