//! Driver recovery for the distributed deployment (DESIGN.md §9).
//!
//! Spark Streaming recovers a failed driver by restarting it from the
//! last checkpoint and replaying the batches received since. This module
//! reproduces that loop for [`SparkDetector`]: run a driver incarnation
//! with periodic checkpointing; when a (injected) driver kill ends the
//! incarnation, restore the latest checkpoint — or reset to a clean
//! detector when none was taken yet — and re-run the stream from the
//! first unckeckpointed record under the original global batch numbers.
//!
//! Exactly-once semantics follow from determinism, as in Spark's lineage
//! model: every replayed batch re-executes with the same global batch
//! index, hence the same seeded scatter, the same broadcast model state,
//! and the same (restored) sampler RNG — so the recovered run's
//! predictions, metric series, alerts, and sample are bit-identical to a
//! fault-free run. The chaos harness (`tests/chaos_recovery.rs`) asserts
//! exactly that.

use crate::item::StreamItem;
use crate::spark::{SparkDetector, SparkRunReport};
use redhanded_dspe::{CheckpointStore, FaultStats};
use redhanded_obs::EventKind;
use redhanded_types::snapshot::{Checkpoint, SnapshotReader};
use redhanded_types::{Error, Result};

/// Upper bound on driver incarnations: the fault plan carries a single
/// driver kill, so hitting this means the recovery loop is not making
/// progress (e.g. a kill that re-arms before the next checkpoint).
const MAX_RESTARTS: u32 = 64;

/// Outcome of a run driven through the recovery loop.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Report of the final (completed) incarnation. Quality fields cover
    /// the whole stream — detector state accumulates across restarts —
    /// while `run.stream` times only the final incarnation's segment.
    pub run: SparkRunReport,
    /// Driver kills recovered from.
    pub restarts: u32,
    /// Batches that had completed before a kill and were re-executed
    /// because they post-dated the restored checkpoint.
    pub batches_replayed: u64,
    /// Checkpoints retained in the store when the run completed.
    pub checkpoints: usize,
    /// Task-level fault activity summed over every incarnation.
    pub faults: FaultStats,
}

/// Run `items` through `detector` with checkpoints every `every` completed
/// batches, restarting from the latest checkpoint after every driver kill
/// until the stream completes.
///
/// The detector's own fault plan (in its engine configuration) supplies
/// the kills; a fired kill is disarmed before the next incarnation, the
/// way a real chaos fault is consumed once.
pub fn run_with_recovery(
    detector: &mut SparkDetector,
    items: Vec<StreamItem>,
    store: &mut dyn CheckpointStore,
    every: u64,
) -> Result<RecoveryReport> {
    let mut restarts = 0u32;
    let mut batches_replayed = 0u64;
    let mut faults = FaultStats::default();
    let mut prev_killed: Option<u64> = None;

    loop {
        // Resume point: the latest checkpoint, or a clean slate when the
        // kill predates the first checkpoint.
        let (first_batch, records_done, restored) = match store.latest()? {
            Some((meta, payload)) => {
                let mut r = SnapshotReader::new(&payload);
                detector.restore_from(&mut r)?;
                r.finish()?;
                (meta.batches_done, meta.records_done, true)
            }
            None => {
                detector.reset()?;
                (0, 0, false)
            }
        };
        if let Some(killed) = prev_killed.take() {
            batches_replayed += (killed + 1).saturating_sub(first_batch);
            // Operational recovery events, logged after the restore so the
            // (overwritten) event log keeps them; a later checkpoint's
            // restore discards them again, which is fine — they are
            // runtime-class and never part of the deterministic digest.
            let obs = &mut detector.obs;
            obs.events.push(killed, EventKind::DriverKilled, killed, restarts as u64);
            if restored {
                obs.events
                    .push(first_batch, EventKind::CheckpointRestored, first_batch, records_done);
            } else {
                obs.events.push(0, EventKind::RecoveryReset, 0, 0);
            }
        }

        let segment: Vec<StreamItem> = items[records_done as usize..].to_vec();
        let report = detector.run_segment(segment, first_batch, records_done, Some((store, every)))?;
        let f = report.stream.faults;
        faults.task_failures += f.task_failures;
        faults.task_retries += f.task_retries;
        faults.stragglers += f.stragglers;
        faults.blacklisted = faults.blacklisted.max(f.blacklisted);
        faults.max_attempts = faults.max_attempts.max(f.max_attempts);

        match report.stream.killed_at_batch {
            None => {
                return Ok(RecoveryReport {
                    run: report,
                    restarts,
                    batches_replayed,
                    checkpoints: store.count(),
                    faults,
                });
            }
            Some(killed) => {
                restarts += 1;
                if restarts >= MAX_RESTARTS {
                    return Err(Error::InvalidConfig(format!(
                        "driver recovery made no progress after {restarts} restarts"
                    )));
                }
                prev_killed = Some(killed);
                // The kill is consumed: the replacement driver must not
                // die at the same batch again.
                detector.engine_config_mut().faults.disarm_driver_kill();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelKind, PipelineConfig};
    use crate::spark::SparkConfig;
    use redhanded_datagen::{generate_abusive, AbusiveConfig};
    use redhanded_dspe::{CostModel, EngineConfig, MemoryCheckpointStore, Topology};
    use redhanded_types::ClassScheme;

    fn detector(kill_after: Option<u64>) -> SparkDetector {
        let pipeline = PipelineConfig::paper(ClassScheme::TwoClass, ModelKind::ht());
        let mut engine = EngineConfig::for_topology(Topology::local(4));
        engine.microbatch_size = 500;
        engine.cost_model = CostModel::default();
        if let Some(b) = kill_after {
            engine.faults = engine.faults.kill_driver_after(b);
        }
        SparkDetector::new(SparkConfig::new(pipeline, engine)).unwrap()
    }

    fn stream(n: usize) -> Vec<StreamItem> {
        generate_abusive(&AbusiveConfig::small(n, 11))
            .into_iter()
            .map(StreamItem::from)
            .collect()
    }

    #[test]
    fn fault_free_recovery_run_is_a_plain_run() {
        let items = stream(3000);
        let mut plain = detector(None);
        let plain_report = plain.run(items.clone()).unwrap();

        let mut checked = detector(None);
        let mut store = MemoryCheckpointStore::new(2);
        let report = run_with_recovery(&mut checked, items, &mut store, 2).unwrap();
        assert_eq!(report.restarts, 0);
        assert_eq!(report.batches_replayed, 0);
        assert!(report.checkpoints > 0, "checkpoints were taken");
        assert_eq!(report.run.metrics, plain_report.metrics);
        assert_eq!(report.run.series, plain_report.series);
        assert_eq!(checked.alerter().alerts(), plain.alerter().alerts());
    }

    #[test]
    fn driver_kill_recovers_bit_identically() {
        let items = stream(3000);
        let mut plain = detector(None);
        let plain_report = plain.run(items.clone()).unwrap();

        // Six batches, checkpoints after batch 2 (cadence 3), kill after
        // batch 4: batches 3 and 4 post-date the checkpoint → replayed.
        let mut chaos = detector(Some(4));
        let mut store = MemoryCheckpointStore::new(2);
        let report = run_with_recovery(&mut chaos, items, &mut store, 3).unwrap();
        assert_eq!(report.restarts, 1);
        assert_eq!(report.batches_replayed, 2);
        assert_eq!(report.run.metrics, plain_report.metrics);
        assert_eq!(report.run.series, plain_report.series);
        assert_eq!(chaos.alerter().alerts(), plain.alerter().alerts());
        assert_eq!(chaos.sampler().sample(), plain.sampler().sample());
    }

    #[test]
    fn kill_before_first_checkpoint_restarts_clean() {
        let items = stream(2000);
        let mut plain = detector(None);
        let plain_report = plain.run(items.clone()).unwrap();

        // Kill after batch 0, checkpoint cadence 4 → nothing saved yet.
        let mut chaos = detector(Some(0));
        let mut store = MemoryCheckpointStore::new(2);
        let report = run_with_recovery(&mut chaos, items, &mut store, 4).unwrap();
        assert_eq!(report.restarts, 1);
        assert_eq!(report.batches_replayed, 1, "batch 0 re-ran from scratch");
        assert_eq!(report.run.metrics, plain_report.metrics);
        assert_eq!(report.run.series, plain_report.series);
    }
}
