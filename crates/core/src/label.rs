//! The labeling integration point (Section III-A, "Labeling").
//!
//! In the paper, sampled tweets go to specialized moderators or a
//! crowdsourcing platform; the mechanics are "beyond the scope of this
//! paper". This module defines the [`Labeler`] trait the framework hands
//! its sample to, plus two implementations used by experiments: an oracle
//! (the generator's ground truth) and a noisy wrapper modeling annotator
//! error.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use redhanded_types::{ClassLabel, LabeledTweet, Tweet};
use redhanded_nlp::FxHashMap;

/// Something that can turn sampled tweets into labeled tweets.
pub trait Labeler {
    /// Label one tweet, or decline (annotators may skip).
    fn label(&mut self, tweet: &Tweet) -> Option<ClassLabel>;

    /// Label a batch, producing the labeled-stream payloads.
    fn label_batch(&mut self, tweets: &[Tweet]) -> Vec<LabeledTweet> {
        tweets
            .iter()
            .filter_map(|t| {
                self.label(t).map(|label| LabeledTweet { tweet: t.clone(), label })
            })
            .collect()
    }
}

/// Ground-truth oracle backed by a tweet-id → label map (experiments know
/// the generator's labels).
#[derive(Debug, Clone, Default)]
pub struct OracleLabeler {
    truth: FxHashMap<u64, ClassLabel>,
}

impl OracleLabeler {
    /// Build an oracle from labeled tweets.
    pub fn from_labeled(tweets: &[LabeledTweet]) -> Self {
        OracleLabeler {
            truth: tweets.iter().map(|lt| (lt.tweet.id, lt.label)).collect(),
        }
    }

    /// Number of known labels.
    pub fn len(&self) -> usize {
        self.truth.len()
    }

    /// True when no ground truth is loaded.
    pub fn is_empty(&self) -> bool {
        self.truth.is_empty()
    }
}

impl Labeler for OracleLabeler {
    fn label(&mut self, tweet: &Tweet) -> Option<ClassLabel> {
        self.truth.get(&tweet.id).copied()
    }
}

/// Wraps a labeler with annotator noise: with probability `error_rate` the
/// produced label is replaced by a uniformly random *different* label from
/// the candidate set.
pub struct NoisyLabeler<L> {
    inner: L,
    error_rate: f64,
    candidates: Vec<ClassLabel>,
    rng: SmallRng,
}

impl<L: Labeler> NoisyLabeler<L> {
    /// Wrap `inner` with the given error rate over `candidates`.
    pub fn new(inner: L, error_rate: f64, candidates: Vec<ClassLabel>, seed: u64) -> Self {
        NoisyLabeler {
            inner,
            error_rate: error_rate.clamp(0.0, 1.0),
            candidates,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl<L: Labeler> Labeler for NoisyLabeler<L> {
    fn label(&mut self, tweet: &Tweet) -> Option<ClassLabel> {
        let true_label = self.inner.label(tweet)?;
        if self.rng.gen::<f64>() >= self.error_rate || self.candidates.len() < 2 {
            return Some(true_label);
        }
        // Pick a different label.
        loop {
            let l = self.candidates[self.rng.gen_range(0..self.candidates.len())];
            if l != true_label {
                return Some(l);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redhanded_types::TwitterUser;

    fn tweet(id: u64) -> Tweet {
        Tweet {
            id,
            text: "t".into(),
            timestamp_ms: 0,
            is_retweet: false,
            is_reply: false,
            user: TwitterUser::synthetic(id),
        }
    }

    fn labeled(id: u64, label: ClassLabel) -> LabeledTweet {
        LabeledTweet { tweet: tweet(id), label }
    }

    #[test]
    fn oracle_returns_ground_truth() {
        let mut oracle = OracleLabeler::from_labeled(&[
            labeled(1, ClassLabel::Abusive),
            labeled(2, ClassLabel::Normal),
        ]);
        assert_eq!(oracle.len(), 2);
        assert!(!oracle.is_empty());
        assert_eq!(oracle.label(&tweet(1)), Some(ClassLabel::Abusive));
        assert_eq!(oracle.label(&tweet(2)), Some(ClassLabel::Normal));
        assert_eq!(oracle.label(&tweet(99)), None, "unknown tweet declined");
    }

    #[test]
    fn batch_labeling_skips_unknowns() {
        let mut oracle = OracleLabeler::from_labeled(&[labeled(1, ClassLabel::Hateful)]);
        let out = oracle.label_batch(&[tweet(1), tweet(2)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].label, ClassLabel::Hateful);
    }

    #[test]
    fn noisy_labeler_error_rate() {
        let truth: Vec<LabeledTweet> =
            (0..10_000).map(|i| labeled(i, ClassLabel::Normal)).collect();
        let oracle = OracleLabeler::from_labeled(&truth);
        let mut noisy = NoisyLabeler::new(
            oracle,
            0.2,
            vec![ClassLabel::Normal, ClassLabel::Abusive, ClassLabel::Hateful],
            1,
        );
        let flipped = (0..10_000u64)
            .filter(|&i| noisy.label(&tweet(i)) != Some(ClassLabel::Normal))
            .count();
        let rate = flipped as f64 / 10_000.0;
        assert!((rate - 0.2).abs() < 0.02, "observed error rate {rate}");
    }

    #[test]
    fn zero_noise_is_transparent() {
        let oracle = OracleLabeler::from_labeled(&[labeled(5, ClassLabel::Sarcastic)]);
        let mut noisy = NoisyLabeler::new(
            oracle,
            0.0,
            vec![ClassLabel::Normal, ClassLabel::Sarcastic],
            2,
        );
        for _ in 0..100 {
            assert_eq!(noisy.label(&tweet(5)), Some(ClassLabel::Sarcastic));
        }
    }

    #[test]
    fn noise_never_invents_labels_for_unknowns() {
        let oracle = OracleLabeler::default();
        let mut noisy =
            NoisyLabeler::new(oracle, 1.0, vec![ClassLabel::Normal, ClassLabel::Abusive], 3);
        assert_eq!(noisy.label(&tweet(1)), None);
    }
}
