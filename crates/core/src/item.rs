//! Stream items: the union of the two input streams.
//!
//! The system receives two streams in the same JSON format — unlabeled
//! tweets from the (simulated) Twitter Streaming API and labeled tweets
//! from the annotation pipeline (Section III-A, "Data Input"). Every
//! pipeline step except training treats them identically.

use redhanded_datagen::DAY_MS;
use redhanded_types::{LabeledTweet, Tweet};

/// One record of the merged input stream.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamItem {
    /// A tweet from the unlabeled firehose stream.
    Unlabeled(Tweet),
    /// A tweet from the labeled stream.
    Labeled(LabeledTweet),
}

impl StreamItem {
    /// The tweet payload, regardless of labeling.
    pub fn tweet(&self) -> &Tweet {
        match self {
            StreamItem::Unlabeled(t) => t,
            StreamItem::Labeled(lt) => &lt.tweet,
        }
    }

    /// True for items from the labeled stream.
    pub fn is_labeled(&self) -> bool {
        matches!(self, StreamItem::Labeled(_))
    }

    /// The collection day the item belongs to, recovered from its
    /// timestamp (the generators encode the day structure there).
    pub fn day(&self) -> u32 {
        (self.tweet().timestamp_ms / DAY_MS) as u32
    }

    /// Parse an item from JSON: payloads with a `label` attribute come from
    /// the labeled stream, all others from the unlabeled stream.
    pub fn from_json(json: &str) -> redhanded_types::Result<Self> {
        match LabeledTweet::from_json(json) {
            Ok(lt) => Ok(StreamItem::Labeled(lt)),
            Err(_) => Ok(StreamItem::Unlabeled(Tweet::from_json(json)?)),
        }
    }
}

impl From<Tweet> for StreamItem {
    fn from(t: Tweet) -> Self {
        StreamItem::Unlabeled(t)
    }
}

impl From<LabeledTweet> for StreamItem {
    fn from(lt: LabeledTweet) -> Self {
        StreamItem::Labeled(lt)
    }
}

/// Interleave unlabeled tweets into a labeled stream, preserving relative
/// order of both — the workload shape of the scalability experiments
/// (Section V-E intermixes 250k–2M unlabeled tweets with the 86k labeled
/// ones).
pub fn intermix(labeled: Vec<LabeledTweet>, unlabeled: Vec<Tweet>) -> Vec<StreamItem> {
    let total = labeled.len() + unlabeled.len();
    let mut out = Vec::with_capacity(total);
    if labeled.is_empty() {
        out.extend(unlabeled.into_iter().map(StreamItem::from));
        return out;
    }
    if unlabeled.is_empty() {
        out.extend(labeled.into_iter().map(StreamItem::from));
        return out;
    }
    // Evenly spread: walk both streams proportionally.
    let (mut li, mut ui) = (0usize, 0usize);
    let (ln, un) = (labeled.len(), unlabeled.len());
    let mut labeled = labeled.into_iter();
    let mut unlabeled = unlabeled.into_iter();
    for _ in 0..total {
        // Take from whichever stream is behind proportionally.
        let take_labeled = li * un <= ui * ln && li < ln;
        if (take_labeled && li < ln) || ui >= un {
            out.push(StreamItem::from(labeled.next().expect("li < ln")));
            li += 1;
        } else {
            out.push(StreamItem::from(unlabeled.next().expect("ui < un")));
            ui += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use redhanded_types::{ClassLabel, TwitterUser};

    fn tweet(id: u64, ts: u64) -> Tweet {
        Tweet {
            id,
            text: "hello".into(),
            timestamp_ms: ts,
            is_retweet: false,
            is_reply: false,
            user: TwitterUser::synthetic(id),
        }
    }

    #[test]
    fn accessors() {
        let t = tweet(1, 3 * DAY_MS + 5);
        let item = StreamItem::from(t.clone());
        assert!(!item.is_labeled());
        assert_eq!(item.day(), 3);
        assert_eq!(item.tweet().id, 1);
        let lt = LabeledTweet { tweet: t, label: ClassLabel::Abusive };
        let item = StreamItem::from(lt);
        assert!(item.is_labeled());
    }

    #[test]
    fn json_dispatch() {
        let t = tweet(7, 0);
        let item = StreamItem::from_json(&t.to_json()).unwrap();
        assert!(!item.is_labeled());
        let lt = LabeledTweet { tweet: t, label: ClassLabel::Hateful };
        let item = StreamItem::from_json(&lt.to_json()).unwrap();
        assert!(item.is_labeled());
        assert!(StreamItem::from_json("{bad").is_err());
    }

    #[test]
    fn intermix_preserves_order_and_spreads() {
        let labeled: Vec<LabeledTweet> = (0..10)
            .map(|i| LabeledTweet { tweet: tweet(i, 0), label: ClassLabel::Normal })
            .collect();
        let unlabeled: Vec<Tweet> = (100..130).map(|i| tweet(i, 0)).collect();
        let mixed = intermix(labeled, unlabeled);
        assert_eq!(mixed.len(), 40);
        // Relative order within each stream preserved.
        let labeled_ids: Vec<u64> =
            mixed.iter().filter(|i| i.is_labeled()).map(|i| i.tweet().id).collect();
        assert_eq!(labeled_ids, (0..10).collect::<Vec<_>>());
        let unlabeled_ids: Vec<u64> =
            mixed.iter().filter(|i| !i.is_labeled()).map(|i| i.tweet().id).collect();
        assert_eq!(unlabeled_ids, (100..130).collect::<Vec<_>>());
        // Roughly even spreading: first half contains about half of each.
        let first_half_labeled = mixed[..20].iter().filter(|i| i.is_labeled()).count();
        assert!((4..=6).contains(&first_half_labeled), "{first_half_labeled}");
    }

    #[test]
    fn intermix_degenerate_inputs() {
        assert!(intermix(vec![], vec![]).is_empty());
        let only_unlabeled = intermix(vec![], vec![tweet(1, 0)]);
        assert_eq!(only_unlabeled.len(), 1);
        let only_labeled = intermix(
            vec![LabeledTweet { tweet: tweet(2, 0), label: ClassLabel::Normal }],
            vec![],
        );
        assert!(only_labeled[0].is_labeled());
    }
}
