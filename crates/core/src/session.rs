//! Session-level detection — the paper's future-work extension
//! (Section VI): "some forms of behaviors, like cyberbullying and
//! trolling, usually involve repetitive hostile actions; we also plan to
//! investigate detecting such behaviors at the level of media sessions
//! (e.g., for a group of tweets from the same user) … utiliz[ing] the
//! windowing functionalities provided by all distributed stream processing
//! engines".
//!
//! [`SessionDetector`] keeps a sliding event-time window per user over the
//! classified stream. When a user posts at least `min_tweets` tweets
//! within `window_ms` and the mean predicted-aggressive probability of
//! those tweets reaches `aggression_threshold`, the window is flagged as a
//! *bullying session* — repeated hostility, rather than a one-off
//! aggressive tweet. Each user is flagged at most once per quiet period
//! (the flag re-arms after the user's window empties).

use redhanded_nlp::FxHashMap;
use std::collections::VecDeque;

/// Configuration of the session-level detector.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Event-time window length in milliseconds.
    pub window_ms: u64,
    /// Minimum tweets within the window to call it a session.
    pub min_tweets: usize,
    /// Minimum mean predicted-aggressive probability over the window.
    pub aggression_threshold: f64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig { window_ms: 3_600_000, min_tweets: 5, aggression_threshold: 0.6 }
    }
}

/// A flagged bullying session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionAlert {
    /// The user whose session was flagged.
    pub user_id: u64,
    /// Tweets in the window when it was flagged.
    pub tweets_in_window: usize,
    /// Mean predicted-aggressive probability over the window.
    pub mean_aggression: f64,
    /// Event time of the tweet that triggered the flag.
    pub triggered_at_ms: u64,
}

/// Per-user sliding-window state.
#[derive(Debug, Clone, Default)]
struct UserWindow {
    /// `(timestamp_ms, aggressive_probability)` events, oldest first.
    events: VecDeque<(u64, f64)>,
    /// Sum of probabilities currently in the window.
    sum: f64,
    /// Whether this user's current activity burst has already been flagged.
    flagged: bool,
}

/// The windowed session-level detector.
#[derive(Debug, Clone)]
pub struct SessionDetector {
    config: SessionConfig,
    users: FxHashMap<u64, UserWindow>,
    alerts: Vec<SessionAlert>,
}

impl SessionDetector {
    /// Create a detector.
    pub fn new(config: SessionConfig) -> Self {
        SessionDetector { config, users: FxHashMap::default(), alerts: Vec::new() }
    }

    /// Detector with default configuration (1-hour window, ≥5 tweets,
    /// mean aggression ≥ 0.6).
    pub fn with_defaults() -> Self {
        Self::new(SessionConfig::default())
    }

    /// Observe one classified tweet: the posting user, its event time, and
    /// the model's predicted-aggressive probability (the positive-class
    /// mass under the active scheme). Returns a [`SessionAlert`] when this
    /// tweet tips the user's window over the thresholds.
    ///
    /// Events are assumed per-user time-ordered (as a stream delivers
    /// them); late events are still counted but expiry uses the newest
    /// timestamp seen for the user.
    pub fn observe(
        &mut self,
        user_id: u64,
        timestamp_ms: u64,
        aggressive_proba: f64,
    ) -> Option<SessionAlert> {
        let window = self.users.entry(user_id).or_default();
        window.events.push_back((timestamp_ms, aggressive_proba.clamp(0.0, 1.0)));
        window.sum += aggressive_proba.clamp(0.0, 1.0);
        // Expire events older than the window relative to the newest event.
        let horizon = timestamp_ms.saturating_sub(self.config.window_ms);
        while let Some(&(ts, p)) = window.events.front() {
            if ts < horizon {
                window.events.pop_front();
                window.sum -= p;
            } else {
                break;
            }
        }
        if window.events.is_empty() {
            window.flagged = false;
            return None;
        }
        let mean = window.sum / window.events.len() as f64;
        let dense_enough = window.events.len() >= self.config.min_tweets;
        if dense_enough && mean >= self.config.aggression_threshold {
            if !window.flagged {
                window.flagged = true;
                let alert = SessionAlert {
                    user_id,
                    tweets_in_window: window.events.len(),
                    mean_aggression: mean,
                    triggered_at_ms: timestamp_ms,
                };
                self.alerts.push(alert);
                return Some(alert);
            }
        } else if window.events.len() < self.config.min_tweets / 2 {
            // The burst dissolved; re-arm the flag for the next session.
            window.flagged = false;
        }
        None
    }

    /// All session alerts raised so far.
    pub fn alerts(&self) -> &[SessionAlert] {
        &self.alerts
    }

    /// Number of users currently tracked.
    pub fn tracked_users(&self) -> usize {
        self.users.len()
    }

    /// Drop per-user state older than `horizon_ms` across all users
    /// (periodic compaction for long-running deployments).
    pub fn compact(&mut self, newest_ts: u64) {
        let horizon = newest_ts.saturating_sub(self.config.window_ms);
        self.users.retain(|_, w| {
            while let Some(&(ts, p)) = w.events.front() {
                if ts < horizon {
                    w.events.pop_front();
                    w.sum -= p;
                } else {
                    break;
                }
            }
            !w.events.is_empty()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(min_tweets: usize, threshold: f64) -> SessionDetector {
        SessionDetector::new(SessionConfig {
            window_ms: 1000,
            min_tweets,
            aggression_threshold: threshold,
        })
    }

    #[test]
    fn burst_of_aggression_is_flagged_once() {
        let mut d = detector(3, 0.5);
        let mut alerts = 0;
        for i in 0..10u64 {
            if d.observe(1, i * 10, 0.9).is_some() {
                alerts += 1;
            }
        }
        assert_eq!(alerts, 1, "one alert per session");
        assert_eq!(d.alerts().len(), 1);
        let a = &d.alerts()[0];
        assert_eq!(a.user_id, 1);
        assert_eq!(a.tweets_in_window, 3, "flagged as soon as dense enough");
        assert!(a.mean_aggression > 0.8);
    }

    #[test]
    fn benign_bursts_are_not_flagged() {
        let mut d = detector(3, 0.6);
        for i in 0..20u64 {
            assert!(d.observe(2, i * 10, 0.1).is_none());
        }
        assert!(d.alerts().is_empty());
    }

    #[test]
    fn sparse_aggression_is_not_a_session() {
        let mut d = detector(3, 0.6);
        // Aggressive tweets, but 2 seconds apart with a 1-second window.
        for i in 0..10u64 {
            assert!(d.observe(3, i * 2000, 0.95).is_none());
        }
    }

    #[test]
    fn mixed_content_below_threshold() {
        let mut d = detector(4, 0.7);
        // Alternating aggressive/benign → mean 0.5 < 0.7.
        for i in 0..12u64 {
            let p = if i % 2 == 0 { 0.9 } else { 0.1 };
            assert!(d.observe(4, i * 10, p).is_none());
        }
    }

    #[test]
    fn flag_rearms_after_quiet_period() {
        let mut d = detector(4, 0.5);
        for i in 0..6u64 {
            d.observe(5, i * 10, 0.9);
        }
        assert_eq!(d.alerts().len(), 1);
        // Long silence: the old burst expires entirely.
        d.observe(5, 10_000, 0.9);
        // New burst.
        for i in 1..8u64 {
            d.observe(5, 10_000 + i * 10, 0.9);
        }
        assert_eq!(d.alerts().len(), 2, "second session flagged after quiet period");
    }

    #[test]
    fn users_are_independent() {
        let mut d = detector(3, 0.5);
        for i in 0..10u64 {
            d.observe(10, i * 10, 0.9);
            d.observe(11, i * 10, 0.9);
        }
        assert_eq!(d.alerts().len(), 2);
        assert_eq!(d.tracked_users(), 2);
        let users: Vec<u64> = d.alerts().iter().map(|a| a.user_id).collect();
        assert!(users.contains(&10) && users.contains(&11));
    }

    #[test]
    fn compact_drops_stale_users() {
        let mut d = detector(3, 0.5);
        d.observe(20, 0, 0.3);
        d.observe(21, 5000, 0.3);
        assert_eq!(d.tracked_users(), 2);
        d.compact(5000);
        assert_eq!(d.tracked_users(), 1, "user 20's events expired");
    }

    #[test]
    fn probabilities_are_clamped() {
        let mut d = detector(2, 0.5);
        d.observe(30, 0, 7.5);
        let alert = d.observe(30, 10, -3.0);
        // clamped to [0,1]: mean = (1.0 + 0.0)/2 = 0.5 → flag at threshold.
        assert!(alert.is_some());
        assert!((alert.unwrap().mean_aggression - 0.5).abs() < 1e-12);
    }
}
