//! Pipeline configuration: the experiment knobs of Section V.
//!
//! Every ablation in the paper's evaluation toggles one of these switches:
//! preprocessing on/off (Figure 6), normalization kind (Figures 7–8),
//! adaptive BoW on/off (Figure 9), the streaming model (Figures 11–12),
//! and the 2- vs 3-class scheme.

use redhanded_features::{AdaptiveBowConfig, ExtractorConfig, NormalizationKind, NUM_FEATURES};
use redhanded_streamml::{
    AdaptiveRandomForest, ArfConfig, HoeffdingTree, HoeffdingTreeConfig, SlrConfig,
    StreamingClassifier, StreamingLogisticRegression, StreamingNaiveBayes,
};
use redhanded_types::{ClassScheme, Result};

/// Which streaming classifier the pipeline trains.
#[derive(Debug, Clone)]
pub enum ModelKind {
    /// Hoeffding Tree with the given configuration overrides.
    HoeffdingTree(Option<HoeffdingTreeConfig>),
    /// Adaptive Random Forest.
    AdaptiveRandomForest(Option<ArfConfig>),
    /// Streaming Logistic Regression.
    StreamingLogisticRegression(Option<SlrConfig>),
    /// Streaming Gaussian naive Bayes (lightweight floor baseline).
    StreamingNaiveBayes,
}

impl ModelKind {
    /// Paper-default Hoeffding Tree.
    pub fn ht() -> Self {
        ModelKind::HoeffdingTree(None)
    }

    /// Paper-default Adaptive Random Forest.
    pub fn arf() -> Self {
        ModelKind::AdaptiveRandomForest(None)
    }

    /// Paper-default Streaming Logistic Regression.
    pub fn slr() -> Self {
        ModelKind::StreamingLogisticRegression(None)
    }

    /// Streaming naive Bayes.
    pub fn nb() -> Self {
        ModelKind::StreamingNaiveBayes
    }

    /// Parse a model name (`ht` / `arf` / `slr` / `nb`, case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "ht" => Some(ModelKind::ht()),
            "arf" => Some(ModelKind::arf()),
            "slr" => Some(ModelKind::slr()),
            "nb" => Some(ModelKind::nb()),
            _ => None,
        }
    }

    /// Instantiate the model for a class scheme over the canonical
    /// 17-feature vector.
    pub fn build(&self, scheme: ClassScheme) -> Result<Box<dyn StreamingClassifier>> {
        let classes = scheme.num_classes();
        Ok(match self {
            ModelKind::HoeffdingTree(cfg) => {
                let cfg = cfg
                    .clone()
                    .unwrap_or_else(|| HoeffdingTreeConfig::paper_defaults(classes, NUM_FEATURES));
                Box::new(HoeffdingTree::new(cfg)?)
            }
            ModelKind::AdaptiveRandomForest(cfg) => {
                let cfg =
                    cfg.clone().unwrap_or_else(|| ArfConfig::paper_defaults(classes, NUM_FEATURES));
                Box::new(AdaptiveRandomForest::new(cfg)?)
            }
            ModelKind::StreamingLogisticRegression(cfg) => {
                let cfg =
                    cfg.clone().unwrap_or_else(|| SlrConfig::paper_defaults(classes, NUM_FEATURES));
                Box::new(StreamingLogisticRegression::new(cfg)?)
            }
            ModelKind::StreamingNaiveBayes => {
                Box::new(StreamingNaiveBayes::new(classes, NUM_FEATURES)?)
            }
        })
    }

    /// Short name for reports (`HT`, `ARF`, `SLR`).
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::HoeffdingTree(_) => "HT",
            ModelKind::AdaptiveRandomForest(_) => "ARF",
            ModelKind::StreamingLogisticRegression(_) => "SLR",
            ModelKind::StreamingNaiveBayes => "NB",
        }
    }
}

/// Full pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// 2-class or 3-class problem (or a related-behavior scheme).
    pub scheme: ClassScheme,
    /// Preprocessing toggle (`p` in the figures).
    pub preprocess: bool,
    /// Normalization kind (`n`; `None` disables).
    pub normalization: NormalizationKind,
    /// Adaptive BoW toggle (`ad`; off = fixed seed lexicon).
    pub adaptive_bow: bool,
    /// The streaming model.
    pub model: ModelKind,
    /// Prequential series granularity in instances (0 = no series).
    pub record_every: u64,
    /// Sliding window for the recorded metric series (None = cumulative).
    pub window: Option<usize>,
    /// Alerting threshold: minimum predicted-aggressive probability to
    /// raise an alert.
    pub alert_threshold: f64,
    /// Repeated-offense count that flags a user for suspension.
    pub suspend_after: u32,
    /// Base sampling rate for the labeling sample.
    pub sample_rate: f64,
    /// Boost multiplier for predicted-aggressive tweets in the sample.
    pub sample_boost: f64,
    /// Enable session-level (windowed per-user) detection on unlabeled
    /// traffic — the paper's Section VI extension. `None` disables it.
    pub session: Option<crate::session::SessionConfig>,
}

impl PipelineConfig {
    /// The paper's full configuration (p=ON, n=ON with minmax-no-outliers,
    /// ad=ON) for a scheme and model.
    pub fn paper(scheme: ClassScheme, model: ModelKind) -> Self {
        PipelineConfig {
            scheme,
            preprocess: true,
            normalization: NormalizationKind::MinMaxNoOutliers,
            adaptive_bow: true,
            model,
            record_every: 1000,
            window: Some(5000),
            alert_threshold: 0.5,
            suspend_after: 3,
            sample_rate: 0.01,
            sample_boost: 10.0,
            session: None,
        }
    }

    /// The extractor configuration implied by this pipeline configuration.
    pub fn extractor_config(&self) -> ExtractorConfig {
        ExtractorConfig { preprocess: self.preprocess }
    }

    /// The adaptive-BoW configuration implied by this pipeline
    /// configuration.
    pub fn bow_config(&self) -> AdaptiveBowConfig {
        AdaptiveBowConfig { adaptive: self.adaptive_bow, ..Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_each_model_kind() {
        for (kind, name, classes) in [
            (ModelKind::ht(), "HT", 3),
            (ModelKind::arf(), "ARF", 3),
            (ModelKind::slr(), "SLR", 2),
            (ModelKind::nb(), "NB", 2),
        ] {
            let scheme =
                if classes == 2 { ClassScheme::TwoClass } else { ClassScheme::ThreeClass };
            let model = kind.build(scheme).unwrap();
            assert_eq!(model.num_classes(), classes);
            assert_eq!(model.name(), name);
            assert_eq!(kind.name(), name);
        }
    }

    #[test]
    fn paper_config_matches_section_v() {
        let cfg = PipelineConfig::paper(ClassScheme::TwoClass, ModelKind::ht());
        assert!(cfg.preprocess);
        assert!(cfg.adaptive_bow);
        assert_eq!(cfg.normalization, NormalizationKind::MinMaxNoOutliers);
        assert!(cfg.extractor_config().preprocess);
        assert!(cfg.bow_config().adaptive);
    }

    #[test]
    fn model_kind_parsing() {
        assert_eq!(ModelKind::parse("HT").unwrap().name(), "HT");
        assert_eq!(ModelKind::parse("arf").unwrap().name(), "ARF");
        assert_eq!(ModelKind::parse("Slr").unwrap().name(), "SLR");
        assert_eq!(ModelKind::parse("nb").unwrap().name(), "NB");
        assert!(ModelKind::parse("xgboost").is_none());
    }

    #[test]
    fn custom_model_config_is_used() {
        let mut ht_cfg = HoeffdingTreeConfig::paper_defaults(2, NUM_FEATURES);
        ht_cfg.grace_period = 500.0;
        let kind = ModelKind::HoeffdingTree(Some(ht_cfg));
        let model = kind.build(ClassScheme::TwoClass).unwrap();
        let ht = model.as_any().downcast_ref::<HoeffdingTree>().unwrap();
        assert_eq!(ht.config().grace_period, 500.0);
    }
}
