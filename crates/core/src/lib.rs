//! `redhanded` — a real-time aggression-detection framework for social
//! media, reproducing "Catching them red-handed: Real-time Aggression
//! Detection on Social Media" (Herodotou, Chatzakou & Kourtellis, ICDE
//! 2021) from scratch in Rust.
//!
//! The framework embraces the streaming-ML paradigm end to end (Figure 1
//! of the paper): tweets are preprocessed, featurized, and normalized
//! incrementally; streaming classifiers (Hoeffding Tree, Adaptive Random
//! Forest, Streaming Logistic Regression) update on every labeled tweet
//! and predict on every tweet; alerts feed human moderators; a boosted
//! sampler selects tweets for labeling; and the whole dataflow deploys on
//! a micro-batch distributed stream-processing engine (Figure 2).
//!
//! # Quickstart
//!
//! ```
//! use redhanded_core::{DetectionPipeline, ModelKind, PipelineConfig, StreamItem};
//! use redhanded_datagen::{generate_abusive, AbusiveConfig};
//! use redhanded_types::ClassScheme;
//!
//! // A small synthetic labeled stream (see redhanded-datagen).
//! let tweets = generate_abusive(&AbusiveConfig::small(2000, 7));
//!
//! // The paper's configuration: preprocessing + robust minmax
//! // normalization + adaptive bag-of-words, with a Hoeffding Tree.
//! let config = PipelineConfig::paper(ClassScheme::TwoClass, ModelKind::ht());
//! let mut pipeline = DetectionPipeline::new(config).unwrap();
//! for tweet in tweets {
//!     pipeline.process(&StreamItem::from(tweet)).unwrap();
//! }
//! let metrics = pipeline.cumulative_metrics();
//! assert!(metrics.f1 > 0.7);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alert;
pub mod config;
pub mod deploy;
pub mod experiments;
pub mod item;
pub mod label;
pub mod observe;
pub mod pipeline;
pub mod recovery;
pub mod sample;
pub mod session;
pub mod spark;

pub use alert::{Alert, Alerter};
pub use config::{ModelKind, PipelineConfig};
pub use deploy::{run_system, DeployReport, SystemFlavor};
pub use item::{intermix, StreamItem};
pub use label::{Labeler, NoisyLabeler, OracleLabeler};
pub use observe::PipelineObs;
pub use pipeline::{BowSizePoint, Classified, DetectionPipeline};
pub use recovery::{run_with_recovery, RecoveryReport};
pub use sample::{BoostedSampler, SampledTweet};
pub use session::{SessionAlert, SessionConfig, SessionDetector};
pub use spark::{SparkConfig, SparkDetector, SparkRunReport};
