//! Deployment flavors — the four systems of the scalability evaluation
//! (Section V-E, Figures 15–16).
//!
//! * **MOA** — the single-threaded ML-engine baseline: the sequential
//!   [`DetectionPipeline`] in a bare loop, timed by wall clock (no engine
//!   overhead, no parallelism);
//! * **SparkSingle** — the micro-batch engine on a 1-node × 1-slot
//!   topology: same compute plus Spark's per-batch scheduling overheads
//!   (the paper's observed 7–17% penalty over MOA);
//! * **SparkLocal** — 1 node × 8 slots (the paper's 8-core machine);
//! * **SparkCluster** — 3 nodes × 8 slots with broadcast costs (the
//!   paper's commodity cluster).

use crate::config::PipelineConfig;
use crate::item::StreamItem;
use crate::pipeline::DetectionPipeline;
use crate::spark::{SparkConfig, SparkDetector};
use redhanded_dspe::{EngineConfig, Topology};
use redhanded_obs::{analyze, SpanClock, TraceAnalysis};
use redhanded_streamml::Metrics;
use redhanded_types::Result;
use std::time::Duration;

/// One of the four evaluated systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemFlavor {
    /// Single-threaded ML engine, no DSPE (the MOA baseline).
    Moa,
    /// Spark topology: 1 node × 1 slot.
    SparkSingle,
    /// Spark topology: 1 node × `slots`.
    SparkLocal {
        /// Executor threads on the single node.
        slots: usize,
    },
    /// Spark topology: `nodes` × `slots_per_node`.
    SparkCluster {
        /// Worker machines.
        nodes: usize,
        /// Executor threads per machine.
        slots_per_node: usize,
    },
}

impl SystemFlavor {
    /// The four systems exactly as evaluated in the paper (8-core nodes,
    /// 3-node cluster).
    pub fn paper_set() -> Vec<SystemFlavor> {
        vec![
            SystemFlavor::Moa,
            SystemFlavor::SparkSingle,
            SystemFlavor::SparkLocal { slots: 8 },
            SystemFlavor::SparkCluster { nodes: 3, slots_per_node: 8 },
        ]
    }

    /// Display name matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            SystemFlavor::Moa => "MOA",
            SystemFlavor::SparkSingle => "SparkSingle",
            SystemFlavor::SparkLocal { .. } => "SparkLocal",
            SystemFlavor::SparkCluster { .. } => "SparkCluster",
        }
    }

    /// The simulated topology (None for MOA, which bypasses the engine).
    pub fn topology(&self) -> Option<Topology> {
        match self {
            SystemFlavor::Moa => None,
            SystemFlavor::SparkSingle => Some(Topology::single()),
            SystemFlavor::SparkLocal { slots } => Some(Topology::local(*slots)),
            SystemFlavor::SparkCluster { nodes, slots_per_node } => {
                Some(Topology::cluster(*nodes, *slots_per_node))
            }
        }
    }
}

/// Timing + quality outcome of one deployment run.
#[derive(Debug, Clone)]
pub struct DeployReport {
    /// System name (figure legend).
    pub system: &'static str,
    /// Records processed.
    pub records: u64,
    /// Execution time: wall clock for MOA, simulated cluster time for the
    /// Spark flavors (see `redhanded-dspe`'s virtual scheduler).
    pub elapsed: Duration,
    /// Records per second.
    pub throughput: f64,
    /// Classification metrics over the labeled instances.
    pub metrics: Metrics,
    /// Critical-path latency attribution from the recorded span trace:
    /// per-stage breakdown for the Spark flavors (batch → broadcast →
    /// stage/tasks → merge → driver/alert under the simulated clock);
    /// sampled per-tweet operator phases for MOA.
    pub breakdown: Option<TraceAnalysis>,
}

/// Run `items` through the chosen system.
pub fn run_system(
    flavor: SystemFlavor,
    pipeline: PipelineConfig,
    items: Vec<StreamItem>,
    microbatch_size: usize,
) -> Result<DeployReport> {
    let records = items.len() as u64;
    match flavor.topology() {
        None => {
            let mut p = DetectionPipeline::new(pipeline)?;
            // All wall-clock reads route through `SpanClock`, the
            // workspace's designated (and lint-enforced) time source.
            let clock = SpanClock::wall();
            p.run(&items)?;
            let elapsed = Duration::from_micros(clock.now_us());
            Ok(DeployReport {
                system: flavor.name(),
                records,
                elapsed,
                throughput: if elapsed.as_secs_f64() > 0.0 {
                    records as f64 / elapsed.as_secs_f64()
                } else {
                    0.0
                },
                metrics: p.cumulative_metrics(),
                breakdown: Some(analyze(p.obs().trace())),
            })
        }
        Some(topology) => {
            let mut engine = EngineConfig::for_topology(topology);
            engine.microbatch_size = microbatch_size;
            let mut detector = SparkDetector::new(SparkConfig::new(pipeline, engine))?;
            let report = detector.run(items)?;
            Ok(DeployReport {
                system: flavor.name(),
                records,
                elapsed: report.stream.simulated,
                throughput: report.stream.throughput(),
                metrics: report.metrics,
                breakdown: Some(analyze(detector.obs().trace())),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelKind;
    use redhanded_datagen::{generate_abusive, AbusiveConfig};
    use redhanded_types::ClassScheme;

    fn stream(n: usize) -> Vec<StreamItem> {
        generate_abusive(&AbusiveConfig::small(n, 42))
            .into_iter()
            .map(StreamItem::from)
            .collect()
    }

    #[test]
    fn paper_set_has_four_systems() {
        let set = SystemFlavor::paper_set();
        assert_eq!(set.len(), 4);
        assert_eq!(set[0].name(), "MOA");
        assert_eq!(set[3].name(), "SparkCluster");
        assert_eq!(set[3].topology().unwrap().total_slots(), 24);
        assert!(set[0].topology().is_none());
    }

    #[test]
    fn all_flavors_process_the_stream() {
        let items = stream(2000);
        let pipeline = PipelineConfig::paper(ClassScheme::TwoClass, ModelKind::ht());
        for flavor in SystemFlavor::paper_set() {
            let report =
                run_system(flavor, pipeline.clone(), items.clone(), 500).unwrap();
            assert_eq!(report.records, 2000, "{}", report.system);
            assert!(report.throughput > 0.0, "{}", report.system);
            assert!(report.metrics.accuracy > 0.6, "{}", report.system);
            let breakdown = report.breakdown.as_ref().expect("trace analysis");
            if flavor.topology().is_some() {
                // The batch roots of the span tree account for the
                // simulated execution time Figure 15 reports, within 5%.
                assert_eq!(breakdown.batches, 4, "{}", report.system);
                let sim_us = report.elapsed.as_secs_f64() * 1e6;
                assert!(
                    (breakdown.total_us - sim_us).abs() <= 0.05 * sim_us,
                    "{}: trace {}µs vs simulated {}µs",
                    report.system,
                    breakdown.total_us,
                    sim_us
                );
                assert!(breakdown.stage(redhanded_obs::SpanKind::Task).is_some());
            }
        }
    }

    #[test]
    fn scalability_shape_matches_the_paper() {
        // SparkSingle slower than MOA (engine overhead); SparkLocal faster
        // than SparkSingle; SparkCluster fastest.
        let items = stream(6000);
        let pipeline = PipelineConfig::paper(ClassScheme::ThreeClass, ModelKind::ht());
        let run = |f: SystemFlavor| {
            run_system(f, pipeline.clone(), items.clone(), 1000).unwrap().elapsed
        };
        let moa = run(SystemFlavor::Moa);
        let single = run(SystemFlavor::SparkSingle);
        let local = run(SystemFlavor::SparkLocal { slots: 8 });
        let cluster = run(SystemFlavor::SparkCluster { nodes: 3, slots_per_node: 8 });
        // MOA is wall-clock while the Spark flavors are simulated; when
        // the test harness runs suites in parallel on a small machine, the
        // MOA measurement can be inflated severalfold by CPU contention,
        // so only a gross-regression bound is asserted here. The
        // controlled engine-overhead inequality lives in redhanded-dspe's
        // tests, and the release-mode Figure 15 bench reports the
        // calibrated gap.
        assert!(
            single.as_secs_f64() > moa.as_secs_f64() * 0.3,
            "SparkSingle {single:?} ≳ MOA {moa:?}"
        );
        assert!(local < single, "SparkLocal {local:?} < SparkSingle {single:?}");
        assert!(cluster < local, "SparkCluster {cluster:?} < SparkLocal {local:?}");
    }
}
