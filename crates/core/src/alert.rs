//! Alerting (Section III-A, "Alerting").
//!
//! Raises an alert whenever the model predicts an aggressive class with
//! confidence above a threshold. Alerts feed a moderator queue and a
//! per-user alert history; users with repeated offenses are flagged for
//! automatic suspension — the three handling options the paper lists
//! (human moderation, automatic warning, automatic removal) all consume
//! this queue.

use redhanded_nlp::FxHashMap;
use redhanded_types::snapshot::{Checkpoint, SnapshotReader, SnapshotWriter};
use redhanded_types::{ClassScheme, Error, Result};

/// One raised alert.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Monotonic sequence number (1-based, never reused — survives
    /// [`Alerter::drain`] and checkpoint/recovery, so downstream consumers
    /// can deduplicate at-least-once deliveries).
    pub seq: u64,
    /// The offending tweet.
    pub tweet_id: u64,
    /// The posting user.
    pub user_id: u64,
    /// Predicted (dense) class index.
    pub class: usize,
    /// Human-readable class name under the active scheme.
    pub class_name: &'static str,
    /// Model confidence in the predicted class.
    pub confidence: f64,
    /// How many alerts this user has accumulated, including this one.
    pub user_alert_count: u32,
}

/// The alerting step: thresholded alert generation plus per-user history.
#[derive(Debug, Clone)]
pub struct Alerter {
    scheme: ClassScheme,
    threshold: f64,
    suspend_after: u32,
    history: FxHashMap<u64, u32>,
    alerts: Vec<Alert>,
    suspended: Vec<u64>,
    /// Alerts ever raised (monotonic; also the last assigned `Alert::seq`).
    raised_total: u64,
    /// Alerts handed to a consumer via [`Alerter::drain`] (monotonic).
    drained_total: u64,
}

impl Alerter {
    /// Create an alerter. `threshold` is the minimum confidence in an
    /// aggressive class; `suspend_after` is the repeated-offense cutoff.
    pub fn new(scheme: ClassScheme, threshold: f64, suspend_after: u32) -> Self {
        Alerter {
            scheme,
            threshold,
            suspend_after,
            history: FxHashMap::default(),
            alerts: Vec::new(),
            suspended: Vec::new(),
            raised_total: 0,
            drained_total: 0,
        }
    }

    /// Inspect one classified tweet; returns the alert if one was raised.
    ///
    /// `proba` is the model's class distribution for the tweet. An alert
    /// fires when the combined probability of the non-benign classes
    /// exceeds the threshold.
    pub fn observe(
        &mut self,
        tweet_id: u64,
        user_id: u64,
        proba: &[f64],
    ) -> Option<&Alert> {
        let aggressive_mass: f64 =
            self.scheme.positive_classes().map(|c| proba.get(c).copied().unwrap_or(0.0)).sum();
        if aggressive_mass < self.threshold {
            return None;
        }
        // Report the strongest aggressive class.
        // total_cmp: a NaN probability degrades the ranking instead of
        // panicking; an (impossible) empty scheme yields no alert rather
        // than aborting the stream.
        let class = self
            .scheme
            .positive_classes()
            .max_by(|&a, &b| {
                proba.get(a).copied().unwrap_or(0.0).total_cmp(&proba.get(b).copied().unwrap_or(0.0))
            })?;
        let count = self.history.entry(user_id).or_insert(0);
        *count += 1;
        if *count == self.suspend_after {
            self.suspended.push(user_id);
        }
        self.raised_total += 1;
        self.alerts.push(Alert {
            seq: self.raised_total,
            tweet_id,
            user_id,
            class,
            class_name: self.scheme.class_name(class),
            // Checked read: the model may emit a distribution shorter than
            // the scheme (e.g. trailing zero classes truncated). A missing
            // entry means zero mass, exactly as in the ranking above — an
            // unchecked index here panicked the whole stream at the task
            // boundary.
            confidence: proba.get(class).copied().unwrap_or(0.0),
            user_alert_count: *count,
        });
        self.alerts.last()
    }

    /// Pending (not yet drained) alerts, in stream order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Alerts ever raised, including drained ones — the exactly-once
    /// monotonic count reported in [`crate::SparkRunReport`] and the
    /// observability layer, immune to [`Alerter::drain`].
    pub fn alerts_raised(&self) -> u64 {
        self.raised_total
    }

    /// Alerts handed to a consumer via [`Alerter::drain`] so far.
    pub fn alerts_drained(&self) -> u64 {
        self.drained_total
    }

    /// Users flagged for suspension (reached `suspend_after` alerts), in
    /// flagging order.
    pub fn suspended_users(&self) -> &[u64] {
        &self.suspended
    }

    /// Number of alerts a user has accumulated.
    pub fn user_alert_count(&self, user_id: u64) -> u32 {
        self.history.get(&user_id).copied().unwrap_or(0)
    }

    /// Drain the pending alert queue (moderator consumption).
    ///
    /// Drain vs checkpoint semantics (DESIGN.md §10): the queue holds
    /// *pending* alerts only, and `raised_total`/`drained_total` are part
    /// of the snapshot — so a checkpoint taken after a drain records the
    /// drained alerts as consumed, and recovery neither resurrects nor
    /// double-counts them. Delivery to the external consumer is
    /// at-least-once across a driver failure (a drain whose effects were
    /// not made durable is replayed); consumers deduplicate on
    /// [`Alert::seq`], which is never reused.
    pub fn drain(&mut self) -> Vec<Alert> {
        self.drained_total += self.alerts.len() as u64;
        std::mem::take(&mut self.alerts)
    }
}

impl Checkpoint for Alerter {
    fn snapshot_into(&self, w: &mut SnapshotWriter) {
        // `scheme`, `threshold`, and `suspend_after` are construction-time
        // configuration. The per-user history is serialized sorted by user
        // id so identical state always yields identical bytes; `class_name`
        // is omitted and re-derived from the scheme on restore.
        let mut history: Vec<(u64, u32)> =
            self.history.iter().map(|(&user, &count)| (user, count)).collect();
        history.sort_unstable_by_key(|&(user, _)| user);
        w.write_usize(history.len());
        for (user, count) in history {
            w.write_u64(user);
            w.write_u32(count);
        }
        w.write_usize(self.alerts.len());
        for alert in &self.alerts {
            w.write_u64(alert.seq);
            w.write_u64(alert.tweet_id);
            w.write_u64(alert.user_id);
            w.write_usize(alert.class);
            w.write_f64(alert.confidence);
            w.write_u32(alert.user_alert_count);
        }
        w.write_usize(self.suspended.len());
        for &user in &self.suspended {
            w.write_u64(user);
        }
        // Exactly-once totals: the queue above holds *pending* alerts
        // only, so these monotonic counts are what survives a drain.
        w.write_u64(self.raised_total);
        w.write_u64(self.drained_total);
    }

    fn restore_from(&mut self, r: &mut SnapshotReader) -> Result<()> {
        let history_len = r.read_usize()?;
        self.history.clear();
        for _ in 0..history_len {
            let user = r.read_u64()?;
            let count = r.read_u32()?;
            self.history.insert(user, count);
        }
        let alerts_len = r.read_usize()?;
        self.alerts.clear();
        for _ in 0..alerts_len {
            let seq = r.read_u64()?;
            let tweet_id = r.read_u64()?;
            let user_id = r.read_u64()?;
            let class = r.read_usize()?;
            if class >= self.scheme.num_classes() {
                return Err(Error::Snapshot(format!(
                    "alert class {class} out of range for {} classes",
                    self.scheme.num_classes()
                )));
            }
            let confidence = r.read_f64()?;
            let user_alert_count = r.read_u32()?;
            self.alerts.push(Alert {
                seq,
                tweet_id,
                user_id,
                class,
                class_name: self.scheme.class_name(class),
                confidence,
                user_alert_count,
            });
        }
        let suspended_len = r.read_usize()?;
        self.suspended.clear();
        for _ in 0..suspended_len {
            self.suspended.push(r.read_u64()?);
        }
        self.raised_total = r.read_u64()?;
        self.drained_total = r.read_u64()?;
        if self.drained_total + self.alerts.len() as u64 != self.raised_total {
            return Err(Error::Snapshot(format!(
                "alert totals inconsistent: {} drained + {} pending != {} raised",
                self.drained_total,
                self.alerts.len(),
                self.raised_total
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alerter() -> Alerter {
        Alerter::new(ClassScheme::ThreeClass, 0.5, 3)
    }

    #[test]
    fn alert_fires_above_threshold() {
        let mut a = alerter();
        assert!(a.observe(1, 10, &[0.8, 0.15, 0.05]).is_none(), "benign");
        let alert = a.observe(2, 10, &[0.2, 0.7, 0.1]).cloned().unwrap();
        assert_eq!(alert.class, 1);
        assert_eq!(alert.class_name, "abusive");
        assert!((alert.confidence - 0.7).abs() < 1e-12);
        assert_eq!(alert.user_alert_count, 1);
    }

    #[test]
    fn combined_aggressive_mass_triggers() {
        let mut a = alerter();
        // Neither aggressive class exceeds 0.5 alone, but together they do.
        let alert = a.observe(1, 5, &[0.4, 0.35, 0.25]).unwrap();
        assert_eq!(alert.class, 1, "strongest aggressive class reported");
    }

    #[test]
    fn repeated_offenses_flag_suspension() {
        let mut a = alerter();
        for i in 0..5 {
            a.observe(i, 42, &[0.1, 0.8, 0.1]);
        }
        assert_eq!(a.user_alert_count(42), 5);
        assert_eq!(a.suspended_users(), &[42], "flagged exactly once");
        assert_eq!(a.alerts().len(), 5);
        assert_eq!(a.alerts()[2].user_alert_count, 3);
    }

    #[test]
    fn two_class_scheme() {
        let mut a = Alerter::new(ClassScheme::TwoClass, 0.6, 2);
        assert!(a.observe(1, 1, &[0.5, 0.5]).is_none());
        assert!(a.observe(2, 1, &[0.3, 0.7]).is_some());
        let alert = &a.alerts()[0];
        assert_eq!(alert.class_name, "aggressive");
    }

    #[test]
    fn checkpoint_round_trip_is_bit_identical() {
        let mut a = alerter();
        for i in 0..20u64 {
            a.observe(i, i % 4, &[0.1, 0.6, 0.3]);
        }
        let bytes = a.snapshot();
        let mut restored = alerter();
        let mut r = redhanded_types::snapshot::SnapshotReader::new(&bytes);
        restored.restore_from(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.alerts(), a.alerts());
        assert_eq!(restored.suspended_users(), a.suspended_users());
        assert_eq!(restored.user_alert_count(2), a.user_alert_count(2));
        assert_eq!(restored.snapshot(), bytes);
        // Post-restore behavior matches: same alert for the same tweet.
        let x = a.observe(100, 2, &[0.0, 0.9, 0.1]).cloned();
        let y = restored.observe(100, 2, &[0.0, 0.9, 0.1]).cloned();
        assert_eq!(x, y);
    }

    #[test]
    fn corrupt_class_index_is_rejected() {
        let mut a = alerter();
        a.observe(1, 1, &[0.0, 1.0, 0.0]);
        let mut w = redhanded_types::snapshot::SnapshotWriter::new();
        a.snapshot_into(&mut w);
        let mut bytes = w.into_bytes();
        // history(len=1: u64+u32) then alerts len, then seq/tweet/user/class.
        let class_off = 8 + 12 + 8 + 8 + 8 + 8;
        bytes[class_off] = 99;
        let mut restored = alerter();
        let mut r = redhanded_types::snapshot::SnapshotReader::new(&bytes);
        assert!(restored.restore_from(&mut r).is_err());
    }

    #[test]
    fn drain_empties_queue_but_keeps_history() {
        let mut a = alerter();
        a.observe(1, 7, &[0.0, 1.0, 0.0]);
        let drained = a.drain();
        assert_eq!(drained.len(), 1);
        assert!(a.alerts().is_empty());
        assert_eq!(a.user_alert_count(7), 1, "history survives draining");
        assert_eq!(a.alerts_raised(), 1, "raised count survives draining");
        assert_eq!(a.alerts_drained(), 1);
    }

    /// Regression for the headline bug: the alert was built with an
    /// unchecked `proba[class]` while every other read in `observe` used
    /// the checked form. A model emitting a truncated distribution (here:
    /// fewer entries than the scheme has classes) panicked the stream.
    /// With threshold 0.0 the positive classes tie at zero mass, `max_by`
    /// returns the last (highest) positive class index, and that index is
    /// out of bounds for the short slice.
    #[test]
    fn short_proba_slice_must_not_panic() {
        let mut two = Alerter::new(ClassScheme::TwoClass, 0.0, 3);
        let alert = two.observe(1, 1, &[1.0]).cloned().unwrap();
        assert_eq!(alert.class, 1, "strongest positive class under the scheme");
        assert_eq!(alert.confidence, 0.0, "missing entry means zero mass");

        let mut three = Alerter::new(ClassScheme::ThreeClass, 0.0, 3);
        let alert = three.observe(2, 2, &[0.6]).cloned().unwrap();
        assert_eq!(alert.class, 2);
        assert_eq!(alert.confidence, 0.0);

        // An empty distribution must not panic either.
        assert!(two.observe(3, 3, &[]).is_some());
    }

    #[test]
    fn seq_is_monotonic_and_survives_drain() {
        let mut a = alerter();
        for i in 0..3u64 {
            a.observe(i, i, &[0.0, 1.0, 0.0]);
        }
        let drained = a.drain();
        assert_eq!(drained.iter().map(|al| al.seq).collect::<Vec<_>>(), vec![1, 2, 3]);
        a.observe(10, 10, &[0.0, 1.0, 0.0]);
        a.observe(11, 11, &[0.0, 1.0, 0.0]);
        assert_eq!(a.alerts().iter().map(|al| al.seq).collect::<Vec<_>>(), vec![4, 5]);
        assert_eq!(a.alerts_raised(), 5);
        assert_eq!(a.alerts_drained(), 3);
    }

    /// Drain vs checkpoint: a snapshot taken after a drain must not
    /// resurrect or double-count the drained alerts on recovery, and a
    /// replayed post-checkpoint observation reconstructs the same seq —
    /// every alert ever raised appears exactly once in
    /// (drained ∪ pending-after-recovery).
    #[test]
    fn snapshot_after_drain_does_not_resurrect_alerts() {
        let mut a = alerter();
        a.observe(1, 1, &[0.0, 1.0, 0.0]);
        a.observe(2, 2, &[0.0, 1.0, 0.0]);
        let drained = a.drain();
        let bytes = a.snapshot();

        // Post-checkpoint work that a recovery will replay.
        a.observe(3, 3, &[0.0, 1.0, 0.0]);

        let mut restored = alerter();
        let mut r = redhanded_types::snapshot::SnapshotReader::new(&bytes);
        restored.restore_from(&mut r).unwrap();
        r.finish().unwrap();
        assert!(restored.alerts().is_empty(), "drained alerts stay consumed");
        assert_eq!(restored.alerts_raised(), 2);
        assert_eq!(restored.alerts_drained(), 2);

        // Deterministic replay of the lost observation.
        restored.observe(3, 3, &[0.0, 1.0, 0.0]);
        assert_eq!(restored.alerts_raised(), a.alerts_raised());
        let mut seqs: Vec<u64> = drained.iter().map(|al| al.seq).collect();
        seqs.extend(restored.alerts().iter().map(|al| al.seq));
        assert_eq!(seqs, vec![1, 2, 3], "exactly-once coverage of every seq");
        assert_eq!(restored.alerts(), a.alerts(), "replayed alert is bit-identical");
    }

    #[test]
    fn restore_rejects_inconsistent_totals() {
        let mut a = alerter();
        a.observe(1, 1, &[0.0, 1.0, 0.0]);
        let mut bytes = a.snapshot();
        // Corrupt raised_total (last 16 bytes are raised, drained).
        let n = bytes.len();
        bytes[n - 16] = 7;
        let mut restored = alerter();
        let mut r = redhanded_types::snapshot::SnapshotReader::new(&bytes);
        assert!(restored.restore_from(&mut r).is_err());
    }
}
