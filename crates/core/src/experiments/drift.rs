//! Extension experiment: drift resilience of the adaptive bag-of-words.
//!
//! The paper motivates the adaptive BoW with aggressors who "find
//! 'innovative' ways to circumvent the rules … using new words … to
//! signify their aggression but avoid detection" (Section I) and shows a
//! 2–4% F1 benefit at the dataset's natural drift level (Figure 9). This
//! driver sweeps the *intensity* of vocabulary drift — the fraction of
//! profanity replaced by emerging out-of-lexicon slang by the end of the
//! stream — and measures how far a frozen-lexicon detector falls behind
//! the adaptive one, which is the design's raison d'être.

use crate::config::{ModelKind, PipelineConfig};
use crate::item::StreamItem;
use crate::pipeline::DetectionPipeline;
use redhanded_datagen::{generate_abusive, AbusiveConfig, DriftConfig};
use redhanded_types::{ClassScheme, Result};

/// One measured point of the drift sweep.
#[derive(Debug, Clone)]
pub struct DriftPoint {
    /// Fraction of profanity replaced by slang at end-of-stream.
    pub max_adoption: f64,
    /// Final F1 with the adaptive BoW.
    pub adaptive_f1: f64,
    /// Final F1 with the frozen seed lexicon.
    pub frozen_f1: f64,
    /// Adaptive BoW size at end-of-stream.
    pub adaptive_bow_size: usize,
}

impl DriftPoint {
    /// The adaptive BoW's F1 advantage at this drift level.
    pub fn advantage(&self) -> f64 {
        self.adaptive_f1 - self.frozen_f1
    }
}

fn run_variant(adaptive: bool, stream: &[StreamItem]) -> Result<DetectionPipeline> {
    let mut config = PipelineConfig::paper(ClassScheme::TwoClass, ModelKind::ht());
    config.adaptive_bow = adaptive;
    let mut pipeline = DetectionPipeline::new(config)?;
    pipeline.run(stream)?;
    Ok(pipeline)
}

/// Sweep drift intensities over `total`-tweet streams, comparing adaptive
/// vs frozen lexicons.
pub fn run_drift_resilience(
    adoptions: &[f64],
    total: usize,
    seed: u64,
) -> Result<Vec<DriftPoint>> {
    let mut out = Vec::with_capacity(adoptions.len());
    for &max_adoption in adoptions {
        let config = AbusiveConfig {
            drift: DriftConfig { enabled: max_adoption > 0.0, slang_pool: 80, max_adoption },
            ..AbusiveConfig::small(total, seed)
        };
        let stream: Vec<StreamItem> =
            generate_abusive(&config).into_iter().map(StreamItem::from).collect();
        let adaptive = run_variant(true, &stream)?;
        let frozen = run_variant(false, &stream)?;
        out.push(DriftPoint {
            max_adoption,
            adaptive_f1: adaptive.cumulative_metrics().f1,
            frozen_f1: frozen.cumulative_metrics().f1,
            adaptive_bow_size: adaptive.bow_len(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advantage_grows_with_drift_intensity() {
        let points = run_drift_resilience(&[0.0, 0.7], 6000, 1).unwrap();
        assert_eq!(points.len(), 2);
        let calm = &points[0];
        let stormy = &points[1];
        assert!(
            stormy.advantage() > calm.advantage(),
            "advantage under heavy drift ({:.3}) exceeds no-drift ({:.3})",
            stormy.advantage(),
            calm.advantage()
        );
        assert!(stormy.advantage() > 0.01, "heavy drift: {:.3}", stormy.advantage());
        assert!(stormy.adaptive_bow_size > 347, "BoW absorbed the slang");
    }

    #[test]
    fn frozen_lexicon_degrades_under_drift() {
        let points = run_drift_resilience(&[0.0, 0.8], 6000, 2).unwrap();
        assert!(
            points[1].frozen_f1 < points[0].frozen_f1,
            "frozen F1 under drift {:.3} < without {:.3}",
            points[1].frozen_f1,
            points[0].frozen_f1
        );
    }
}
