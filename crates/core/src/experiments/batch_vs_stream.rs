//! Streaming vs. batch ML (Section V-D, Figures 13–14).
//!
//! The dataset spans 10 consecutive days. Two batch training protocols are
//! compared against the streaming Hoeffding Tree:
//!
//! * **train-first-day test-all-others** — fit once on day 0 and only test
//!   afterwards (the model goes stale as the stream drifts);
//! * **train-one-day test-next-day** — refit daily on yesterday's data
//!   (a pseudo-streaming batch pipeline).
//!
//! The streaming HT is evaluated prequentially with per-day averages, like
//! the "HT (daily average)" line in the figures.

use crate::config::{ModelKind, PipelineConfig};
use crate::item::StreamItem;
use crate::pipeline::DetectionPipeline;
use redhanded_batchml::{BatchClassifier, DecisionTree};
use redhanded_datagen::{generate_abusive, AbusiveConfig};
use redhanded_features::{AdaptiveBow, AdaptiveBowConfig, FeatureExtractor, NUM_FEATURES};
use redhanded_streamml::{ConfusionMatrix, SeriesPoint};
use redhanded_types::{ClassScheme, Dataset, Instance, Result};

/// The two batch training protocols of Section V-D.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchScenario {
    /// Fit on day 0, test on every later day.
    TrainFirstDayTestAllOthers,
    /// Fit on day `d`, test on day `d+1`, for every `d`.
    TrainOneDayTestNextDay,
}

impl BatchScenario {
    /// The figure-legend label.
    pub fn label(&self) -> &'static str {
        match self {
            BatchScenario::TrainFirstDayTestAllOthers => "train-first-day_test-all-others",
            BatchScenario::TrainOneDayTestNextDay => "train-one-day_test-next-day",
        }
    }
}

/// Outcome of the comparison.
#[derive(Debug, Clone)]
pub struct BatchVsStreamOutcome {
    /// Streaming HT's fine-grained prequential F1 curve.
    pub streaming_series: Vec<SeriesPoint>,
    /// Streaming HT's per-day average F1 (`(day, f1)`).
    pub streaming_daily: Vec<(u32, f64)>,
    /// Batch DT F1 per tested day under train-first-day.
    pub batch_first_day: Vec<(u32, f64)>,
    /// Batch DT F1 per tested day under train-one-day-test-next.
    pub batch_daily_retrain: Vec<(u32, f64)>,
}

/// Extract a static (non-adaptive) feature dataset from labeled tweets —
/// the representation the batch models consume. Features use the fixed
/// seed lexicon; trees need no normalization.
fn extract_static_dataset(
    tweets: &[redhanded_types::LabeledTweet],
    config: &AbusiveConfig,
    scheme: ClassScheme,
) -> Dataset {
    let extractor = FeatureExtractor::default();
    let bow = AdaptiveBow::new(AdaptiveBowConfig { adaptive: false, ..Default::default() });
    let mut ds = Dataset::new(scheme);
    for (i, lt) in tweets.iter().enumerate() {
        if let Some((inst, _)) = extractor.labeled_instance(lt, scheme, &bow, config.day_of(i)) {
            ds.push(inst);
        }
    }
    ds
}

fn f1_of_predictions(
    model: &DecisionTree,
    test: &[Instance],
    num_classes: usize,
) -> Result<f64> {
    let mut matrix = ConfusionMatrix::new(num_classes);
    for inst in test {
        let predicted = model.predict(&inst.features)?;
        matrix.add(inst.label.expect("labeled dataset"), predicted, inst.weight);
    }
    Ok(matrix.metrics().f1)
}

/// Run the full streaming-vs-batch comparison on a `total`-tweet stream
/// under `scheme` (Figure 13: 3-class; Figure 14: 2-class).
pub fn run_batch_vs_stream(
    scheme: ClassScheme,
    total: usize,
    seed: u64,
) -> Result<BatchVsStreamOutcome> {
    let config = AbusiveConfig::small(total, seed);
    let tweets = generate_abusive(&config);
    let num_classes = scheme.num_classes();

    // --- Streaming HT, prequential, with per-day confusion tracking.
    let mut pipeline =
        DetectionPipeline::new(PipelineConfig::paper(scheme, ModelKind::ht()))?;
    let mut daily_matrices: Vec<ConfusionMatrix> =
        (0..config.days).map(|_| ConfusionMatrix::new(num_classes)).collect();
    for (i, lt) in tweets.iter().enumerate() {
        let item = StreamItem::from(lt.clone());
        if let Some(c) = pipeline.process(&item)? {
            if let Some(actual) = c.actual {
                let day = config.day_of(i) as usize;
                daily_matrices[day].add(actual, c.predicted, 1.0);
            }
        }
    }
    let streaming_daily: Vec<(u32, f64)> = daily_matrices
        .iter()
        .enumerate()
        .filter(|(_, m)| m.total() > 0.0)
        .map(|(d, m)| (d as u32, m.metrics().f1))
        .collect();

    // --- Batch DT under the two scenarios, on static features.
    let dataset = extract_static_dataset(&tweets, &config, scheme);
    let segments = dataset.day_segments();
    let fit_on = |segment_range: &[Instance]| -> Result<DecisionTree> {
        let mut dt = DecisionTree::with_defaults(num_classes, NUM_FEATURES)?;
        let refs: Vec<&Instance> = segment_range.iter().collect();
        dt.fit(&refs)?;
        Ok(dt)
    };

    let mut batch_first_day = Vec::new();
    if segments.len() > 1 {
        let model = fit_on(dataset.day_slice(segments[0]))?;
        for seg in &segments[1..] {
            let f1 = f1_of_predictions(&model, dataset.day_slice(*seg), num_classes)?;
            batch_first_day.push((seg.day, f1));
        }
    }

    let mut batch_daily_retrain = Vec::new();
    for w in segments.windows(2) {
        let model = fit_on(dataset.day_slice(w[0]))?;
        let f1 = f1_of_predictions(&model, dataset.day_slice(w[1]), num_classes)?;
        batch_daily_retrain.push((w[1].day, f1));
    }

    Ok(BatchVsStreamOutcome {
        streaming_series: pipeline.series().to_vec(),
        streaming_daily,
        batch_first_day,
        batch_daily_retrain,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_all_four_curves() {
        let out = run_batch_vs_stream(ClassScheme::TwoClass, 5000, 1).unwrap();
        assert_eq!(out.streaming_daily.len(), 10);
        assert_eq!(out.batch_first_day.len(), 9, "days 1..=9 tested");
        assert_eq!(out.batch_daily_retrain.len(), 9);
        assert!(!out.streaming_series.is_empty());
        for (_, f1) in out
            .streaming_daily
            .iter()
            .chain(&out.batch_first_day)
            .chain(&out.batch_daily_retrain)
        {
            assert!((0.0..=1.0).contains(f1));
        }
    }

    #[test]
    fn streaming_catches_up_with_batch() {
        // After warm-up, streaming HT's daily F1 should be comparable to
        // (or better than) the daily-retrained batch tree — the paper's
        // key takeaway in Section V-D.
        let out = run_batch_vs_stream(ClassScheme::TwoClass, 8000, 2).unwrap();
        let late_stream: f64 = out.streaming_daily[5..]
            .iter()
            .map(|(_, f1)| f1)
            .sum::<f64>()
            / out.streaming_daily[5..].len() as f64;
        let late_batch: f64 = out
            .batch_daily_retrain
            .iter()
            .filter(|(d, _)| *d >= 5)
            .map(|(_, f1)| f1)
            .sum::<f64>()
            / out.batch_daily_retrain.iter().filter(|(d, _)| *d >= 5).count() as f64;
        assert!(
            late_stream > late_batch - 0.05,
            "late-stream F1 {late_stream:.3} vs daily-retrained batch {late_batch:.3}"
        );
    }

    #[test]
    fn stale_batch_model_degrades_under_drift() {
        // With strong vocabulary drift, the day-0 model's F1 on late days
        // drops below its F1 on early days.
        let mut config = AbusiveConfig::small(8000, 3);
        config.drift.max_adoption = 0.8;
        let tweets = generate_abusive(&config);
        let dataset = extract_static_dataset(&tweets, &config, ClassScheme::TwoClass);
        let segments = dataset.day_segments();
        let mut dt = DecisionTree::with_defaults(2, NUM_FEATURES).unwrap();
        let refs: Vec<&Instance> = dataset.day_slice(segments[0]).iter().collect();
        dt.fit(&refs).unwrap();
        let early = f1_of_predictions(&dt, dataset.day_slice(segments[1]), 2).unwrap();
        let late = f1_of_predictions(&dt, dataset.day_slice(segments[9]), 2).unwrap();
        assert!(
            late < early,
            "stale model should degrade: day1 F1 {early:.3} vs day9 {late:.3}"
        );
    }
}
