//! Feature analysis: the per-class PDFs of Figure 4 and the Gini feature
//! importances of Figure 5.

use redhanded_batchml::{BatchClassifier, RandomForest, RandomForestConfig};
use redhanded_datagen::{generate_abusive, AbusiveConfig};
use redhanded_features::{
    AdaptiveBow, AdaptiveBowConfig, FeatureExtractor, FEATURE_NAMES, NUM_FEATURES,
};
use redhanded_types::{ClassScheme, Dataset, Result};

/// A histogram-estimated probability density of one feature for one class.
#[derive(Debug, Clone)]
pub struct FeaturePdf {
    /// Feature name (Figure 4 axis label).
    pub feature: String,
    /// Class name (`normal` / `abusive` / `hateful`).
    pub class_name: String,
    /// Class mean of the feature (the statistics quoted in Section IV-B).
    pub mean: f64,
    /// Class standard deviation.
    pub std: f64,
    /// `(bin_center, density)` pairs; densities integrate to ≈ 1.
    pub bins: Vec<(f64, f64)>,
}

/// One row of the Figure 5 ranking.
#[derive(Debug, Clone)]
pub struct ImportanceEntry {
    /// Feature name.
    pub feature: String,
    /// Normalized Gini importance (all entries sum to 1).
    pub importance: f64,
}

/// Extract the static (fixed-lexicon) feature dataset used by both figures.
fn static_dataset(total: usize, seed: u64) -> Dataset {
    let config = AbusiveConfig::small(total, seed);
    let tweets = generate_abusive(&config);
    let extractor = FeatureExtractor::default();
    let bow = AdaptiveBow::new(AdaptiveBowConfig { adaptive: false, ..Default::default() });
    let mut ds = Dataset::new(ClassScheme::ThreeClass);
    for (i, lt) in tweets.iter().enumerate() {
        if let Some((inst, _)) =
            extractor.labeled_instance(lt, ClassScheme::ThreeClass, &bow, config.day_of(i))
        {
            ds.push(inst);
        }
    }
    ds
}

/// Compute the per-class PDFs of the named features (Figure 4) over a
/// `total`-tweet dataset, with `num_bins` histogram bins per feature.
pub fn feature_pdfs(
    features: &[&str],
    total: usize,
    seed: u64,
    num_bins: usize,
) -> Result<Vec<FeaturePdf>> {
    let ds = static_dataset(total, seed);
    let scheme = ClassScheme::ThreeClass;
    let mut out = Vec::new();
    for name in features {
        let Some(fi) = FEATURE_NAMES.iter().position(|n| n == name) else {
            return Err(redhanded_types::Error::InvalidConfig(format!(
                "unknown feature {name}"
            )));
        };
        // Common bin range across classes, like the shared axes of Fig. 4.
        let values: Vec<(usize, f64)> = ds
            .instances()
            .iter()
            .filter_map(|i| i.label.map(|l| (l, i.features[fi])))
            .collect();
        let lo = values.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
        let hi = values.iter().map(|(_, v)| *v).fold(f64::NEG_INFINITY, f64::max);
        let width = ((hi - lo) / num_bins as f64).max(1e-12);
        for class in 0..scheme.num_classes() {
            let class_values: Vec<f64> =
                values.iter().filter(|(l, _)| *l == class).map(|(_, v)| *v).collect();
            let n = class_values.len().max(1) as f64;
            let mean = class_values.iter().sum::<f64>() / n;
            let var = class_values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
            let mut counts = vec![0usize; num_bins];
            for v in &class_values {
                let b = (((v - lo) / width) as usize).min(num_bins - 1);
                counts[b] += 1;
            }
            let bins: Vec<(f64, f64)> = counts
                .iter()
                .enumerate()
                .map(|(b, &c)| {
                    (lo + (b as f64 + 0.5) * width, c as f64 / (n * width))
                })
                .collect();
            out.push(FeaturePdf {
                feature: name.to_string(),
                class_name: scheme.class_name(class).to_string(),
                mean,
                std: var.sqrt(),
                bins,
            });
        }
    }
    Ok(out)
}

/// Compute the Figure 5 ranking: normalized Gini importances of all 17
/// features from a random forest fitted on the `total`-tweet dataset,
/// sorted descending.
pub fn gini_importance_ranking(total: usize, seed: u64) -> Result<Vec<ImportanceEntry>> {
    let ds = static_dataset(total, seed);
    let mut cfg = RandomForestConfig::defaults(3, NUM_FEATURES);
    cfg.num_trees = 30;
    let mut rf = RandomForest::new(cfg)?;
    let refs: Vec<&redhanded_types::Instance> = ds.instances().iter().collect();
    rf.fit(&refs)?;
    let imp = rf.gini_importance()?;
    let mut entries: Vec<ImportanceEntry> = FEATURE_NAMES
        .iter()
        .zip(imp)
        .map(|(f, importance)| ImportanceEntry { feature: f.to_string(), importance })
        .collect();
    entries.sort_by(|a, b| b.importance.total_cmp(&a.importance));
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdfs_cover_requested_features_and_classes() {
        let pdfs =
            feature_pdfs(&["cntSwearWords", "numUpperCases"], 3000, 1, 20).unwrap();
        assert_eq!(pdfs.len(), 6, "2 features × 3 classes");
        for pdf in &pdfs {
            // Densities integrate to ~1.
            let width = pdf.bins[1].0 - pdf.bins[0].0;
            let mass: f64 = pdf.bins.iter().map(|(_, d)| d * width).sum();
            assert!((mass - 1.0).abs() < 0.05, "{}/{}: {mass}", pdf.feature, pdf.class_name);
        }
    }

    #[test]
    fn swear_pdf_ordering_matches_figure_4f() {
        let pdfs = feature_pdfs(&["cntSwearWords"], 4000, 2, 15).unwrap();
        let mean_of = |class: &str| {
            pdfs.iter().find(|p| p.class_name == class).unwrap().mean
        };
        let normal = mean_of("normal");
        let abusive = mean_of("abusive");
        let hateful = mean_of("hateful");
        assert!(
            abusive > hateful && hateful > normal,
            "abusive {abusive:.2} > hateful {hateful:.2} > normal {normal:.2}"
        );
    }

    #[test]
    fn unknown_feature_is_an_error() {
        assert!(feature_pdfs(&["notAFeature"], 100, 1, 5).is_err());
    }

    #[test]
    fn importance_ranking_is_normalized_and_sorted() {
        let ranking = gini_importance_ranking(3000, 3).unwrap();
        assert_eq!(ranking.len(), NUM_FEATURES);
        let total: f64 = ranking.iter().map(|e| e.importance).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for w in ranking.windows(2) {
            assert!(w[0].importance >= w[1].importance);
        }
        // Figure 5's headline: swear count ranks first; text features
        // dominate. (bowScore equals cntSwearWords on a drift-free static
        // extraction, so either may take the top spots.)
        let top3: Vec<&str> = ranking[..3].iter().map(|e| e.feature.as_str()).collect();
        assert!(
            top3.contains(&"cntSwearWords") || top3.contains(&"bowScore"),
            "swear-derived feature in top 3: {top3:?}"
        );
    }
}
