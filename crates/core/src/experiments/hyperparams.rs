//! Hyperparameter tuning (Table I of the paper): grid search over each
//! streaming model's parameters, scored by prequential F1 on the abusive
//! stream.
//!
//! Feature extraction, normalization, and the adaptive BoW do not depend
//! on the model, so the instance stream is prepared once and each grid
//! point replays it prequentially.

use crate::config::{ModelKind, PipelineConfig};
use crate::item::StreamItem;
use redhanded_batchml::{grid_search, GridDimension, GridPoint, GridResult};
use redhanded_datagen::{generate_abusive, AbusiveConfig};
use redhanded_features::{AdaptiveBow, FeatureExtractor, Normalizer, NUM_FEATURES};
use redhanded_streamml::{
    ArfConfig, HoeffdingTreeConfig, LeafPrediction, PrequentialEvaluator, Regularizer,
    SlrConfig, SplitCriterion,
};
use redhanded_types::{ClassScheme, Instance, Result};

/// The outcome of tuning one model.
#[derive(Debug, Clone)]
pub struct TuningOutcome {
    /// Model name.
    pub model: &'static str,
    /// Every grid point with its prequential F1, best first.
    pub results: Vec<GridResult>,
}

impl TuningOutcome {
    /// The winning parameter assignment.
    pub fn best(&self) -> &GridPoint {
        &self.results[0].point
    }

    /// The winning score.
    pub fn best_score(&self) -> f64 {
        self.results[0].score
    }
}

/// Prepare the normalized instance stream once (extraction + robust-minmax
/// normalization + adaptive BoW, the paper's full pipeline).
pub fn prepare_instances(
    scheme: ClassScheme,
    total: usize,
    seed: u64,
) -> Result<Vec<Instance>> {
    let config = AbusiveConfig::small(total, seed);
    let tweets = generate_abusive(&config);
    let pcfg = PipelineConfig::paper(scheme, ModelKind::ht());
    let extractor = FeatureExtractor::new(pcfg.extractor_config());
    let mut bow = AdaptiveBow::new(pcfg.bow_config());
    let mut normalizer = Normalizer::new(pcfg.normalization, NUM_FEATURES);
    let mut out = Vec::with_capacity(total);
    for (i, lt) in tweets.iter().enumerate() {
        let item = StreamItem::from(lt.clone());
        let Some((mut inst, words)) =
            extractor.labeled_instance(lt, scheme, &bow, item.day())
        else {
            continue;
        };
        normalizer.process(&mut inst)?;
        let aggressive = inst.label.map(|c| c > 0).unwrap_or(false);
        bow.observe(words.iter().map(String::as_str), aggressive);
        let _ = i;
        out.push(inst);
    }
    Ok(out)
}

fn prequential_f1(
    instances: &[Instance],
    mut model: Box<dyn redhanded_streamml::StreamingClassifier>,
) -> Result<f64> {
    let mut eval = PrequentialEvaluator::new(model.num_classes(), None, 0);
    for inst in instances {
        eval.step(model.as_mut(), inst)?;
    }
    Ok(eval.cumulative_metrics().f1)
}

/// Tune the Hoeffding Tree over the Table I grid.
pub fn tune_ht(instances: &[Instance], scheme: ClassScheme) -> Result<TuningOutcome> {
    let dims = vec![
        GridDimension::new("criterion", vec![0.0, 1.0]), // 0 = Gini, 1 = InfoGain
        GridDimension::new("confidence", vec![0.001, 0.01, 0.1, 0.5]),
        GridDimension::new("tie", vec![0.01, 0.05, 0.1]),
        GridDimension::new("grace", vec![200.0, 350.0, 500.0]),
        GridDimension::new("depth", vec![10.0, 20.0, 30.0]),
    ];
    let results = grid_search(&dims, |p| {
        let cfg = ht_config_from(p, scheme);
        prequential_f1(instances, Box::new(redhanded_streamml::HoeffdingTree::new(cfg)?))
    })?;
    Ok(TuningOutcome { model: "HT", results })
}

/// Decode a grid point into a Hoeffding Tree configuration.
pub fn ht_config_from(p: &GridPoint, scheme: ClassScheme) -> HoeffdingTreeConfig {
    let mut cfg = HoeffdingTreeConfig::paper_defaults(scheme.num_classes(), NUM_FEATURES);
    if let Some(&c) = p.get("criterion") {
        cfg.split_criterion =
            if c < 0.5 { SplitCriterion::Gini } else { SplitCriterion::InfoGain };
    }
    if let Some(&v) = p.get("confidence") {
        cfg.split_confidence = v;
    }
    if let Some(&v) = p.get("tie") {
        cfg.tie_threshold = v;
    }
    if let Some(&v) = p.get("grace") {
        cfg.grace_period = v;
    }
    if let Some(&v) = p.get("depth") {
        cfg.max_depth = v as usize;
    }
    cfg.leaf_prediction = LeafPrediction::NBAdaptive;
    cfg
}

/// Tune the Adaptive Random Forest (ensemble size; trees at Table I's
/// selected HT values).
pub fn tune_arf(instances: &[Instance], scheme: ClassScheme) -> Result<TuningOutcome> {
    let dims = vec![GridDimension::new("ensemble", vec![10.0, 15.0, 20.0])];
    let results = grid_search(&dims, |p| {
        let mut cfg = ArfConfig::paper_defaults(scheme.num_classes(), NUM_FEATURES);
        cfg.ensemble_size = p["ensemble"] as usize;
        prequential_f1(
            instances,
            Box::new(redhanded_streamml::AdaptiveRandomForest::new(cfg)?),
        )
    })?;
    Ok(TuningOutcome { model: "ARF", results })
}

/// Tune Streaming Logistic Regression over the Table I grid.
pub fn tune_slr(instances: &[Instance], scheme: ClassScheme) -> Result<TuningOutcome> {
    let dims = vec![
        GridDimension::new("lambda", vec![0.01, 0.05, 0.1]),
        GridDimension::new("regularizer", vec![0.0, 1.0, 2.0]), // Zero, L1, L2
        GridDimension::new("reg", vec![0.001, 0.01, 0.1]),
    ];
    let results = grid_search(&dims, |p| {
        let mut cfg = SlrConfig::paper_defaults(scheme.num_classes(), NUM_FEATURES);
        cfg.learning_rate = p["lambda"];
        cfg.regularizer = match p["regularizer"] as usize {
            0 => Regularizer::Zero,
            1 => Regularizer::L1,
            _ => Regularizer::L2,
        };
        cfg.reg_param = p["reg"];
        prequential_f1(
            instances,
            Box::new(redhanded_streamml::StreamingLogisticRegression::new(cfg)?),
        )
    })?;
    Ok(TuningOutcome { model: "SLR", results })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepared_instances_are_normalized_and_labeled() {
        let insts = prepare_instances(ClassScheme::TwoClass, 1500, 1).unwrap();
        assert_eq!(insts.len(), 1500);
        for inst in &insts {
            assert!(inst.is_labeled());
            assert_eq!(inst.dim(), NUM_FEATURES);
            for &v in &inst.features {
                assert!((0.0..=1.0).contains(&v), "robust minmax output {v}");
            }
        }
    }

    #[test]
    fn slr_grid_prefers_regularized_configs_on_this_stream() {
        let insts = prepare_instances(ClassScheme::TwoClass, 2000, 2).unwrap();
        let outcome = tune_slr(&insts, ClassScheme::TwoClass).unwrap();
        assert_eq!(outcome.results.len(), 27);
        assert!(outcome.best_score() > 0.7, "best F1 {}", outcome.best_score());
        // Sorted best-first.
        for w in outcome.results.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn arf_grid_runs() {
        let insts = prepare_instances(ClassScheme::TwoClass, 1000, 3).unwrap();
        let outcome = tune_arf(&insts, ClassScheme::TwoClass).unwrap();
        assert_eq!(outcome.results.len(), 3);
        assert!(outcome.best().contains_key("ensemble"));
    }

    #[test]
    fn ht_config_decoding() {
        let mut p = GridPoint::new();
        p.insert("criterion".into(), 0.0);
        p.insert("confidence".into(), 0.5);
        p.insert("tie".into(), 0.1);
        p.insert("grace".into(), 500.0);
        p.insert("depth".into(), 10.0);
        let cfg = ht_config_from(&p, ClassScheme::ThreeClass);
        assert_eq!(cfg.split_criterion, SplitCriterion::Gini);
        assert_eq!(cfg.split_confidence, 0.5);
        assert_eq!(cfg.tie_threshold, 0.1);
        assert_eq!(cfg.grace_period, 500.0);
        assert_eq!(cfg.max_depth, 10);
        assert_eq!(cfg.num_classes, 3);
    }
}
