//! Experiment drivers behind every table and figure of the paper's
//! evaluation (Section V). The `redhanded-bench` binaries call into these
//! with paper-scale parameters; unit and integration tests run them at
//! reduced scale. See `DESIGN.md` for the experiment ↔ module index and
//! `EXPERIMENTS.md` for paper-vs-measured results.

pub mod ablation;
pub mod batch_vs_stream;
pub mod drift;
pub mod features_fig;
pub mod hyperparams;
pub mod related;
pub mod scalability;

pub use ablation::{run_ablation, AblationOutcome, AblationSpec};
pub use batch_vs_stream::{run_batch_vs_stream, BatchScenario, BatchVsStreamOutcome};
pub use drift::{run_drift_resilience, DriftPoint};
pub use features_fig::{feature_pdfs, gini_importance_ranking, FeaturePdf, ImportanceEntry};
pub use hyperparams::{prepare_instances, tune_arf, tune_ht, tune_slr, TuningOutcome};
pub use related::{run_related, RelatedDataset, RelatedOutcome};
pub use scalability::{run_scalability, ScalabilityOutcome, ScalabilityPoint, FIREHOSE_TWEETS_PER_SEC};
